"""Open-loop traffic serving: latency tails and goodput vs offered load.

Drives seeded Poisson arrival streams through the
:class:`~repro.shard.TrafficScheduler` on pools of D in {1, 2, 4}
simulated devices and asserts the serving layer's contract:

* **bit-identity under load** — every continuous-batching cell at the
  moderate load point re-checks each served ticket against the
  ``core.reference`` oracle; open-loop serving never trades correctness
  for latency;
* **continuous beats naive** — at moderate load for the batched system
  (rho = 1.8x the calibrated per-arrival-launch capacity, which
  continuous serving absorbs with every deadline met) continuous
  batching wins the p99 latency tail, goodput, *and* deadlines-met
  against the naive one-launch-per-arrival policy at every pool size,
  while giving up at most 5% goodput at the loads where naive is not
  yet saturated;
* **failover cost is a tail number** — a chaos cell (member death under
  load at D=2) serves everything on the survivors, and the reroute cost
  shows up as a measured p99/p999 penalty against the fault-free cell.

``results/BENCH_traffic.json`` is the committed evidence: p50/p99/p999
and goodput for every (D, rho, policy) cell, the calibration point, and
the chaos tail penalty.  ``test_committed_traffic_results`` re-reads the
committed file so CI fails if the evidence goes stale or silent.
"""

import json

import numpy as np
from bench_util import write_bench_json

from repro.core.reference import inclusive_scan
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.serve import TrafficSpec
from repro.shard import PoolScanService, run_traffic

S = 16
SIZES = (256, 1024)
SLO_NS = 100_000.0
REQUESTS = 200
POOL_SIZES = (1, 2, 4)
#: offered load relative to the calibrated naive (one-launch-per-arrival)
#: capacity: comfortably under, at naive's saturation knee, and past it —
#: the last point is still *moderate* for continuous serving (batching
#: multiplies capacity), which is where the tentpole claim is asserted
RHOS = (0.5, 0.9, 1.8)
CLAIM_RHO = 1.8
SEED = 1


def _pool(devices):
    return PoolScanService(devices, config=toy_config(), max_batch=8)


def _spec(rate_rps, requests=REQUESTS):
    return TrafficSpec(
        name="bench",
        process="poisson",
        rate_rps=rate_rps,
        requests=requests,
        sizes=SIZES,
        slo_ns=SLO_NS,
    )


def _calibrate():
    """Mean per-request service time of the naive policy on an idle
    single member — the capacity anchor every rho is expressed against."""
    svc = _pool(1)
    rep = run_traffic(
        svc, _spec(20_000.0, requests=64), SEED, policy="naive", s=S
    )
    assert rep.served == rep.offered
    mean_solo_ns = sum(svc.busy_ns) / rep.served
    return {
        "mean_solo_service_ns": mean_solo_ns,
        "naive_capacity_rps_per_device": 1e9 / mean_solo_ns,
    }


def _cell(devices, rho, rate_rps, policy, *, check_oracle=False):
    svc = _pool(devices)
    admitted = {}
    on_admit = (
        (lambda t, x: admitted.__setitem__(t.req_id, x))
        if check_oracle
        else None
    )
    rep = run_traffic(
        svc, _spec(rate_rps), SEED, policy=policy, s=S, on_admit=on_admit
    )
    assert rep.accounted() and rep.failed == 0
    row = {
        "devices": devices,
        "rho": rho,
        "policy": policy,
        "offered_rps": rep.offered_rps,
        "served": rep.served,
        "shed": rep.shed,
        "deadline_met": rep.deadline_met,
        "p50_us": rep.percentile(0.50) / 1e3,
        "p99_us": rep.percentile(0.99) / 1e3,
        "p999_us": rep.percentile(0.999) / 1e3,
        "goodput_rps": rep.goodput_rps,
        "batched_fraction": rep.batched_fraction,
        "launches": rep.launches,
    }
    if check_oracle:
        row["bit_identical"] = all(
            np.array_equal(t.result(), inclusive_scan(admitted[t.req_id]))
            for t in rep.tickets
        )
    return row


def _chaos_cell(rate_rps, baseline):
    """The D=2 moderate-load cell re-run with one member dying under
    load: everything still serves on the survivor, and the failover cost
    is the measured latency-tail delta against the fault-free cell."""
    svc = _pool(2)
    svc.workers[0].ctx.device.fault_plan = FaultPlan(die_at_launch=2)
    admitted = {}
    rep = run_traffic(
        svc, _spec(rate_rps), SEED, s=S,
        on_admit=lambda t, x: admitted.__setitem__(t.req_id, x),
    )
    assert rep.accounted() and rep.failed == 0
    assert svc._dead[0] and not svc._dead[1]
    return {
        "devices": 2,
        "rho": CLAIM_RHO,
        "dead_members": [0],
        "served": rep.served,
        "shed": rep.shed,
        "deadline_met": rep.deadline_met,
        "p50_us": rep.percentile(0.50) / 1e3,
        "p99_us": rep.percentile(0.99) / 1e3,
        "p999_us": rep.percentile(0.999) / 1e3,
        "goodput_rps": rep.goodput_rps,
        "baseline_p99_us": baseline["p99_us"],
        "baseline_p999_us": baseline["p999_us"],
        "failover_p99_penalty_us": rep.percentile(0.99) / 1e3
        - baseline["p99_us"],
        "bit_identical": all(
            np.array_equal(t.result(), inclusive_scan(admitted[t.req_id]))
            for t in rep.tickets
        ),
    }


def _run():
    calibration = _calibrate()
    per_device = calibration["naive_capacity_rps_per_device"]
    sweep = []
    for devices in POOL_SIZES:
        for rho in RHOS:
            rate = rho * per_device * devices
            for policy in ("continuous", "naive"):
                sweep.append(
                    _cell(
                        devices, rho, rate, policy,
                        check_oracle=(
                            policy == "continuous" and rho == CLAIM_RHO
                        ),
                    )
                )
    baseline = next(
        r
        for r in sweep
        if r["devices"] == 2 and r["rho"] == CLAIM_RHO
        and r["policy"] == "continuous"
    )
    chaos = _chaos_cell(CLAIM_RHO * per_device * 2, baseline)
    return {"calibration": calibration, "sweep": sweep, "chaos": chaos}


def _by_cell(sweep):
    return {(r["devices"], r["rho"], r["policy"]): r for r in sweep}


def _assert_claims(payload):
    cells = _by_cell(payload["sweep"])
    for r in payload["sweep"]:
        if "bit_identical" in r:
            assert r["bit_identical"]
    # the tentpole claim: at a load that is moderate for the batched
    # system but past naive's per-arrival-launch capacity, continuous
    # batching beats naive on the p99 tail, goodput AND deadlines met,
    # at every pool size
    for d in POOL_SIZES:
        cont = cells[(d, CLAIM_RHO, "continuous")]
        naive = cells[(d, CLAIM_RHO, "naive")]
        assert cont["p99_us"] < naive["p99_us"]
        assert cont["goodput_rps"] > naive["goodput_rps"]
        assert cont["deadline_met"] > naive["deadline_met"]
        assert cont["batched_fraction"] > 0.5
    # under naive's saturation the batching delay costs tail latency but
    # continuous never gives up more than 5% goodput anywhere
    for (d, rho, policy), cont in cells.items():
        if policy != "continuous":
            continue
        naive = cells[(d, rho, "naive")]
        assert cont["goodput_rps"] >= 0.95 * naive["goodput_rps"]
    # goodput grows with pool size at fixed rho (rate scales with D)
    for rho in RHOS:
        g = [cells[(d, rho, "continuous")]["goodput_rps"] for d in POOL_SIZES]
        assert g[-1] > g[0]
    # chaos: everything served on the survivor, bit-identical, and the
    # failover cost is visible in the tail
    chaos = payload["chaos"]
    assert chaos["bit_identical"]
    assert chaos["p99_us"] >= chaos["baseline_p99_us"]
    assert chaos["failover_p99_penalty_us"] >= 0.0


def test_traffic_latency_and_goodput(benchmark, results_dir):
    payload = benchmark.pedantic(_run, iterations=1, rounds=1)
    _assert_claims(payload)
    write_bench_json(results_dir, "traffic", payload)


def test_committed_traffic_results(results_dir):
    """The committed evidence stays present, complete, and true: CI fails
    if BENCH_traffic.json goes missing or its headline claims rot."""
    path = results_dir / "BENCH_traffic.json"
    assert path.exists(), "commit benchmarks/results/BENCH_traffic.json"
    payload = json.loads(path.read_text())
    cells = _by_cell(payload["sweep"])
    assert set(cells) == {
        (d, rho, policy)
        for d in POOL_SIZES
        for rho in RHOS
        for policy in ("continuous", "naive")
    }
    for row in payload["sweep"]:
        assert row["p50_us"] <= row["p99_us"] <= row["p999_us"]
    _assert_claims(payload)
