"""Serve layer: plan-cache latency + request batching + replay engines.

Asserts the serve-layer claims:

* a plan-cache hit is at least 5x cheaper (host wall time) than the cold
  path a first request pays (full kernel trace + validation + execute) —
  checked on ScanUL1, the most emission-heavy kernel, and reported for
  every algorithm;
* N same-shape requests submitted individually and coalesced by the
  service reach the simulated throughput of a direct batched-kernel call
  on the same block to within 10% (when the batch fills its bucket the
  service issues the identical op DAG, so the match is exact);
* replaying a cached plan from its memoized timeline is at least 5x
  cheaper (host wall time) than re-running the reference discrete-event
  scheduler per execute (the pre-memoization behaviour), with all replay
  engines producing ns-identical timelines.

Host-timing assertions use best-of repeats to tolerate shared-runner
noise; the 5x bars are structural (emission dominates the cold cost, and
the memoized path does no scheduling at all — measured headroom is in
the hundreds), not tight performance bounds.
"""

from bench_util import write_bench_json

from repro.serve.bench import format_report, run_serve_bench, serve_bench_json

N = 1 << 20
BATCH = 16
ROW_LEN = 1 << 16


def test_serve_layer(benchmark, results_dir):
    report = benchmark.pedantic(
        run_serve_bench,
        kwargs=dict(n=N, batch=BATCH, row_len=ROW_LEN, repeats=3),
        iterations=1,
        rounds=1,
    )
    text = format_report(report)
    print()
    print(text)
    (results_dir / "serve.txt").write_text(text + "\n")
    write_bench_json(results_dir, "serve", serve_bench_json(report))

    rows = {r["algorithm"]: r for r in report["plan_cache"]}
    # every traced plan must have cross-validated against the oracle
    assert all(r["validated"] for r in rows.values())
    assert rows["scanul1"]["speedup"] >= 5.0
    # the others clear the bar too, with margin for runner noise
    assert all(r["speedup"] >= 3.0 for r in rows.values())

    for r in report["batched"]:
        assert r["coalesced"]
        assert 0.9 <= r["throughput_ratio"] <= 1.1

    # memoized-timeline replay vs DES-per-execute (PR 1's hot path): the
    # asserted bar is 5x; a regression to per-event scheduling shows up as
    # a collapse to ~1x
    replay = {r["algorithm"]: r for r in report["replay_engines"]}
    assert all(r["timelines_identical"] for r in replay.values())
    assert replay["scanul1"]["replay_cached_speedup"] >= 5.0
    assert all(r["replay_cached_speedup"] >= 5.0 for r in replay.values())
    # the compiled engine must also beat the reference DES outright
    assert all(r["replay_compiled_speedup"] >= 1.1 for r in replay.values())
    # end-to-end execute still pays the functional NumPy compute, so the
    # bar is modest — but removing the scheduler must be visible
    assert replay["scanul1"]["execute_speedup"] >= 1.1
