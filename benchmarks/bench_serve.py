"""Serve layer: plan-cache latency + request-batching throughput.

Asserts the two serve-layer claims:

* a plan-cache hit is at least 5x cheaper (host wall time) than the cold
  path a first request pays (full kernel trace + validation + execute) —
  checked on ScanUL1, the most emission-heavy kernel, and reported for
  every algorithm;
* N same-shape requests submitted individually and coalesced by the
  service reach the simulated throughput of a direct batched-kernel call
  on the same block to within 10% (when the batch fills its bucket the
  service issues the identical op DAG, so the match is exact).

Host-timing assertions use best-of repeats to tolerate shared-runner
noise; the 5x bar is structural (emission is ~90% of the cold cost), not
a tight performance bound.
"""

from repro.serve.bench import format_report, run_serve_bench

N = 1 << 20
BATCH = 16
ROW_LEN = 1 << 16


def test_serve_layer(benchmark, results_dir):
    report = benchmark.pedantic(
        run_serve_bench,
        kwargs=dict(n=N, batch=BATCH, row_len=ROW_LEN, repeats=3),
        iterations=1,
        rounds=1,
    )
    text = format_report(report)
    print()
    print(text)
    (results_dir / "serve.txt").write_text(text + "\n")

    rows = {r["algorithm"]: r for r in report["plan_cache"]}
    # every traced plan must have cross-validated against the oracle
    assert all(r["validated"] for r in rows.values())
    assert rows["scanul1"]["speedup"] >= 5.0
    # the others clear the bar too, with margin for runner noise
    assert all(r["speedup"] >= 3.0 for r in rows.values())

    for r in report["batched"]:
        assert r["coalesced"]
        assert 0.9 <= r["throughput_ratio"] <= 1.1
