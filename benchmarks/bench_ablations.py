"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs its design discussion turns on:

* **core scaling** — MCScan speedup vs the number of AI cores used
  (the 15.2x claim is "when it uses all available (20) cube cores");
* **vector-to-cube ratio** — the paper presents Algorithm 3 at 1:1 and
  exploits the 910B's 2:1 "as an implementation detail"; we run both;
* **cache state** — warm vs cold L2 (the steady-state measurement
  assumption behind Figure 8's shape);
* **double buffering** — AscendC queue depth 2 vs 1 on the copy kernel
  (Section 3.2: "implementing double buffering comes down to changing
  the queue capacity from one to two").
"""

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.core.copykernel import CopyKernel
from repro.hw.config import ASCEND_910B4, DeviceConfig
from repro.runner.reporting import format_value


def _series(title, rows, cols):
    print(f"\n== ablation: {title}")
    print("  ".join(cols))
    for r in rows:
        print("  ".join(format_value(r[c]) for c in cols))


@pytest.mark.benchmark(group="ablations")
def test_ablation_core_scaling(benchmark):
    """MCScan time vs number of AI cores (strong scaling)."""

    def run():
        ctx = ScanContext()
        rng = np.random.default_rng(0)
        x = (rng.integers(0, 3, 1 << 22) - 1).astype(np.float16)
        rows = []
        t1 = None
        for blocks in (1, 2, 4, 8, 16, 20):
            t = ctx.scan(x, algorithm="mcscan", s=128, block_dim=blocks).time_ns
            t1 = t1 or t
            rows.append({"blocks": blocks, "t_us": t / 1e3, "speedup": t1 / t})
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    _series("MCScan core scaling", rows, ["blocks", "t_us", "speedup"])
    # scaling is monotone and ends memory-bound (sub-linear)
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)
    assert 4.0 < speedups[-1] < 20.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_vector_cube_ratio(benchmark):
    """Algorithm 3 at the paper's expository 1:1 ratio vs the 910B's 2:1."""

    def run():
        rng = np.random.default_rng(0)
        x = (rng.integers(0, 3, 1 << 22) - 1).astype(np.float16)
        out = {}
        for ratio in (1, 2):
            cfg = DeviceConfig(num_ai_cores=20, vector_cores_per_ai_core=ratio)
            ctx = ScanContext(cfg)
            out[ratio] = ctx.scan(x, algorithm="mcscan", s=128).time_ns
        return out

    times = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n== ablation: vec:cube ratio  1:1 -> {times[1] / 1e3:.1f}us, "
        f"2:1 -> {times[2] / 1e3:.1f}us (gain {times[1] / times[2]:.2f}x)"
    )
    # the second vector core helps phase II's serial chains
    assert times[2] < times[1]


@pytest.mark.benchmark(group="ablations")
def test_ablation_cache_state(benchmark):
    """Warm (steady-state profiling) vs cold L2 on the copy kernel.

    The copy is the pure case: warm runs hit the L2 entirely, cold runs
    stream straight from DRAM and pay its inefficiency.  (The scan kernels
    barely notice: most of their traffic is the intermediate array they
    themselves just produced, which is hot either way.)
    """

    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1 << 22).astype(np.float16)
        warm = ScanContext(warm_inputs=True).copy(x).time_ns
        cold = ScanContext(warm_inputs=False).copy(x).time_ns
        return warm, cold

    warm, cold = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n== ablation: L2 state (copy)  warm={warm / 1e3:.1f}us "
        f"cold={cold / 1e3:.1f}us (penalty {cold / warm:.2f}x)"
    )
    assert 1.05 < cold / warm < 1.4  # DRAM inefficiency on cold misses


@pytest.mark.benchmark(group="ablations")
def test_ablation_double_buffering(benchmark):
    """Queue depth 2 vs 1 on the copy kernel (AscendC's one-line pipelining
    knob, Section 3.2)."""

    class SingleBufferedCopy(CopyKernel):
        def run(self, ctx):  # identical loop, depth-1 queue
            from repro.lang import intrinsics as I
            from repro.lang.tensor import BufferKind

            n = self.x.num_elements
            n_tiles = -(-n // self.tile_elements)
            per_block = -(-n_tiles // self.block_dim) * self.tile_elements
            start = ctx.block_idx * per_block
            end = min(start + per_block, n)
            if start >= end:
                return
            pipe = ctx.make_pipe(ctx.vec_core(0))
            ub = pipe.init_buffer(
                buffer=BufferKind.UB, depth=1,
                slot_bytes=self.tile_elements * self.x.dtype.itemsize,
            )
            off = start
            while off < end:
                ln = min(self.tile_elements, end - off)
                t = ub.alloc_tensor(self.x.dtype, ln)
                I.data_copy(ctx, t, self.x.slice(off, ln))
                I.data_copy(ctx, self.y.slice(off, ln), t)
                ub.free_tensor(t)
                off += ln

    def run():
        from repro.hw.device import AscendDevice

        rng = np.random.default_rng(0)
        n = 1 << 21
        vals = rng.standard_normal(n).astype(np.float16)
        out = {}
        for name, cls in (("depth2", CopyKernel), ("depth1", SingleBufferedCopy)):
            device = AscendDevice(ASCEND_910B4)
            x = device.alloc("x", n, "fp16")
            y = device.alloc("y", n, "fp16")
            x.write(vals)
            device.warm_l2(x, y)
            bd = min(device.config.num_vector_cores, n // 16384)
            out[name] = device.launch(cls(x, y, bd)).total_ns
        return out

    times = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        f"\n== ablation: double buffering  depth2={times['depth2'] / 1e3:.1f}us "
        f"depth1={times['depth1'] / 1e3:.1f}us "
        f"(gain {times['depth1'] / times['depth2']:.2f}x)"
    )
    assert times["depth2"] < times["depth1"]
