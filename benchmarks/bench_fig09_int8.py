"""Figure 9: MCScan throughput (GElems/s) for fp16 vs int8 inputs.

Paper: "there is a performance improvement of the order of 10% for the
case of integer inputs.  Such an improvement is crucial since the split
and compress operators take as input boolean mask arrays stored in int8."
"""


def test_fig09_int8_throughput(run_figure):
    res = run_figure("fig09")

    for row in res.rows:
        assert row["gelems_int8"] > row["gelems_fp16"]
    last = res.rows[-1]
    # the paper's "order of 10%"
    assert 1.05 < last["int8_gain"] < 1.25
    # throughput grows with n for both dtypes (overhead amortisation)
    fp16 = res.column_values("gelems_fp16")
    assert fp16 == sorted(fp16)
