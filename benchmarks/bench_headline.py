"""Headline claims table: every quoted speedup/fraction of the paper in
one regenerated table (abstract + Sections 4.1, 6.1-6.3)."""


def _measured(res, claim):
    row = next(r for r in res.rows if r["claim"].startswith(claim))
    return float(row["measured"].rstrip("x% GB/s").split()[0])


def test_headline_claims(run_figure):
    res = run_figure("headline")

    assert 3.5 < _measured(res, "ScanU vs vec_only") < 6.5  # paper 5x
    assert 7.0 < _measured(res, "ScanUL1 vs vec_only") < 12.0  # paper 9.6x
    assert 1.5 < _measured(res, "ScanUL1 vs ScanU") < 2.8  # paper ~2x
    assert 10.0 < _measured(res, "MCScan vs ScanU") < 18.0  # paper 15.2x
    assert 25.0 < _measured(res, "MCScan peak fraction") <= 37.5  # paper 37.5%
    assert 5.0 < _measured(res, "int8 over fp16") < 25.0  # paper ~10%
    assert 1.1 < _measured(res, "radix sort vs torch.sort") < 4.0  # 1.3-3.3x
    assert 100.0 < _measured(res, "compress bandwidth") < 280.0  # ~160 GB/s
