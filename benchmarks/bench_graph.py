"""Operator-graph serving: batched replay vs hand-chaining, chaos, tuning.

Asserts the graph runtime's serving claims (DESIGN 2.12):

* **graph-served >= 2x over hand-chained** — submitting a batch of
  ``llm_sample`` (top-k -> top-p) requests through the service lowers the
  pipeline once and replays memoized programs per request; calling the
  AscendOps operators by hand re-traces every kernel per request.  Both
  cold (build inline) and warm passes must clear 2x, with the served
  tokens bit-identical to the NumPy oracle *and* to the hand-chained
  device path (tie-free inputs).
* **chaos bit-identity** — the same graphs served at D in {1, 2, 4}
  under a 20% per-launch transient fault mix stay bit-identical to the
  oracle; per-kernel retry absorbs the faults.
* **tuned scans flow into graphs** — a ``scan`` node with no explicit
  algorithm resolves through the TuneStore, and the tuned lowering is
  never slower than the default on the tuned shape.
* **fusion >= 1.3x on an elementwise-heavy mix** — the same graph mix
  (map chains feeding scans, prep-chained ``llm_sample``) executed with
  ``fusion=aggressive`` captures one program per fused region: fewer
  launches, less GM traffic, >= 1.3x less device time than the per-node
  ``fusion=off`` lowering, with every output bit-identical.

Results are committed to ``results/BENCH_graph.json``.
"""

import time

import numpy as np

from bench_util import write_bench_json

from repro.core.api import ScanContext
from repro.errors import DeviceFault
from repro.graph import (
    Graph,
    GraphRunner,
    llm_sample,
    oracle_outputs,
    scan_graph,
    scan_pipeline,
)
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.ops import AscendOps, TopPSampler
from repro.serve import RetryPolicy, ScanService
from repro.shard import DevicePool, PoolScanService
from repro.tune import TunedEntry, TuneStore

VOCAB = 96
K = 8
P = 0.75
THETA = 0.4
S = 16
REQUESTS = 12


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scores(rng, vocab: int) -> np.ndarray:
    # pairwise-distinct fp16 so the device top-k has no tie-order hazard
    # vs the oracle's stable sort (see repro.graph.op)
    return (rng.permutation(vocab) + 1).astype(np.float16)


def bench_llm_sample_serving() -> dict:
    """Batched graph-served llm_sample vs the hand-chained operator loop."""
    config = toy_config()
    rng = np.random.default_rng(11)
    batch = [_scores(rng, VOCAB) for _ in range(REQUESTS)]
    graph = llm_sample(VOCAB, k=K, p=P, theta=THETA, s=S)

    svc = ScanService(config=config)

    def serve():
        tickets = [svc.submit_graph(graph, {"probs": b}) for b in batch]
        svc.flush()
        return tickets

    t0 = time.perf_counter()
    tickets = serve()
    cold_s = time.perf_counter() - t0
    warm_s = _best_of(serve)

    ops = AscendOps(scan_context=ScanContext(config))
    sampler = TopPSampler(ops, s=S)

    def hand():
        out = []
        for b in batch:
            tk = ops.topk_baseline(b, K)
            res = sampler.sample(
                tk.values.astype(np.float16), p=P, theta=THETA, backend="cube"
            )
            out.append(int(tk.indices[int(res.values[0])]))
        return out

    hand_tokens = hand()
    hand_s = _best_of(hand)

    tokens = [int(t.result()[0][0]) for t in tickets]
    expected = [
        int(oracle_outputs(graph, {"probs": b})[0][0]) for b in batch
    ]
    breakdown = {
        kind: {"launches": count, "device_us": ns / 1e3}
        for kind, (count, ns) in sorted(svc.stats.op_device_ns.items())
    }
    svc.shutdown()
    return {
        "vocab": VOCAB,
        "k": K,
        "requests": REQUESTS,
        "tokens_match_oracle": tokens == expected,
        "tokens_match_handchained": tokens == hand_tokens,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "handchained_ms": hand_s * 1e3,
        "speedup_cold": hand_s / cold_s,
        "speedup_warm": hand_s / warm_s,
        "op_breakdown": breakdown,
    }


def _flush_resilient(svc, limit: int = 50) -> int:
    """Flush until the queue drains; a flush aborted by retry exhaustion
    requeues the unserved tail, so the caller just flushes again.
    Returns the number of aborted flushes."""
    aborted = 0
    while True:
        try:
            svc.flush()
        except DeviceFault:
            aborted += 1
            if aborted >= limit:
                raise
            continue
        if not svc.pending:
            return aborted


def bench_chaos_identity() -> dict:
    """Graph serving at D in {1, 2, 4} under a transient-fault mix."""
    config = toy_config()
    rng = np.random.default_rng(13)
    graphs = {v: llm_sample(v, k=K, p=P, s=S) for v in (96, 160)}
    points = []
    for devices in (1, 2, 4):
        if devices == 1:
            svc = ScanService(
                config=config, retry=RetryPolicy(max_attempts=4)
            )
            svc.ctx.device.fault_plan = FaultPlan(seed=5, transient_rate=0.2)
        else:
            pool = DevicePool(devices, config)
            svc = PoolScanService(
                pool=pool, config=config, retry=RetryPolicy(max_attempts=4)
            )
            for m in range(devices):
                pool.inject_faults(
                    m, FaultPlan(seed=5 + m, transient_rate=0.2)
                )
        jobs = []
        for j in range(8):
            vocab = 96 if j % 2 == 0 else 160
            probs = _scores(rng, vocab)
            params = {"sample": {"theta": float(rng.integers(1, 8)) / 8.0}}
            ticket = svc.submit_graph(
                graphs[vocab], {"probs": probs}, params=params
            )
            jobs.append(
                (ticket, oracle_outputs(graphs[vocab], {"probs": probs}, params))
            )
        aborted = _flush_resilient(svc)
        exact = sum(
            t.done
            and len(t.result()) == len(want)
            and all(np.array_equal(a, b) for a, b in zip(t.result(), want))
            for t, want in jobs
        )
        workers = getattr(svc, "workers", None) or [svc]
        points.append(
            {
                "devices": devices,
                "requests": len(jobs),
                "served": sum(t.done for t, _ in jobs),
                "aborted_flushes": aborted,
                "bit_identical": exact,
                "faults_absorbed": sum(
                    w.stats.fault_events for w in workers
                ),
                "retries": sum(w.stats.total_retries for w in workers),
            }
        )
        svc.shutdown()
    return {"transient_rate": 0.2, "points": points}


def bench_tuned_graph_scan(n: int = 4096) -> dict:
    """A store-resolved scan node is never slower than the default."""
    config = toy_config()
    rng = np.random.default_rng(17)
    x = rng.integers(-2, 3, n).astype(np.float16)

    times = {}
    for algorithm in ("scanu", "mcscan"):
        runner = GraphRunner(config)
        res = runner.execute(
            scan_graph(n, algorithm=algorithm, s=S), {"x": x}
        )
        times[algorithm] = res.time_ns
    best = min(times, key=times.get)

    store = TuneStore(config)
    store.record(
        f"1d:{n}:fp16:i",
        TunedEntry(
            algorithm=best,
            s=S,
            block_dim=None,
            layout="1d",
            tuned_ns=times[best],
            default_ns=times["scanu"],
        ),
    )
    tuned_runner = GraphRunner(config, tune_store=store)
    graph = scan_graph(n)  # no algorithm: resolves through the store
    entries, _built = tuned_runner.lower(graph)
    res = tuned_runner.execute(graph, {"x": x})
    return {
        "n": n,
        "default_algorithm": "scanu",
        "default_us": times["scanu"] / 1e3,
        "tuned_algorithm": best,
        "tuned_us": res.time_ns / 1e3,
        "graph_used_tuned": bool(entries[0][1].tuned),
        "tuned_not_slower": res.time_ns <= times["scanu"],
    }


def _map_chain(n: int, fns) -> Graph:
    g = Graph(name="map_chain")
    edge = g.add_input("x", "fp16", (n,))
    for i, fn in enumerate(fns):
        (edge,) = g.add_node(f"m{i}", "elementwise", [edge], {"fn": fn})
    g.set_outputs([edge])
    g.validate()
    return g


def bench_fused_vs_unfused() -> dict:
    """One captured program per fused region vs per-node lowering on an
    elementwise-heavy graph mix; outputs must stay bit-identical."""
    config = toy_config()
    rng = np.random.default_rng(23)
    mix = [
        (
            scan_pipeline(2048, pre=("abs", "double"), post=("negate",), s=S),
            {"x": rng.integers(-2, 3, 2048).astype(np.float16)},
        ),
        (
            scan_pipeline(
                1024,
                dtype="int8",
                pre=("abs",),
                post=("double", "abs"),
                exclusive=True,
                s=S,
            ),
            {"x": rng.integers(-20, 21, 1024).astype(np.int8)},
        ),
        (
            scan_pipeline(
                512, pre=("negate", "abs", "double"), post=(), s=S
            ),
            {"x": rng.integers(-2, 3, 512).astype(np.float16)},
        ),
        (
            _map_chain(4096, ("abs", "double", "negate", "abs")),
            {"x": rng.integers(-2, 3, 4096).astype(np.float16)},
        ),
    ]

    modes = {}
    outputs = {}
    for mode in ("off", "aggressive"):
        runner = GraphRunner(config, fusion=mode)
        outs, device_ns, launches = [], 0, 0
        for graph, inputs in mix:
            res = runner.execute(graph, inputs)
            outs.append(res.outputs)
            device_ns += res.time_ns
            launches += res.launches
        stats = runner.cache.stats()
        modes[mode] = {
            "device_us": device_ns / 1e3,
            "launches": launches,
            "lowered": stats["lowered"],
            "fused_regions": stats["fused"],
        }
        outputs[mode] = outs

    identical = all(
        len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))
        for a, b in zip(outputs["off"], outputs["aggressive"])
    )
    return {
        "graphs": len(mix),
        "off": modes["off"],
        "aggressive": modes["aggressive"],
        "bit_identical": identical,
        "device_speedup": (
            modes["off"]["device_us"] / modes["aggressive"]["device_us"]
        ),
        "launches_saved": (
            modes["off"]["launches"] - modes["aggressive"]["launches"]
        ),
    }


def test_graph_serving(benchmark, results_dir):
    def run_all():
        return {
            "serving": bench_llm_sample_serving(),
            "chaos": bench_chaos_identity(),
            "tuned": bench_tuned_graph_scan(),
            "fusion": bench_fused_vs_unfused(),
        }

    report = benchmark.pedantic(run_all, iterations=1, rounds=1)
    serving = report["serving"]
    chaos = report["chaos"]
    tuned = report["tuned"]
    fusion = report["fusion"]

    lines = [
        "operator-graph serving bench",
        "",
        f"llm_sample (vocab {serving['vocab']}, k={serving['k']}, "
        f"{serving['requests']} requests):",
        f"  hand-chained (re-traced) : {serving['handchained_ms']:8.1f} ms",
        f"  graph-served, cold       : {serving['cold_ms']:8.1f} ms "
        f"({serving['speedup_cold']:.1f}x)",
        f"  graph-served, warm       : {serving['warm_ms']:8.1f} ms "
        f"({serving['speedup_warm']:.1f}x)",
        "",
        f"chaos bit-identity (transient rate {chaos['transient_rate']}):",
    ]
    for point in chaos["points"]:
        lines.append(
            f"  D={point['devices']}: {point['bit_identical']}/"
            f"{point['requests']} bit-identical, "
            f"{point['faults_absorbed']} faults absorbed over "
            f"{point['retries']} retries"
        )
    lines += [
        "",
        f"tuned scan in graphs (n={tuned['n']}):",
        f"  default {tuned['default_algorithm']}: "
        f"{tuned['default_us']:8.1f} us",
        f"  tuned   {tuned['tuned_algorithm']}: "
        f"{tuned['tuned_us']:8.1f} us (store-resolved)",
        "",
        f"fused vs unfused ({fusion['graphs']}-graph elementwise-heavy mix):",
        f"  fusion=off        : {fusion['off']['device_us']:8.1f} us, "
        f"{fusion['off']['launches']} launches",
        f"  fusion=aggressive : {fusion['aggressive']['device_us']:8.1f} us, "
        f"{fusion['aggressive']['launches']} launches "
        f"({fusion['aggressive']['fused_regions']} fused regions)",
        f"  device speedup    : {fusion['device_speedup']:.2f}x, "
        f"{fusion['launches_saved']} launches saved, "
        f"bit-identical={fusion['bit_identical']}",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "graph.txt").write_text(text + "\n")
    write_bench_json(
        results_dir, "graph", {"schema": 1, "benchmark": "graph", **report}
    )

    assert serving["tokens_match_oracle"]
    assert serving["tokens_match_handchained"]
    assert serving["speedup_cold"] >= 2.0
    assert serving["speedup_warm"] >= 2.0
    for point in chaos["points"]:
        assert point["bit_identical"] == point["requests"]
    assert sum(p["faults_absorbed"] for p in chaos["points"]) > 0
    assert tuned["graph_used_tuned"]
    assert tuned["tuned_not_slower"]
    assert fusion["bit_identical"]
    assert fusion["device_speedup"] >= 1.3
    assert fusion["aggressive"]["launches"] < fusion["off"]["launches"]
    assert fusion["aggressive"]["fused_regions"] >= 3
