"""Low-precision sorting (the paper's Section 6.3 outlook, implemented).

Paper: "the number of radix sort iterations equals the input bit-width...
an additional performance improvement (2x) for sorting in low-precision
8-bit scenarios is expected without further development effort."

This bench sorts the same number of keys as uint8 (8 split iterations) and
fp16 (16 iterations) and checks the predicted ~2x materialises.
"""

import numpy as np
import pytest

from repro.ops import AscendOps
from repro.runner.reporting import format_value


@pytest.mark.benchmark(group="extensions")
def test_lowprec_radix_sort(benchmark):
    def run():
        ops = AscendOps()
        rng = np.random.default_rng(0)
        rows = []
        for p in (18, 19, 20):
            n = 1 << p
            x8 = rng.integers(0, 256, n).astype(np.uint8)
            x16 = rng.standard_normal(n).astype(np.float16)
            r8 = ops.radix_sort(x8)
            r16 = ops.radix_sort(x16)
            assert np.array_equal(r8.values, np.sort(x8))
            rows.append(
                {
                    "n": n,
                    "t_u8_ms": r8.time_ms,
                    "t_fp16_ms": r16.time_ms,
                    "speedup": r16.time_ns / r8.time_ns,
                    "splits_u8": sum(
                        1 for t in r8.traces if "split bit" in t.label
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    cols = ["n", "t_u8_ms", "t_fp16_ms", "speedup", "splits_u8"]
    print("\n== extension: 8-bit radix sort (paper Section 6.3 outlook)")
    print("  ".join(cols))
    for r in rows:
        print("  ".join(format_value(r[c]) for c in cols))

    for r in rows:
        assert r["splits_u8"] == 8  # iterations equal the key bit-width
        assert 1.6 < r["speedup"] < 2.5  # the paper's predicted ~2x
