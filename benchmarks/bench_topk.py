"""Top-k operator comparison: quickselect (paper) vs streaming baseline vs
radix select (the RadiK direction the paper cites).

Two results to reproduce:

* the paper's *negative* result — "we could not improve the performance of
  the baseline top-k for small values of k (k <= 4096)";
* the literature's answer — radix-based selection scales to large k where
  the streaming baseline's per-core candidate state degrades.
"""

import numpy as np
import pytest

from repro.ops import AscendOps
from repro.runner.reporting import format_value


@pytest.mark.benchmark(group="extensions")
def test_topk_scaling(benchmark):
    def run():
        ops = AscendOps()
        rng = np.random.default_rng(0)
        n = 1 << 19
        x = rng.standard_normal(n).astype(np.float16)
        rows = []
        for k in (64, 1024, 4096, 16384, 65536):
            row = {"k": k}
            row["t_baseline_us"] = ops.topk_baseline(x, k).time_us
            row["t_radix_us"] = ops.topk_radix(x, k).time_us
            if k <= 4096:
                row["t_quickselect_us"] = ops.topk(x, k).time_us
            else:
                row["t_quickselect_us"] = float("nan")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    cols = ["k", "t_baseline_us", "t_quickselect_us", "t_radix_us"]
    print("\n== extension: top-k scaling in k (n = 512K)")
    print("  ".join(cols))
    for r in rows:
        print("  ".join(format_value(r[c]) for c in cols))

    # the paper's negative result at small k
    for r in rows:
        if r["k"] <= 4096:
            assert r["t_baseline_us"] < r["t_quickselect_us"]
    # radix select wins at the largest k (the RadiK claim)
    big = rows[-1]
    assert big["t_radix_us"] < big["t_baseline_us"]
    # and the baseline degrades with k much faster than radix select
    growth_base = rows[-1]["t_baseline_us"] / rows[0]["t_baseline_us"]
    growth_radix = rows[-1]["t_radix_us"] / rows[0]["t_radix_us"]
    assert growth_base > 2 * growth_radix
