"""Figure 11: fp16 radix sort (splits on MCScan) vs torch.sort.

Paper: "For input lengths greater than 525K, our textbook implementation
of radix sort delivers a speedup between 1.3x up to 3.3x compared to the
torch.sort() baseline."
"""


def test_fig11_radix_sort(run_figure):
    res = run_figure("fig11")

    small = res.rows[0]  # 128K: below the crossover
    assert small["speedup"] < 1.0, "baseline must win below ~525K"

    beyond = [r for r in res.rows if r["n"] > 525_000]
    assert beyond, "sweep must cross 525K"
    for row in beyond:
        assert 1.1 < row["speedup"] < 4.0  # paper: 1.3x - 3.3x

    # the speedup grows with input size
    speedups = [r["speedup"] for r in res.rows]
    assert speedups[-1] == max(speedups)
