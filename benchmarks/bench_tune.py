"""Autotuner: simulator-guided search vs the serve-layer defaults.

Asserts the tuner's contract on a sweep of workload shapes:

* the tuned configuration is **never slower** than the service default
  (``scanu``, ``s=128``) on any swept shape — guaranteed by construction,
  since the default is a member of the search space and is evaluated
  first — and **strictly faster on at least one** (in practice: all of
  them; MCScan-family configs win large 1-D shapes by an order of
  magnitude);
* the roofline floors actually prune (no shape traces its whole
  candidate space), and pruning never discards the eventual winner —
  cross-checked by the win itself;
* the store round-trips through JSON with a matching device fingerprint
  and serves its entries back through :class:`ScanService`, whose stats
  report the tuned hits.

``results/BENCH_tune.json`` is the committed evidence: per-shape default
vs tuned device time, the winning config, and the search statistics.
"""

import numpy as np
from bench_util import write_bench_json

from repro.core.api import ScanContext
from repro.serve.service import ScanService
from repro.tune import TuneStore, WorkloadKey, format_result, tune_workload

#: the swept shapes: small / medium / large 1-D plus one batched workload
WORKLOADS = (
    WorkloadKey("1d", 4096, "fp16"),
    WorkloadKey("1d", 65536, "fp16"),
    WorkloadKey("1d", 1 << 20, "fp16"),
    WorkloadKey("batched", 8192, "fp16", batch=8),
)


def _run_sweep():
    ctx = ScanContext()
    store = TuneStore(ctx.config)
    results = [tune_workload(ctx, w, store=store) for w in WORKLOADS]
    return ctx, store, results


def test_tuner_beats_defaults(benchmark, results_dir, tmp_path):
    ctx, store, results = benchmark.pedantic(
        _run_sweep, iterations=1, rounds=1
    )
    report = []
    for result in results:
        print()
        print(format_result(result))
        report.append(
            {
                "workload": result.workload.store_key,
                "default": "scanu(s=128)"
                if not result.workload.exclusive
                else "mcscan(s=128)",
                "default_ns": result.default_ns,
                "tuned": result.best.describe(),
                "tuned_ns": result.best_ns,
                "speedup": result.speedup,
                "candidates": len(result.outcomes),
                "evaluated": result.evaluated,
                "pruned": result.pruned,
            }
        )

    # the tuner's contract: never slower anywhere, strictly faster somewhere
    assert all(r.best_ns <= r.default_ns for r in results)
    assert any(r.best_ns < r.default_ns for r in results)
    # the roofline floors must actually bite on every shape
    assert all(r.pruned > 0 for r in results)

    # persistence: save -> load -> identical entries, valid fingerprint
    path = store.save(str(tmp_path / "tuned_plans.json"))
    loaded = TuneStore.load(path, ctx.config)
    assert not loaded.invalidated
    assert loaded.entries == store.entries

    # serving: the store's configs reach the service and its stats say so
    svc = ScanService(ctx, tune_store=loaded)
    tuned_ns = {}
    default_ns = {}
    for w in WORKLOADS:
        if w.kind != "1d":
            continue
        x = np.ones(w.n, dtype=np.float16)
        tuned_ns[w.n] = svc.scan(x).device_ns
        default_ns[w.n] = svc.scan(x, algorithm="scanu", s=128).device_ns
    assert svc.stats.tuned_launches == len(tuned_ns)
    assert svc.stats.tuned_hit_rate > 0
    assert all(tuned_ns[n] <= default_ns[n] for n in tuned_ns)

    payload = {
        "workloads": report,
        "served": [
            {
                "n": n,
                "tuned_device_ns": tuned_ns[n],
                "default_device_ns": default_ns[n],
            }
            for n in sorted(tuned_ns)
        ],
        "store_entries": len(loaded),
        "fingerprint": loaded.fingerprint,
    }
    write_bench_json(results_dir, "tune", payload)
