"""Benchmark harness support.

Each benchmark regenerates one figure/table of the paper on the simulated
910B4 and:

* reports the harness wall time through pytest-benchmark (one round — every
  experiment is a deterministic simulation, not a noisy measurement);
* prints the paper-comparable series (visible with ``-s``);
* writes the same series to ``benchmarks/results/<exp_id>.txt`` so
  EXPERIMENTS.md can be regenerated from a benchmark run;
* asserts the *shape* of the paper's claim (who wins, rough factors,
  crossovers), never absolute nanoseconds.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.runner import ExperimentResult, run_experiment, to_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_figure(benchmark, results_dir):
    """Run one registered experiment under the benchmark timer; persist and
    print its series; return it for shape assertions."""

    def _run(exp_id: str, quick: bool = True) -> ExperimentResult:
        result = benchmark.pedantic(
            run_experiment, args=(exp_id, quick), iterations=1, rounds=1
        )
        text = to_text(result)
        print()
        print(text)
        (results_dir / f"{exp_id}.txt").write_text(text + "\n")
        return result

    return _run
