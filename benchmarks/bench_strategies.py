"""Scan-strategy ablation: MCScan vs SSA / RSS / decoupled lookback.

The paper (Section 2.1 + contribution list) argues its partial-
recomputation structure is the right multi-core strategy for the 910B.
This bench runs all four strategies head to head on identical inputs.

Expected picture (and what we assert):

* SSA moves the most GM traffic (a separate broadcast-add pass) and is
  the slowest at scale;
* RSS moves exactly MCScan's traffic but serialises the reduction before
  the cube work — MCScan's overlap beats it;
* decoupled lookback is barrier-free and edges out MCScan *in this
  model*; it is reported, not asserted against MCScan, because the model
  does not charge the GM spin-polling and firmware support that
  barrier-free cross-block communication costs on real silicon — the
  plausible reason the paper's implementation kept the barriered
  structure (its 2N-traffic advantage on GPUs cannot materialise on the
  910B split architecture anyway: cube output must round-trip through GM).
"""

import numpy as np
import pytest

from repro.core.api import SCAN_STRATEGIES, ScanContext
from repro.runner.reporting import format_value


@pytest.mark.benchmark(group="ablations")
def test_strategy_shootout(benchmark):
    def run():
        ctx = ScanContext()
        rng = np.random.default_rng(0)
        rows = []
        for p in (18, 20, 22):
            n = 1 << p
            x = (rng.integers(0, 3, n) - 1).astype(np.float16)
            row = {"n": n}
            for strat in SCAN_STRATEGIES:
                res = ctx.scan_strategy(x, strategy=strat, s=128)
                row[f"t_{strat}_us"] = res.time_ns / 1e3
                row[f"gm_{strat}_mb"] = res.trace.gm_bytes() / 1e6
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    cols = ["n"] + [f"t_{s}_us" for s in SCAN_STRATEGIES]
    print("\n== ablation: multi-core scan strategies (times)")
    print("  ".join(cols))
    for r in rows:
        print("  ".join(format_value(r[c]) for c in cols))
    print("   traffic (MB at largest n):", {
        s: round(rows[-1][f"gm_{s}_mb"], 1) for s in SCAN_STRATEGIES
    })

    big = rows[-1]
    # SSA pays for its extra pass
    assert big["t_ssa_us"] > big["t_mcscan_us"]
    assert big["gm_ssa_mb"] > big["gm_mcscan_mb"] * 1.2
    # the recomputation overlap beats serialised RSS at equal traffic
    assert big["t_mcscan_us"] < big["t_rss_us"]
    assert big["gm_rss_mb"] == pytest.approx(big["gm_mcscan_mb"], rel=0.01)
    # lookback matches MCScan's traffic (no 2N advantage on this
    # architecture) and lands in the same performance neighbourhood
    assert big["gm_lookback_mb"] == pytest.approx(big["gm_mcscan_mb"], rel=0.01)
    assert 0.8 < big["t_lookback_us"] / big["t_mcscan_us"] < 1.2
