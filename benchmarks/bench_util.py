"""Shared helpers for persisting benchmark results.

Text reports (``results/*.txt``) are for humans; the ``BENCH_*.json``
files written here are the machine-readable counterpart so the perf
trajectory stays diffable/plottable across PRs.  Keep the payloads to
plain scalars (every report dict in :mod:`repro.serve.bench` already is)
— the writer rejects anything ``json`` can't encode rather than pickling
it into an unreadable artifact.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["write_bench_json"]


def write_bench_json(results_dir: pathlib.Path, name: str, payload: dict) -> pathlib.Path:
    """Write ``payload`` to ``results_dir/BENCH_<name>.json`` (sorted keys,
    trailing newline) and return the path."""
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
