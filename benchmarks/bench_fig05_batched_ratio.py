"""Figure 5: execution-time ratio between the batched ScanUL1 and ScanU
algorithms over (array length, batch size).

Paper: "ScanU is superior when the batch size is greater than 18 and the
input length is smaller than 4K.  ScanUL1 is superior when the batch size
is smaller than 18 and the input length larger than 4K."
"""


def _cell(res, batch, length):
    return next(
        r for r in res.rows if r["batch"] == batch and r["length"] == length
    )


def test_fig05_batched_ratio_heatmap(run_figure):
    res = run_figure("fig05")

    # large batch of short arrays: ScanU wins (ratio > 1)
    assert _cell(res, 40, 1024)["ratio"] > 1.0
    assert _cell(res, 24, 1024)["ratio"] > 1.0

    # small batch of long arrays: ScanUL1 wins (ratio < 1)
    assert _cell(res, 4, 65536)["ratio"] < 1.0
    assert _cell(res, 4, 16384)["ratio"] < 1.0
    assert _cell(res, 12, 65536)["ratio"] < 1.0

    # the ratio is monotone along both axes in the right directions:
    # longer arrays favour ScanUL1, larger batches favour ScanU
    assert _cell(res, 4, 65536)["ratio"] < _cell(res, 4, 1024)["ratio"]
    assert _cell(res, 40, 1024)["ratio"] > _cell(res, 4, 1024)["ratio"]
