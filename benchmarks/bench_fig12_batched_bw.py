"""Figure 12: batched-scan bandwidth for increasing batch sizes and
s = 16, 32, 64, 128 at input length 65K.

Paper: "Our proposed batch scan operators for s = 64 and 128 reach up to
400 GB/s.  Interestingly enough, for smaller values of s = 16, 32, the
performance is poor.  In addition, the performance for s = 16 and the
baseline is similar."
"""


def test_fig12_batched_bandwidth(run_figure):
    res = run_figure("fig12")
    full = res.rows[-1]  # batch 40

    # s = 64 / 128 reach hundreds of GB/s (paper: ~400)
    assert full["bw_s64"] > 250
    assert full["bw_s128"] > 250

    # small s performs poorly: monotone in s up to s=64
    assert full["bw_s16"] < full["bw_s32"] < full["bw_s64"]
    assert full["bw_s16"] < 0.5 * full["bw_s64"]

    # s = 16 is close to the vector-only baseline
    assert 0.5 < full["bw_s16"] / full["bw_baseline"] < 2.0

    # bandwidth scales with batch size
    s64 = res.column_values("bw_s64")
    assert s64 == sorted(s64)
