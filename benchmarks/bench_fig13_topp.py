"""Figure 13: top-p (nucleus) sampling time for one sample, Llama3
pipeline, vs distribution size.

Paper: "the baseline top-p sampling implementation scales poorly, mainly
because the baseline torch.cumsum operator is not optimized for Ascend."
"""


def test_fig13_top_p_sampling(run_figure):
    res = run_figure("fig13")
    first, last = res.rows[0], res.rows[-1]

    # at large vocabulary the cube pipeline beats the baseline
    assert last["t_s128_ms"] < last["t_baseline_ms"]

    # the baseline scales much worse than the cube pipelines
    growth_base = last["t_baseline_ms"] / first["t_baseline_ms"]
    growth_cube = last["t_s128_ms"] / first["t_s128_ms"]
    assert growth_base > 2 * growth_cube

    # larger s is no slower at the largest size
    assert last["t_s128_ms"] <= last["t_s32_ms"] * 1.1
