"""Host-path raw speed: vectorized group numerics, warm-up, pool scaling.

Asserts the host-path performance model (DESIGN 2.11):

* **vectorized group numerics** — serving a 64 x 8K same-shape batch
  through the service's one stacked NumPy pass (plus row-chunked
  parallel numerics) beats a per-request cached-plan ``execute`` loop.
  The >= 3x bar needs cores for the row chunks to land on, so it is
  asserted on >= 4-CPU hosts (CI runners); single-core hosts still must
  clear the serial vectorization win.
* **parallel warm-up** — tuning a workload list over a 4-process pool is
  faster than the serial sweep (asserted wherever a second CPU exists).
* **serve-mix warm-up win** — a warmed service (plans prebuilt, store
  tuned) serves the steady-state mix >= 3x faster than a cold service
  that pays its plan builds inline.  Plan tracing dominates the cold
  path, so this bar holds at any core count.
* **pool host scaling** — PoolScanService wall-clock vs member count
  D in {1, 2, 4, 8}, serial executor vs ``parallel=4``, recorded as the
  scaling curve; with >= 4 CPUs the parallel executor must not lose to
  serial at D >= 4.

Results (including ``host_cpus`` — the bars above depend on it) are
committed to ``results/BENCH_host.json``.
"""

import os
import time

import numpy as np

from bench_util import write_bench_json

from repro.hw.config import ASCEND_910B4, toy_config
from repro.serve import PlanCache, ScanService
from repro.shard import PoolScanService
from repro.core.api import ScanContext
from repro.tune import TuneStore, WorkloadKey, warm_service, warm_tune_store

HOST_CPUS = os.cpu_count() or 1

BATCH = 64
ROW_LEN = 8192


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rows(batch: int = BATCH, row_len: int = ROW_LEN) -> "list[np.ndarray]":
    rng = np.random.default_rng(17)
    return [
        (rng.integers(-2, 3, row_len)).astype(np.float16) for _ in range(batch)
    ]


def bench_vectorized_numerics(parallel: int = 4) -> dict:
    """Per-request cached-plan execute loop vs the service's stacked pass.

    Both sides use the serving defaults (s=128).  The per-request loop is
    the pre-vectorization serving shape: one cached 1-D plan executed
    (replay + its own padded numerics pass) per request — and the 1-D
    layout pads each 8K row to 16K, where the batched layout's tiling
    keeps the row at 8K.  The service side coalesces the 64 submissions
    into one launch and one stacked NumPy pass, row-chunked across the
    host executor when ``parallel`` workers are available.
    """
    xs = _rows()

    ctx = ScanContext(ASCEND_910B4)
    cache = PlanCache(ctx)
    plan = cache.get_1d("scanu", ROW_LEN, "fp16")

    def per_request():
        for x in xs:
            plan.execute(x)

    per_request()  # warm (timeline memoization)
    per_request_s = _best_of(per_request)

    def service_pass(svc):
        for x in xs:
            svc.submit(x)
        svc.flush()

    results = {"per_request_ms": per_request_s * 1e3}
    for label, workers in (("serial", None), ("parallel", parallel)):
        svc = ScanService(
            config=ASCEND_910B4, max_batch=BATCH, parallel=workers
        )
        service_pass(svc)  # warm: builds the batched plan
        seconds = _best_of(lambda: service_pass(svc))
        results[f"vectorized_{label}_ms"] = seconds * 1e3
        results[f"speedup_{label}"] = per_request_s / seconds
        svc.shutdown()
    results.update(batch=BATCH, row_len=ROW_LEN, parallel_workers=parallel)
    return results


_WARM_WORKLOADS = [
    WorkloadKey("1d", 4096, "fp16"),
    WorkloadKey("1d", 2048, "int8"),
    WorkloadKey("1d", 1024, "fp16", exclusive=True),
    WorkloadKey("1d", 16384, "fp16"),
    WorkloadKey("1d", 8192, "int8"),
    WorkloadKey("batched", 256, "fp16", batch=8),
    WorkloadKey("batched", 1024, "int8", batch=4),
    WorkloadKey("batched", 512, "fp16", batch=16),
]


def bench_parallel_warmup(workers: int = 4) -> dict:
    """Serial vs multi-process tuned-store warm-up over one workload list."""
    cfg = toy_config()

    t0 = time.perf_counter()
    serial_store = TuneStore(cfg)
    warm_tune_store(_WARM_WORKLOADS, serial_store, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel_store = TuneStore(cfg)
    report = warm_tune_store(_WARM_WORKLOADS, parallel_store, workers=workers)
    parallel_s = time.perf_counter() - t0

    assert parallel_store.entries == serial_store.entries
    return {
        "workloads": len(_WARM_WORKLOADS),
        "workers": report.workers,
        "serial_ms": serial_s * 1e3,
        "parallel_ms": parallel_s * 1e3,
        "speedup": serial_s / parallel_s,
        "identical_stores": True,
    }


_MIX_WORKLOADS = [
    WorkloadKey("1d", 8192, "fp16"),
    WorkloadKey("1d", 16384, "fp16"),
    WorkloadKey("1d", 4096, "int8"),
]


def _serve_mix(svc) -> None:
    rng = np.random.default_rng(23)
    for workload in _MIX_WORKLOADS:
        for _ in range(8):
            if workload.dtype == "fp16":
                x = (rng.integers(-2, 3, workload.n)).astype(np.float16)
            else:
                x = rng.integers(-20, 21, workload.n).astype(np.int8)
            svc.submit(x)
    svc.flush()


def bench_serve_mix_warmup(parallel: int = 4) -> dict:
    """Cold service (inline plan builds) vs warmed service, same mix."""
    t0 = time.perf_counter()
    cold = ScanService(config=ASCEND_910B4, max_batch=8)
    _serve_mix(cold)
    cold_s = time.perf_counter() - t0
    cold_builds = cold.cache.misses
    cold.shutdown()

    warm = ScanService(config=ASCEND_910B4, max_batch=8, parallel=parallel)
    built = warm_service(warm, _MIX_WORKLOADS, buckets=(8,))
    _serve_mix(warm)  # steady state from the first request
    warm_s = _best_of(lambda: _serve_mix(warm))
    inline_builds = warm.cache.misses - built
    warm.shutdown()

    return {
        "mix_requests": 8 * len(_MIX_WORKLOADS),
        "cold_ms": cold_s * 1e3,
        "cold_plan_builds": cold_builds,
        "warmed_ms": warm_s * 1e3,
        "warmed_inline_builds": inline_builds,
        "speedup": cold_s / warm_s,
    }


def bench_pool_scaling(parallel: int = 4) -> dict:
    """Pool flush wall-clock vs member count, serial vs parallel executor."""
    rng = np.random.default_rng(31)
    fp16 = [
        (rng.integers(-2, 3, 32768)).astype(np.float16) for _ in range(24)
    ]
    int8 = [rng.integers(-20, 21, 16384).astype(np.int8) for _ in range(12)]

    def mix(svc):
        for x in fp16:
            svc.submit(x)
        for x in int8:
            svc.submit(x, algorithm="scanul1", s=16)
        svc.flush()

    def warm_to_steady_state(svc):
        # least-loaded routing re-partitions the mix as busy_ns accrues, so
        # members keep meeting new bucket sizes; repeat until no member
        # pays an inline plan build (the caches cover every partition seen)
        for _ in range(12):
            before = [w.cache.misses for w in svc.workers]
            mix(svc)
            if [w.cache.misses for w in svc.workers] == before:
                return

    curve = []
    for devices in (1, 2, 4, 8):
        point = {"devices": devices}
        for label, workers in (("serial", None), ("parallel", parallel)):
            svc = PoolScanService(
                devices, config=toy_config(), parallel=workers
            )
            warm_to_steady_state(svc)
            point[f"{label}_ms"] = _best_of(lambda: mix(svc)) * 1e3
            svc.shutdown()
        point["parallel_over_serial"] = (
            point["serial_ms"] / point["parallel_ms"]
        )
        curve.append(point)
    return {"parallel_workers": parallel, "curve": curve}


def test_host_path(benchmark, results_dir):
    def run_all():
        return {
            "vectorized": bench_vectorized_numerics(),
            "warmup": bench_parallel_warmup(),
            "serve_mix": bench_serve_mix_warmup(),
            "pool": bench_pool_scaling(),
        }

    report = benchmark.pedantic(run_all, iterations=1, rounds=1)
    report["host_cpus"] = HOST_CPUS

    vec = report["vectorized"]
    warm = report["warmup"]
    mix = report["serve_mix"]
    pool = report["pool"]

    lines = [
        f"host-path bench ({HOST_CPUS} CPU(s))",
        "",
        f"vectorized numerics ({vec['batch']} x {vec['row_len']} fp16):",
        f"  per-request execute loop : {vec['per_request_ms']:8.2f} ms",
        f"  stacked, serial executor : {vec['vectorized_serial_ms']:8.2f} ms "
        f"({vec['speedup_serial']:.2f}x)",
        f"  stacked, {vec['parallel_workers']} workers      : "
        f"{vec['vectorized_parallel_ms']:8.2f} ms "
        f"({vec['speedup_parallel']:.2f}x)",
        "",
        f"parallel warm-up ({warm['workloads']} workloads, "
        f"{warm['workers']} procs):",
        f"  serial sweep   : {warm['serial_ms']:8.0f} ms",
        f"  process pool   : {warm['parallel_ms']:8.0f} ms "
        f"({warm['speedup']:.2f}x, stores identical)",
        "",
        f"serve mix, cold vs warmed ({mix['mix_requests']} requests):",
        f"  cold (inline builds x{mix['cold_plan_builds']}) : "
        f"{mix['cold_ms']:8.1f} ms",
        f"  warmed (inline builds x{mix['warmed_inline_builds']}) : "
        f"{mix['warmed_ms']:8.1f} ms ({mix['speedup']:.1f}x)",
        "",
        "pool host wall-clock vs D (serial / parallel executor):",
    ]
    for point in pool["curve"]:
        lines.append(
            f"  D={point['devices']}: {point['serial_ms']:7.2f} ms / "
            f"{point['parallel_ms']:7.2f} ms "
            f"({point['parallel_over_serial']:.2f}x)"
        )
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "host.txt").write_text(text + "\n")
    write_bench_json(
        results_dir, "host", {"schema": 1, "benchmark": "host", **report}
    )

    # -- bars (CPU-guarded: thread/process wins need cores to land on) ------
    # warm-up eliminating inline plan builds is core-count independent
    assert mix["warmed_inline_builds"] == 0
    assert mix["speedup"] >= 3.0
    # vectorization wins serially (one stacked pass vs 64 padded passes);
    # the full 3x additionally needs parallel numerics chunks -> cores
    assert vec["speedup_serial"] >= 1.2
    if HOST_CPUS >= 4:
        assert vec["speedup_parallel"] >= 3.0
    if HOST_CPUS >= 2:
        assert warm["speedup"] > 1.0
    if HOST_CPUS >= 4:
        for point in pool["curve"]:
            if point["devices"] >= 4:
                assert point["parallel_ms"] <= point["serial_ms"]
