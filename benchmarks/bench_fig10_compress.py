"""Figure 10: compress vs the torch.masked_select baseline.

Paper: "the baseline masked_select operator is not optimized on Ascend...
the baseline does not use the vector or cube units.  On the other hand,
our Compress kernel reaches up to 160GB/s (20% of peak memory bandwidth)."
"""

import math


def test_fig10_compress_bandwidth(run_figure):
    res = run_figure("fig10")
    last = res.rows[-1]

    # compress reaches the paper's neighbourhood (~20% of 800 GB/s)
    assert 100 < last["bw_s128"] < 280

    # the scalar baseline is orders of magnitude slower wherever measured
    measured = [r for r in res.rows if not math.isnan(r["bw_baseline"])]
    assert measured, "baseline must be measured for at least one size"
    for row in measured:
        assert row["bw_s128"] / row["bw_baseline"] > 50

    # bandwidth grows with input size (overhead amortisation)
    bws = res.column_values("bw_s128")
    assert bws[-1] > bws[0]
