"""Figure 3: CumSum AscendC API (vec_only) vs ScanU and ScanUL1.

Paper: "a significant performance improvement (5x for ScanU, and 9.6x for
ScanUL1) compared to the vector-only CumSum algorithm ... ScanUL1 has
roughly a 2x speedup compared to ScanU."
"""


def test_fig03_single_core_scans(run_figure):
    res = run_figure("fig03")
    last = res.rows[-1]

    # ScanU approaches ~5x for large inputs
    assert 3.5 < last["speedup_scanu"] < 6.5
    # ScanUL1 approaches ~9.6x
    assert 7.0 < last["speedup_scanul1"] < 12.0
    # ScanUL1 is roughly 2x ScanU
    ratio = last["speedup_scanul1"] / last["speedup_scanu"]
    assert 1.5 < ratio < 2.8
    # speedups grow with input length (the "sufficiently large" clause)
    first = res.rows[0]
    assert first["speedup_scanu"] < last["speedup_scanu"]
    assert first["speedup_scanul1"] < last["speedup_scanul1"]
