"""Multi-device sharding: latency scaling and pool-serving throughput.

Asserts the shard layer's contract on the full simulated 910B4:

* **bit-identity everywhere** — every sharded scan in the sweep (all D,
  all n) is ``np.array_equal`` to the ``core.reference`` oracle on exact
  fp16 inputs; sharding never trades correctness for speed;
* **sharded latency** — a 16M-element 1-D scan sharded over D devices
  beats the single-device *tuned* plan (the strongest one-device
  baseline the repo can produce), and keeps improving from D=2 to D=8;
* **pool throughput** — serving one fixed mixed request load through
  :class:`PoolScanService` scales to at least 3x aggregate throughput
  at D=4 vs D=1 (LPT routing over near-equal launch groups), with every
  served result still matching the oracle.

``results/BENCH_shard.json`` is the committed evidence: per-(n, D) wall
clocks with the scan/carry stage split, and per-D serve throughput with
device utilisation.
"""

import numpy as np
from bench_util import write_bench_json

from repro.core.api import ScanContext
from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.shard import DevicePool, PoolScanService, ShardedScanner
from repro.tune import TuneStore, WorkloadKey, ensure_tuned

POOL_SIZES = (1, 2, 4, 8)
SCAN_LENGTHS = (1 << 20, 1 << 24)  # 1M and 16M elements

#: the serve mix: 16 near-equal shape classes, two requests each, so the
#: batcher forms 16 launch groups the router can spread over the pool
MIX_SIZES = tuple((1 << 20) + k * (1 << 14) for k in range(16))
MIX_REPEATS = 2


def _tune_shared_store():
    """One store covering every shard length the latency sweep produces
    (n / D for both lengths and every pool size) — tuned once, shared by
    every pool member and every pool size."""
    ctx = ScanContext()
    store = TuneStore(ctx.config)
    workloads = [
        WorkloadKey("1d", n // d, "fp16")
        for n in SCAN_LENGTHS
        for d in POOL_SIZES
    ]
    ensure_tuned(ctx, workloads, store)
    return store


def _latency_sweep(store, rng):
    rows = []
    for n in SCAN_LENGTHS:
        x, expected = exact_fp16_scan_input(n, rng)
        oracle = inclusive_scan(x)
        for d in POOL_SIZES:
            scanner = ShardedScanner(
                DevicePool(d, tune_store=store), algorithm="mcscan",
                tuned=True,
            )
            res = scanner.scan(x)
            exact = np.array_equal(res.values, oracle) and np.array_equal(
                res.values, expected
            )
            rows.append(
                {
                    "n": n,
                    "devices": d,
                    "wall_ns": res.wall_ns,
                    "scan_stage_ns": res.scan_stage_ns,
                    "carry_stage_ns": res.carry_stage_ns,
                    "bandwidth_gbps": res.bandwidth_gbps,
                    "shards_tuned": sum(r.tuned for r in res.shards),
                    "bit_identical": exact,
                }
            )
            scanner.release()
    return rows


def _serve_sweep(store, rng):
    inputs = [
        exact_fp16_scan_input(n, rng)[0]
        for n in MIX_SIZES
        for _ in range(MIX_REPEATS)
    ]
    oracles = [inclusive_scan(x) for x in inputs]
    rows = []
    for d in POOL_SIZES:
        svc = PoolScanService(d, tune_store=store)
        tickets = [svc.submit(x) for x in inputs]
        done = svc.flush()
        correct = len(done) == len(inputs) and all(
            np.array_equal(t.result(), oracles[t.req_id]) for t in tickets
        )
        rows.append(
            {
                "devices": d,
                "requests": svc.total_requests,
                "elements": svc.total_elements,
                "makespan_ns": svc.makespan_ns,
                "throughput_gelems": svc.throughput_gelems,
                "utilisation": svc.device_utilisation(),
                "all_correct": correct,
            }
        )
        print()
        print(svc.summary())
    return rows


def _run(rng):
    store = _tune_shared_store()
    return {
        "latency": _latency_sweep(store, rng),
        "serve": _serve_sweep(store, rng),
        "tuned_entries": len(store),
    }


def test_shard_scaling_and_pool_throughput(benchmark, results_dir):
    rng = np.random.default_rng(0)
    payload = benchmark.pedantic(_run, args=(rng,), iterations=1, rounds=1)

    # every sharded result in the sweep is bit-identical to the oracle
    assert all(row["bit_identical"] for row in payload["latency"])
    assert all(row["all_correct"] for row in payload["serve"])

    wall = {
        (row["n"], row["devices"]): row["wall_ns"]
        for row in payload["latency"]
    }
    # sharding a 16M scan beats the single-device tuned plan, at every D
    n_big = SCAN_LENGTHS[-1]
    for d in POOL_SIZES[1:]:
        assert wall[(n_big, d)] < wall[(n_big, 1)]
    # and the carry pass never swallows the win: D=8 still beats D=2
    assert wall[(n_big, 8)] < wall[(n_big, 2)]

    # pool throughput on the fixed mix scales: >= 3x at D=4 vs D=1
    thr = {row["devices"]: row["throughput_gelems"] for row in payload["serve"]}
    payload["serve_scaling_d4_vs_d1"] = thr[4] / thr[1]
    payload["shard_speedup_16m_d4"] = wall[(n_big, 1)] / wall[(n_big, 4)]
    assert thr[4] / thr[1] >= 3.0
    assert thr[2] / thr[1] >= 1.5
    assert thr[8] >= thr[4]

    write_bench_json(results_dir, "shard", payload)
