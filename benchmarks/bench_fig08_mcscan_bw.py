"""Figure 8: MCScan bandwidth for s = 32/64/128 vs the copy kernel; plus
the MCScan-vs-ScanU speedup quoted in the text.

Paper: "MCScan takes advantage of all the computing units reaching up to
37.5% of theoretical memory bandwidth (peak bandwidth is 800GB/s)...
for sizes smaller than the L2 cache, we almost approach the theoretical
limit [with the copy kernel]... the larger the matrix multiplication
dimension s is, the better the performance... the speed-up between MCScan
and ScanU saturates at 15.2x for large input sizes."
"""


def test_fig08_mcscan_bandwidth(run_figure):
    res = run_figure("fig08")
    last = res.rows[-1]

    # MCScan reaches a substantial fraction of peak (paper: up to 37.5%)
    assert last["bw_s128"] > 0.25 * 800
    # ... but never exceeds the algorithmic bound of 37.5%
    for row in res.rows:
        assert row["bw_s128"] <= 0.375 * 800 + 1.0

    # larger s is better at scale
    assert last["bw_s128"] > last["bw_s64"] > last["bw_s32"]

    # copy approaches (without exceeding) the 800 GB/s peak
    assert 550 < last["bw_copy"] <= 800
    # and always beats the scan
    for row in res.rows:
        assert row["bw_copy"] > row["bw_s128"]

    # the MCScan/ScanU speedup grows toward its ~15x saturation
    speedups = res.column_values("mcscan_vs_scanu")
    assert speedups[-1] > 10
    assert speedups == sorted(speedups)
