"""Command-line interface tests (invoked in-process via main())."""

import pytest

from repro.__main__ import _parse_size, main


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("64K", 65536),
            ("1M", 1 << 20),
            ("2m", 2 << 20),
            ("0.5M", 1 << 19),
            ("1G", 1 << 30),
        ],
    )
    def test_sizes(self, text, expected):
        assert _parse_size(text) == expected


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ascend-910b4" in out
        assert "800 GB/s" in out

    def test_scan(self, capsys):
        assert main(["scan", "--algorithm", "mcscan", "-n", "64K"]) == 0
        out = capsys.readouterr().out
        assert "mcscan(s=128)" in out
        assert "GB/s" in out

    def test_scan_strategy(self, capsys):
        assert main(["scan", "--algorithm", "lookback", "-n", "64K"]) == 0
        assert "lookback" in capsys.readouterr().out

    def test_scan_timeline(self, capsys):
        assert main(
            ["scan", "-n", "64K", "--timeline", "--width", "40"]
        ) == 0
        assert "legend:" in capsys.readouterr().out

    def test_scan_int8_exclusive(self, capsys):
        assert main(
            ["scan", "-n", "64K", "--dtype", "int8", "--exclusive"]
        ) == 0

    def test_experiment(self, capsys):
        assert main(["experiment", "fig09"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "int8" in out

    def test_experiment_markdown_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig09.md"
        assert main(
            ["experiment", "fig09", "--markdown", "--out", str(out_file)]
        ) == 0
        assert "### fig09" in out_file.read_text()

    def test_shard(self, capsys):
        assert main(["shard", "-n", "256K", "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "dev0" in out and "dev1" in out
        assert "carry stage" in out
        assert "speedup at D=2" in out

    def test_shard_rejects_vector(self):
        with pytest.raises(SystemExit):
            main(["shard", "--algorithm", "vector"])

    def test_sort(self, capsys):
        assert main(["sort", "-n", "64K"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_compress(self, capsys):
        assert main(["compress", "-n", "64K", "--skip-baseline"]) == 0
        assert "compress" in capsys.readouterr().out

    def test_topp(self, capsys):
        assert main(["topp", "-n", "8K"]) == 0
        out = capsys.readouterr().out
        assert "cube" in out and "baseline" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_algorithm(self):
        with pytest.raises(SystemExit):
            main(["scan", "--algorithm", "bogosort"])
