"""Search-space enumeration and roofline-floor soundness tests."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import ASCEND_910B4, toy_config
from repro.tune import (
    SWEEP_S,
    Candidate,
    WorkloadKey,
    candidate_floor_ns,
    default_candidate,
    enumerate_candidates,
)


class TestWorkloadKey:
    def test_1d_store_key(self):
        assert WorkloadKey("1d", 4096, "fp16").store_key == "1d:4096:fp16:i"
        assert (
            WorkloadKey("1d", 4096, "fp16", exclusive=True).store_key
            == "1d:4096:fp16:x"
        )

    def test_batched_store_key(self):
        w = WorkloadKey("batched", 8192, "fp16", batch=8)
        assert w.store_key == "batched:8x8192:fp16"

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadKey("2d", 4096, "fp16")

    def test_bad_n_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadKey("1d", 0, "fp16")

    def test_batch_consistency_enforced(self):
        with pytest.raises(ConfigError):
            WorkloadKey("1d", 4096, "fp16", batch=8)
        with pytest.raises(ConfigError):
            WorkloadKey("batched", 4096, "fp16")
        with pytest.raises(ConfigError):
            WorkloadKey("batched", 4096, "fp16", batch=0)

    def test_bad_dtype_rejected(self):
        with pytest.raises(Exception):
            WorkloadKey("1d", 4096, "complex128")


class TestEnumerate:
    def test_default_is_first_and_unique(self):
        for w in (
            WorkloadKey("1d", 65536, "fp16"),
            WorkloadKey("1d", 4096, "fp16", exclusive=True),
            WorkloadKey("batched", 8192, "fp16", batch=8),
        ):
            cands = enumerate_candidates(ASCEND_910B4, w)
            assert cands[0] == default_candidate(w)
            assert len(cands) == len(set(cands))

    def test_1d_covers_all_sweep_sizes(self):
        cands = enumerate_candidates(ASCEND_910B4, WorkloadKey("1d", 1 << 20, "fp16"))
        for s in SWEEP_S:
            assert any(c.s == s for c in cands if c.algorithm != "vector")
        # the vector baseline is in the space exactly once
        assert sum(1 for c in cands if c.algorithm == "vector") == 1

    def test_exclusive_restricts_to_mcscan(self):
        cands = enumerate_candidates(
            ASCEND_910B4, WorkloadKey("1d", 65536, "fp16", exclusive=True)
        )
        assert all(c.algorithm == "mcscan" for c in cands)

    def test_batched_space_includes_both_layouts(self):
        cands = enumerate_candidates(
            ASCEND_910B4, WorkloadKey("batched", 8192, "fp16", batch=8)
        )
        layouts = {c.layout for c in cands}
        assert layouts == {"batched", "1d"}

    def test_block_dims_respect_core_and_tile_limits(self):
        # 65536 fp16 at s=128 is 4 tiles: the bd sweep must stay <= 4
        cands = enumerate_candidates(ASCEND_910B4, WorkloadKey("1d", 65536, "fp16"))
        for c in cands:
            if c.algorithm in ("mcscan", "ssa", "rss", "lookback") and c.s == 128:
                assert c.block_dim is None or c.block_dim < 4


class TestFloors:
    @pytest.mark.parametrize(
        "workload",
        [
            WorkloadKey("1d", 65536, "fp16"),
            WorkloadKey("batched", 2048, "fp16", batch=4),
        ],
        ids=["1d", "batched"],
    )
    def test_floor_is_a_sound_lower_bound(self, scan_ctx, workload):
        """Every candidate's roofline floor must not exceed its measured
        device time — otherwise pruning could discard the true winner."""
        from repro.tune import evaluate_candidate

        cands = enumerate_candidates(scan_ctx.config, workload)
        # keep the sweep cheap: measure a representative slice
        sample = [c for c in cands if c.block_dim in (None, 4)][:12]
        for cand in sample:
            floor = candidate_floor_ns(scan_ctx.config, workload, cand)
            cost = evaluate_candidate(scan_ctx, workload, cand)
            assert floor <= cost.device_ns, cand.describe()

    def test_floor_positive_and_monotone_in_n(self):
        cand = Candidate("scanu", 128)
        small = candidate_floor_ns(ASCEND_910B4, WorkloadKey("1d", 4096, "fp16"), cand)
        large = candidate_floor_ns(
            ASCEND_910B4, WorkloadKey("1d", 1 << 22, "fp16"), cand
        )
        assert 0 < small <= large

    def test_toy_config_floors_differ(self):
        # floors must respond to the device config, not just the shape:
        # a multi-core candidate gets fewer lanes and more Mmads per core
        # on the 2-core toy device than on the 20-core 910B4
        cand = Candidate("mcscan", 16)
        w = WorkloadKey("1d", 1 << 20, "fp16")
        assert candidate_floor_ns(toy_config(), w, cand) > candidate_floor_ns(
            ASCEND_910B4, w, cand
        )
