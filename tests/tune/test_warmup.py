"""Parallel warm-up: sharded tuning merges exactly, plans prebuild fully.

The warm-up contract has two halves: (1) N worker processes tuning
round-robin shards and merging must produce a store entry-for-entry
identical to one serial sweep — tuning is a pure function of
(config, workload); (2) a warmed service pays zero inline plan builds in
steady state.
"""

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.errors import ConfigError
from repro.hw.config import toy_config
from repro.serve import ScanService
from repro.shard import PoolScanService
from repro.tune import (
    TuneStore,
    WorkloadKey,
    ensure_tuned,
    warm_pool,
    warm_service,
    warm_tune_store,
)

WORKLOADS = [
    WorkloadKey("1d", 4096, "fp16"),
    WorkloadKey("1d", 2048, "int8"),
    WorkloadKey("1d", 1024, "fp16", exclusive=True),
    WorkloadKey("batched", 256, "fp16", batch=8),
]


@pytest.fixture(scope="module")
def serial_store():
    cfg = toy_config()
    store = TuneStore(cfg)
    warm_tune_store(WORKLOADS, store, workers=1)
    return store


class TestWarmTuneStore:
    def test_serial_matches_fresh_context_tuning(self, serial_store):
        cfg = serial_store.config
        ref = TuneStore(cfg)
        for workload in WORKLOADS:
            ensure_tuned(ScanContext(cfg), [workload], ref)
        assert ref.entries == serial_store.entries

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_shards_merge_to_serial_store(
        self, serial_store, workers
    ):
        store = TuneStore(serial_store.config)
        report = warm_tune_store(WORKLOADS, store, workers=workers)
        assert store.entries == serial_store.entries
        assert report.workers == workers
        assert report.tuned == len(WORKLOADS)
        assert sum(report.shard_sizes) == len(WORKLOADS)
        assert report.merged == len(WORKLOADS)

    def test_already_covered_workloads_skip(self, serial_store):
        report = warm_tune_store(WORKLOADS, serial_store, workers=2)
        assert report.tuned == 0
        assert report.skipped == len(WORKLOADS)

    def test_worker_count_capped_by_todo(self):
        store = TuneStore(toy_config())
        report = warm_tune_store(WORKLOADS[:1], store, workers=8)
        assert report.workers == 1  # one workload cannot use eight procs


class TestFromPayload:
    def test_roundtrip(self, serial_store):
        clone = TuneStore.from_payload(
            serial_store.to_payload(), serial_store.config
        )
        assert clone.entries == serial_store.entries

    def test_version_mismatch_raises(self, serial_store):
        payload = serial_store.to_payload()
        payload["version"] = 999
        with pytest.raises(ConfigError):
            TuneStore.from_payload(payload, serial_store.config)

    def test_fingerprint_mismatch_raises(self, serial_store):
        payload = serial_store.to_payload()
        payload["fingerprint"] = "deadbeef"
        with pytest.raises(ConfigError):
            TuneStore.from_payload(payload, serial_store.config)


class TestWarmService:
    def _mix(self, svc):
        rng = np.random.default_rng(9)
        inputs = {}
        for _ in range(8):
            x, _ = exact_fp16_scan_input(4096, rng)
            inputs[svc.submit(x).req_id] = x
        for _ in range(4):
            x = rng.integers(-20, 21, size=2048).astype(np.int8)
            inputs[svc.submit(x).req_id] = x
        return inputs

    def test_zero_inline_builds_in_steady_state(self, serial_store):
        svc = ScanService(config=serial_store.config, tune_store=serial_store)
        built = warm_service(svc, WORKLOADS, buckets=(4, 8))
        assert built > 0
        misses = svc.cache.misses
        inputs = self._mix(svc)
        done = svc.flush()
        assert svc.cache.misses == misses  # every launch was a plan hit
        assert all(t.plan_hit for t in done)
        for t in done:
            assert np.array_equal(t.result(), inclusive_scan(inputs[t.req_id]))
        svc.shutdown()

    def test_warm_is_idempotent(self, serial_store):
        svc = ScanService(config=serial_store.config, tune_store=serial_store)
        warm_service(svc, WORKLOADS, buckets=(8,))
        assert warm_service(svc, WORKLOADS, buckets=(8,)) == 0
        svc.shutdown()

    def test_warming_does_not_skew_store_lookup_counters(self, serial_store):
        hits, misses = serial_store.lookup_hits, serial_store.lookup_misses
        svc = ScanService(config=serial_store.config, tune_store=serial_store)
        warm_service(svc, WORKLOADS, buckets=(8,))
        assert serial_store.lookup_hits == hits
        assert serial_store.lookup_misses == misses
        svc.shutdown()

    def test_unwarmed_service_builds_inline(self, serial_store):
        """Control: without warm-up the same mix pays inline plan builds."""
        svc = ScanService(config=serial_store.config, tune_store=serial_store)
        self._mix(svc)
        done = svc.flush()
        assert svc.cache.misses > 0
        assert not all(t.plan_hit for t in done)
        svc.shutdown()


class TestWarmPool:
    def test_every_member_warmed(self, serial_store):
        pool = PoolScanService(
            2, config=serial_store.config, tune_store=TuneStore(serial_store.config)
        )
        report = warm_pool(pool, WORKLOADS, buckets=(8,), workers=1)
        assert report.plans_built > 0
        assert pool.tune_store.entries == serial_store.entries
        misses = [w.cache.misses for w in pool.workers]
        rng = np.random.default_rng(2)
        for _ in range(8):
            x, _ = exact_fp16_scan_input(4096, rng)
            pool.submit(x)
        done = pool.flush()
        assert [w.cache.misses for w in pool.workers] == misses
        assert all(t.plan_hit for t in done)
        pool.shutdown()
