"""TuneStore persistence, fingerprinting and merge tests."""

import json

import pytest

from repro.errors import ConfigError
from repro.hw.config import ASCEND_910B4, toy_config
from repro.tune import STORE_VERSION, TunedEntry, TuneStore, config_fingerprint


def entry(ns=1000.0, **kw):
    kw.setdefault("algorithm", "mcscan")
    kw.setdefault("s", 64)
    kw.setdefault("block_dim", None)
    kw.setdefault("layout", "1d")
    kw.setdefault("default_ns", 2000.0)
    return TunedEntry(tuned_ns=ns, **kw)


class TestFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(ASCEND_910B4) == config_fingerprint(ASCEND_910B4)

    def test_distinguishes_configs(self):
        assert config_fingerprint(ASCEND_910B4) != config_fingerprint(toy_config())


class TestRecordLookup:
    def test_lookup_roundtrip_and_counters(self):
        store = TuneStore(ASCEND_910B4)
        store.record("1d:4096:fp16:i", entry())
        assert store.lookup_1d(n=4096, dtype="fp16") == entry()
        assert store.lookup_1d(n=4096, dtype="fp16", exclusive=True) is None
        assert store.lookup_batched(batch=8, row_len=4096, dtype="fp16") is None
        assert store.lookup_hits == 1
        assert store.lookup_misses == 2
        assert len(store) == 1

    def test_record_keeps_better_entry(self):
        store = TuneStore(ASCEND_910B4)
        store.record("k", entry(1000.0))
        store.record("k", entry(1500.0))  # worse: ignored
        assert store.entries["k"].tuned_ns == 1000.0
        store.record("k", entry(500.0))  # better: replaces
        assert store.entries["k"].tuned_ns == 500.0

    def test_speedup(self):
        assert entry(1000.0, default_ns=3000.0).speedup == 3.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = TuneStore(ASCEND_910B4)
        store.record("1d:4096:fp16:i", entry(block_dim=8))
        path = store.save(str(tmp_path / "sub" / "tuned.json"))
        loaded = TuneStore.load(path, ASCEND_910B4)
        assert not loaded.invalidated
        assert loaded.entries == store.entries
        assert loaded.entries["1d:4096:fp16:i"].block_dim == 8

    def test_missing_file_is_empty_not_invalidated(self, tmp_path):
        loaded = TuneStore.load(str(tmp_path / "absent.json"), ASCEND_910B4)
        assert len(loaded) == 0
        assert not loaded.invalidated

    def test_foreign_fingerprint_invalidates(self, tmp_path):
        store = TuneStore(ASCEND_910B4)
        store.record("k", entry())
        path = store.save(str(tmp_path / "tuned.json"))
        loaded = TuneStore.load(path, toy_config())
        assert len(loaded) == 0
        assert loaded.invalidated

    def test_version_bump_invalidates(self, tmp_path):
        store = TuneStore(ASCEND_910B4)
        store.record("k", entry())
        path = store.save(str(tmp_path / "tuned.json"))
        payload = json.loads(open(path).read())
        payload["version"] = STORE_VERSION + 1
        with open(path, "w") as f:
            json.dump(payload, f)
        loaded = TuneStore.load(path, ASCEND_910B4)
        assert len(loaded) == 0
        assert loaded.invalidated

    def test_corrupt_file_invalidates(self, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text("{not json")
        loaded = TuneStore.load(str(path), ASCEND_910B4)
        assert len(loaded) == 0
        assert loaded.invalidated

    def test_save_without_path_rejected(self):
        with pytest.raises(ConfigError):
            TuneStore(ASCEND_910B4).save()


class TestMerge:
    def test_merge_better_wins(self):
        a = TuneStore(ASCEND_910B4)
        b = TuneStore(ASCEND_910B4)
        a.record("k1", entry(1000.0))
        a.record("k2", entry(1000.0))
        b.record("k1", entry(500.0))   # improves
        b.record("k2", entry(2000.0))  # worse: ignored
        b.record("k3", entry(700.0))   # new
        assert a.merge(b) == 2
        assert a.entries["k1"].tuned_ns == 500.0
        assert a.entries["k2"].tuned_ns == 1000.0
        assert a.entries["k3"].tuned_ns == 700.0

    def test_merge_across_devices_refused(self):
        with pytest.raises(ConfigError):
            TuneStore(ASCEND_910B4).merge(TuneStore(toy_config()))
