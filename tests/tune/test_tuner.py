"""End-to-end tuner tests: sweep contract, pruning, store integration."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.hw.config import ASCEND_910B4
from repro.tune import (
    TuneStore,
    WorkloadKey,
    default_candidate,
    format_result,
    tune_workload,
)


@pytest.fixture(scope="module")
def tuned_64k(scan_ctx_module):
    ctx = scan_ctx_module
    store = TuneStore(ctx.config)
    workload = WorkloadKey("1d", 65536, "fp16")
    result = tune_workload(ctx, workload, store=store)
    return ctx, store, workload, result


@pytest.fixture(scope="module")
def scan_ctx_module():
    from repro.core.api import ScanContext

    return ScanContext(ASCEND_910B4)


class TestSweep:
    def test_default_evaluated_first(self, tuned_64k):
        _, _, workload, result = tuned_64k
        assert result.outcomes[0].status == "default"
        assert result.outcomes[0].candidate == default_candidate(workload)
        assert result.outcomes[0].device_ns == result.default_ns

    def test_tuned_never_slower(self, tuned_64k):
        *_, result = tuned_64k
        assert result.best_ns <= result.default_ns
        # on 64K the MCScan family wins big; assert a real improvement
        assert result.speedup > 1.5

    def test_roofline_pruning_bites(self, tuned_64k):
        *_, result = tuned_64k
        assert result.pruned > 0
        assert result.evaluated + result.pruned == len(result.outcomes)
        # pruned candidates' floors must all be >= the final best time
        for o in result.outcomes:
            if o.status == "pruned":
                assert o.floor_ns >= result.best_ns

    def test_winner_recorded_in_store(self, tuned_64k):
        _, store, workload, result = tuned_64k
        e = store.lookup_1d(n=65536, dtype="fp16")
        assert e is not None
        assert (e.algorithm, e.s, e.block_dim) == (
            result.best.algorithm,
            result.best.s,
            result.best.block_dim,
        )
        assert e.tuned_ns == result.best_ns
        assert e.default_ns == result.default_ns

    def test_format_result_mentions_winner(self, tuned_64k):
        *_, result = tuned_64k
        text = format_result(result)
        assert result.workload.store_key in text
        assert result.best.describe() in text

    def test_search_leaves_no_gm_behind(self, scan_ctx_module):
        ctx = scan_ctx_module
        before = ctx.device.memory.used_bytes
        tune_workload(ctx, WorkloadKey("1d", 4096, "fp16"))
        # constants may be newly cached (they persist by design), but no
        # per-candidate tensors survive the sweep
        after = ctx.device.memory.used_bytes
        tune_workload(ctx, WorkloadKey("1d", 4096, "fp16"))
        assert ctx.device.memory.used_bytes == after
        assert after >= before


class TestBatched:
    def test_batched_sweep_contract(self, scan_ctx_module):
        ctx = scan_ctx_module
        workload = WorkloadKey("batched", 2048, "fp16", batch=4)
        result = tune_workload(ctx, workload)
        assert result.best_ns <= result.default_ns
        assert result.outcomes[0].status == "default"


class TestTunedPlans:
    def test_build_plan_applies_store_entry(self, tuned_64k):
        ctx, store, _, result = tuned_64k
        ctx.tune_store = store
        try:
            plan = ctx.build_plan(n=65536, dtype="fp16", tuned=True)
            assert plan.tuned
            assert plan.algorithm == result.best.algorithm
            assert plan.s == result.best.s
            x = np.ones(65536, dtype=np.float16)
            out = plan.execute(x)
            np.testing.assert_array_equal(
                out.values, np.arange(1, 65537, dtype=np.float32)
            )
            assert out.trace.total_ns == pytest.approx(result.best_ns)
        finally:
            ctx.tune_store = None

    def test_build_plan_miss_falls_back_to_default(self, tuned_64k):
        ctx, store, _, _ = tuned_64k
        ctx.tune_store = store
        try:
            plan = ctx.build_plan(n=3333, dtype="fp16", tuned=True)  # miss
            assert not plan.tuned
            assert plan.algorithm == "scanul1"  # build_plan's own default
        finally:
            ctx.tune_store = None

    def test_released_plan_frees_gm_and_refuses_execute(self, scan_ctx_module):
        ctx = scan_ctx_module
        before = ctx.device.memory.used_bytes
        plan = ctx.build_plan(n=4096, dtype="fp16")
        grew = ctx.device.memory.used_bytes - before
        assert grew > 0
        freed = plan.release()
        assert freed > 0
        assert ctx.device.memory.used_bytes <= before + (grew - freed)
        assert plan.release() == 0  # idempotent
        with pytest.raises(KernelError):
            plan.execute(np.ones(4096, dtype=np.float16))
