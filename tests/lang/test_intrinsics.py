"""Intrinsics tests: functional semantics + emitted op properties.

Each intrinsic is exercised through a tiny single-block kernel; assertions
cover both the NumPy result and the recorded op (engine, cost, traffic).
"""

import numpy as np
import pytest

from repro.errors import DTypeError, KernelError, ShapeError
from repro.hw.config import toy_config
from repro.hw.device import AscendDevice
from repro.lang import Kernel, intrinsics as I
from repro.lang.tensor import BufferKind


def run_vec(device, body, n_vec_tensors=0):
    """Run ``body(ctx, q)`` on one vector core; returns the trace."""

    class K(Kernel):
        mode = "vec"

        def run(self, ctx):
            pipe = ctx.make_pipe(ctx.vec_core(0))
            q = pipe.init_buffer(buffer=BufferKind.UB, depth=8, slot_bytes=4096)
            body(ctx, q)

    return device.launch(K(1))


def run_mix(device, body):
    """Run ``body(ctx, cpipe)`` on one AI core (cube side); returns trace."""

    class K(Kernel):
        mode = "mix"

        def run(self, ctx):
            cpipe = ctx.make_pipe(ctx.require_cube())
            body(ctx, cpipe)

    return device.launch(K(1))


@pytest.fixture()
def dev():
    return AscendDevice(toy_config())


class TestDataCopy:
    def test_gm_roundtrip(self, dev, rng):
        x = dev.alloc("x", 128, "fp16")
        y = dev.alloc("y", 128, "fp16")
        vals = rng.standard_normal(128).astype(np.float16)
        x.write(vals)

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 128)
            I.data_copy(ctx, t, x.whole())
            I.data_copy(ctx, y.whole(), t)
            q.free_tensor(t)

        trace = run_vec(dev, body)
        assert np.array_equal(y.to_numpy(), vals)
        assert trace.gm_read_bytes() == 256
        assert trace.gm_write_bytes() == 256

    def test_length_mismatch(self, dev):
        x = dev.alloc("x", 128, "fp16")

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 64)
            I.data_copy(ctx, t, x.whole())

        with pytest.raises(ShapeError):
            run_vec(dev, body)

    def test_gm_in_no_conversion(self, dev):
        x = dev.alloc("x", 64, "fp16")

        def body(ctx, q):
            t = q.alloc_tensor("fp32", 64)
            I.data_copy(ctx, t, x.whole())

        with pytest.raises(DTypeError):
            run_vec(dev, body)

    def test_ub_out_no_conversion(self, dev):
        y = dev.alloc("y", 64, "fp32")

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 64)
            I.data_copy(ctx, y.whole(), t)

        with pytest.raises(DTypeError):
            run_vec(dev, body)

    def test_l0c_out_converts(self, dev, rng):
        """The FIXPIPE path quantises on the way out of L0C."""
        y = dev.alloc("y", 256, "fp16")

        def body(ctx, cpipe):
            l0a = cpipe.init_buffer(buffer=BufferKind.L0A, depth=1, slot_bytes=512)
            l0b = cpipe.init_buffer(buffer=BufferKind.L0B, depth=1, slot_bytes=512)
            l0c = cpipe.init_buffer(buffer=BufferKind.L0C, depth=1, slot_bytes=1024)
            a = l0a.alloc_tensor("fp16", 256)
            b = l0b.alloc_tensor("fp16", 256)
            a.array[:] = 1.0
            b.array[:] = 1.0
            c = l0c.alloc_tensor("fp32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)
            I.data_copy(ctx, y.whole(), c)  # fp32 -> fp16 conversion

        run_mix(dev, body)
        assert np.all(y.to_numpy() == 16.0)


class TestMmad:
    def _cube_bufs(self, cpipe, ab_bytes=2048, c_bytes=4096):
        l0a = cpipe.init_buffer(buffer=BufferKind.L0A, depth=1, slot_bytes=ab_bytes)
        l0b = cpipe.init_buffer(buffer=BufferKind.L0B, depth=1, slot_bytes=ab_bytes)
        l0c = cpipe.init_buffer(buffer=BufferKind.L0C, depth=1, slot_bytes=c_bytes)
        return l0a, l0b, l0c

    def test_matmul_result(self, dev, rng):
        m = k = n = 16
        a_np = rng.integers(-4, 5, (m, k)).astype(np.float16)
        b_np = rng.integers(-4, 5, (k, n)).astype(np.float16)
        out = {}

        def body(ctx, cpipe):
            l0a, l0b, l0c = self._cube_bufs(cpipe)
            a = l0a.alloc_tensor("fp16", m * k)
            a.array[:] = a_np.reshape(-1)
            b = l0b.alloc_tensor("fp16", k * n)
            b.array[:] = b_np.reshape(-1)
            c = l0c.alloc_tensor("fp32", m * n)
            I.mmad(ctx, c, a, b, m, k, n)
            out["c"] = c.array.reshape(m, n).copy()

        run_mix(dev, body)
        expected = a_np.astype(np.float32) @ b_np.astype(np.float32)
        assert np.array_equal(out["c"], expected)

    def test_accumulate(self, dev):
        def body(ctx, cpipe):
            l0a, l0b, l0c = self._cube_bufs(cpipe)
            a = l0a.alloc_tensor("fp16", 256)
            a.array[:] = 1.0
            b = l0b.alloc_tensor("fp16", 256)
            b.array[:] = 1.0
            c = l0c.alloc_tensor("fp32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)
            I.mmad(ctx, c, a, b, 16, 16, 16, accumulate=True)
            assert np.all(c.array == 32.0)

        run_mix(dev, body)

    def test_int8_accumulates_int32(self, dev):
        def body(ctx, cpipe):
            l0a, l0b, l0c = self._cube_bufs(cpipe, ab_bytes=256, c_bytes=1024)
            a = l0a.alloc_tensor("int8", 256)
            a.array[:] = 2
            b = l0b.alloc_tensor("int8", 256)
            b.array[:] = 3
            c = l0c.alloc_tensor("int32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)
            assert np.all(c.array == 16 * 6)

        run_mix(dev, body)

    def test_wrong_accumulator_dtype(self, dev):
        def body(ctx, cpipe):
            l0a, l0b, l0c = self._cube_bufs(cpipe)
            a = l0a.alloc_tensor("fp16", 256)
            b = l0b.alloc_tensor("fp16", 256)
            c = l0c.alloc_tensor("int32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)

        with pytest.raises(DTypeError):
            run_mix(dev, body)

    def test_wrong_buffers(self, dev):
        def body(ctx, cpipe):
            l1 = cpipe.init_buffer(buffer=BufferKind.L1, depth=2, slot_bytes=512)
            l0c = cpipe.init_buffer(buffer=BufferKind.L0C, depth=1, slot_bytes=1024)
            a = l1.alloc_tensor("fp16", 256)
            b = l1.alloc_tensor("fp16", 256)
            c = l0c.alloc_tensor("fp32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)

        with pytest.raises(KernelError):
            run_mix(dev, body)

    def test_operand_too_small(self, dev):
        def body(ctx, cpipe):
            l0a, l0b, l0c = self._cube_bufs(cpipe)
            a = l0a.alloc_tensor("fp16", 100)
            b = l0b.alloc_tensor("fp16", 256)
            c = l0c.alloc_tensor("fp32", 256)
            I.mmad(ctx, c, a, b, 16, 16, 16)

        with pytest.raises(ShapeError):
            run_mix(dev, body)


class TestElementwise:
    def _pair(self, q, n=64, dtype="fp16"):
        a = q.alloc_tensor(dtype, n)
        b = q.alloc_tensor(dtype, n)
        return a, b

    def test_adds(self, dev):
        def body(ctx, q):
            a, b = self._pair(q)
            a.array[:] = 2.0
            I.adds(ctx, b, a, 3.0)
            assert np.all(b.array == 5.0)

        run_vec(dev, body)

    def test_muls(self, dev):
        def body(ctx, q):
            a, b = self._pair(q)
            a.array[:] = 2.0
            I.muls(ctx, b, a, 4.0)
            assert np.all(b.array == 8.0)

        run_vec(dev, body)

    def test_add_sub_mul(self, dev):
        def body(ctx, q):
            a, b = self._pair(q)
            c = q.alloc_tensor("fp16", 64)
            a.array[:] = 6.0
            b.array[:] = 2.0
            I.add(ctx, c, a, b)
            assert np.all(c.array == 8.0)
            I.sub(ctx, c, a, b)
            assert np.all(c.array == 4.0)
            I.mul(ctx, c, a, b)
            assert np.all(c.array == 12.0)

        run_vec(dev, body)

    def test_duplicate_and_cast(self, dev):
        def body(ctx, q):
            a = q.alloc_tensor("fp16", 64)
            I.duplicate(ctx, a, 7.0)
            b = q.alloc_tensor("fp32", 64)
            I.cast(ctx, b, a)
            assert b.array.dtype == np.float32
            assert np.all(b.array == 7.0)

        run_vec(dev, body)

    def test_shifts_and_bits(self, dev):
        def body(ctx, q):
            a = q.alloc_tensor("uint16", 64)
            a.array[:] = 0b1010
            b = q.alloc_tensor("uint16", 64)
            I.shift_right(ctx, b, a, 1)
            assert np.all(b.array == 0b101)
            I.shift_left(ctx, b, a, 2)
            assert np.all(b.array == 0b101000)
            I.bit_and(ctx, b, a, 0b0010)
            assert np.all(b.array == 0b0010)
            I.bit_not(ctx, b, a)
            assert np.all(b.array == np.uint16(~np.uint16(0b1010)))

        run_vec(dev, body)

    def test_shift_rejects_floats(self, dev):
        def body(ctx, q):
            a, b = self._pair(q, dtype="fp16")
            I.shift_right(ctx, b, a, 1)

        with pytest.raises(DTypeError):
            run_vec(dev, body)

    def test_compare_scalar(self, dev):
        def body(ctx, q):
            a = q.alloc_tensor("fp16", 8)
            a.array[:] = [0, 1, 2, 3, 4, 5, 6, 7]
            m = q.alloc_tensor("int8", 8)
            I.compare_scalar(ctx, m, a, "gt", 3.0)
            assert list(m.array) == [0, 0, 0, 0, 1, 1, 1, 1]
            I.compare_scalar(ctx, m, a, "eq", 2.0)
            assert m.array.sum() == 1

        run_vec(dev, body)

    def test_compare_requires_int8_mask(self, dev):
        def body(ctx, q):
            a, b = self._pair(q)
            I.compare_scalar(ctx, b, a, "gt", 0.0)

        with pytest.raises(DTypeError):
            run_vec(dev, body)

    def test_compare_unknown_op(self, dev):
        def body(ctx, q):
            a = q.alloc_tensor("fp16", 8)
            m = q.alloc_tensor("int8", 8)
            I.compare_scalar(ctx, m, a, "neq", 0.0)

        with pytest.raises(KernelError):
            run_vec(dev, body)

    def test_create_vec_index(self, dev):
        def body(ctx, q):
            t = q.alloc_tensor("int32", 16)
            I.create_vec_index(ctx, t, 100)
            assert list(t.array) == list(range(100, 116))

        run_vec(dev, body)

    def test_vector_ops_rejected_on_cube_buffers(self, dev):
        def body(ctx, cpipe):
            l1 = cpipe.init_buffer(buffer=BufferKind.L1, depth=2, slot_bytes=128)
            a = l1.alloc_tensor("fp16", 64)
            b = l1.alloc_tensor("fp16", 64)
            I.adds(ctx, b, a, 1.0)

        with pytest.raises(KernelError):
            run_mix(dev, body)


class TestReductionsAndGather:
    def test_reduce_sum(self, dev, rng):
        vals = rng.integers(-10, 10, 64).astype(np.float16)

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 64)
            t.array[:] = vals
            assert I.reduce_sum(ctx, t) == pytest.approx(float(vals.sum()))

        run_vec(dev, body)

    def test_reduce_max(self, dev, rng):
        vals = rng.standard_normal(64).astype(np.float16)

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 64)
            t.array[:] = vals
            assert I.reduce_max(ctx, t) == pytest.approx(float(vals.max()))

        run_vec(dev, body)

    def test_gather_mask(self, dev):
        def body(ctx, q):
            src = q.alloc_tensor("fp16", 8)
            src.array[:] = [1, 2, 3, 4, 5, 6, 7, 8]
            mask = q.alloc_tensor("int8", 8)
            mask.array[:] = [1, 0, 1, 0, 0, 1, 0, 1]
            dst = q.alloc_tensor("fp16", 8)
            count = I.gather_mask(ctx, dst, src, mask)
            assert count == 4
            assert list(dst.array[:4]) == [1, 3, 6, 8]

        run_vec(dev, body)

    def test_gather_mask_length_mismatch(self, dev):
        def body(ctx, q):
            src = q.alloc_tensor("fp16", 8)
            mask = q.alloc_tensor("int8", 4)
            dst = q.alloc_tensor("fp16", 8)
            I.gather_mask(ctx, dst, src, mask)

        with pytest.raises(ShapeError):
            run_vec(dev, body)


class TestMacros:
    def test_propagate_chain_matches_manual_loop(self, dev):
        """The macro must compute exactly what the per-s-tile loop does."""
        vals = np.arange(32, dtype=np.float16)

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 32)
            t.array[:] = vals
            reg = ctx.new_register()
            out = I.propagate_chain(ctx, t, 8, 10.0, reg)
            # manual: per 8-tile, add partial then take last
            expected = vals.astype(np.float32).copy()
            partial = 10.0
            for r in range(4):
                expected[r * 8 : (r + 1) * 8] += partial
                partial = float(expected[(r + 1) * 8 - 1])
            assert np.array_equal(t.array.astype(np.float32), expected)
            assert out == pytest.approx(partial)

        run_vec(dev, body)

    def test_propagate_chain_cost_is_per_row(self, dev):
        traces = []

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 64)
            reg = ctx.new_register()
            I.propagate_chain(ctx, t, 8, 0.0, reg)

        trace = run_vec(dev, body)
        chain_op = next(o for o in trace.ops if o.kind == "vec_chain")
        costs = dev.costs
        expected = costs.vector_cycles(128, n_instructions=8) + costs.scalar_cycles(8)
        assert chain_op.cycles == pytest.approx(expected)

    def test_propagate_chain_bad_stride(self, dev):
        def body(ctx, q):
            t = q.alloc_tensor("fp16", 30)
            I.propagate_chain(ctx, t, 8, 0.0, ctx.new_register())

        with pytest.raises(ShapeError):
            run_vec(dev, body)

    def test_row_cumsum_serial(self, dev):
        vals = np.arange(32, dtype=np.float16)

        def body(ctx, q):
            t = q.alloc_tensor("fp16", 32)
            t.array[:] = vals
            I.row_cumsum_serial(ctx, t, 4, 8)
            expected = np.cumsum(vals.reshape(4, 8).astype(np.float32), axis=1)
            assert np.array_equal(
                t.array.reshape(4, 8).astype(np.float32), expected
            )

        run_vec(dev, body)

    def test_row_cumsum_shape_check(self, dev):
        def body(ctx, q):
            t = q.alloc_tensor("fp16", 30)
            I.row_cumsum_serial(ctx, t, 4, 8)

        with pytest.raises(ShapeError):
            run_vec(dev, body)

    def test_vector_macro_requires_operand(self, dev):
        def body(ctx, q):
            I.vector_macro(ctx, label="x", nbytes=64)

        with pytest.raises(KernelError):
            run_vec(dev, body)

    def test_scalar_process_charges_scalar_unit(self, dev):
        def body(ctx, q):
            I.scalar_process(
                ctx, ctx.vec_core(0), 100, label="walk",
            )

        trace = run_vec(dev, body)
        op = next(o for o in trace.ops if o.kind == "scalar")
        assert op.cycles == pytest.approx(dev.costs.scalar_cycles(100))
