"""TPipe/TQue semantics tests."""

import pytest

from repro.errors import BufferOverflowError, QueueError
from repro.hw.config import BufferConfig
from repro.lang.queues import TPipe, TQue
from repro.lang.tensor import BufferKind


def make_pipe(core_kind="aiv"):
    return TPipe(core_kind=core_kind, core_index=0, buffers=BufferConfig())


class TestTPipeBudget:
    def test_ub_budget_enforced(self):
        pipe = make_pipe()
        pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=64 * 1024)
        with pytest.raises(BufferOverflowError):
            pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=64 * 1024)

    def test_reservations_accumulate(self):
        pipe = make_pipe()
        pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=1024)
        pipe.init_buffer(buffer=BufferKind.UB, depth=3, slot_bytes=2048)
        assert pipe.reserved_bytes(BufferKind.UB) == 1024 + 3 * 2048

    def test_vector_core_has_only_ub(self):
        pipe = make_pipe("aiv")
        with pytest.raises(BufferOverflowError):
            pipe.init_buffer(buffer=BufferKind.L0A, depth=1, slot_bytes=64)

    def test_cube_core_has_no_ub(self):
        pipe = make_pipe("aic")
        with pytest.raises(BufferOverflowError):
            pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)

    def test_cube_buffers_allowed(self):
        pipe = make_pipe("aic")
        for buf in (BufferKind.L1, BufferKind.L0A, BufferKind.L0B, BufferKind.L0C):
            pipe.init_buffer(buffer=buf, depth=1, slot_bytes=1024)


class TestTQue:
    def make_queue(self, depth=2, slot_bytes=1024):
        return make_pipe().init_buffer(
            buffer=BufferKind.UB, depth=depth, slot_bytes=slot_bytes
        )

    def test_alloc_within_slot(self):
        q = self.make_queue()
        t = q.alloc_tensor("fp16", 512)
        assert t.length == 512

    def test_alloc_exceeding_slot(self):
        q = self.make_queue(slot_bytes=128)
        with pytest.raises(BufferOverflowError):
            q.alloc_tensor("fp16", 128)

    def test_depth_exhaustion(self):
        q = self.make_queue(depth=2)
        q.alloc_tensor("fp16", 8)
        q.alloc_tensor("fp16", 8)
        with pytest.raises(QueueError):
            q.alloc_tensor("fp16", 8)

    def test_free_recycles_slot(self):
        q = self.make_queue(depth=1)
        t = q.alloc_tensor("fp16", 8)
        q.free_tensor(t)
        t2 = q.alloc_tensor("fp16", 8)
        # reuse carries the slot hazard, serialising against the old tensor
        assert t2.hazard is t.hazard

    def test_double_buffer_slots_have_distinct_hazards(self):
        q = self.make_queue(depth=2)
        a = q.alloc_tensor("fp16", 8)
        b = q.alloc_tensor("fp16", 8)
        assert a.hazard is not b.hazard

    def test_enque_deque_fifo(self):
        q = self.make_queue(depth=2)
        a = q.alloc_tensor("fp16", 8)
        b = q.alloc_tensor("fp16", 8)
        q.enque(a)
        q.enque(b)
        assert q.deque() is a
        assert q.deque() is b

    def test_deque_empty(self):
        q = self.make_queue()
        with pytest.raises(QueueError):
            q.deque()

    def test_enque_foreign_tensor(self):
        q = self.make_queue()
        other = self.make_queue().alloc_tensor("fp16", 8)
        with pytest.raises(QueueError):
            q.enque(other)

    def test_double_free(self):
        q = self.make_queue()
        t = q.alloc_tensor("fp16", 8)
        q.free_tensor(t)
        with pytest.raises(QueueError):
            q.free_tensor(t)

    def test_invalid_depth(self):
        with pytest.raises(QueueError):
            TQue(buffer=BufferKind.UB, depth=0, slot_bytes=8,
                 core_kind="aiv", core_index=0)
