"""LocalTensor and Hazard tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hw.datatypes import FP16, INT32
from repro.lang.tensor import BufferKind, Hazard, LocalTensor


def make_tensor(length=64, dtype=FP16, buffer=BufferKind.UB):
    return LocalTensor(
        buffer=buffer, dtype=dtype, length=length, core_kind="aiv", core_index=0
    )


class TestLocalTensor:
    def test_zero_initialised(self):
        t = make_tensor()
        assert np.all(t.array == 0)
        assert t.nbytes == 128

    def test_invalid_buffer(self):
        with pytest.raises(ShapeError):
            LocalTensor(
                buffer="l3", dtype=FP16, length=4, core_kind="aiv", core_index=0
            )

    def test_invalid_length(self):
        with pytest.raises(ShapeError):
            make_tensor(length=0)

    def test_view_shares_storage_and_hazard(self):
        t = make_tensor(16)
        v = t.view(4, 8)
        v.array[:] = 7
        assert np.all(t.array[4:12] == 7)
        assert v.hazard is t.hazard

    def test_view_bounds(self):
        t = make_tensor(16)
        with pytest.raises(ShapeError):
            t.view(10, 8)
        with pytest.raises(ShapeError):
            t.view(0, 0)

    def test_as_matrix(self):
        t = make_tensor(12, dtype=INT32)
        t.array[:] = np.arange(12)
        m = t.as_matrix(3, 4)
        assert m.shape == (3, 4)
        assert m[1, 0] == 4
        with pytest.raises(ShapeError):
            t.as_matrix(5, 3)


class TestHazard:
    def test_initial_state(self):
        h = Hazard()
        assert h.deps_for_read() == ()
        assert h.deps_for_write() == ()

    def test_raw(self):
        h = Hazard()
        h.note_write(3)
        assert h.deps_for_read() == (3,)

    def test_war_and_waw(self):
        h = Hazard()
        h.note_write(1)
        h.note_read(2)
        h.note_read(3)
        deps = h.deps_for_write()
        assert set(deps) == {1, 2, 3}

    def test_write_clears_readers(self):
        h = Hazard()
        h.note_write(1)
        h.note_read(2)
        h.note_write(4)
        assert h.deps_for_write() == (4,)

    def test_seed(self):
        h = Hazard()
        h.note_read(1)
        h.seed(9)
        assert h.deps_for_read() == (9,)
        assert h.deps_for_write() == (9,)
