"""Stacked group numerics: bit-identity against the per-request path.

The vectorized path (`repro.serve.numerics.group_scan_values`) must be
indistinguishable — bit for bit — from computing each request through
`plan_compute` on its own, across dtype x exclusive x ragged-shape
combinations.  These are differential tests: any divergence is a bug in
the stacked formulation, not a tolerance question.
"""

import numpy as np
import pytest

from repro.core.reference import (
    exact_fp16_scan_input,
    exclusive_scan,
    inclusive_scan,
)
from repro.core.replay import plan_compute
from repro.hw.config import toy_config
from repro.hw.datatypes import FP16, INT8
from repro.serve import ScanService, assemble_rows, group_scan_values


def _rows(rng, dtype, sizes):
    out = []
    for n in sizes:
        if dtype is FP16:
            x, _ = exact_fp16_scan_input(n, rng)
        else:
            x = rng.integers(-20, 21, size=n).astype(np.int8)
        out.append(x)
    return out


class TestAssembleRows:
    def test_same_length_rows_stack(self, rng):
        xs = [rng.integers(-5, 6, 64).astype(np.int8) for _ in range(4)]
        xp = assemble_rows(xs, 64, np.int8)
        assert xp.shape == (4, 64)
        for i, x in enumerate(xs):
            assert np.array_equal(xp[i], x)

    def test_ragged_rows_zero_pad(self, rng):
        xs = [np.ones(5, np.float16), np.ones(9, np.float16)]
        xp = assemble_rows(xs, 9, np.float16)
        assert xp.shape == (2, 9)
        assert np.all(xp[0, 5:] == 0)
        assert np.array_equal(xp[1], xs[1])


class TestGroupScanBitIdentity:
    @pytest.mark.parametrize("dtype", [FP16, INT8], ids=["fp16", "int8"])
    @pytest.mark.parametrize("algorithm", ["scanu", "mcscan", "vector"])
    @pytest.mark.parametrize(
        "sizes",
        [(256, 256, 256), (5, 200, 256, 257, 1000)],
        ids=["uniform", "ragged"],
    )
    def test_matches_per_request_plan_compute(
        self, rng, dtype, algorithm, sizes
    ):
        xs = _rows(rng, dtype, sizes)
        values, host_s = group_scan_values(
            xs, algorithm=algorithm, in_dtype=dtype
        )
        assert host_s >= 0.0
        for x, got in zip(xs, values):
            want = plan_compute(x, algorithm, dtype)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("dtype", [FP16, INT8], ids=["fp16", "int8"])
    @pytest.mark.parametrize(
        "sizes", [(128, 128), (5, 257, 64)], ids=["uniform", "ragged"]
    )
    def test_exclusive_matches_per_request(self, rng, dtype, sizes):
        xs = _rows(rng, dtype, sizes)
        values, _ = group_scan_values(
            xs, algorithm="mcscan", in_dtype=dtype, exclusive=True
        )
        for x, got in zip(xs, values):
            want = plan_compute(x, "mcscan", dtype, exclusive=True)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_trailing_pad_never_leaks(self, rng):
        """A short row computed inside a wide stacked pass equals its own
        1-D scan — trailing zeros cannot reach earlier prefixes."""
        short = rng.integers(-20, 21, size=3).astype(np.int8)
        long = rng.integers(-20, 21, size=4096).astype(np.int8)
        values, _ = group_scan_values(
            [short, long], algorithm="scanu", in_dtype=INT8
        )
        assert np.array_equal(values[0], inclusive_scan(short))
        assert np.array_equal(values[1], inclusive_scan(long))


class TestServiceLevelBitIdentity:
    """The refactored service (stacked numerics) against the oracle and
    against itself across batching and parallel modes."""

    def _serve(self, rng, **kwargs):
        svc = ScanService(config=toy_config(), **kwargs)
        inputs = {}
        state = np.random.default_rng(7)
        for n in (5, 200, 256, 256, 257, 1000, 256, 5):
            x = state.integers(-20, 21, size=n).astype(np.int8)
            t = svc.submit(x, algorithm="scanu", s=16)
            inputs[t.req_id] = x
        x, _ = exact_fp16_scan_input(512, state)
        t = svc.submit(x, algorithm="mcscan", s=16, exclusive=True)
        inputs[t.req_id] = (x, "exclusive")
        done = svc.flush()
        svc.shutdown()
        return inputs, done

    def _assert_oracle(self, inputs, done):
        assert len(done) == len(inputs)
        for ticket in done:
            ref = inputs[ticket.req_id]
            if isinstance(ref, tuple):
                want = exclusive_scan(ref[0])
            else:
                want = inclusive_scan(ref)
            assert np.array_equal(ticket.result(), want)

    def test_batched_service_matches_oracle(self, rng):
        inputs, done = self._serve(rng, batching=True)
        self._assert_oracle(inputs, done)
        assert any(t.batched for t in done)

    def test_unbatched_service_matches_oracle(self, rng):
        inputs, done = self._serve(rng, batching=False)
        self._assert_oracle(inputs, done)
        assert not any(t.batched for t in done)

    def test_batching_modes_are_bit_identical(self, rng):
        _, batched = self._serve(rng, batching=True)
        _, single = self._serve(rng, batching=False)
        for a, b in zip(batched, single):
            assert a.req_id == b.req_id
            assert np.array_equal(a.result(), b.result())

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_serial_bit_identical(self, rng, workers):
        _, serial = self._serve(rng, batching=True)
        _, parallel = self._serve(rng, batching=True, parallel=workers)
        for a, b in zip(serial, parallel):
            assert a.req_id == b.req_id
            assert np.array_equal(a.result(), b.result())
            assert a.device_ns == b.device_ns
