"""ScanService: submit/flush semantics, request batching, statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import exclusive_scan, inclusive_scan
from repro.errors import ShapeError
from repro.hw.config import toy_config
from repro.serve import ScanService, bucket_size
from repro.serve.batcher import RequestBatcher


@pytest.fixture()
def service() -> ScanService:
    return ScanService(config=toy_config(), max_batch=8)


def _x(n, seed=0, dtype=np.float16):
    rng = np.random.default_rng(seed)
    return rng.integers(-2, 3, n).astype(dtype)


def test_bucket_size_powers_of_two():
    assert [bucket_size(k) for k in (1, 2, 3, 4, 5, 8, 9)] == [
        1, 2, 4, 4, 8, 8, 16,
    ]
    assert bucket_size(100, max_batch=16) == 16
    with pytest.raises(ValueError):
        bucket_size(0)
    with pytest.raises(ValueError):
        bucket_size(4, max_batch=0)


def test_bucket_size_clamps_to_power_of_two_cap():
    """Regression: a non-power-of-two max_batch used to leak through as a
    bucket (48-row shape classes defeating the log2-classes guarantee)."""
    assert bucket_size(40, max_batch=48) == 32
    assert bucket_size(48, max_batch=48) == 32
    assert bucket_size(3, max_batch=48) == 4
    assert bucket_size(100, max_batch=100) == 64
    for cap in (1, 3, 48, 100):
        b = bucket_size(cap, max_batch=cap)
        assert b & (b - 1) == 0  # power of two
        assert b <= cap


def test_non_pow2_max_batch_serves_correctly():
    """With max_batch=48, oversized groups chunk at the 32-row bucket cap
    (a 48-row chunk cannot ride a 32-row bucket)."""
    svc = ScanService(config=toy_config(), max_batch=48)
    xs = [_x(600, i) for i in range(48)]
    ts = [svc.submit(x, algorithm="scanu", s=32) for x in xs]
    svc.flush()
    assert sorted(t.batch_size for t in ts) == [16] * 16 + [32] * 32
    for x, t in zip(xs, ts):
        assert np.array_equal(t.result(), inclusive_scan(x))
    for rec in svc.stats.launches:
        assert rec.kind == "batched" and rec.requests <= 32


def test_submit_validates_input(service):
    with pytest.raises(ShapeError):
        service.submit(np.zeros((2, 3), dtype=np.float16))
    with pytest.raises(ShapeError):
        service.submit(np.zeros(0, dtype=np.float16))
    # bad algorithm/dtype rejected at submit, not at flush
    with pytest.raises(Exception):
        service.submit(_x(10), algorithm="bogus")
    with pytest.raises(Exception):
        service.submit(np.zeros(10, dtype=np.float32))
    assert service.pending == 0


def test_ticket_lifecycle(service):
    x = _x(500)
    t = service.submit(x, algorithm="scanu", s=32)
    assert not t.done
    with pytest.raises(RuntimeError, match="queued"):
        t.result()
    assert service.pending == 1
    done = service.flush()
    assert done == [t] and t.done
    assert service.pending == 0
    assert np.array_equal(t.result(), inclusive_scan(x))
    assert t.host_s > 0
    assert t.device_ns > 0


def test_same_shape_requests_coalesce(service):
    xs = [_x(700, seed=i) for i in range(5)]
    ts = [service.submit(x, algorithm="scanu", s=32) for x in xs]
    service.flush()
    for x, t in zip(xs, ts):
        assert t.batched
        assert t.batch_size == 5
        assert np.array_equal(t.result(), inclusive_scan(x))
    # one batched launch for all five requests
    assert service.stats.launch_count == 1
    assert service.stats.launches[0].kind == "batched"
    assert service.stats.launches[0].requests == 5
    assert service.stats.coalesced_requests == 5


def test_different_shapes_split_launches(service):
    a = service.submit(_x(700), algorithm="scanu", s=32)
    b = service.submit(_x(700, 1), algorithm="scanu", s=32)
    c = service.submit(_x(9000), algorithm="scanu", s=32)  # other class
    d = service.submit(_x(700, 2), algorithm="scanul1", s=32)  # other algo
    service.flush()
    assert a.batched and b.batched and a.batch_size == 2
    assert not c.batched and not d.batched
    for t, n in ((a, 700), (b, 700), (c, 9000), (d, 700)):
        assert t.n == n and t.done


def test_singletons_fall_back_to_1d_plans(service):
    t = service.submit(_x(500), algorithm="scanu", s=32)
    service.flush()
    assert not t.batched and t.batch_size == 1
    assert service.stats.launches[0].kind == "single"


def test_min_group_and_batching_toggle():
    svc = ScanService(config=toy_config(), min_group=3)
    ts = [svc.submit(_x(600, i), algorithm="scanu", s=32) for i in range(2)]
    svc.flush()
    assert not any(t.batched for t in ts)  # below min_group

    svc2 = ScanService(config=toy_config(), batching=False)
    ts2 = [svc2.submit(_x(600, i), algorithm="scanu", s=32) for i in range(4)]
    svc2.flush()
    assert not any(t.batched for t in ts2)
    for i, t in enumerate(ts2):
        assert np.array_equal(t.result(), inclusive_scan(_x(600, i)))


def test_oversized_groups_split_at_max_batch():
    svc = ScanService(config=toy_config(), max_batch=4)
    ts = [svc.submit(_x(600, i), algorithm="scanu", s=32) for i in range(6)]
    svc.flush()
    sizes = sorted(t.batch_size for t in ts)
    assert sizes == [2, 2, 4, 4, 4, 4]
    assert svc.stats.launch_count == 2


def test_fallback_groups_rekey_per_request():
    """Regression: sub-min_group batchable groups were re-keyed from
    requests[0] only, so requests differing in block_dim (or exclusive)
    silently shared one wrong 1-D plan key."""
    import time

    from repro.serve.batcher import ScanRequest

    svc = ScanService(config=toy_config(), min_group=8)
    reqs = [
        ScanRequest(
            req_id=i,
            x=_x(600, i),
            algorithm="scanu",
            s=32,
            exclusive=False,
            t_submit=time.perf_counter(),
            block_dim=bd,
        )
        for i, bd in enumerate([None, 1])
    ]
    for r in reqs:
        svc.batcher.add(r)
    groups = svc.batcher.drain()
    # same batched shape class, but two distinct 1-D fallback keys
    assert len(groups) == 2
    assert not any(g.batched for g in groups)
    assert {g.key.block_dim for g in groups} == {None, 1}
    assert all(g.key.batch is None for g in groups)


def test_fallback_groups_thread_exclusive_through(service):
    """End-to-end: a lone mcscan pair (inclusive + exclusive) below
    min_group must keep both exclusive flags in their 1-D keys."""
    x = _x(800)
    inc = service.submit(x, algorithm="mcscan", s=32)
    exc = service.submit(x, algorithm="mcscan", s=32, exclusive=True)
    service.flush()
    assert np.array_equal(inc.result(), inclusive_scan(x))
    assert np.array_equal(exc.result(), exclusive_scan(x))
    keys = list(service.cache._plans)
    assert {k.exclusive for k in keys} == {True, False}


def test_int64_input_normalized_once_to_int8(service):
    """Satellite: dtype resolves once at submit; int64 input that fits
    int8 lands in the same shape class as native int8 everywhere."""
    x64 = np.arange(-20, 20, dtype=np.int64).repeat(20)[:700]
    x8 = _x(700, seed=1, dtype=np.int8)
    a = service.submit(x64, algorithm="scanu", s=32)
    b = service.submit(x8, algorithm="scanu", s=32)
    service.flush()
    assert a.dtype == b.dtype == "int8"
    # one shape class -> one coalesced batched launch, one cached plan
    assert a.batched and b.batched and a.batch_size == 2
    assert service.stats.launch_count == 1
    assert len(service.cache) == 1
    assert np.array_equal(a.result(), inclusive_scan(x64.astype(np.int8)))
    assert np.array_equal(b.result(), inclusive_scan(x8))


def test_int64_out_of_range_still_rejected(service):
    with pytest.raises(Exception):
        service.submit(np.full(700, 1000, dtype=np.int64))
    # float32 narrowing would lose precision silently: still rejected
    with pytest.raises(Exception):
        service.submit(np.zeros(700, dtype=np.float32))
    assert service.pending == 0


def test_mcscan_and_exclusive_served_individually(service):
    x = _x(800)
    inc = service.submit(x, algorithm="mcscan", s=32)
    exc = service.submit(x, algorithm="mcscan", s=32, exclusive=True)
    service.flush()
    assert not inc.batched and not exc.batched
    assert np.array_equal(inc.result(), inclusive_scan(x))
    assert np.array_equal(exc.result(), exclusive_scan(x))


def test_plan_hits_after_first_flush(service):
    for round_ in range(2):
        ts = [service.submit(_x(700, i), algorithm="scanu", s=32)
              for i in range(3)]
        service.flush()
        assert all(t.plan_hit == (round_ == 1) for t in ts)
    assert service.cache.stats()["misses"] == 1
    assert service.cache.stats()["hits"] == 1


def test_int8_requests(service):
    x = _x(700, dtype=np.int8)
    ts = [service.submit(x, algorithm="scanu", s=32) for _ in range(2)]
    service.flush()
    for t in ts:
        assert t.dtype == "int8"
        assert np.array_equal(t.result(), inclusive_scan(x))


def test_flush_returns_submit_order(service):
    xs = [_x(700, 0), _x(9000, 1), _x(700, 2)]
    ts = [service.submit(x, algorithm="scanu", s=32) for x in xs]
    done = service.flush()
    assert [t.req_id for t in done] == [t.req_id for t in ts]


def test_stats_and_summary(service):
    for i in range(4):
        service.submit(_x(700, i), algorithm="scanu", s=32)
    service.flush()
    s = service.stats
    assert s.requests == 4
    assert s.n_elements == 4 * 700
    assert s.gelems_per_s > 0
    assert s.bandwidth_gbps > 0
    assert 0 < s.mean_host_latency_s
    assert s.host_latency_percentile_s(0.5) <= s.host_latency_percentile_s(0.99)
    text = service.summary()
    assert "plan cache" in text and "requests" in text


def test_empty_flush_is_noop(service):
    assert service.flush() == []
    assert service.stats.requests == 0


def test_batcher_drain_clears_queue(service):
    batcher: RequestBatcher = service.batcher
    service.submit(_x(100), algorithm="scanu", s=32)
    assert len(batcher) == 1
    service.flush()
    assert len(batcher) == 0
    assert batcher.drained == 1


def test_timeline_hit_stats(service):
    # first flush computes the batched plan's timeline; subsequent
    # flushes of the same shape class replay the memoized one
    for round_ in range(3):
        for i in range(4):
            service.submit(_x(700, i + round_), algorithm="scanu", s=32)
        service.flush()
    launches = service.stats.launches
    assert [r.timeline_hit for r in launches] == [False, True, True]
    assert service.stats.timeline_hit_rate == pytest.approx(2 / 3)
    cache_stats = service.cache.stats()
    assert cache_stats["timeline_misses"] == 1
    assert cache_stats["timeline_hits"] == 2
    assert "timeline cache" in service.summary()
    assert "timeline hit rate" in service.stats.summary()


class TestTunedServing:
    @pytest.fixture()
    def tuned_service(self) -> ScanService:
        from repro.tune import TunedEntry, TuneStore

        config = toy_config()
        store = TuneStore(config)
        store.record(
            "1d:1024:fp16:i",
            TunedEntry(
                algorithm="mcscan", s=32, block_dim=None, layout="1d",
                tuned_ns=1.0, default_ns=2.0,
            ),
        )
        return ScanService(config=config, tune_store=store, batching=False)

    def test_store_hit_supplies_config(self, tuned_service):
        x = _x(1024)
        t = tuned_service.scan(x)
        assert t.tuned
        assert (t.algorithm, t.s) == ("mcscan", 32)
        assert np.array_equal(t.result(), inclusive_scan(x))
        assert tuned_service.stats.tuned_launches == 1
        assert tuned_service.stats.tuned_hit_rate == 1.0
        assert tuned_service.tune_store.lookup_hits == 1
        assert "tuned store" in tuned_service.summary()

    def test_explicit_args_bypass_store(self, tuned_service):
        t = tuned_service.scan(_x(1024), algorithm="scanu", s=128)
        assert not t.tuned
        assert (t.algorithm, t.s) == ("scanu", 128)
        assert tuned_service.tune_store.lookup_hits == 0

    def test_store_miss_falls_back_to_default(self, tuned_service):
        t = tuned_service.scan(_x(4096))  # shape not in store
        assert not t.tuned
        assert (t.algorithm, t.s) == ("scanu", 128)
        assert tuned_service.stats.tuned_launches == 0
        assert tuned_service.tune_store.lookup_misses == 1

    def test_no_store_means_heuristic_default(self, service):
        t = service.scan(_x(1024))
        assert not t.tuned
        assert (t.algorithm, t.s) == ("scanu", 128)
        assert service.stats.tuned_hit_rate == 0.0


class TestSubmitSequenceOrdering:
    """Satellite: submit-order return rides one monotone id sequence
    shared by scan and graph submissions; collisions are an error, not a
    silent reorder."""

    def test_mixed_scan_and_graph_ids_are_one_monotone_sequence(self):
        from repro.graph import llm_sample

        svc = ScanService(config=toy_config())
        rng = np.random.default_rng(3)
        graph = llm_sample(96, k=8, p=0.75, s=16)
        ids = []
        for i in range(6):
            if i % 2 == 0:
                probs = (rng.permutation(96) + 1).astype(np.float16)
                ids.append(svc.submit_graph(graph, {"probs": probs}).req_id)
            else:
                ids.append(svc.submit(_x(512, i), s=16).req_id)
        # one shared counter: strictly increasing across both kinds
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        done = svc.flush()
        # and flush returns the mixed traffic in exactly submit order
        assert [t.req_id for t in done] == ids
        svc.shutdown()

    def test_enqueue_rejects_duplicate_request_id(self, service):
        from repro.errors import KernelError

        req, ticket = service._prepare(_x(512), s=16)
        service.enqueue(req, ticket)
        req2, ticket2 = service._prepare(_x(512, 1), s=16, req_id=req.req_id)
        with pytest.raises(KernelError, match="already tracked"):
            service.enqueue(req2, ticket2)

    def test_sort_asserts_unique_submit_sequence(self):
        from repro.errors import KernelError
        from repro.serve.service import ScanTicket, _sorted_by_submit_sequence

        def t(req_id):
            return ScanTicket(
                req_id=req_id, n=8, algorithm="scanu", dtype="fp16",
                s=16, exclusive=False,
            )

        out = _sorted_by_submit_sequence([t(2), t(0), t(1)])
        assert [x.req_id for x in out] == [0, 1, 2]
        with pytest.raises(KernelError, match="share request id"):
            _sorted_by_submit_sequence([t(1), t(0), t(1)])
