"""Fault injection and resilient serving: retry, failover, health.

Covers the three layers the chaos path crosses: the seeded
:class:`~repro.hw.faults.FaultPlan` on the device, the bounded-retry
``ScanService`` above it, and the pool front end's drain-and-reroute
failover — under seeded transient faults and one permanent device loss,
every request completes bit-identical to the oracle and no ticket is
ever lost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import inclusive_scan
from repro.errors import ConfigError, DeviceFault
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.serve import DEAD, DEGRADED, HEALTHY, RetryPolicy, ScanService
from repro.shard import DevicePool, PoolScanService
from repro.verify import FUZZ_SEED0

#: every seed in this suite derives from the fuzz corpus root
#: (repro.verify.FUZZ_SEED0), so the example-based chaos tests and the
#: schedule fuzzer draw fault schedules from one seed family — a corpus
#: seed reproduced here and a fuzz seed reproduced there agree on what
#: "seed k" means
SEED0 = FUZZ_SEED0


def _seed(k: int) -> int:
    """The k-th derived seed of the shared chaos/fuzz seed family."""
    return SEED0 + k


def _x(n, seed=0, dtype=np.float16):
    rng = np.random.default_rng((SEED0, seed))
    return rng.integers(-2, 3, n).astype(dtype)


class _AlwaysTransient:
    """Duck-typed fault plan: every launch fails transiently."""

    def __init__(self):
        self.calls = 0

    def on_launch(self, device):
        self.calls += 1
        raise DeviceFault(
            f"boom {self.calls}", device=device, permanent=False
        )

    def stretch_ns(self, trace):
        return 0.0


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(transient_rate=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(mte_slowdown=0.5)
        with pytest.raises(ConfigError):
            FaultPlan(vec_slowdown=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(die_at_launch=-1)

    def test_transient_schedule_is_seed_deterministic(self):
        def outcomes(plan, k=50):
            seq = []
            for _ in range(k):
                try:
                    plan.on_launch("dev0")
                    seq.append(False)
                except DeviceFault as f:
                    assert not f.permanent
                    seq.append(True)
            return seq

        a = outcomes(FaultPlan(seed=_seed(42), transient_rate=0.3))
        b = outcomes(FaultPlan(seed=_seed(42), transient_rate=0.3))
        c = outcomes(FaultPlan(seed=_seed(43), transient_rate=0.3))
        assert a == b
        assert a != c
        assert any(a) and not all(a)

    def test_permanent_death_is_sticky(self):
        plan = FaultPlan(die_at_launch=1)
        plan.on_launch("dev0")  # launch 0: fine
        for _ in range(3):
            with pytest.raises(DeviceFault) as exc:
                plan.on_launch("dev0")
            assert exc.value.permanent
        assert plan.dead
        assert plan.launches == 4

    def test_slowdown_stretches_replayed_trace(self):
        healthy = ScanService(config=toy_config(), batching=False)
        t0 = healthy.scan(_x(600), algorithm="scanu", s=32)

        slow = ScanService(config=toy_config(), batching=False)
        slow.ctx.device.fault_plan = FaultPlan(mte_slowdown=2.0)
        t1 = slow.scan(_x(600), algorithm="scanu", s=32)

        assert np.array_equal(t1.result(), t0.result())
        assert t1.device_ns > t0.device_ns
        assert slow.observed_slowdown > 1.0
        assert healthy.observed_slowdown == pytest.approx(1.0)

    def test_describe_mentions_modes(self):
        text = FaultPlan(
            seed=_seed(5), transient_rate=0.2, mte_slowdown=1.5, die_at_launch=3
        ).describe()
        assert f"seed={_seed(5)}" in text and "20%" in text
        assert "mte" in text and "launch 3" in text


class TestServiceRetry:
    def test_transient_faults_retried_to_exact_result(self):
        svc = ScanService(
            config=toy_config(),
            batching=False,
            retry=RetryPolicy(max_attempts=4),
        )
        svc.ctx.device.fault_plan = FaultPlan(seed=_seed(3), transient_rate=0.4)
        xs = [_x(600, i) for i in range(8)]
        ts = [svc.submit(x, algorithm="scanu", s=32) for x in xs]
        done = svc.flush()
        assert len(done) == len(ts)
        for x, t in zip(xs, ts):
            assert np.array_equal(t.result(), inclusive_scan(x))
        assert svc.stats.fault_events > 0
        assert svc.stats.total_retries == svc.stats.total_faults
        assert svc.stats.total_backoff_ns > 0
        assert sum(t.retries for t in ts) == svc.stats.total_retries
        assert "resilience" in svc.stats.summary()

    def test_backoff_charged_to_device_time(self):
        base = toy_config().costs.relaunch_backoff_ns
        svc = ScanService(
            config=toy_config(),
            batching=False,
            retry=RetryPolicy(max_attempts=6),
        )
        svc.ctx.device.fault_plan = FaultPlan(seed=_seed(3), transient_rate=0.4)
        ts = [svc.submit(_x(600, i), algorithm="scanu", s=32) for i in range(8)]
        svc.flush()
        faulted = [r for r in svc.stats.launches if r.retries]
        assert faulted
        for r in faulted:
            assert r.backoff_ns >= base * r.retries
        del ts

    def test_retry_exhaustion_keeps_tickets_then_recovers(self):
        svc = ScanService(
            config=toy_config(), retry=RetryPolicy(max_attempts=3)
        )
        plan = _AlwaysTransient()
        svc.ctx.device.fault_plan = plan
        xs = [_x(600, i) for i in range(3)]
        ts = [svc.submit(x, algorithm="scanu", s=32) for x in xs]
        with pytest.raises(DeviceFault) as exc:
            svc.flush()
        assert exc.value.attempts == 3
        assert plan.calls == 3
        # nothing lost: all requests back on the queue, tickets tracked
        assert svc.pending == 3
        assert len(svc._tickets) == 3
        assert not any(t.done for t in ts)
        assert svc.stats.fault_events == 3
        # device repaired: the same queue now serves exactly
        svc.ctx.device.fault_plan = None
        done = svc.flush()
        assert len(done) == 3
        for x, t in zip(xs, ts):
            assert np.array_equal(t.result(), inclusive_scan(x))
        assert svc.pending == 0 and not svc._tickets

    def test_permanent_fault_not_retried(self):
        svc = ScanService(
            config=toy_config(), retry=RetryPolicy(max_attempts=5)
        )
        fault_plan = FaultPlan(die_at_launch=0)
        svc.ctx.device.fault_plan = fault_plan
        svc.submit(_x(600), algorithm="scanu", s=32)
        with pytest.raises(DeviceFault) as exc:
            svc.flush()
        assert exc.value.permanent
        assert exc.value.attempts == 1
        assert fault_plan.launches == 1  # no pointless relaunching

    def test_flush_failure_midway_requeues_later_groups(self):
        """A terminal fault on one group leaves every later group's
        requests queued and ticketed, not dropped (regression for the
        lost-ticket flush bug)."""
        svc = ScanService(config=toy_config(), retry=RetryPolicy(max_attempts=1))
        big = [svc.submit(_x(600, i), algorithm="scanu", s=32) for i in range(3)]
        single = svc.submit(_x(900, 7), algorithm="scanu", s=32)
        svc.ctx.device.fault_plan = _AlwaysTransient()
        with pytest.raises(DeviceFault):
            svc.flush()
        assert svc.pending == 4
        assert len(svc._tickets) == 4
        svc.ctx.device.fault_plan = None
        svc.flush()
        assert all(t.done for t in [*big, single])

    def test_non_fault_exception_keeps_tickets(self, monkeypatch):
        """Exception safety holds for arbitrary launch failures, not only
        DeviceFault (regression: tickets used to be popped before the
        launch could fail).  The serve path launches via
        ``ScanPlan.replay_timing`` (numerics are deferred separately)."""
        from repro.core.api import ScanPlan

        svc = ScanService(config=toy_config())
        ts = [svc.submit(_x(600, i), algorithm="scanu", s=32) for i in range(2)]
        monkeypatch.setattr(
            ScanPlan,
            "replay_timing",
            lambda self, **kw: (_ for _ in ()).throw(RuntimeError("launch bug")),
        )
        with pytest.raises(RuntimeError, match="launch bug"):
            svc.flush()
        assert svc.pending == 2
        assert len(svc._tickets) == 2
        monkeypatch.undo()
        done = svc.flush()
        assert len(done) == 2 and all(t.done for t in ts)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_ns=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        policy = RetryPolicy(backoff_ns=100.0, backoff_multiplier=2.0)
        assert policy.backoff_for(0, 999.0) == 100.0
        assert policy.backoff_for(2, 999.0) == 400.0
        assert RetryPolicy().backoff_for(1, 50.0) == 100.0


def _chaos_pool(**plans):
    fault_plans = {int(k[3:]): v for k, v in plans.items()}
    return DevicePool(3, toy_config(), fault_plans=fault_plans)


class TestPoolChaos:
    def _submit_mix(self, svc, rounds=2):
        inputs = {}
        for r in range(rounds):
            for n in (600, 900, 2000):
                for i in range(3):
                    x = _x(n, seed=10 * r + i)
                    inputs[svc.submit(x, algorithm="scanu", s=32).req_id] = x
            for i in range(2):
                x = _x(900, seed=100 + 10 * r + i, dtype=np.int8)
                t = svc.submit(x, algorithm="scanul1", s=32)
                inputs[t.req_id] = x
        return inputs

    def test_acceptance_chaos_run(self):
        """ISSUE acceptance: D=3, transient faults up to 20%, one
        permanent loss — every request bit-identical, no ticket lost,
        health/retries/failovers reported."""
        pool = _chaos_pool(
            dev0=FaultPlan(seed=_seed(1), transient_rate=0.2, mte_slowdown=1.3),
            dev1=FaultPlan(seed=_seed(2), die_at_launch=0),
            dev2=FaultPlan(seed=_seed(3), transient_rate=0.2, vec_slowdown=1.2),
        )
        svc = PoolScanService(pool=pool, retry=RetryPolicy(max_attempts=4))
        inputs = self._submit_mix(svc)
        done = svc.flush()
        assert len(done) == len(inputs)
        for t in done:
            assert np.array_equal(t.result(), inclusive_scan(inputs[t.req_id]))
            assert t.device is not None and t.device != 1 or not t.done
        # no ticket lost anywhere
        assert svc.pending == 0 and not svc._tickets
        for worker in svc.workers:
            assert not worker._tickets and len(worker.batcher) == 0
        health = svc.member_health()
        assert health[1].state == DEAD
        assert health[1].failovers >= 1
        assert sum(h.fault_events for h in health) > 0
        text = svc.summary()
        assert "dead" in text and "failovers" in text

    def test_dead_member_excluded_from_routing(self):
        pool = _chaos_pool(dev1=FaultPlan(die_at_launch=0))
        svc = PoolScanService(pool=pool)
        inputs = self._submit_mix(svc, rounds=1)
        done = svc.flush()
        assert len(done) == len(inputs)
        assert svc._dead[1]
        # fresh traffic after the death never touches member 1
        more = {}
        for i in range(6):
            x = _x(600, seed=500 + i)
            more[svc.submit(x, algorithm="scanu", s=32).req_id] = x
        done2 = svc.flush()
        assert done2 and all(t.device != 1 for t in done2)
        for t in done2:
            assert np.array_equal(t.result(), inclusive_scan(more[t.req_id]))

    def test_routing_weights_busy_time_by_slowdown(self):
        svc = PoolScanService(3, config=toy_config())
        svc.busy_ns = [100.0, 100.0, 100.0]
        svc.workers[0].observed_slowdown = 5.0
        assert svc._route_target() in (1, 2)
        svc.workers[1].observed_slowdown = 2.0
        assert svc._route_target() == 2
        # a dead member never wins, however idle it looks
        svc.busy_ns = [1000.0, 1000.0, 0.0]
        svc._dead[2] = True
        assert svc._route_target() == 1

    def test_all_members_dead_raises_but_keeps_work(self):
        pool = _chaos_pool(
            dev0=FaultPlan(die_at_launch=0),
            dev1=FaultPlan(die_at_launch=0),
            dev2=FaultPlan(die_at_launch=0),
        )
        svc = PoolScanService(pool=pool)
        inputs = self._submit_mix(svc, rounds=1)
        with pytest.raises(DeviceFault) as exc:
            svc.flush()
        assert exc.value.permanent
        assert all(svc._dead)
        # every unserved request is back in the pool queue, ticket tracked
        assert svc.pending == len(inputs)
        assert len(svc._tickets) == len(inputs)
        assert svc.member_health()[0].state == DEAD

    def test_healthy_pool_reports_healthy(self):
        svc = PoolScanService(2, config=toy_config())
        inputs = self._submit_mix(svc, rounds=1)
        svc.flush()
        health = svc.member_health()
        assert all(h.state == HEALTHY for h in health)
        assert all(h.retries == 0 and h.failovers == 0 for h in health)
        assert DEGRADED not in {h.state for h in health}
        del inputs

    def test_degraded_member_after_transient_faults(self):
        # _seed(14) is a pinned draw from the shared family that yields
        # several transient faults on dev0's traffic (deflaked: not every
        # derived seed faults under this workload)
        pool = _chaos_pool(dev0=FaultPlan(seed=_seed(14), transient_rate=0.5))
        svc = PoolScanService(pool=pool, retry=RetryPolicy(max_attempts=6))
        inputs = self._submit_mix(svc)
        done = svc.flush()
        assert len(done) == len(inputs)
        health = svc.member_health()
        assert health[0].state == DEGRADED
        assert health[0].fault_events > 0
