"""Open-loop traffic generation: seeded arrival processes and reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    TrafficReport,
    TrafficSpec,
    generate_arrivals,
    make_input,
    percentile_ns,
)


def spec(**kw) -> TrafficSpec:
    base = dict(name="t", process="poisson", rate_rps=100_000.0, requests=64)
    base.update(kw)
    return TrafficSpec(**base)


class TestSpecValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigError, match="arrival process"):
            spec(process="lunar")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigError, match="rate_rps"):
            spec(rate_rps=0.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigError, match="requests"):
            spec(requests=0)

    def test_diurnal_depth_bounds(self):
        with pytest.raises(ConfigError, match="diurnal_depth"):
            spec(diurnal_depth=1.0)
        spec(diurnal_depth=0.0)  # boundary is fine

    def test_mismatched_size_weights_rejected(self):
        with pytest.raises(ConfigError, match="size_weights"):
            spec(sizes=(256, 512), size_weights=(1.0,))

    def test_mean_gap_follows_rate(self):
        assert spec(rate_rps=1e6).mean_gap_ns == pytest.approx(1000.0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        s = spec()
        assert generate_arrivals(s, 5) == generate_arrivals(s, 5)
        assert generate_arrivals(s, 5) != generate_arrivals(s, 6)

    @pytest.mark.parametrize("process", ["poisson", "bursty", "diurnal"])
    def test_every_process_generates_a_full_sorted_stream(self, process):
        s = spec(process=process, requests=100)
        arrivals = generate_arrivals(s, 3)
        assert len(arrivals) == 100
        times = [a.t_ns for a in arrivals]
        assert times == sorted(times)
        assert all(a.t_ns > 0 for a in arrivals)
        assert [a.index for a in arrivals] == list(range(100))
        assert all(a.n in s.sizes for a in arrivals)

    def test_deadline_is_arrival_plus_slo(self):
        s = spec(slo_ns=123_456.0)
        for a in generate_arrivals(s, 1):
            assert a.deadline_ns == pytest.approx(a.t_ns + 123_456.0)

    def test_bursty_lands_same_tick_bursts(self):
        s = spec(process="bursty", requests=64, burst_mean=6.0)
        arrivals = generate_arrivals(s, 2)
        times = [a.t_ns for a in arrivals]
        # at burst_mean 6 some epoch must carry more than one arrival
        assert len(set(times)) < len(times)

    def test_size_weights_skew_the_mix(self):
        s = spec(
            requests=400,
            sizes=(256, 4096),
            size_weights=(0.95, 0.05),
        )
        arrivals = generate_arrivals(s, 4)
        small = sum(1 for a in arrivals if a.n == 256)
        assert small > 300

    def test_poisson_mean_rate_roughly_matches(self):
        s = spec(requests=500, rate_rps=1e6)
        arrivals = generate_arrivals(s, 9)
        span_s = arrivals[-1].t_ns / 1e9
        realized = len(arrivals) / span_s
        assert realized == pytest.approx(1e6, rel=0.25)

    def test_make_input_exact_in_fp16(self):
        rng = np.random.default_rng(0)
        x = make_input(rng, 4096, np.float16)
        assert x.dtype == np.float16
        assert float(np.abs(x).max()) <= 2.0


class TestReport:
    def test_percentile_nearest_rank(self):
        # same nearest-rank convention as ServiceStats' percentiles:
        # index round(q * (n - 1)) into the sorted values
        vals = [float(v) for v in range(1, 101)]
        assert percentile_ns(vals, 0.50) == 51.0
        assert percentile_ns(vals, 0.99) == 99.0
        assert percentile_ns(vals, 1.0) == 100.0
        assert percentile_ns(vals, 0.0) == 1.0
        assert percentile_ns([], 0.5) == 0.0

    def test_accounting_identity(self):
        r = TrafficReport(
            spec="t", seed=0, policy="continuous",
            offered=10, served=7, shed=2, failed=1,
        )
        assert r.accounted()
        r.failed = 0
        assert not r.accounted()

    def test_goodput_counts_only_deadline_hits(self):
        r = TrafficReport(
            spec="t", seed=0, policy="continuous",
            offered=4, served=4, deadline_met=2, span_ns=2e9,
        )
        assert r.goodput_rps == pytest.approx(1.0)
        assert r.offered_rps == pytest.approx(2.0)

    def test_describe_mentions_the_tail(self):
        r = TrafficReport(
            spec="t", seed=0, policy="naive",
            offered=1, served=1, deadline_met=1, span_ns=1e9,
            latencies_ns=[5000.0],
        )
        text = r.describe()
        assert "p99" in text and "p999" in text and "naive" in text
