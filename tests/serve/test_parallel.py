"""Host-executor parallelism must be invisible to results and schedules.

The `parallel=` seam defers only pure numerics; every schedule-bearing
decision (fault draws, retries, routing, simulated time) stays serial on
the calling thread.  These tests pin the contract: any worker count
produces bit-identical values, identical simulated timelines and identical
pool routing — and the executor itself behaves (inline fallback, chunking
by row index, idempotent shutdown).
"""

import threading

import numpy as np
import pytest

from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.hw.config import toy_config
from repro.hw.faults import FaultPlan
from repro.serve import HostExecutor, ScanService
from repro.shard import PoolScanService


class TestHostExecutor:
    def test_inline_when_single_worker(self):
        for workers in (None, 0, 1):
            ex = HostExecutor(workers)
            assert not ex.parallel
            job = ex.submit(lambda a, b: a + b, 2, 3)
            assert job.result() == 5
            ex.shutdown()

    def test_parallel_submit_runs_on_threads(self):
        ex = HostExecutor(2)
        assert ex.parallel
        names = set()
        def who():
            names.add(threading.current_thread().name)
            return 1
        jobs = [ex.submit(who) for _ in range(8)]
        assert sum(j.result() for j in jobs) == 8
        assert all(n.startswith("repro-host") for n in names)
        ex.shutdown()

    def test_inline_jobs_propagate_exceptions(self):
        ex = HostExecutor(None)
        job = ex.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            job.result()

    def test_parallel_jobs_propagate_exceptions(self):
        with HostExecutor(2) as ex:
            job = ex.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                job.result()

    def test_chunk_count_is_worker_count_independent_of_timing(self):
        ex = HostExecutor(4)
        assert ex.chunk_count(3) == 1  # too small to split
        assert ex.chunk_count(64) == 4
        assert ex.chunk_count(17, min_chunk=8) == 2
        ex.shutdown()
        inline = HostExecutor(None)
        assert inline.chunk_count(64) == 1

    def test_shutdown_idempotent(self):
        ex = HostExecutor(2)
        ex.shutdown()
        ex.shutdown()


def _run_service(parallel, *, faults=False):
    svc = ScanService(config=toy_config(), parallel=parallel)
    if faults:
        svc.ctx.device.fault_plan = FaultPlan(seed=11, transient_rate=0.3)
    rng = np.random.default_rng(3)
    inputs = {}
    for _ in range(12):
        x, _ = exact_fp16_scan_input(int(rng.choice((200, 256, 1000))), rng)
        t = svc.submit(x, algorithm="scanu", s=16)
        inputs[t.req_id] = x
    done = svc.flush()
    stats = svc.stats
    svc.shutdown()
    return inputs, done, stats


class TestServiceParallelDeterminism:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_results_and_timeline_identical(self, workers):
        inputs, serial, s_stats = _run_service(None)
        _, parallel, p_stats = _run_service(workers)
        assert [t.req_id for t in serial] == [t.req_id for t in parallel]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.result(), b.result())
            assert a.result().dtype == b.result().dtype
            assert a.device_ns == b.device_ns
            assert a.batched == b.batched
        assert s_stats.device_ns == p_stats.device_ns
        for t in serial:
            assert np.array_equal(t.result(), inclusive_scan(inputs[t.req_id]))

    def test_fault_schedule_identical_under_parallelism(self):
        """Fault draws happen on the replay (serial) half, so retry counts
        and simulated backoff cannot depend on the worker count."""
        _, serial, s_stats = _run_service(None, faults=True)
        _, parallel, p_stats = _run_service(4, faults=True)
        assert s_stats.fault_events == p_stats.fault_events
        assert s_stats.total_retries == p_stats.total_retries
        assert s_stats.total_backoff_ns == p_stats.total_backoff_ns
        for a, b in zip(serial, parallel):
            assert a.retries == b.retries
            assert np.array_equal(a.result(), b.result())

    def test_phase_breakdown_present(self):
        _, _, stats = _run_service(2)
        for phase in ("numerics", "timeline"):
            assert stats.phase_host_s.get(phase, 0.0) > 0.0
        assert stats.phase_line() is not None


def _run_pool(parallel, devices=3):
    svc = PoolScanService(devices, config=toy_config(), parallel=parallel)
    rng = np.random.default_rng(5)
    inputs = {}
    for _ in range(10):
        x, _ = exact_fp16_scan_input(4096, rng)
        t = svc.submit(x)
        inputs[t.req_id] = x
    for _ in range(6):
        x = rng.integers(-20, 21, size=2048).astype(np.int8)
        t = svc.submit(x, algorithm="scanul1", s=16)
        inputs[t.req_id] = x
    done = svc.flush()
    out = {
        t.req_id: (t.result().tobytes(), t.device, t.device_ns)
        for t in done
    }
    busy, makespan = list(svc.busy_ns), svc.makespan_ns
    phases = svc.phase_host_s()
    svc.shutdown()
    return inputs, out, busy, makespan, phases


class TestPoolParallelDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_identical_across_worker_counts(self, workers):
        inputs, serial, s_busy, s_mk, _ = _run_pool(None)
        _, parallel, p_busy, p_mk, _ = _run_pool(workers)
        assert serial == parallel  # bits, routing and simulated time
        assert s_busy == p_busy
        assert s_mk == p_mk
        for req_id, (raw, _dev, _ns) in serial.items():
            want = inclusive_scan(inputs[req_id])
            assert want.tobytes() == raw

    def test_pool_phase_breakdown_includes_routing(self):
        _, _, _, _, phases = _run_pool(2)
        assert phases.get("routing", 0.0) > 0.0
        assert phases.get("numerics", 0.0) > 0.0

    def test_pool_summary_mentions_phases(self):
        svc = PoolScanService(2, config=toy_config(), parallel=2)
        x, _ = exact_fp16_scan_input(512, np.random.default_rng(0))
        svc.submit(x)
        svc.flush()
        assert "host phases" in svc.summary()
        svc.shutdown()
