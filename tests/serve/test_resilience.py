"""RetryPolicy backoff math and MemberHealth state transitions.

The chaos suite (tests/serve/test_chaos.py) exercises these primitives
end-to-end under injected faults; this module pins their contracts in
isolation — the validation envelope and exponential backoff schedule of
:class:`~repro.serve.resilience.RetryPolicy`, and the exact conditions
under which :meth:`~repro.shard.service.PoolScanService.member_health`
reports healthy / degraded / dead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DeviceFault
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.serve import DEAD, DEGRADED, HEALTHY, RetryPolicy
from repro.serve.resilience import SLOWDOWN_DEGRADED_THRESHOLD, MemberHealth
from repro.shard import DevicePool, PoolScanService
from repro.verify import FUZZ_SEED0


def _seed(k: int) -> int:
    """Same derived seed family as the chaos suite and the fuzz corpus."""
    return FUZZ_SEED0 + k


def _x(n, seed=0, dtype=np.float16):
    rng = np.random.default_rng((FUZZ_SEED0, seed))
    return rng.integers(-2, 3, n).astype(dtype)


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        p = RetryPolicy()
        assert p.max_attempts == 3
        assert p.backoff_ns is None
        assert p.backoff_multiplier == 2.0

    def test_max_attempts_floor(self):
        RetryPolicy(max_attempts=1)  # 1 = no retry, still legal
        with pytest.raises(ConfigError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError, match="max_attempts"):
            RetryPolicy(max_attempts=-3)

    def test_backoff_ns_floor(self):
        RetryPolicy(backoff_ns=0.0)  # explicit zero backoff is legal
        with pytest.raises(ConfigError, match="backoff_ns"):
            RetryPolicy(backoff_ns=-1.0)

    def test_multiplier_floor(self):
        RetryPolicy(backoff_multiplier=1.0)  # constant backoff is legal
        with pytest.raises(ConfigError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.99)

    def test_frozen(self):
        p = RetryPolicy()
        with pytest.raises(AttributeError):
            p.max_attempts = 5


class TestBackoffMath:
    def test_exponential_schedule(self):
        p = RetryPolicy(backoff_ns=100.0, backoff_multiplier=3.0)
        assert [p.backoff_for(i, default_ns=1.0) for i in range(4)] == [
            100.0,
            300.0,
            900.0,
            2700.0,
        ]

    def test_none_base_uses_device_default(self):
        p = RetryPolicy(backoff_multiplier=2.0)
        assert p.backoff_for(0, default_ns=250.0) == 250.0
        assert p.backoff_for(3, default_ns=250.0) == 2000.0

    def test_explicit_base_overrides_device_default(self):
        p = RetryPolicy(backoff_ns=7.0)
        assert p.backoff_for(0, default_ns=9999.0) == 7.0

    def test_zero_base_means_free_retries(self):
        p = RetryPolicy(backoff_ns=0.0, backoff_multiplier=10.0)
        assert all(p.backoff_for(i, 500.0) == 0.0 for i in range(5))

    def test_unit_multiplier_is_constant_backoff(self):
        p = RetryPolicy(backoff_ns=40.0, backoff_multiplier=1.0)
        assert [p.backoff_for(i, 0.0) for i in range(4)] == [40.0] * 4

    def test_total_backoff_is_geometric_sum(self):
        p = RetryPolicy(backoff_ns=10.0, backoff_multiplier=2.0)
        total = sum(p.backoff_for(i, 0.0) for i in range(6))
        assert total == 10.0 * (2**6 - 1)


def _pool(**plans) -> PoolScanService:
    """A 2-member pool with optional per-member fault plans (dev0=..)."""
    n = max(2, len(plans))
    pool = DevicePool(n, config=toy_config())
    for key, plan in plans.items():
        pool.devices[int(key.removeprefix("dev"))].fault_plan = plan
    return PoolScanService(pool=pool, retry=RetryPolicy(max_attempts=6))


def _drive(svc, rounds=3, seed=0):
    for r in range(rounds):
        for i in range(4):
            svc.submit(_x(600, seed + r * 4 + i), algorithm="scanu", s=32)
        svc.flush()


class TestMemberHealthTransitions:
    def test_initial_state_is_healthy(self):
        svc = _pool()
        for h in svc.member_health():
            assert h.state == HEALTHY
            assert h.retries == 0
            assert h.fault_events == 0
            assert h.failovers == 0
            assert h.slowdown == pytest.approx(1.0)

    def test_fault_free_traffic_stays_healthy(self):
        svc = _pool()
        _drive(svc)
        assert {h.state for h in svc.member_health()} == {HEALTHY}

    def test_transient_faults_degrade_only_the_faulty_member(self):
        # _seed(14): pinned family draw with several transient faults on
        # dev0 (same deflaked pick as the chaos suite)
        svc = _pool(dev0=FaultPlan(seed=_seed(14), transient_rate=0.5))
        _drive(svc)
        health = svc.member_health()
        assert health[0].state == DEGRADED
        assert health[0].fault_events > 0
        assert health[0].retries == health[0].fault_events
        assert health[1].state == HEALTHY

    def test_pure_slowdown_degrades_without_any_fault_event(self):
        svc = _pool(dev0=FaultPlan(mte_slowdown=2.0, vec_slowdown=1.5))
        _drive(svc)
        health = svc.member_health()
        assert health[0].state == DEGRADED
        assert health[0].fault_events == 0
        assert health[0].slowdown > SLOWDOWN_DEGRADED_THRESHOLD

    def test_slowdown_threshold_is_strict(self):
        """A member at exactly the threshold is still healthy — the
        comparison is strictly greater-than, so EWMA jitter right at the
        boundary cannot flap the state."""
        record = MemberHealth(
            member=0,
            state=HEALTHY,
            retries=0,
            fault_events=0,
            failovers=0,
            slowdown=SLOWDOWN_DEGRADED_THRESHOLD,
        )
        assert not record.slowdown > SLOWDOWN_DEGRADED_THRESHOLD
        svc = _pool()
        _drive(svc, rounds=1)
        for h in svc.member_health():
            assert h.slowdown <= SLOWDOWN_DEGRADED_THRESHOLD
            assert h.state == HEALTHY

    def test_permanent_loss_is_dead_and_sticky(self):
        svc = _pool(dev0=FaultPlan(die_at_launch=0))
        _drive(svc)
        assert svc.member_health()[0].state == DEAD
        assert svc.member_health()[1].state in (HEALTHY, DEGRADED)
        # sticky: repairing the device does not resurrect the member
        svc.pool.devices[0].fault_plan = None
        _drive(svc, rounds=1, seed=50)
        assert svc.member_health()[0].state == DEAD

    def test_dead_member_routes_nothing_after_death(self):
        svc = _pool(dev0=FaultPlan(die_at_launch=0))
        _drive(svc)
        groups_at_death = svc.groups_routed[0]
        _drive(svc, rounds=2, seed=60)
        assert svc.groups_routed[0] == groups_at_death
        assert svc.member_health()[1].failovers == 0  # survivor kept its own

    def test_failover_counts_against_the_losing_member(self):
        svc = _pool(dev0=FaultPlan(die_at_launch=0))
        try:
            _drive(svc)
        except DeviceFault:  # first flush may surface the terminal fault
            svc.flush()
        health = svc.member_health()
        assert health[0].state == DEAD
        assert health[0].failovers >= 0  # recorded on the dead member
        # every request still completed exactly once on the survivor
        assert svc.pending == 0

    def test_dead_beats_degraded_in_the_report(self):
        """A member that faulted transiently and then died reports dead,
        not degraded — permanent loss dominates."""
        svc = _pool(
            dev0=FaultPlan(
                seed=_seed(14), transient_rate=0.3, die_at_launch=2
            )
        )
        _drive(svc)
        assert svc.member_health()[0].state == DEAD
