"""Plan cache: keying, hit/miss accounting, build-time validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.core.matrices import batched_tile_rows, padded_length
from repro.errors import ConfigError, KernelError, ShapeError
from repro.hw.config import toy_config
from repro.serve import PlanCache, PlanKey


@pytest.fixture()
def cache() -> PlanCache:
    return PlanCache(ScanContext(toy_config()))


def test_key_normalizes_to_padded_length(cache):
    # every n that pads to the same tile multiple shares one key
    k1 = cache.key_1d("scanu", 1, "fp16", s=32)
    k2 = cache.key_1d("scanu", 1024, "fp16", s=32)
    k3 = cache.key_1d("scanu", 1025, "fp16", s=32)
    assert k1 == k2 == PlanKey("scanu", 1024, "fp16", None, 32, False)
    assert k3.padded == 2048


def test_key_accepts_numpy_dtypes(cache):
    assert cache.key_1d("scanu", 10, np.float16, s=32).dtype == "fp16"
    assert cache.key_1d("scanu", 10, np.dtype(np.int8), s=32).dtype == "int8"
    with pytest.raises(KernelError):
        cache.key_1d("scanu", 10, np.float32, s=32)


def test_key_rejects_unknown_algorithm(cache):
    with pytest.raises(KernelError, match="unknown"):
        cache.key_1d("bogus", 10, "fp16")
    with pytest.raises(KernelError, match="batched"):
        cache.key_batched("mcscan", 4, 10, "fp16")


def test_batched_key_padded_is_stable(cache):
    """The padded row length must be a fixed point: re-keying a padded
    length yields the same key (the service builds plans from keys)."""
    for row_len in [1, 50, 96, 129, 700, 1024, 5000]:
        k = cache.key_batched("scanu", 4, row_len, "fp16", s=32)
        again = cache.key_batched("scanu", 4, k.padded, "fp16", s=32)
        assert again.padded == k.padded
        rows = batched_tile_rows(k.padded, 32)
        assert k.padded == padded_length(k.padded, rows * 32)


def test_hit_miss_accounting_and_reuse(cache):
    p1 = cache.get_1d("scanu", 100, "fp16", s=32)
    p2 = cache.get_1d("scanu", 1000, "fp16", s=32)  # same padded class
    p3 = cache.get_1d("scanu", 2000, "fp16", s=32)  # different class
    assert p1 is p2 and p1 is not p3
    assert (cache.hits, cache.misses) == (1, 2)
    assert len(cache) == 2
    assert cache.stats()["plans"] == 2
    assert cache.gm_bytes > 0
    assert cache.build_host_s > 0


def test_separate_plans_per_algorithm_dtype_exclusive(cache):
    a = cache.get_1d("scanu", 100, "fp16", s=32)
    b = cache.get_1d("scanu", 100, "int8", s=32)
    c = cache.get_1d("mcscan", 100, "fp16", s=32)
    d = cache.get_1d("mcscan", 100, "fp16", s=32, exclusive=True)
    assert len({id(p) for p in (a, b, c, d)}) == 4
    assert cache.misses == 4


def test_build_validates_against_oracle(cache):
    plan = cache.get_1d("scanu", 500, "fp16", s=32)
    assert plan.validated is True
    assert plan.build_max_err == 0.0
    # scanul1 int8 is the documented exemption (int8 L1 staging of C1)
    plan = cache.get_1d("scanul1", 500, "int8", s=32)
    assert plan.validated is None


def test_plan_execute_checks_shape_and_dtype(cache):
    plan = cache.get_1d("scanu", 1024, "fp16", s=32)
    with pytest.raises(KernelError, match="fp16"):
        plan.execute(np.zeros(1024, dtype=np.int8))
    with pytest.raises(ShapeError):
        plan.execute(np.zeros(2048, dtype=np.float16))  # other shape class
    with pytest.raises(ShapeError):
        plan.execute(np.zeros((4, 256), dtype=np.float16))


def test_plan_execute_counts_and_replays(cache):
    plan = cache.get_1d("scanu", 100, "fp16", s=32)
    x = np.ones(100, dtype=np.float16)
    r1 = plan.execute(x)
    r2 = plan.execute(x)
    assert plan.executions == 2
    assert np.array_equal(r1.values, np.arange(1, 101, dtype=np.float32))
    assert np.array_equal(r1.values, r2.values)
    # replay re-schedules the same DAG: identical simulated time
    assert r1.trace.total_ns == r2.trace.total_ns
    assert r1.n_elements == 100


def test_batched_plan_serves_smaller_batches(cache):
    plan = cache.get_batched("scanu", 8, 600, "fp16", s=32)
    x = np.ones((3, 600), dtype=np.float16)
    res = plan.execute(x)
    assert res.values.shape == (3, 600)
    expected = np.tile(np.arange(1, 601, dtype=np.float32), (3, 1))
    assert np.array_equal(res.values, expected)
    with pytest.raises(ShapeError, match="rows"):
        plan.execute(np.ones((9, 600), dtype=np.float16))


def test_exclusive_plan(cache):
    plan = cache.get_1d("mcscan", 64, "fp16", s=32, exclusive=True)
    res = plan.execute(np.ones(64, dtype=np.float16))
    assert np.array_equal(res.values, np.arange(0, 64, dtype=np.float32))


def test_timeline_counters_aggregate(cache):
    a = cache.get_1d("scanu", 900, "fp16", s=32)
    b = cache.get_1d("vector", 900, "fp16")
    for _ in range(3):
        a.execute(np.ones(900, dtype=np.float16))
    b.execute(np.ones(900, dtype=np.float16))
    assert (a.timeline_misses, a.timeline_hits) == (1, 2)
    assert (b.timeline_misses, b.timeline_hits) == (1, 0)
    stats = cache.stats()
    assert stats["timeline_misses"] == 2
    assert stats["timeline_hits"] == 2


def test_plan_execute_des_engine_and_audit(cache):
    plan = cache.get_1d("scanu", 900, "fp16", s=32)
    x = np.ones(900, dtype=np.float16)
    cached = plan.execute(x, audit_timing=True)
    des = plan.execute(x, engine="des", audit_timing=True)
    assert des.trace.total_ns == cached.trace.total_ns
    # the des path never touches the memoization counters
    assert (plan.timeline_misses, plan.timeline_hits) == (1, 0)
    plan.execute(x)
    assert (plan.timeline_misses, plan.timeline_hits) == (1, 1)


class TestLRUEviction:
    def _bounded(self, first_plan_bytes: int) -> PlanCache:
        # budget fits roughly one plan of the probed size, so a second
        # distinct shape class forces an eviction
        return PlanCache(
            ScanContext(toy_config()), gm_budget=first_plan_bytes + 512
        )

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            PlanCache(ScanContext(toy_config()), gm_budget=0)

    def test_unbounded_cache_never_evicts(self, cache):
        for n in (100, 2000, 5000):
            cache.get_1d("scanu", n, "fp16", s=32)
        assert cache.evictions == 0

    def test_eviction_frees_gm_and_counts(self):
        probe = PlanCache(ScanContext(toy_config()))
        probe_bytes = probe.get_1d("scanu", 1024, "fp16", s=32).gm_bytes

        cache = self._bounded(probe_bytes)
        mem = cache.ctx.device.memory
        a = cache.get_1d("scanu", 1024, "fp16", s=32)
        used_with_a = mem.used_bytes
        b = cache.get_1d("scanu", 4096, "fp16", s=32)  # evicts a
        assert cache.evictions == 1
        assert cache.evicted_gm_bytes == a.gm_bytes
        assert a.released and not b.released
        assert len(cache) == 1
        # a's GM really came back: current usage grew by less than b's size
        assert mem.used_bytes < used_with_a + b.gm_bytes
        with pytest.raises(KernelError, match="released"):
            a.execute(np.ones(1024, dtype=np.float16))

    def test_eviction_is_lru_not_fifo(self):
        # budget holds the 1024- and 4096-class plans together but not all
        # three, so exactly one eviction happens — and it must take the
        # least-recently-used plan (b), not the oldest-inserted (a)
        probe = PlanCache(ScanContext(toy_config()))
        probe_bytes = (
            probe.get_1d("scanu", 1024, "fp16", s=32).gm_bytes
            + probe.get_1d("scanu", 4096, "fp16", s=32).gm_bytes
        )

        cache = PlanCache(ScanContext(toy_config()), gm_budget=probe_bytes + 512)
        a = cache.get_1d("scanu", 1024, "fp16", s=32)
        b = cache.get_1d("scanu", 2048, "fp16", s=32)
        cache.get_1d("scanu", 1024, "fp16", s=32)  # touch a: b becomes LRU
        cache.get_1d("scanu", 4096, "fp16", s=32)  # needs room
        assert b.released and not a.released

    def test_most_recent_plan_survives_even_over_budget(self):
        cache = PlanCache(ScanContext(toy_config()), gm_budget=1)
        plan = cache.get_1d("scanu", 1024, "fp16", s=32)
        assert not plan.released  # never evict the plan just requested
        assert len(cache) == 1
        res = plan.execute(np.ones(1024, dtype=np.float16))
        assert np.array_equal(res.values, np.arange(1, 1025, dtype=np.float32))

    def test_evicted_shape_rebuilds_on_next_request(self):
        cache = PlanCache(ScanContext(toy_config()), gm_budget=1)
        a = cache.get_1d("scanu", 1024, "fp16", s=32)
        cache.get_1d("scanu", 4096, "fp16", s=32)  # evicts a
        again = cache.get_1d("scanu", 1024, "fp16", s=32)  # rebuild, not hit
        assert again is not a
        assert cache.misses == 3
        res = again.execute(np.ones(1024, dtype=np.float16))
        assert np.array_equal(res.values, np.arange(1, 1025, dtype=np.float32))

    def test_stats_expose_eviction_counters(self):
        cache = PlanCache(ScanContext(toy_config()), gm_budget=1)
        cache.get_1d("scanu", 1024, "fp16", s=32)
        cache.get_1d("scanu", 4096, "fp16", s=32)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["evicted_gm_bytes"] > 0
