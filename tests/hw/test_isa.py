"""Cost model tests."""

import pytest

from repro.errors import ConfigError, DTypeError, ShapeError
from repro.hw.config import ASCEND_910B4
from repro.hw.isa import CostModel, Op


@pytest.fixture()
def cm():
    return CostModel(ASCEND_910B4)


class TestMmadCost:
    def test_fp16_full_tile(self, cm):
        c = ASCEND_910B4.costs
        cycles = cm.mmad_cycles(128, 128, 128, "fp16")
        fractals = 8 * 8 * 8
        assert cycles == pytest.approx(
            c.mmad_issue_cycles + fractals / c.mmad_efficiency
        )

    def test_int8_double_rate(self, cm):
        c = ASCEND_910B4.costs
        f16 = cm.mmad_cycles(128, 128, 128, "fp16") - c.mmad_issue_cycles
        i8 = cm.mmad_cycles(128, 128, 128, "int8") - c.mmad_issue_cycles
        assert i8 == pytest.approx(f16 / 2)

    def test_partial_fractal_rounds_up(self, cm):
        # 17x17x17 needs 2x2x2 fractals, same as 32x32x32
        assert cm.mmad_cycles(17, 17, 17, "fp16") == cm.mmad_cycles(
            32, 32, 32, "fp16"
        )

    def test_rectangular(self, cm):
        small = cm.mmad_cycles(16, 128, 128, "fp16")
        big = cm.mmad_cycles(128, 128, 128, "fp16")
        assert small < big

    def test_non_cube_dtype(self, cm):
        with pytest.raises(DTypeError):
            cm.mmad_cycles(16, 16, 16, "fp32")

    def test_bad_dims(self, cm):
        with pytest.raises(ShapeError):
            cm.mmad_cycles(0, 16, 16, "fp16")


class TestVectorCost:
    def test_issue_overhead_dominates_small_ops(self, cm):
        c = ASCEND_910B4.costs
        one_byte = cm.vector_cycles(1)
        assert one_byte == pytest.approx(c.vec_issue_cycles + 1 / c.vec_bytes_per_cycle)

    def test_per_instruction_overhead_scales(self, cm):
        # this asymmetry is the paper's Section 4.1 insight: s instructions
        # over the same bytes cost far more than one
        bytes_total = 32768
        one = cm.vector_cycles(bytes_total, n_instructions=1)
        many = cm.vector_cycles(bytes_total, n_instructions=128)
        assert many - one == pytest.approx(127 * ASCEND_910B4.costs.vec_issue_cycles)

    def test_invalid_args(self, cm):
        with pytest.raises(ConfigError):
            cm.vector_cycles(-1)
        with pytest.raises(ConfigError):
            cm.vector_cycles(10, n_instructions=0)


class TestFlows:
    def test_effective_bytes_all_hit(self, cm):
        mem = ASCEND_910B4.memory
        eff = cm.flow_effective_bytes(1000, 1000)
        assert eff == pytest.approx(
            1000 * mem.hbm_bandwidth_gbps / mem.l2_bandwidth_gbps
        )

    def test_effective_bytes_all_miss_pays_dram_inefficiency(self, cm):
        mem = ASCEND_910B4.memory
        eff = cm.flow_effective_bytes(1000, 0)
        assert eff == pytest.approx(1000 / mem.dram_efficiency)
        assert eff > 1000

    def test_effective_bytes_mixed(self, cm):
        all_hit = cm.flow_effective_bytes(1000, 1000)
        all_miss = cm.flow_effective_bytes(1000, 0)
        mixed = cm.flow_effective_bytes(1000, 500)
        assert all_hit < mixed < all_miss

    def test_hit_bytes_validated(self, cm):
        with pytest.raises(ConfigError):
            cm.flow_effective_bytes(100, 200)

    def test_mte_fixed_cost(self, cm):
        assert cm.mte_fixed_ns() > ASCEND_910B4.memory.gm_latency_ns


class TestOp:
    def test_flow_detection(self):
        flow = Op(op_id=0, engine=0, kind="mte_in", label="x", gm_bytes=64)
        fixed = Op(op_id=1, engine=0, kind="vec", label="y", cycles=10)
        assert flow.is_flow and not fixed.is_flow

    def test_barrier_detection(self):
        b = Op(op_id=0, engine=0, kind="barrier", label="SyncAll")
        assert b.is_barrier
