"""Max-min waterfilling tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.hbm import equal_waterfill, waterfill


class TestWaterfill:
    def test_empty(self):
        assert waterfill([], 100.0) == []

    def test_single_flow_capped_by_demand(self):
        assert waterfill([30.0], 100.0) == [30.0]

    def test_single_flow_capped_by_pool(self):
        assert waterfill([300.0], 100.0) == [100.0]

    def test_equal_split(self):
        rates = waterfill([100.0, 100.0, 100.0, 100.0], 100.0)
        assert rates == pytest.approx([25.0] * 4)

    def test_max_min_fairness(self):
        # the small flow gets its demand; the leftovers split evenly
        rates = waterfill([10.0, 100.0, 100.0], 100.0)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == rates[2] == pytest.approx(45.0)

    def test_conservation(self):
        rates = waterfill([50.0, 70.0, 90.0], 120.0)
        assert sum(rates) <= 120.0 + 1e-9
        for r, d in zip(rates, [50.0, 70.0, 90.0]):
            assert r <= d + 1e-9

    def test_underloaded_pool(self):
        rates = waterfill([10.0, 20.0], 1000.0)
        assert rates == pytest.approx([10.0, 20.0])

    def test_zero_pool(self):
        assert waterfill([10.0, 20.0], 0.0) == [0.0, 0.0]

    def test_order_preserved(self):
        # result order matches input order, not sorted order
        rates = waterfill([100.0, 5.0], 50.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[0] == pytest.approx(45.0)


class TestEqualWaterfill:
    """The compiled engine's fast path must be *bit-identical* to the
    general solver on the equal-cap case (ns-identical timelines depend
    on it), so every comparison here is ==, not approx."""

    def test_empty(self):
        assert equal_waterfill(0, 100.0, 800.0) == []

    def test_zero_pool(self):
        assert equal_waterfill(3, 100.0, 0.0) == [0.0, 0.0, 0.0]

    def test_single_flow(self):
        assert equal_waterfill(1, 30.0, 100.0) == waterfill([30.0], 100.0)
        assert equal_waterfill(1, 300.0, 100.0) == waterfill([300.0], 100.0)

    def test_contended_case_matches_solver_exactly(self):
        # 800/3 is inexact: the general solver's sequential remainders
        # differ per position by ulps, and the fast path must reproduce
        # exactly those values
        assert equal_waterfill(3, 460.8, 800.0) == waterfill([460.8] * 3, 800.0)

    @given(
        n=st.integers(min_value=0, max_value=64),
        cap=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        pool=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    def test_matches_general_solver_bitwise(self, n, cap, pool):
        assert equal_waterfill(n, cap, pool) == waterfill([cap] * n, pool)
