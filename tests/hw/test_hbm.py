"""Max-min waterfilling tests."""

import pytest

from repro.hw.hbm import waterfill


class TestWaterfill:
    def test_empty(self):
        assert waterfill([], 100.0) == []

    def test_single_flow_capped_by_demand(self):
        assert waterfill([30.0], 100.0) == [30.0]

    def test_single_flow_capped_by_pool(self):
        assert waterfill([300.0], 100.0) == [100.0]

    def test_equal_split(self):
        rates = waterfill([100.0, 100.0, 100.0, 100.0], 100.0)
        assert rates == pytest.approx([25.0] * 4)

    def test_max_min_fairness(self):
        # the small flow gets its demand; the leftovers split evenly
        rates = waterfill([10.0, 100.0, 100.0], 100.0)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == rates[2] == pytest.approx(45.0)

    def test_conservation(self):
        rates = waterfill([50.0, 70.0, 90.0], 120.0)
        assert sum(rates) <= 120.0 + 1e-9
        for r, d in zip(rates, [50.0, 70.0, 90.0]):
            assert r <= d + 1e-9

    def test_underloaded_pool(self):
        rates = waterfill([10.0, 20.0], 1000.0)
        assert rates == pytest.approx([10.0, 20.0])

    def test_zero_pool(self):
        assert waterfill([10.0, 20.0], 0.0) == [0.0, 0.0]

    def test_order_preserved(self):
        # result order matches input order, not sorted order
        rates = waterfill([100.0, 5.0], 50.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[0] == pytest.approx(45.0)
