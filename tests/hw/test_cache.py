"""L2 cache model tests."""

import pytest

from repro.hw.cache import L2Cache
from repro.hw.config import DeviceConfig, MemoryConfig


def small_cache(capacity_chunks=4, chunk=1024):
    cfg = DeviceConfig(
        memory=MemoryConfig(
            l2_capacity_bytes=capacity_chunks * chunk, l2_chunk_bytes=chunk
        )
    )
    return L2Cache(cfg)


class TestAccess:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        hit, miss = c.access(0, 512)
        assert (hit, miss) == (0, 512)
        hit, miss = c.access(0, 512)
        assert (hit, miss) == (512, 0)

    def test_partial_chunk_spans(self):
        c = small_cache(chunk=1024)
        hit, miss = c.access(512, 1024)  # spans two chunks
        assert miss == 1024
        hit, miss = c.access(512, 1024)
        assert hit == 1024

    def test_zero_bytes(self):
        c = small_cache()
        assert c.access(0, 0) == (0, 0)

    def test_lru_eviction(self):
        c = small_cache(capacity_chunks=2, chunk=1024)
        c.access(0, 1024)  # chunk 0
        c.access(1024, 1024)  # chunk 1
        c.access(2048, 1024)  # chunk 2 evicts chunk 0
        hit, miss = c.access(0, 1024)
        assert miss == 1024

    def test_lru_touch_refreshes(self):
        c = small_cache(capacity_chunks=2, chunk=1024)
        c.access(0, 1024)
        c.access(1024, 1024)
        c.access(0, 1024)  # refresh chunk 0
        c.access(2048, 1024)  # evicts chunk 1, not 0
        hit, _ = c.access(0, 1024)
        assert hit == 1024

    def test_hit_ratio_statistics(self):
        c = small_cache()
        c.access(0, 1024)
        c.access(0, 1024)
        assert c.hit_ratio == pytest.approx(0.5)
        assert c.hit_bytes == 1024
        assert c.miss_bytes == 1024


class TestWarmFlush:
    def test_warm_marks_resident_without_stats(self):
        c = small_cache()
        c.warm(0, 2048)
        assert c.hits == c.misses == 0
        hit, miss = c.access(0, 2048)
        assert miss == 0

    def test_warm_respects_capacity(self):
        c = small_cache(capacity_chunks=2, chunk=1024)
        c.warm(0, 8 * 1024)
        assert len(c) == 2

    def test_flush(self):
        c = small_cache()
        c.warm(0, 1024)
        c.flush()
        _, miss = c.access(0, 1024)
        assert miss == 1024
