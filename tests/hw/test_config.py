"""Device configuration tests."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hw.config import (
    ASCEND_910B4,
    CostConfig,
    DeviceConfig,
    MemoryConfig,
    toy_config,
)


class TestPreset910B4:
    def test_core_counts_match_paper(self):
        # "910B4 contains 20 Cube Units and 40 Vector Units" (Section 6)
        assert ASCEND_910B4.num_cube_cores == 20
        assert ASCEND_910B4.num_vector_cores == 40
        assert ASCEND_910B4.vector_cores_per_ai_core == 2

    def test_hbm_peak_matches_paper(self):
        # "peak bandwidth is 800GB/s for 910B4" (Section 6.1)
        assert ASCEND_910B4.memory.hbm_bandwidth_gbps == 800.0
        assert ASCEND_910B4.hbm_bytes_per_ns == 800.0

    def test_buffer_capacities(self):
        b = ASCEND_910B4.buffers
        assert b.ub_bytes == 192 * 1024
        assert b.l0a_bytes == b.l0b_bytes == 64 * 1024
        assert b.l0c_bytes == 256 * 1024
        assert b.l1_bytes == 1024 * 1024

    def test_cycle_conversion(self):
        assert ASCEND_910B4.cycles_to_ns(ASCEND_910B4.clock_ghz) == pytest.approx(1.0)
        assert ASCEND_910B4.cycle_ns == pytest.approx(1 / 1.8)

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ASCEND_910B4.num_ai_cores = 5


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            DeviceConfig(num_ai_cores=0)

    def test_rejects_zero_vector_ratio(self):
        with pytest.raises(ConfigError):
            DeviceConfig(vector_cores_per_ai_core=0)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ConfigError):
            DeviceConfig(clock_ghz=0.0)

    def test_rejects_l2_slower_than_hbm(self):
        with pytest.raises(ConfigError):
            DeviceConfig(
                memory=MemoryConfig(hbm_bandwidth_gbps=800, l2_bandwidth_gbps=400)
            )

    def test_rejects_bad_dram_efficiency(self):
        with pytest.raises(ConfigError):
            DeviceConfig(memory=MemoryConfig(dram_efficiency=0.0))
        with pytest.raises(ConfigError):
            DeviceConfig(memory=MemoryConfig(dram_efficiency=1.5))


class TestDerived:
    def test_with_cores(self):
        cfg = ASCEND_910B4.with_cores(4)
        assert cfg.num_ai_cores == 4
        assert cfg.num_vector_cores == 8
        # original untouched
        assert ASCEND_910B4.num_ai_cores == 20

    def test_toy_config_is_small(self):
        cfg = toy_config()
        assert cfg.num_ai_cores == 2
        assert cfg.memory.l2_capacity_bytes < ASCEND_910B4.memory.l2_capacity_bytes

    def test_mte_link_rate(self):
        c = ASCEND_910B4
        assert c.mte_link_bytes_per_ns == pytest.approx(
            c.costs.mte_link_bytes_per_cycle * c.clock_ghz
        )

    def test_cost_defaults_sane(self):
        costs = CostConfig()
        assert costs.vec_issue_cycles > 0
        assert costs.mmad_fractal == 16
        assert costs.mmad_int8_rate == 2.0
        assert 0 < costs.mmad_efficiency <= 1.0
