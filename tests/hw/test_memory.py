"""Global memory allocator and tensor handle tests."""

import numpy as np
import pytest

from repro.errors import AllocationError, ShapeError
from repro.hw.config import toy_config
from repro.hw.memory import GlobalMemory


@pytest.fixture()
def mem():
    return GlobalMemory(toy_config())


class TestAlloc:
    def test_zero_initialised(self, mem):
        t = mem.alloc("x", 100, "fp16")
        assert np.all(t.to_numpy() == 0)

    def test_alignment(self, mem):
        a = mem.alloc("a", 3, "int8")
        b = mem.alloc("b", 3, "int8")
        assert a.base_addr % GlobalMemory.ALIGN == 0
        assert b.base_addr % GlobalMemory.ALIGN == 0
        assert b.base_addr > a.base_addr

    def test_capacity_enforced(self, mem):
        with pytest.raises(AllocationError):
            mem.alloc("huge", mem.capacity + 1, "int8")

    def test_2d_shape(self, mem):
        t = mem.alloc("m", (4, 8), "fp16")
        assert t.shape == (4, 8)
        assert t.num_elements == 32
        assert t.nbytes == 64

    def test_unique_ids(self, mem):
        a = mem.alloc("a", 4, "fp16")
        b = mem.alloc("b", 4, "fp16")
        assert a.tensor_id != b.tensor_id


class TestHostAccess:
    def test_write_roundtrip(self, mem, rng):
        t = mem.alloc("x", 64, "fp16")
        vals = rng.standard_normal(64).astype(np.float16)
        t.write(vals)
        assert np.array_equal(t.to_numpy(), vals)

    def test_write_casts(self, mem):
        t = mem.alloc("x", 4, "int32")
        t.write(np.array([1.7, 2.0, 3.0, 4.0]))
        assert t.to_numpy().dtype == np.int32

    def test_write_wrong_size(self, mem):
        t = mem.alloc("x", 4, "fp16")
        with pytest.raises(ShapeError):
            t.write(np.zeros(5))

    def test_to_numpy_is_a_copy(self, mem):
        t = mem.alloc("x", 4, "fp16")
        out = t.to_numpy()
        out[0] = 9
        assert t.to_numpy()[0] == 0


class TestSlices:
    def test_slice_bounds(self, mem):
        t = mem.alloc("x", 10, "fp16")
        with pytest.raises(ShapeError):
            t.slice(8, 4)
        with pytest.raises(ShapeError):
            t.slice(-1, 2)

    def test_slice_view_aliases_storage(self, mem):
        t = mem.alloc("x", 10, "fp16")
        t.write(np.arange(10))
        s = t.slice(2, 4)
        assert np.array_equal(s.array, [2, 3, 4, 5])
        s.array[:] = 0
        assert t.to_numpy()[2] == 0

    def test_byte_start(self, mem):
        t = mem.alloc("x", 10, "fp32")
        s = t.slice(3, 2)
        assert s.byte_start == t.base_addr + 12
        assert s.nbytes == 8

    def test_sub_slice(self, mem):
        t = mem.alloc("x", 10, "fp16")
        t.write(np.arange(10))
        s = t.slice(2, 6).sub(1, 3)
        assert np.array_equal(s.array, [3, 4, 5])
        with pytest.raises(ShapeError):
            t.slice(2, 6).sub(4, 4)

    def test_row(self, mem):
        t = mem.alloc("m", (3, 4), "fp16")
        t.write(np.arange(12).reshape(3, 4))
        assert np.array_equal(t.row(1).array, [4, 5, 6, 7])
        with pytest.raises(ShapeError):
            t.row(3)
        flat = mem.alloc("f", 4, "fp16")
        with pytest.raises(ShapeError):
            flat.row(0)

    def test_prefix_shares_backing(self, mem):
        t = mem.alloc("x", 10, "fp16")
        t.write(np.arange(10))
        p = t.prefix(4)
        assert p.num_elements == 4
        assert p.tensor_id == t.tensor_id
        assert p.base_addr == t.base_addr
        p.flat[0] = 99
        assert t.to_numpy()[0] == 99
        with pytest.raises(ShapeError):
            t.prefix(11)


class TestMarkRelease:
    def test_release_frees_space(self, mem):
        mem.alloc("keep", 128, "fp16")
        mark = mem.mark()
        mem.alloc("tmp", 1024, "fp16")
        used = mem.used_bytes
        mem.release(mark)
        assert mem.used_bytes < used
        assert len(mem.tensors) == 1

    def test_stale_mark_rejected(self, mem):
        mark = mem.mark()
        mem.alloc("a", 8, "fp16")
        mem.release(mark)
        with pytest.raises(AllocationError):
            mem.release((mark[0] + 512, mark[1] + 1))

    def test_reset(self, mem):
        mem.alloc("a", 8, "fp16")
        mem.reset()
        assert mem.used_bytes == 0
        assert mem.tensors == ()


class TestFree:
    def test_free_returns_bytes_and_updates_accounting(self, mem):
        a = mem.alloc("a", 1024, "fp16")
        used = mem.used_bytes
        freed = mem.free(a)
        assert freed == 2048  # 1024 fp16 elements, already 512-aligned
        assert mem.used_bytes == used - freed
        assert all(t is not a for t in mem.tensors)

    def test_freed_hole_is_reused_first_fit(self, mem):
        a = mem.alloc("a", 1024, "fp16")
        mem.alloc("b", 1024, "fp16")  # pins the frontier above a
        addr = a.base_addr
        mem.free(a)
        c = mem.alloc("c", 1024, "fp16")  # exact fit into a's hole
        assert c.base_addr == addr

    def test_larger_hole_is_split(self, mem):
        a = mem.alloc("a", 2048, "fp16")
        mem.alloc("b", 64, "fp16")
        addr = a.base_addr
        mem.free(a)
        c = mem.alloc("c", 256, "fp16")  # 512-byte slice of the 4096 hole
        d = mem.alloc("d", 256, "fp16")  # next slice of the same hole
        assert c.base_addr == addr
        assert d.base_addr == addr + 512

    def test_adjacent_holes_coalesce(self, mem):
        a = mem.alloc("a", 256, "fp16")
        b = mem.alloc("b", 256, "fp16")
        mem.alloc("pin", 64, "fp16")
        mem.free(a)
        mem.free(b)  # holes coalesce into one 1024-byte span
        c = mem.alloc("c", 512, "fp16")
        assert c.base_addr == a.base_addr

    def test_frontier_hole_lowers_frontier(self, mem):
        base = mem.used_bytes
        a = mem.alloc("a", 1024, "fp16")
        mem.free(a)  # hole touches the frontier: bump pointer retreats
        assert mem.used_bytes == base
        b = mem.alloc("b", 4096, "fp16")
        assert b.base_addr == a.base_addr

    def test_double_free_rejected(self, mem):
        a = mem.alloc("a", 64, "fp16")
        mem.free(a)
        with pytest.raises(AllocationError, match="not an active allocation"):
            mem.free(a)

    def test_free_of_view_rejected(self, mem):
        a = mem.alloc("a", 64, "fp16")
        with pytest.raises(AllocationError):
            mem.free(a.prefix(8))

    def test_double_free_message_names_the_cause(self, mem):
        a = mem.alloc("a", 64, "fp16")
        mem.free(a)
        with pytest.raises(AllocationError, match="double free"):
            mem.free(a)

    def test_free_of_view_message_points_at_parent(self, mem):
        a = mem.alloc("a", 64, "fp16")
        with pytest.raises(AllocationError, match="view"):
            mem.free(a.prefix(8))

    def test_free_of_released_handle_names_the_cause(self, mem):
        mark = mem.mark()
        a = mem.alloc("a", 64, "fp16")
        mem.release(mark)
        with pytest.raises(AllocationError, match="mark/release"):
            mem.free(a)

    def test_free_of_foreign_tensor_rejected(self, mem):
        other = GlobalMemory(toy_config())
        t = other.alloc("elsewhere", 64, "fp16")
        with pytest.raises(AllocationError, match="foreign"):
            mem.free(t)

    def test_rejected_free_does_not_corrupt_the_hole_list(self, mem):
        a = mem.alloc("a", 256, "fp16")
        mem.alloc("pin", 64, "fp16")
        mem.free(a)
        holes_before = mem.used_bytes
        with pytest.raises(AllocationError):
            mem.free(a)  # double free must not re-insert a's hole
        assert mem.used_bytes == holes_before
        b = mem.alloc("b", 256, "fp16")  # the one real hole, reused once
        assert b.base_addr == a.base_addr
        c = mem.alloc("c", 256, "fp16")
        assert c.base_addr > b.base_addr

    def test_free_below_outstanding_mark_rejected_up_front(self, mem):
        """Freeing a pre-mark tensor would shift the indices release()
        snapshotted; the allocator must refuse immediately instead of
        letting release() drop the wrong tensors later."""
        a = mem.alloc("a", 64, "fp16")
        mark = mem.mark()
        keep = mem.alloc("keep", 64, "fp16")
        with pytest.raises(AllocationError, match="outstanding mark"):
            mem.free(a)
        # the refused free left everything intact: release drops only `keep`
        mem.release(mark)
        assert [t.name for t in mem.tensors] == ["a"]
        assert all(t is not keep for t in mem.tensors)
        mem.free(a)  # and a is freeable once the mark is gone

    def test_free_of_post_mark_tensor_allowed_under_mark(self, mem):
        mem.alloc("a", 64, "fp16")
        mark = mem.mark()
        tmp = mem.alloc("tmp", 64, "fp16")
        mem.free(tmp)  # allocated after the mark: safe to free early
        mem.release(mark)
        assert [t.name for t in mem.tensors] == ["a"]

    def test_release_reopens_holes_consumed_by_dropped_tensors(self, mem):
        """A tensor allocated from a pre-mark hole and then dropped by
        release() must give its bytes back (no permanent leak)."""
        a = mem.alloc("a", 1024, "fp16")
        mem.alloc("pin", 64, "fp16")
        mem.free(a)  # hole below the future mark
        baseline = mem.used_bytes
        mark = mem.mark()
        mem.alloc("tmp", 1024, "fp16")  # reuses a's hole (below mark addr)
        mem.release(mark)
        assert mem.used_bytes == baseline
        c = mem.alloc("c", 1024, "fp16")
        assert c.base_addr == a.base_addr


# ---------------------------------------------------------------------------
# Property-based suite: the allocator under randomly interleaved scripts.
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: (opcode, argument) pairs interpreted by _run_script; opcodes below
#: _ALLOC_BIAS allocate, the rest free a live tensor (argument picks which)
_SCRIPTS = st.lists(
    st.tuples(st.integers(0, 99), st.integers(0, 2**16 - 1)),
    min_size=1,
    max_size=60,
)
_ALLOC_BIAS = 55

_PROP_DTYPES = ("fp16", "int8", "fp32")


def _aligned(nbytes: int) -> int:
    a = GlobalMemory.ALIGN
    return -(-max(nbytes, 1) // a) * a


def _pattern(n: int, serial: int, dtype: str) -> np.ndarray:
    """A per-allocation fingerprint that survives every dtype."""
    return ((np.arange(n) + serial) % 97 - 48).astype(
        {"fp16": np.float16, "int8": np.int8, "fp32": np.float32}[dtype]
    )


def _check_allocator_invariants(mem, live, patterns):
    """The whole-allocator contract, asserted after every script step."""
    spans = sorted(
        (t.base_addr, t.base_addr + _aligned(t.nbytes)) for t in live
    )
    for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
        assert a_end <= b_start, "overlapping live allocations"
    # every byte below the frontier is either a hole or a live allocation
    assert mem.used_bytes == sum(end - start for start, end in spans)
    holes = mem._holes
    for (a, asize), (b, _) in zip(holes, holes[1:]):
        assert a + asize < b, "adjacent holes left uncoalesced"
    if holes:
        last_addr, last_size = holes[-1]
        assert last_addr + last_size < mem._next_addr, (
            "hole touching the frontier was not retired"
        )
    for t in live:
        assert np.array_equal(t.to_numpy().reshape(-1), patterns[id(t)]), (
            f"allocation {t.name!r} lost its written contents"
        )


class TestAllocFreeProperties:
    """Random interleaved alloc/free scripts against a model of the
    allocator: no two live allocations overlap, adjacent holes coalesce,
    a hole reaching the frontier retreats it, ``used_bytes`` equals the
    sum of aligned live sizes, and written data survives any free order.
    """

    @given(script=_SCRIPTS)
    @settings(max_examples=50, derandomize=True, deadline=None)
    def test_interleaved_alloc_free_script(self, script):
        mem = GlobalMemory(toy_config())
        live: list = []
        patterns: dict[int, np.ndarray] = {}
        for serial, (opcode, arg) in enumerate(script):
            if opcode < _ALLOC_BIAS or not live:
                dtype = _PROP_DTYPES[arg % len(_PROP_DTYPES)]
                n = arg % 1500 + 1
                t = mem.alloc(f"t{serial}", n, dtype)
                vals = _pattern(n, serial, dtype)
                t.write(vals)
                live.append(t)
                patterns[id(t)] = vals
            else:
                t = live.pop(arg % len(live))
                freed = mem.free(t)
                assert freed == _aligned(t.nbytes)
                del patterns[id(t)]
            _check_allocator_invariants(mem, live, patterns)
        # drain: whatever the free order, all holes coalesce into the
        # frontier and the allocator returns to empty
        while live:
            t = live.pop(len(live) // 2)
            mem.free(t)
            del patterns[id(t)]
            _check_allocator_invariants(mem, live, patterns)
        assert mem.used_bytes == 0
        assert mem._next_addr == 0
        assert mem._holes == []

    @given(script=_SCRIPTS)
    @settings(max_examples=25, derandomize=True, deadline=None)
    def test_double_free_always_diagnosed_and_harmless(self, script):
        """Re-freeing any handle raises the 'double free' diagnostic and
        leaves the allocator byte-for-byte unchanged."""
        mem = GlobalMemory(toy_config())
        live: list = []
        retired: list = []
        for serial, (opcode, arg) in enumerate(script):
            if opcode < _ALLOC_BIAS or not live:
                live.append(mem.alloc(f"t{serial}", arg % 800 + 1, "fp16"))
            else:
                t = live.pop(arg % len(live))
                mem.free(t)
                retired.append(t)
            if retired:
                stale = retired[arg % len(retired)]
                used, frontier = mem.used_bytes, mem._next_addr
                holes = list(mem._holes)
                with pytest.raises(AllocationError, match="double free"):
                    mem.free(stale)
                assert (mem.used_bytes, mem._next_addr) == (used, frontier)
                assert mem._holes == holes

    @given(script=_SCRIPTS)
    @settings(max_examples=25, derandomize=True, deadline=None)
    def test_view_free_always_diagnosed_and_harmless(self, script):
        """Freeing a prefix view of any live tensor is always rejected
        with the 'view' diagnostic and never mutates allocator state."""
        mem = GlobalMemory(toy_config())
        live: list = []
        for serial, (opcode, arg) in enumerate(script):
            if opcode < _ALLOC_BIAS or not live:
                live.append(mem.alloc(f"t{serial}", arg % 800 + 2, "fp16"))
            else:
                t = live[arg % len(live)]
                view = t.prefix(arg % (t.num_elements - 1) + 1)
                used, frontier = mem.used_bytes, mem._next_addr
                with pytest.raises(AllocationError, match="view"):
                    mem.free(view)
                assert (mem.used_bytes, mem._next_addr) == (used, frontier)
                assert len(mem.tensors) == len(live)

    @given(
        rounds=st.lists(
            st.lists(st.integers(1, 1200), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        ),
        base_sizes=st.lists(st.integers(1, 600), min_size=1, max_size=4),
    )
    @settings(max_examples=25, derandomize=True, deadline=None)
    def test_mark_release_restores_accounting(self, rounds, base_sizes):
        """mark/release scopes around random temporary allocations always
        restore used_bytes and the live-tensor set exactly, and never
        disturb pre-mark data."""
        mem = GlobalMemory(toy_config())
        base = []
        for i, n in enumerate(base_sizes):
            t = mem.alloc(f"base{i}", n, "fp16")
            t.write(_pattern(n, i, "fp16"))
            base.append(t)
        baseline = mem.used_bytes
        names = [t.name for t in mem.tensors]
        for r, sizes in enumerate(rounds):
            mark = mem.mark()
            temps = [
                mem.alloc(f"tmp{r}_{j}", n, "fp16")
                for j, n in enumerate(sizes)
            ]
            assert mem.used_bytes > baseline
            if len(temps) > 1:  # post-mark frees stay legal under a mark
                mem.free(temps.pop())
            mem.release(mark)
            assert mem.used_bytes == baseline
            assert [t.name for t in mem.tensors] == names
        for i, t in enumerate(base):
            assert np.array_equal(
                t.to_numpy().reshape(-1), _pattern(t.num_elements, i, "fp16")
            )
