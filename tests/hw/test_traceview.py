"""ASCII timeline renderer tests."""

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.core.reference import exact_fp16_scan_input
from repro.hw.traceview import KIND_GLYPHS, render_timeline


@pytest.fixture(scope="module")
def mcscan_trace():
    ctx = ScanContext()
    rng = np.random.default_rng(0)
    x, _ = exact_fp16_scan_input(1 << 18, rng)
    return ctx.scan(x, algorithm="mcscan").trace


class TestRenderTimeline:
    def test_contains_header_and_legend(self, mcscan_trace):
        out = render_timeline(mcscan_trace, width=60)
        assert "timeline:" in out
        assert "legend:" in out

    def test_row_width(self, mcscan_trace):
        out = render_timeline(mcscan_trace, width=50, max_engines=4)
        glyphs = set(KIND_GLYPHS.values()) | {"."}
        rows = [
            line.split()[-1]
            for line in out.splitlines()
            if line.strip().startswith(("aic", "aiv", "dev"))
            and set(line.split()[-1]) <= glyphs
        ]
        assert rows
        for row in rows:
            assert len(row) == 50

    def test_max_engines_cap(self, mcscan_trace):
        out = render_timeline(mcscan_trace, width=40, max_engines=3)
        body = [
            line for line in out.splitlines()
            if line.strip().startswith(("aic", "aiv", "dev"))
        ]
        assert len(body) <= 3
        assert "more engines hidden" in out

    def test_glyphs_present(self, mcscan_trace):
        """MCScan shows matmuls (cube cores) and chain propagation (vec)."""
        out = render_timeline(mcscan_trace, width=120, max_engines=200)
        assert KIND_GLYPHS["mmad"] in out
        assert KIND_GLYPHS["vec_chain"] in out
        assert KIND_GLYPHS["mte_in"] in out

    def test_empty_trace(self, toy_device):
        from repro.hw.scheduler import Timeline
        from repro.hw.trace import Trace

        empty = Trace(
            ops=[], timeline=Timeline([], [], 0.0),
            engines=[], config=toy_device.config,
        )
        assert render_timeline(empty) == "(empty trace)"
