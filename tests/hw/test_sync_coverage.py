"""Sync-coverage verification: every cross-engine data dependency in the
emitted op DAGs must be ordered by a queue edge, an explicit dep, or a
SyncAll barrier (see repro.verify.sync).

The checker works from the independent per-op access log recorded under
``audit_hazards=True``, so these tests catch hazard-derivation bugs that
the numerical tests cannot (a missing edge usually still computes the
right answer — emission order happens to match — but would be a race on
real hardware)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import (
    BATCHED_ALGORITHMS,
    SCAN_ALGORITHMS,
    SCAN_STRATEGIES,
    ScanContext,
)
from repro.core.copykernel import CopyKernel
from repro.errors import KernelError
from repro.hw.config import toy_config
from repro.hw.device import AscendDevice, HazardAccess
from repro.hw.isa import Op
from repro.hw.scheduler import Program
from repro.verify import check_accesses, check_sync_coverage


@pytest.fixture()
def audit_ctx() -> ScanContext:
    return ScanContext(device=AscendDevice(toy_config(), audit_hazards=True))


def _assert_covered(traced, min_pairs: int = 1) -> None:
    report = check_sync_coverage(traced)
    assert report.ok, [v.describe(traced.program) for v in report.violations[:5]]
    # sanity: the kernel actually had cross-op conflicts to verify
    assert report.checked_pairs >= min_pairs
    assert report.accesses > 0


@pytest.mark.parametrize("algorithm", SCAN_ALGORITHMS)
@pytest.mark.parametrize("dtype", ["fp16", "int8"])
def test_scan_kernels_fully_synchronized(audit_ctx, algorithm, dtype):
    plan = audit_ctx.build_plan(
        algorithm=algorithm, n=3000, dtype=dtype, s=32, validate=False
    )
    _assert_covered(plan.traced)


@pytest.mark.parametrize("algorithm", BATCHED_ALGORITHMS)
def test_batched_kernels_fully_synchronized(audit_ctx, algorithm):
    plan = audit_ctx.build_batched_plan(
        algorithm=algorithm, batch=5, row_len=2000, dtype="fp16", s=32,
        validate=False,
    )
    _assert_covered(plan.traced)


@pytest.mark.parametrize("strategy", [s for s in SCAN_STRATEGIES if s != "mcscan"])
def test_strategy_kernels_fully_synchronized(audit_ctx, strategy):
    # strategies have no plan API; trace their kernels directly
    from repro.core.strategies import (
        LookbackScanKernel,
        RSSScanKernel,
        SSAScanKernel,
    )

    cls = {
        "ssa": SSAScanKernel,
        "rss": RSSScanKernel,
        "lookback": LookbackScanKernel,
    }[strategy]
    ctx = audit_ctx
    s = 32
    consts = ctx.constants(s, "fp16")
    n_tiles = 3
    x = ctx.device.alloc("x", (n_tiles * s * s,), consts.dtype)
    x.write(np.zeros(n_tiles * s * s, dtype=np.float16))
    from repro.hw.datatypes import as_dtype

    y = ctx.device.alloc("y", (n_tiles * s * s,), as_dtype("fp32"))
    bd = min(ctx.config.num_ai_cores, n_tiles)
    lanes = bd * ctx.config.vector_cores_per_ai_core
    r = ctx.device.alloc("r", (lanes,), as_dtype("fp32"))
    traced = ctx.device.trace_kernel(cls(x, y, r, consts, s, bd))
    _assert_covered(traced)


def test_mcscan_exclusive_fully_synchronized(audit_ctx):
    plan = audit_ctx.build_plan(
        algorithm="mcscan", n=5000, dtype="fp16", s=32, exclusive=True,
        validate=False,
    )
    _assert_covered(plan.traced)


def test_copy_kernel_fully_synchronized(audit_ctx):
    ctx = audit_ctx
    from repro.hw.datatypes import as_dtype

    x = ctx.device.alloc("cx", (4096,), as_dtype("fp16"))
    x.write(np.zeros(4096, dtype=np.float16))
    y = ctx.device.alloc("cy", (4096,), as_dtype("fp16"))
    traced = ctx.device.trace_kernel(CopyKernel(x, y, 2, 1024))
    _assert_covered(traced)


def test_audit_disabled_raises(toy_device):
    ctx = ScanContext(device=toy_device)
    plan = ctx.build_plan(algorithm="scanu", n=1024, dtype="fp16", s=32,
                          validate=False)
    assert plan.traced.audit is None
    with pytest.raises(KernelError, match="audit_hazards"):
        check_sync_coverage(plan.traced)


def _synthetic(deps: tuple) -> tuple:
    """Two ops on different engines, write then read of one GM interval."""
    program = Program(2)
    program.add(Op(op_id=0, engine=0, kind="flow", label="store", cycles=1.0))
    program.add(
        Op(op_id=1, engine=1, kind="flow", label="load", deps=deps, cycles=1.0)
    )
    audit = [
        HazardAccess(0, "gm", 7, 0, 128, True),
        HazardAccess(1, "gm", 7, 0, 128, False),
    ]
    return program, audit


def test_negative_control_missing_edge_detected():
    program, audit = _synthetic(deps=())
    report = check_accesses(program, audit)
    assert not report.ok
    assert len(report.violations) == 1
    v = report.violations[0]
    assert (v.earlier, v.later, v.space) == (0, 1, "gm")
    assert "engine" in v.describe(program)


def test_negative_control_edge_restores_coverage():
    program, audit = _synthetic(deps=(0,))
    assert check_accesses(program, audit).ok


def test_same_engine_queue_edge_orders_conflicts():
    # same engine, no explicit dep: the in-order queue is the ordering
    program = Program(1)
    program.add(Op(op_id=0, engine=0, kind="flow", label="store", cycles=1.0))
    program.add(Op(op_id=1, engine=0, kind="flow", label="load", cycles=1.0))
    audit = [
        HazardAccess(0, "gm", 3, 0, 64, True),
        HazardAccess(1, "gm", 3, 0, 64, False),
    ]
    assert check_accesses(program, audit).ok


def test_disjoint_intervals_do_not_conflict():
    program, _ = _synthetic(deps=())
    audit = [
        HazardAccess(0, "gm", 7, 0, 64, True),
        HazardAccess(1, "gm", 7, 64, 128, False),
    ]
    report = check_accesses(program, audit)
    assert report.ok
    assert report.checked_pairs == 0
