"""Discrete-event scheduler tests (built directly on Program/Op)."""

import pytest

from repro.errors import DeadlockError, SchedulerError
from repro.hw.config import toy_config
from repro.hw.isa import Op
from repro.hw.scheduler import Program, simulate

CFG = toy_config()
NS = CFG.cycle_ns  # ns per cycle


def make_op(op_id, engine, cycles=0.0, deps=(), gm_bytes=0, latency_ns=0.0,
            kind="vec"):
    return Op(
        op_id=op_id, engine=engine, kind=kind, label=f"op{op_id}",
        deps=tuple(deps), cycles=cycles, gm_bytes=gm_bytes,
        eff_bytes=float(gm_bytes), latency_ns=latency_ns,
    )


class TestBasics:
    def test_empty_program(self):
        t = simulate(Program(1), CFG)
        assert t.total_ns == 0.0

    def test_single_op_duration(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=180))
        t = simulate(p, CFG)
        assert t.total_ns == pytest.approx(180 * NS)

    def test_in_order_engine_serialisation(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=100))
        p.add(make_op(1, 0, cycles=100))
        t = simulate(p, CFG)
        assert t.start_ns[1] == pytest.approx(t.finish_ns[0])
        assert t.total_ns == pytest.approx(200 * NS)

    def test_independent_engines_overlap(self):
        p = Program(2)
        p.add(make_op(0, 0, cycles=100))
        p.add(make_op(1, 1, cycles=100))
        t = simulate(p, CFG)
        assert t.total_ns == pytest.approx(100 * NS)

    def test_dependency_across_engines(self):
        p = Program(2)
        p.add(make_op(0, 0, cycles=100))
        p.add(make_op(1, 1, cycles=50, deps=(0,)))
        t = simulate(p, CFG)
        assert t.start_ns[1] == pytest.approx(t.finish_ns[0])

    def test_zero_duration_op(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=0))
        t = simulate(p, CFG)
        assert t.total_ns == 0.0


class TestValidation:
    def test_forward_dependency_rejected(self):
        p = Program(1)
        with pytest.raises(SchedulerError):
            p.add(make_op(0, 0, deps=(1,)))

    def test_wrong_id_rejected(self):
        p = Program(1)
        with pytest.raises(SchedulerError):
            p.add(make_op(3, 0))

    def test_unknown_engine_rejected(self):
        p = Program(1)
        with pytest.raises(SchedulerError):
            p.add(make_op(0, 7))

    def test_negative_duration_rejected(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=-5))
        with pytest.raises(SchedulerError):
            simulate(p, CFG)


class TestFlows:
    def test_flow_latency_plus_drain(self):
        p = Program(1)
        nbytes = 80000
        p.add(make_op(0, 0, gm_bytes=nbytes, latency_ns=100.0, kind="mte_in"))
        t = simulate(p, CFG)
        # single flow: rate = min(link, pool)
        rate = min(CFG.mte_link_bytes_per_ns, CFG.hbm_bytes_per_ns)
        assert t.total_ns == pytest.approx(100.0 + nbytes / rate)

    def test_concurrent_flows_share_pool(self):
        p = Program(4)
        nbytes = 1_000_000
        latency = 5.0
        for e in range(4):
            p.add(make_op(e, e, gm_bytes=nbytes, latency_ns=latency, kind="mte_in"))
        t = simulate(p, CFG)
        # 4 flows, each link-capped at 460.8, pool 800 -> 200 each
        share = CFG.hbm_bytes_per_ns / 4
        assert t.total_ns == pytest.approx(latency + nbytes / share, rel=1e-6)

    def test_flow_occupies_engine(self):
        p = Program(1)
        p.add(make_op(0, 0, gm_bytes=1000, latency_ns=10.0, kind="mte_in"))
        p.add(make_op(1, 0, cycles=10))
        t = simulate(p, CFG)
        assert t.start_ns[1] >= t.finish_ns[0]

    def test_tiny_flow_residue_terminates(self):
        # regression: float residue at large t must not livelock the clock
        p = Program(1)
        p.add(make_op(0, 0, cycles=1.8e8))  # pushes t to 1e8 ns
        p.add(make_op(1, 0, gm_bytes=32768, latency_ns=10.0, kind="mte_in"))
        t = simulate(p, CFG)
        assert t.total_ns > 1e8


class TestBarriers:
    def test_barrier_orders_phases(self):
        p = Program(3)
        p.add(make_op(0, 0, cycles=100))
        p.add(make_op(1, 1, cycles=500))
        barrier = make_op(2, 2, cycles=0, deps=p.barrier_deps(), kind="barrier")
        p.add(barrier)
        p.set_fence(2)
        p.add(make_op(3, 0, cycles=10))
        t = simulate(p, CFG)
        assert t.start_ns[3] >= t.finish_ns[1]

    def test_deadlock_detected(self):
        # two ops that (incorrectly) depend on each other's engine order:
        # op1 on engine 0 ahead of op0's dependency target never runs
        p = Program(1)
        p.add(make_op(0, 0, cycles=10))
        # craft a cycle: op1 depends on op2 which is behind it on the queue
        p.add(make_op(1, 0, cycles=10))
        p.op_deps[1] = (2,)  # forward dep injected post-validation
        p.add(make_op(2, 0, cycles=10))
        with pytest.raises(DeadlockError):
            simulate(p, CFG)


class TestProgramDeps:
    """Dependency bookkeeping lives on the program, not the Op records."""

    def test_add_does_not_mutate_op_deps(self):
        p = Program(2)
        p.add(make_op(0, 0, cycles=10))
        barrier = make_op(1, 1, cycles=0, deps=p.barrier_deps(), kind="barrier")
        p.add(barrier)
        p.set_fence(1)
        op = make_op(2, 0, cycles=10)
        p.add(op)
        assert op.deps == ()  # the fence edge is program-side only
        assert p.deps_of(2) == (1,)

    def test_readding_op_to_second_program_is_clean(self):
        # an Op traced once can be added to a second program without
        # accumulating the first program's fence edges
        op = make_op(2, 0, cycles=10)
        for _ in range(2):
            p = Program(2)
            p.add(make_op(0, 0, cycles=10))
            barrier = make_op(
                1, 1, cycles=0, deps=p.barrier_deps(), kind="barrier"
            )
            p.add(barrier)
            p.set_fence(1)
            p.add(op)
            assert p.deps_of(2) == (1,)
        assert op.deps == ()

    def test_deps_deduped_at_add_time(self):
        p = Program(2)
        p.add(make_op(0, 0, cycles=10))
        p.add(make_op(1, 1, cycles=10, deps=(0, 0, 0)))
        assert p.deps_of(1) == (0,)
        t = simulate(p, CFG)
        assert t.start_ns[1] == pytest.approx(t.finish_ns[0])

    def test_fence_not_duplicated_when_already_explicit(self):
        p = Program(2)
        barrier = make_op(0, 1, cycles=0, kind="barrier")
        p.add(barrier)
        p.set_fence(0)
        p.add(make_op(1, 0, cycles=10, deps=(0,)))
        assert p.deps_of(1) == (0,)
