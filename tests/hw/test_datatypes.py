"""Device dtype registry tests."""

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.hw.datatypes import (
    FP16,
    FP32,
    INT8,
    INT32,
    as_dtype,
    cube_accum_dtype,
    dtype_by_name,
)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,np_dtype,size",
        [
            ("fp16", np.float16, 2),
            ("fp32", np.float32, 4),
            ("int8", np.int8, 1),
            ("int16", np.int16, 2),
            ("uint16", np.uint16, 2),
            ("int32", np.int32, 4),
            ("uint32", np.uint32, 4),
        ],
    )
    def test_lookup(self, name, np_dtype, size):
        dt = dtype_by_name(name)
        assert dt.np_dtype == np.dtype(np_dtype)
        assert dt.itemsize == size

    def test_unknown_name(self):
        with pytest.raises(DTypeError):
            dtype_by_name("fp8")

    def test_as_dtype_passthrough(self):
        assert as_dtype(FP16) is FP16
        assert as_dtype("fp16") is FP16


class TestCubeRules:
    def test_cube_inputs(self):
        # "float16 (with float32 output) and int8 (with int32 output)"
        assert FP16.cube_input and INT8.cube_input
        assert not FP32.cube_input and not INT32.cube_input

    def test_accumulators(self):
        assert cube_accum_dtype(FP16) is FP32
        assert cube_accum_dtype("int8") is INT32

    def test_non_cube_dtype_rejected(self):
        with pytest.raises(DTypeError):
            cube_accum_dtype("fp32")
