"""Trace statistics and export tests."""

import json

import numpy as np
import pytest

from repro.lang import Kernel, intrinsics as I
from repro.lang.tensor import BufferKind


class _RoundTrip(Kernel):
    """Read a tile, add a scalar, write it back."""

    mode = "vec"

    def __init__(self, x, y):
        super().__init__(1)
        self.x = x
        self.y = y

    def run(self, ctx):
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=4096)
        t = q.alloc_tensor("fp16", 2048)
        I.data_copy(ctx, t, self.x.whole())
        I.adds(ctx, t, t, 1.0)
        I.data_copy(ctx, self.y.whole(), t)
        q.free_tensor(t)


@pytest.fixture()
def round_trip_trace(toy_device):
    x = toy_device.alloc("x", 2048, "fp16")
    y = toy_device.alloc("y", 2048, "fp16")
    x.write(np.zeros(2048, dtype=np.float16))
    return toy_device.launch(_RoundTrip(x, y), label="roundtrip")


class TestTraffic:
    def test_byte_accounting_exact(self, round_trip_trace):
        t = round_trip_trace
        assert t.gm_read_bytes() == 2048 * 2
        assert t.gm_write_bytes() == 2048 * 2
        assert t.gm_bytes() == 2048 * 4

    def test_l2_hit_bytes_bounded(self, round_trip_trace):
        assert 0 <= round_trip_trace.l2_hit_bytes() <= round_trip_trace.gm_bytes()


class TestEngineStats:
    def test_busy_time_positive_for_used_engines(self, round_trip_trace):
        stats = {s.info.label: s for s in round_trip_trace.engine_stats()}
        assert stats["aiv0.mte_in"].busy_ns > 0
        assert stats["aiv0.vec"].busy_ns > 0
        assert stats["aiv0.mte_out"].busy_ns > 0

    def test_busiest_engine(self, round_trip_trace):
        busiest = round_trip_trace.busiest_engine()
        assert busiest.busy_ns == max(
            s.busy_ns for s in round_trip_trace.engine_stats()
        )

    def test_utilization_in_unit_interval(self, round_trip_trace):
        for s in round_trip_trace.engine_stats():
            assert 0.0 <= s.utilization(round_trip_trace.device_ns) <= 1.0

    def test_op_count_by_kind(self, round_trip_trace):
        counts = round_trip_trace.op_count_by_kind()
        assert counts["mte_in"] == 1
        assert counts["mte_out"] == 1
        assert counts["vec"] == 1


class TestExport:
    def test_chrome_trace_is_valid_json(self, round_trip_trace):
        doc = json.loads(round_trip_trace.to_chrome_trace())
        assert len(doc["traceEvents"]) == len(round_trip_trace.ops)
        ev = doc["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(ev)

    def test_summary_mentions_label(self, round_trip_trace):
        assert "roundtrip" in round_trip_trace.summary()


class TestTimelineSanity:
    def test_ops_do_not_overlap_per_engine(self, round_trip_trace):
        by_engine = {}
        for op in round_trip_trace.ops:
            by_engine.setdefault(op.engine, []).append(
                round_trip_trace.timeline.span(op.op_id)
            )
        for spans in by_engine.values():
            spans.sort()
            for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-9

    def test_deps_respected(self, round_trip_trace):
        tl = round_trip_trace.timeline
        for op in round_trip_trace.ops:
            for d in op.deps:
                assert tl.span(op.op_id)[0] >= tl.span(d)[1] - 1e-9
