"""Compiled replay engine: differential ns-identity vs the reference DES,
timeline memoization semantics, and the ``audit_timing`` escape hatch.

The contract under test is exact: for every kernel in the suite the
compiled engine must produce a :class:`Timeline` whose every float is
*bit-identical* to ``simulate``'s (``==``, never ``approx``) — that is
what makes serving a memoized timeline indistinguishable from
rescheduling.
"""

import numpy as np
import pytest

from repro.core.api import BATCHED_ALGORITHMS, SCAN_ALGORITHMS, ScanContext
from repro.core.strategies import (
    LookbackScanKernel,
    RSSScanKernel,
    SSAScanKernel,
)
from repro.errors import DeadlockError, SchedulerError, TimingAuditError
from repro.hw.compiled import CompiledProgram, assert_timelines_equal
from repro.hw.config import toy_config
from repro.hw.datatypes import as_dtype, cube_accum_dtype
from repro.hw.device import AscendDevice, TracedKernel
from repro.hw.isa import Op
from repro.hw.scheduler import Program, Timeline, simulate

# -- differential suite over every kernel ---------------------------------

N1D = 1 << 17  # 8 tiles of s=128: multi-core paths are exercised
S = 128


def _strategy_program(ctx, kernel_cls, name):
    """Trace one multi-core strategy kernel (the one-shot API frees its
    tensors, so mirror its setup against the context's device)."""
    dev = ctx.device
    dt = as_dtype("fp16")
    out_dt = cube_accum_dtype(dt)
    consts = ctx.constants(S, dt)
    x_gm = dev.alloc(f"{name}_x", (N1D,), dt)
    x_gm.write(np.ones(N1D, dtype=np.float16))
    y_gm = dev.alloc(f"{name}_y", (N1D,), out_dt)
    n_tiles = N1D // (S * S)
    bd = max(1, min(ctx.config.num_ai_cores, n_tiles))
    lanes = bd * ctx.config.vector_cores_per_ai_core
    r_gm = dev.alloc(f"{name}_r", (lanes,), out_dt)
    return dev.trace_kernel(kernel_cls(x_gm, y_gm, r_gm, consts, S, bd)).program


def _suite_programs():
    ctx = ScanContext()
    programs = {}
    for algo in SCAN_ALGORITHMS:
        plan = ctx.build_plan(algorithm=algo, n=N1D, dtype="fp16", validate=False)
        programs[f"plan-{algo}"] = (plan.traced.program, ctx.config)
    plan = ctx.build_plan(algorithm="scanu", n=N1D, dtype="int8", validate=False)
    programs["plan-scanu-int8"] = (plan.traced.program, ctx.config)
    for algo in BATCHED_ALGORITHMS:
        bp = ctx.build_batched_plan(
            algorithm=algo, batch=4, row_len=4096, validate=False
        )
        programs[f"batched-{algo}"] = (bp.traced.program, ctx.config)
    for name, cls in (
        ("ssa", SSAScanKernel),
        ("rss", RSSScanKernel),
        ("lookback", LookbackScanKernel),
    ):
        programs[f"strategy-{name}"] = (
            _strategy_program(ctx, cls, name),
            ctx.config,
        )
    return programs


_PROGRAMS = _suite_programs()


@pytest.mark.parametrize("name", sorted(_PROGRAMS))
def test_compiled_matches_reference_bitwise(name):
    program, config = _PROGRAMS[name]
    reference = simulate(program, config)
    compiled = CompiledProgram(program, config)
    for _ in range(2):  # a second run reuses the memoized rate cache
        got = compiled.run()
        assert got.start_ns == reference.start_ns
        assert got.finish_ns == reference.finish_ns
        assert got.total_ns == reference.total_ns


# -- synthetic edge cases (toy config) ------------------------------------

CFG = toy_config()


def make_op(op_id, engine, cycles=0.0, deps=(), gm_bytes=0, eff_bytes=None,
            latency_ns=0.0, kind="vec"):
    return Op(
        op_id=op_id, engine=engine, kind=kind, label=f"op{op_id}",
        deps=tuple(deps), cycles=cycles, gm_bytes=gm_bytes,
        eff_bytes=float(gm_bytes) if eff_bytes is None else eff_bytes,
        latency_ns=latency_ns,
    )


def both_engines(p, config=CFG):
    """(reference, compiled) timelines, asserted bit-identical."""
    ref = simulate(p, config)
    got = CompiledProgram(p, config).run()
    assert_timelines_equal(got, ref)
    return ref


class TestEdgeCases:
    def test_empty_program(self):
        t = CompiledProgram(Program(1), CFG).run()
        assert t.total_ns == 0.0
        assert t.start_ns == []

    def test_zero_byte_flow_completes_at_latency(self):
        # a flow whose effective bytes are below the drain epsilon never
        # enters the draining set: it completes when its latency elapses
        p = Program(1)
        p.add(make_op(0, 0, gm_bytes=4, eff_bytes=1e-9, latency_ns=50.0))
        t = both_engines(p)
        assert t.finish_ns[0] == pytest.approx(50.0)

    def test_barrier_only_program(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=10, kind="barrier"))
        p.set_fence(0)
        p.add(make_op(1, 0, cycles=10, kind="barrier"))
        both_engines(p)

    def test_duplicate_deps(self):
        p = Program(2)
        p.add(make_op(0, 0, cycles=10))
        p.add(make_op(1, 1, cycles=10, deps=(0, 0, 0)))
        assert p.deps_of(1) == (0,)
        t = both_engines(p)
        assert t.start_ns[1] == pytest.approx(t.finish_ns[0])

    def test_concurrent_flows_contend(self):
        # enough simultaneous flows to exceed the vectorized-drain
        # threshold: exercises the numpy path and the per-k rate cache
        n_engines = 24
        p = Program(n_engines)
        for e in range(n_engines):
            p.add(make_op(e, e, gm_bytes=4096 * (e + 1), latency_ns=10.0))
        t = both_engines(p)
        assert t.total_ns > 0.0

    def test_mixed_flows_and_fixed_ops(self):
        p = Program(3)
        p.add(make_op(0, 0, gm_bytes=65536, latency_ns=20.0))
        p.add(make_op(1, 1, cycles=100))
        p.add(make_op(2, 2, gm_bytes=32768, latency_ns=5.0, deps=(1,)))
        p.add(make_op(3, 1, cycles=10, deps=(0, 2)))
        both_engines(p)

    def test_deadlock_detected(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=10))
        p.add(make_op(1, 0, cycles=10))
        p.op_deps[1] = (2,)  # forward dep injected post-validation
        p.add(make_op(2, 0, cycles=10))
        with pytest.raises(DeadlockError):
            CompiledProgram(p, CFG).run()

    def test_negative_duration_rejected_at_compile(self):
        p = Program(1)
        p.add(make_op(0, 0, cycles=-5))
        with pytest.raises(SchedulerError):
            CompiledProgram(p, CFG)


# -- timeline memoization on replay ---------------------------------------


def _traced(cycles=(10, 20, 30)):
    p = Program(1)
    for i, c in enumerate(cycles):
        p.add(make_op(i, 0, cycles=c))
    return TracedKernel(program=p, label="synthetic")


class TestMemoization:
    def test_cached_replay_hits_after_first(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        t1 = dev.replay(tk)
        assert (tk.timeline_misses, tk.timeline_hits) == (1, 0)
        t2 = dev.replay(tk)
        assert (tk.timeline_misses, tk.timeline_hits) == (1, 1)
        # the very same Timeline object is served, not a recomputation
        assert t2.timeline is t1.timeline

    def test_des_engine_bypasses_cache(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        dev.replay(tk, engine="des")
        assert (tk.timeline_misses, tk.timeline_hits) == (0, 0)
        assert tk._timeline is None

    def test_compiled_engine_recomputes(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        dev.replay(tk, engine="compiled")
        dev.replay(tk, engine="compiled")
        assert (tk.timeline_misses, tk.timeline_hits) == (2, 0)

    def test_engines_agree(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        des = dev.replay(tk, engine="des").timeline
        compiled = dev.replay(tk, engine="compiled").timeline
        cached = dev.replay(tk, engine="cached").timeline
        assert_timelines_equal(compiled, des)
        assert_timelines_equal(cached, des)

    def test_unknown_engine_rejected(self):
        dev = AscendDevice(toy_config())
        with pytest.raises(SchedulerError):
            dev.replay(_traced(), engine="warp")

    def test_config_change_invalidates(self):
        dev1 = AscendDevice(toy_config())
        dev2 = AscendDevice(toy_config())  # equal but distinct config object
        tk = _traced()
        dev1.replay(tk)
        dev2.replay(tk)
        assert (tk.timeline_misses, tk.timeline_hits) == (2, 0)
        dev2.replay(tk)
        assert (tk.timeline_misses, tk.timeline_hits) == (2, 1)


class TestAuditTiming:
    def test_audit_passes_on_honest_cache(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        dev.replay(tk, audit_timing=True)
        dev.replay(tk, audit_timing=True)  # also audits the cache-hit path

    def test_device_default_audit(self):
        dev = AscendDevice(toy_config(), audit_timing=True)
        tk = _traced()
        dev.replay(tk)
        dev.replay(tk, audit_timing=False)  # per-call override wins

    def test_audit_detects_tampered_timeline(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        dev.replay(tk)  # populate the cache
        honest = tk._timeline
        tk._timeline = Timeline(
            list(honest.start_ns),
            [f + 1.0 for f in honest.finish_ns],
            honest.total_ns + 1.0,
        )
        dev.replay(tk)  # unaudited replay trusts the cache
        with pytest.raises(TimingAuditError):
            dev.replay(tk, audit_timing=True)

    def test_audit_detects_op_count_mismatch(self):
        dev = AscendDevice(toy_config())
        tk = _traced()
        dev.replay(tk)
        tk._timeline = Timeline([0.0], [1.0], 1.0)
        with pytest.raises(TimingAuditError):
            dev.replay(tk, audit_timing=True)
