"""AscendDevice and Emitter tests."""

import numpy as np
import pytest

from repro.errors import KernelError, SchedulerError
from repro.hw.device import CoreHandle
from repro.hw.isa import EngineKind
from repro.lang import Kernel, intrinsics as I
from repro.lang.tensor import BufferKind


class _NopKernel(Kernel):
    mode = "vec"

    def run(self, ctx):
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=256)
        t = q.alloc_tensor("fp16", 8)
        I.duplicate(ctx, t, 1.0)
        q.free_tensor(t)


class TestEngineTable:
    def test_engine_counts(self, toy_device):
        cfg = toy_device.config
        expected = cfg.num_cube_cores * 5 + cfg.num_vector_cores * 4
        assert len(toy_device.engines) == expected

    def test_engine_lookup(self, toy_device):
        eid = toy_device.engine_id(CoreHandle("aic", 0), EngineKind.CUBE)
        info = toy_device.engines[eid]
        assert (info.core_kind, info.core_index, info.engine_kind) == (
            "aic", 0, EngineKind.CUBE,
        )

    def test_vector_core_has_no_cube_engine(self, toy_device):
        with pytest.raises(SchedulerError):
            toy_device.engine_id(CoreHandle("aiv", 0), EngineKind.CUBE)


class TestLaunch:
    def test_block_dim_bounds(self, toy_device):
        k = _NopKernel(block_dim=toy_device.config.num_vector_cores + 1)
        with pytest.raises(KernelError):
            toy_device.launch(k)

    def test_mix_mode_block_bound(self, toy_device):
        class MixNop(Kernel):
            mode = "mix"

            def run(self, ctx):
                ctx.require_cube()

        with pytest.raises(KernelError):
            toy_device.launch(MixNop(block_dim=toy_device.config.num_ai_cores + 1))

    def test_unknown_mode(self, toy_device):
        k = _NopKernel(1)
        k.mode = "weird"
        with pytest.raises(KernelError):
            toy_device.launch(k)

    def test_trace_includes_launch_overhead(self, toy_device):
        trace = toy_device.launch(_NopKernel(1))
        assert trace.launch_ns == toy_device.config.costs.kernel_launch_ns
        assert trace.total_ns > trace.device_ns

    def test_label(self, toy_device):
        trace = toy_device.launch(_NopKernel(1), label="my kernel")
        assert trace.label == "my kernel"


class TestGmHazards:
    """Exact-interval dependency derivation through the emitter."""

    def _write_read_kernel(self, x, overlap):
        class K(Kernel):
            mode = "vec"

            def run(self, ctx):
                pipe = ctx.make_pipe(ctx.vec_core(0))
                q = pipe.init_buffer(
                    buffer=BufferKind.UB, depth=1, slot_bytes=1024
                )
                t = q.alloc_tensor("fp16", 16)
                if ctx.block_idx == 0:
                    I.duplicate(ctx, t, 2.0)
                    I.data_copy(ctx, x.slice(0, 16), t)
                else:
                    src = x.slice(0, 16) if overlap else x.slice(16, 16)
                    I.data_copy(ctx, t, src)
                q.free_tensor(t)

        return K(block_dim=2)

    def test_overlapping_read_depends_on_write(self, toy_device):
        x = toy_device.alloc("x", 64, "fp16")
        trace = toy_device.launch(self._write_read_kernel(x, overlap=True))
        write_op = next(o for o in trace.ops if o.kind == "mte_out")
        read_op = next(o for o in trace.ops if o.kind == "mte_in")
        assert write_op.op_id in read_op.deps

    def test_adjacent_ranges_do_not_conflict(self, toy_device):
        # byte-precise hazards: adjacent (non-overlapping) ranges from
        # different cores must not serialise (the split-output regression)
        x = toy_device.alloc("x", 64, "fp16")
        trace = toy_device.launch(self._write_read_kernel(x, overlap=False))
        write_op = next(o for o in trace.ops if o.kind == "mte_out")
        read_op = next(o for o in trace.ops if o.kind == "mte_in")
        assert write_op.op_id not in read_op.deps

    def test_functional_result(self, toy_device):
        x = toy_device.alloc("x", 64, "fp16")
        toy_device.launch(self._write_read_kernel(x, overlap=True))
        assert np.all(x.to_numpy()[:16] == 2.0)


class TestWarm:
    def test_warm_l2_makes_reads_hit(self, toy_device):
        x = toy_device.alloc("x", 8192, "fp16")

        class Reader(Kernel):
            mode = "vec"

            def run(self, ctx):
                pipe = ctx.make_pipe(ctx.vec_core(0))
                q = pipe.init_buffer(
                    buffer=BufferKind.UB, depth=1, slot_bytes=16384
                )
                t = q.alloc_tensor("fp16", 8192)
                I.data_copy(ctx, t, x.whole())
                q.free_tensor(t)

        toy_device.warm_l2(x)
        trace = toy_device.launch(Reader(1))
        assert trace.l2_hit_ratio() == pytest.approx(1.0)

    def test_flush_l2(self, toy_device):
        x = toy_device.alloc("x", 8192, "fp16")
        toy_device.warm_l2(x)
        toy_device.flush_l2()
        assert len(toy_device.l2) == 0
