"""Integration tests: multi-kernel pipelines on the full 910B4 device."""

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.core.reference import exact_fp16_scan_input
from repro.ops.driver import AscendOps
from repro.ops.topp import TopPSampler


class TestEndToEndLLMSampling:
    """The full Figure-13 pipeline: logits -> probs -> nucleus token."""

    def test_sampling_distribution_is_plausible(self, ops, rng):
        vocab = 4096
        logits = rng.standard_normal(vocab).astype(np.float32) * 4
        probs = np.exp(logits - logits.max())
        probs16 = (probs / probs.sum()).astype(np.float16)
        sampler = TopPSampler(ops)
        tokens = [
            int(sampler.sample(probs16, 0.9, theta=t, backend="cube").values[0])
            for t in (0.05, 0.35, 0.65, 0.95)
        ]
        # all sampled tokens have non-trivial probability
        for t in tokens:
            assert probs16[t] > 0
        # low theta lands on the most probable token
        assert tokens[0] == int(np.argmax(probs16))

    def test_greedy_limit(self, ops, rng):
        """p -> 0 reduces nucleus to the argmax token."""
        vocab = 2048
        probs = rng.random(vocab).astype(np.float16)
        sampler = TopPSampler(ops)
        res = sampler.sample(probs, 1e-4, theta=0.7, backend="cube")
        assert int(res.values[0]) == int(
            np.argmax(probs.astype(np.float32))
        )


class TestOperatorComposition:
    def test_sort_then_scan_consistency(self, ops, scan_ctx, rng):
        """cumsum(sort(x)) via device kernels equals the NumPy composition."""
        x = np.abs(rng.standard_normal(20000)).astype(np.float16)
        sorted_res = ops.radix_sort(x)
        scan_res = scan_ctx.scan(sorted_res.values, algorithm="mcscan")
        expected = np.cumsum(np.sort(x).astype(np.float32))
        assert np.allclose(scan_res.values, expected, rtol=1e-3)

    def test_split_twice_is_radix_step(self, ops, rng):
        """Two manual split passes reproduce two radix-sort iterations."""
        x = rng.integers(0, 4, 5000).astype(np.uint16)
        f0 = ((x >> 0) & 1 == 0).astype(np.int8)
        pass1, idx1 = (r := ops.split(x, f0)).values, r.indices
        f1 = ((pass1 >> 1) & 1 == 0).astype(np.int8)
        pass2 = ops.split(pass1, f1).values
        assert np.array_equal(pass2, np.sort(x))

    def test_compress_of_scan_mask(self, ops, scan_ctx, rng):
        """Select elements whose running sum is below a threshold — a scan
        feeding a compress, both on-device."""
        x = rng.integers(0, 3, 30000).astype(np.int8)
        scan = scan_ctx.scan(x, algorithm="mcscan")
        mask = (scan.values < 1000).astype(np.int8)
        res = ops.compress(x.astype(np.float16), mask)
        assert res.values.size == int(mask.sum())


class TestDeviceReuseAcrossOperators:
    def test_interleaved_operators_share_device(self, rng):
        ctx = ScanContext()
        ops = AscendOps(ctx)
        x, expected = exact_fp16_scan_input(30000, rng)
        m = (rng.random(30000) < 0.5).astype(np.int8)
        for _ in range(3):
            assert np.array_equal(
                ctx.scan(x, algorithm="mcscan").values, expected
            )
            ops.compress(x, m)
            ops.radix_sort(x[:5000])
        # memory stays bounded (stack discipline held through all ops)
        assert ctx.device.memory.used_bytes < 32 * 1024 * 1024


class TestScaleSweep:
    @pytest.mark.parametrize("p", [12, 16, 20])
    def test_mcscan_correct_across_scales(self, scan_ctx, rng, p):
        n = 1 << p
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        assert np.array_equal(res.values, expected)

    def test_bandwidth_monotone_in_n(self, scan_ctx, rng):
        """Larger inputs amortise launch/sync overheads (Figure 8 shape)."""
        bws = []
        for p in (14, 17, 20):
            x, _ = exact_fp16_scan_input(1 << p, rng)
            bws.append(scan_ctx.scan(x, algorithm="mcscan").bandwidth_gbps)
        assert bws[0] < bws[1] < bws[2]
