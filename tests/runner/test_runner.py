"""Experiment registry and reporting tests.

Full experiment sweeps are exercised by the benchmarks; here we check the
registry plumbing and the formatting with synthetic results, plus one real
(tiny) experiment end to end.
"""

import math

import pytest

from repro.runner.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.runner.reporting import format_value, to_markdown, to_text


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig03", "fig05", "fig08", "fig09", "fig10", "fig11", "fig12",
            "fig13", "headline",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFormatting:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            exp_id="figXX",
            title="A title",
            paper_claim="a claim",
            columns=["n", "bw"],
            rows=[{"n": 1024, "bw": 123.456}, {"n": 2048, "bw": float("nan")}],
            notes="a note",
        )

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(1234.5) == "1,234"
        assert format_value(12.34) == "12.3"
        assert format_value(1.2345) == "1.23"
        assert format_value(float("nan")) == "-"
        assert format_value(0.0) == "0"
        assert format_value("x") == "x"

    def test_to_text(self, result):
        text = to_text(result)
        assert "figXX" in text and "a claim" in text and "a note" in text
        assert "1,024" in text or "1024" in text

    def test_to_markdown(self, result):
        md = to_markdown(result)
        assert md.count("|") >= 12
        assert "### figXX" in md
        assert "*Note:* a note" in md

    def test_column_values(self, result):
        assert result.column_values("n") == [1024, 2048]


class TestLiveExperiment:
    def test_fig09_end_to_end(self):
        """Smallest real experiment: int8 vs fp16 throughput."""
        res = run_experiment("fig09", quick=True)
        assert len(res.rows) >= 3
        for row in res.rows:
            assert row["gelems_int8"] > 0
            assert not math.isnan(row["int8_gain"])
        # the headline shape: int8 gains, roughly 10%
        last = res.rows[-1]
        assert 1.0 < last["int8_gain"] < 1.3
