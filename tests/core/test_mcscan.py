"""MCScan (Algorithm 3) tests."""

import numpy as np
import pytest

from repro.core.mcscan import mcscan_partition
from repro.core.reference import exact_fp16_scan_input, exclusive_scan, inclusive_scan


class TestPartition:
    def test_balanced(self):
        ranges = mcscan_partition(10, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [3, 3, 2, 2]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10

    def test_contiguous_cover(self):
        ranges = mcscan_partition(17, 5)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_more_blocks_than_tiles(self):
        ranges = mcscan_partition(2, 5)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == 2
        assert all(s in (0, 1) for s in sizes)


class TestCorrectness:
    @pytest.mark.parametrize("s", [32, 64, 128])
    def test_inclusive_fp16(self, scan_ctx, rng, s):
        n = 200_000
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan", s=s)
        assert np.array_equal(res.values, expected[:n])

    def test_exclusive_fp16(self, scan_ctx, rng):
        n = 100_000
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan", exclusive=True)
        want = np.concatenate([[0], expected[: n - 1]]).astype(np.float32)
        assert np.array_equal(res.values, want)

    def test_inclusive_int8(self, scan_ctx, rng):
        x = rng.integers(-128, 128, 150_000).astype(np.int8)
        res = scan_ctx.scan(x, algorithm="mcscan")
        assert np.array_equal(res.values, inclusive_scan(x))

    def test_exclusive_int8_mask(self, scan_ctx, rng):
        """The split/compress input case: 0/1 mask, exclusive offsets."""
        m = (rng.random(80_000) < 0.5).astype(np.int8)
        res = scan_ctx.scan(m, algorithm="mcscan", exclusive=True)
        assert np.array_equal(res.values, exclusive_scan(m))

    def test_single_block(self, scan_ctx, rng):
        x, expected = exact_fp16_scan_input(40_000, rng)
        res = scan_ctx.scan(x, algorithm="mcscan", block_dim=1)
        assert np.array_equal(res.values, expected[:40_000])

    def test_more_blocks_than_tiles_rejected(self, scan_ctx, rng):
        """block_dim beyond the tile count is rejected at the API level
        (the partition itself tolerates empty ranges, see TestPartition)."""
        from repro.errors import ConfigError

        x, _ = exact_fp16_scan_input(16384 * 3, rng)  # 3 tiles at s=128
        with pytest.raises(ConfigError):
            scan_ctx.scan(x, algorithm="mcscan", block_dim=20)

    @pytest.mark.parametrize("bad", [0, -1, 21])
    def test_bad_block_dim_rejected(self, scan_ctx, rng, bad):
        from repro.errors import ConfigError

        x, _ = exact_fp16_scan_input(1 << 20, rng)  # 64 tiles: cores bind
        with pytest.raises(ConfigError):
            scan_ctx.scan(x, algorithm="mcscan", block_dim=bad)


class TestStructure:
    def test_two_phases_one_barrier(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(1 << 18, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        barriers = [o for o in res.trace.ops if o.kind == "barrier"]
        assert len(barriers) == 1

    def test_vector_units_recompute_reductions(self, scan_ctx, rng):
        """Phase I reads the input twice: once on the cube cores, once on
        the vector cores (the paper's partial-recomputation novelty)."""
        n = 1 << 18
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        # input is fp16: cube reads 2n bytes, vector reduction reads 2n more;
        # phase II reads the fp32 intermediate (4n)
        assert res.trace.gm_read_bytes() >= 2 * n * 2 + 4 * n

    def test_speedup_over_single_core_grows_with_n(self, scan_ctx, rng):
        speedups = []
        for p in (17, 19):
            x, _ = exact_fp16_scan_input(1 << p, rng)
            t_u = scan_ctx.scan(x, algorithm="scanu").time_ns
            t_mc = scan_ctx.scan(x, algorithm="mcscan").time_ns
            speedups.append(t_u / t_mc)
        assert speedups[1] > speedups[0] > 1.0

    def test_bandwidth_below_theoretical_bound(self, scan_ctx, rng):
        """fp16 MCScan cannot exceed 6/16 of peak (bandwidth.py reasoning)."""
        x, _ = exact_fp16_scan_input(1 << 20, rng)
        res = scan_ctx.scan(x, algorithm="mcscan", s=128)
        assert res.bandwidth_gbps <= 0.375 * 800 + 1e-6

    def test_int8_faster_per_element(self, scan_ctx, rng):
        n = 1 << 20
        xf, _ = exact_fp16_scan_input(n, rng)
        xi = rng.integers(-2, 3, n).astype(np.int8)
        gf = scan_ctx.scan(xf, algorithm="mcscan").gelems_per_s
        gi = scan_ctx.scan(xi, algorithm="mcscan").gelems_per_s
        assert 1.0 < gi / gf < 1.3  # paper: ~10%
