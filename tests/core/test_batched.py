"""Batched scan tests (Section 4.2)."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.core.reference import batched_inclusive_scan


@pytest.mark.parametrize("algorithm", ["scanu", "scanul1"])
class TestBatchedCorrectness:
    def test_small_batch(self, scan_ctx, rng, algorithm):
        x = rng.integers(-3, 4, (3, 5000)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm=algorithm, s=128)
        assert res.values.shape == x.shape
        assert np.array_equal(res.values, batched_inclusive_scan(x))

    def test_batch_larger_than_cores(self, scan_ctx, rng, algorithm):
        x = rng.integers(-3, 4, (45, 600)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm=algorithm, s=64)
        assert np.array_equal(res.values, batched_inclusive_scan(x))

    def test_single_row(self, scan_ctx, rng, algorithm):
        x = rng.integers(-3, 4, (1, 20000)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm=algorithm)
        assert np.array_equal(res.values, batched_inclusive_scan(x))

    def test_short_rows_use_flat_tiles(self, scan_ctx, rng, algorithm):
        # rows shorter than s^2: shape-derived tiling kicks in
        x = rng.integers(-3, 4, (8, 700)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm=algorithm, s=128)
        assert np.array_equal(res.values, batched_inclusive_scan(x))

    def test_int8_batch(self, scan_ctx, rng, algorithm):
        x = rng.integers(-5, 6, (4, 3000)).astype(np.int8)
        res = scan_ctx.batched_scan(x, algorithm=algorithm, s=64)
        assert res.values.dtype == np.int32
        assert np.array_equal(res.values, batched_inclusive_scan(x))


class TestBatchedVector:
    def test_vector_baseline(self, scan_ctx, rng):
        x = rng.integers(0, 3, (6, 2000)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm="vector")
        expected = batched_inclusive_scan(x, out_dtype=np.float16)
        assert np.array_equal(res.values, expected)


class TestBatchedScheduling:
    def test_scanu_uses_both_vector_cores(self, scan_ctx, rng):
        """Figure 4: two vector cores finish two arrays in parallel."""
        x = rng.integers(0, 3, (2, 65536)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm="scanu", s=128, block_dim=1)
        used_vec_cores = {
            res.trace.engines[o.engine].core_index
            for o in res.trace.ops
            if res.trace.engines[o.engine].core_kind == "aiv"
        }
        assert len(used_vec_cores) == 2

    def test_scanul1_one_array_per_core(self, scan_ctx, rng):
        x = rng.integers(0, 3, (4, 16384)).astype(np.float16)
        res = scan_ctx.batched_scan(x, algorithm="scanul1", s=128)
        used_cube_cores = {
            res.trace.engines[o.engine].core_index
            for o in res.trace.ops
            if o.kind == "mmad"
        }
        assert len(used_cube_cores) == 4

    def test_crossover_shape(self, scan_ctx, rng):
        """Figure 5's qualitative claim: ScanU wins for many short arrays,
        ScanUL1 for few long arrays."""
        short = rng.integers(0, 3, (40, 1024)).astype(np.float16)
        t_u = scan_ctx.batched_scan(short, algorithm="scanu", s=128).time_ns
        t_l = scan_ctx.batched_scan(short, algorithm="scanul1", s=128).time_ns
        assert t_u < t_l  # ScanU wins: batch 40, length 1K

        long = rng.integers(0, 3, (4, 65536)).astype(np.float16)
        t_u = scan_ctx.batched_scan(long, algorithm="scanu", s=128).time_ns
        t_l = scan_ctx.batched_scan(long, algorithm="scanul1", s=128).time_ns
        assert t_l < t_u  # ScanUL1 wins: batch 4, length 65K


class TestBatchedValidation:
    def test_rejects_1d(self, scan_ctx):
        with pytest.raises(ShapeError):
            scan_ctx.batched_scan(np.ones(10, dtype=np.float16))

    def test_rejects_unknown_algorithm(self, scan_ctx):
        with pytest.raises(KernelError):
            scan_ctx.batched_scan(
                np.ones((2, 10), dtype=np.float16), algorithm="magic"
            )
