"""ScanContext public API tests."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.core.api import BATCHED_ALGORITHMS, SCAN_ALGORITHMS, ScanContext
from repro.core.reference import exact_fp16_scan_input


class TestDispatch:
    def test_algorithm_lists(self):
        assert set(SCAN_ALGORITHMS) == {"scanu", "scanul1", "mcscan", "vector"}
        assert set(BATCHED_ALGORITHMS) == {"scanu", "scanul1", "vector"}

    def test_unknown_algorithm(self, scan_ctx):
        with pytest.raises(KernelError):
            scan_ctx.scan(np.ones(10, dtype=np.float16), algorithm="best")

    def test_exclusive_only_on_mcscan(self, scan_ctx):
        with pytest.raises(KernelError):
            scan_ctx.scan(
                np.ones(10, dtype=np.float16), algorithm="scanu", exclusive=True
            )

    def test_rejects_2d(self, scan_ctx):
        with pytest.raises(ShapeError):
            scan_ctx.scan(np.ones((2, 5), dtype=np.float16))

    def test_rejects_unsupported_dtype(self, scan_ctx):
        with pytest.raises(KernelError):
            scan_ctx.scan(np.ones(10, dtype=np.float32))


class TestResultMetadata:
    def test_io_bytes_fp16(self, scan_ctx, rng):
        n = 20000
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        assert res.io_bytes == n * (2 + 4)  # fp16 in, fp32 out
        assert res.n_elements == n

    def test_metrics_consistent(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(30000, rng)
        res = scan_ctx.scan(x, algorithm="scanul1")
        assert res.bandwidth_gbps == pytest.approx(res.io_bytes / res.time_ns)
        assert res.gelems_per_s == pytest.approx(res.n_elements / res.time_ns)
        assert res.time_us == pytest.approx(res.time_ns / 1e3)

    def test_trace_attached(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(20000, rng)
        res = scan_ctx.scan(x, algorithm="scanu")
        assert len(res.trace.ops) > 0


class TestMemoryDiscipline:
    def test_constants_cached(self):
        ctx = ScanContext()
        c1 = ctx.constants(64, "fp16")
        c2 = ctx.constants(64, "fp16")
        assert c1 is c2
        c3 = ctx.constants(64, "int8")
        assert c3 is not c1

    def test_hbm_reused_across_calls(self, rng):
        ctx = ScanContext()
        x, _ = exact_fp16_scan_input(50000, rng)
        ctx.scan(x, algorithm="mcscan")
        used_after_first = ctx.device.memory.used_bytes
        for _ in range(5):
            ctx.scan(x, algorithm="mcscan")
        assert ctx.device.memory.used_bytes == used_after_first

    def test_cold_cache_mode(self, rng):
        ctx = ScanContext(warm_inputs=False)
        x, _ = exact_fp16_scan_input(100000, rng)
        cold = ctx.scan(x, algorithm="mcscan")
        warm_ctx = ScanContext(warm_inputs=True)
        warm = warm_ctx.scan(x, algorithm="mcscan")
        assert cold.time_ns > warm.time_ns


class TestPadding:
    @pytest.mark.parametrize("n", [1, 127, 128, 16384, 16385, 99999])
    def test_arbitrary_lengths(self, scan_ctx, rng, n):
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        assert res.values.shape == (n,)
        assert np.array_equal(res.values, expected[:n])
