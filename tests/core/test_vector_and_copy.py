"""Vector-only baseline and copy kernel tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.core.copykernel import CopyKernel
from repro.core.reference import exact_fp16_scan_input
from repro.core.vector_baseline import CUMSUM_COLS, CumSumKernel


class TestCumSum:
    def test_correctness(self, scan_ctx, rng):
        n = 50_000
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="vector")
        assert res.values.dtype == np.float16
        assert np.array_equal(
            res.values.astype(np.float32), expected[:n]
        )

    def test_never_touches_cube(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(30_000, rng)
        res = scan_ctx.scan(x, algorithm="vector")
        assert "mmad" not in res.trace.op_count_by_kind()

    def test_single_core_only(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(30_000, rng)
        res = scan_ctx.scan(x, algorithm="vector")
        cores = {
            res.trace.engines[o.engine].core_index
            for o in res.trace.ops
            if res.trace.engines[o.engine].core_kind == "aiv"
        }
        assert cores == {0}

    def test_kernel_requires_padded_length(self, device):
        x = device.alloc("x", 100, "fp16")
        y = device.alloc("y", 100, "fp16")
        with pytest.raises(ShapeError):
            CumSumKernel(x, y)

    def test_kernel_requires_same_dtype(self, device):
        x = device.alloc("x", CUMSUM_COLS, "fp16")
        y = device.alloc("y", CUMSUM_COLS, "fp32")
        with pytest.raises(ShapeError):
            CumSumKernel(x, y)


class TestCopy:
    def test_copy_correctness(self, scan_ctx, rng):
        x = rng.standard_normal(100_000).astype(np.float16)
        res = scan_ctx.copy(x)
        assert np.array_equal(res.values, x)

    def test_copy_traffic_is_2n(self, scan_ctx, rng):
        n = 65536
        x = rng.standard_normal(n).astype(np.float16)
        res = scan_ctx.copy(x)
        assert res.trace.gm_bytes() == 2 * n * 2

    def test_copy_beats_every_scan(self, scan_ctx, rng):
        """The Figure 8 yardstick: pure copy is the upper bound."""
        x, _ = exact_fp16_scan_input(1 << 20, rng)
        bw_copy = scan_ctx.copy(x).bandwidth_gbps
        bw_scan = scan_ctx.scan(x, algorithm="mcscan").bandwidth_gbps
        assert bw_copy > bw_scan

    def test_copy_bandwidth_approaches_peak(self, scan_ctx, rng):
        """Below L2 capacity the copy nearly reaches 800 GB/s but never
        exceeds it (Section 6.1)."""
        x = rng.standard_normal(1 << 22).astype(np.float16)
        bw = scan_ctx.copy(x).bandwidth_gbps
        assert 500 < bw <= 800

    def test_kernel_validates_shapes(self, device):
        x = device.alloc("x", 128, "fp16")
        y = device.alloc("y", 64, "fp16")
        with pytest.raises(ShapeError):
            CopyKernel(x, y, 1)
