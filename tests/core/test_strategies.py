"""Multi-core scan strategy tests (SSA / RSS / decoupled lookback)."""

import numpy as np
import pytest

from repro.errors import ConfigError, KernelError
from repro.core.api import SCAN_STRATEGIES
from repro.core.reference import exact_fp16_scan_input, inclusive_scan


@pytest.mark.parametrize("strategy", SCAN_STRATEGIES)
class TestStrategyCorrectness:
    def test_fp16(self, scan_ctx, rng, strategy):
        n = 150_000
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan_strategy(x, strategy=strategy)
        assert np.array_equal(res.values, expected[:n])

    def test_int8(self, scan_ctx, rng, strategy):
        x = rng.integers(-5, 6, 80_000).astype(np.int8)
        res = scan_ctx.scan_strategy(x, strategy=strategy, s=64)
        assert np.array_equal(res.values, inclusive_scan(x))

    def test_single_block(self, scan_ctx, rng, strategy):
        x, expected = exact_fp16_scan_input(40_000, rng)
        res = scan_ctx.scan_strategy(x, strategy=strategy, block_dim=1)
        assert np.array_equal(res.values, expected[:40_000])

    def test_more_blocks_than_tiles_rejected(self, scan_ctx, rng, strategy):
        """block_dim beyond the tile count is a config error: the extra
        cores would idle while still paying synchronisation."""
        x, _ = exact_fp16_scan_input(16384 * 2, rng)  # 2 tiles at s=128
        with pytest.raises(ConfigError):
            scan_ctx.scan_strategy(x, strategy=strategy, block_dim=20)

    @pytest.mark.parametrize("s", [16, 64])
    @pytest.mark.parametrize("block_dim", [None, 1, 4])
    def test_strategy_matrix(self, scan_ctx, rng, strategy, s, block_dim):
        """Every strategy × tile size × block_dim agrees with the oracle."""
        n = 5 * s * s + 7  # several tiles plus a ragged tail
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan_strategy(x, strategy=strategy, s=s, block_dim=block_dim)
        assert np.array_equal(res.values, expected[:n])


class TestStrategyStructure:
    def _barriers(self, res):
        return sum(1 for o in res.trace.ops if o.kind == "barrier")

    def test_barrier_counts(self, scan_ctx, rng):
        """MCScan: 1 barrier; SSA/RSS: 2; lookback: none (its defining
        property, Section 2.1)."""
        x, _ = exact_fp16_scan_input(1 << 19, rng)
        assert self._barriers(scan_ctx.scan_strategy(x, strategy="mcscan")) == 1
        assert self._barriers(scan_ctx.scan_strategy(x, strategy="ssa")) == 2
        assert self._barriers(scan_ctx.scan_strategy(x, strategy="rss")) == 2
        assert self._barriers(scan_ctx.scan_strategy(x, strategy="lookback")) == 0

    def test_traffic_ordering(self, scan_ctx, rng):
        """SSA moves the most GM bytes (its broadcast-add phase re-reads
        the output); MCScan, RSS and lookback move the same amount."""
        x, _ = exact_fp16_scan_input(1 << 20, rng)
        traffic = {
            strat: scan_ctx.scan_strategy(x, strategy=strat).trace.gm_bytes()
            for strat in SCAN_STRATEGIES
        }
        assert traffic["ssa"] > traffic["mcscan"]
        assert traffic["rss"] == pytest.approx(traffic["mcscan"], rel=0.01)
        assert traffic["lookback"] == pytest.approx(traffic["mcscan"], rel=0.01)

    def test_mcscan_overlap_beats_rss(self, scan_ctx, rng):
        """The recomputation claim: overlapping the reduction with the cube
        local scans (MCScan) beats the serialised RSS at equal traffic."""
        x, _ = exact_fp16_scan_input(1 << 21, rng)
        t_mc = scan_ctx.scan_strategy(x, strategy="mcscan").time_ns
        t_rss = scan_ctx.scan_strategy(x, strategy="rss").time_ns
        assert t_mc < t_rss

    def test_rss_cube_idles_in_phase_one(self, scan_ctx, rng):
        """RSS's first phase uses no cube engine at all."""
        x, _ = exact_fp16_scan_input(1 << 18, rng)
        res = scan_ctx.scan_strategy(x, strategy="rss")
        trace = res.trace
        barriers = [o.op_id for o in trace.ops if o.kind == "barrier"]
        first_phase = [o for o in trace.ops if o.op_id < barriers[0]]
        assert all(o.kind != "mmad" for o in first_phase)

    def test_unknown_strategy(self, scan_ctx):
        with pytest.raises(KernelError):
            scan_ctx.scan_strategy(
                np.ones(10, dtype=np.float16), strategy="magic"
            )
