"""Reference oracle tests."""

import numpy as np
import pytest

from repro.errors import DTypeError
from repro.core.reference import (
    accum_np_dtype,
    batched_inclusive_scan,
    compress,
    exact_fp16_scan_input,
    exact_int8_mask,
    exclusive_scan,
    inclusive_scan,
    stable_split,
)


class TestScans:
    def test_inclusive_simple(self):
        assert np.array_equal(inclusive_scan([1, 2, 3]), [1, 3, 6])

    def test_exclusive_shifts(self):
        x = np.array([5, 1, 2], dtype=np.int32)
        assert np.array_equal(exclusive_scan(x), [0, 5, 6])

    def test_exclusive_inclusive_relation(self, rng):
        x = rng.integers(-5, 5, 100).astype(np.int32)
        inc = inclusive_scan(x)
        exc = exclusive_scan(x)
        assert np.array_equal(exc[1:], inc[:-1])
        assert exc[0] == 0

    def test_fp16_accumulates_fp32(self):
        x = np.ones(10, dtype=np.float16)
        assert inclusive_scan(x).dtype == np.float32

    def test_int8_accumulates_int32(self):
        x = np.full(1000, 100, dtype=np.int8)
        out = inclusive_scan(x)
        assert out.dtype == np.int32
        assert out[-1] == 100000  # would overflow int8/int16

    def test_out_dtype(self):
        out = inclusive_scan(np.ones(4, dtype=np.float16), out_dtype=np.float16)
        assert out.dtype == np.float16

    def test_batched(self, rng):
        x = rng.integers(-4, 4, (5, 20)).astype(np.float16)
        out = batched_inclusive_scan(x)
        assert out.shape == (5, 20)
        assert np.allclose(out, np.cumsum(x.astype(np.float32), axis=1))

    def test_batched_requires_2d(self):
        with pytest.raises(DTypeError):
            batched_inclusive_scan(np.ones(4))

    def test_accum_rule_unknown(self):
        with pytest.raises(DTypeError):
            accum_np_dtype(np.complex64)


class TestSplitCompress:
    def test_stable_split(self):
        x = np.array([10, 20, 30, 40, 50])
        f = np.array([0, 1, 0, 1, 0])
        vals, idx = stable_split(x, f)
        assert np.array_equal(vals, [20, 40, 10, 30, 50])
        assert np.array_equal(idx, [1, 3, 0, 2, 4])

    def test_split_is_permutation(self, rng):
        x = rng.standard_normal(200)
        f = rng.random(200) < 0.3
        vals, idx = stable_split(x, f)
        assert np.array_equal(np.sort(idx), np.arange(200))
        assert np.array_equal(vals, x[idx])

    def test_compress(self):
        x = np.array([1, 2, 3, 4])
        assert np.array_equal(compress(x, [1, 0, 0, 1]), [1, 4])


class TestExactData:
    def test_fp16_scan_exactness(self, rng):
        x, expected = exact_fp16_scan_input(5000, rng)
        assert x.dtype == np.float16
        # fp32 cumsum reproduces the target exactly
        assert np.array_equal(np.cumsum(x.astype(np.float32)), expected)
        # so does fp16 pairwise summation of any contiguous range
        assert float(np.sum(x[100:300].astype(np.float32))) == float(
            expected[299] - expected[99]
        )

    def test_fp16_values_in_exact_range(self, rng):
        x, _ = exact_fp16_scan_input(10000, rng)
        assert np.all(np.abs(x.astype(np.float32)) < 4096)

    def test_prefix_bound_validated(self, rng):
        with pytest.raises(DTypeError):
            exact_fp16_scan_input(10, rng, prefix_bound=10000)

    def test_int8_mask(self, rng):
        m = exact_int8_mask(1000, rng, p=0.3)
        assert m.dtype == np.int8
        assert set(np.unique(m)) <= {0, 1}
        assert 100 < m.sum() < 500
