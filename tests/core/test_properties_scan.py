"""Property-based differential tests: every scan algorithm, strategy and
batched variant against the NumPy oracle (repro.core.reference), plus the
plan/serve execution paths against the one-shot API.

Inputs are drawn so results are *bit-exact* (see ``_exact_values``): small
integers whose every partial sum is exactly representable in the narrowest
dtype it passes through (fp16 staging buffers, int8 L1 staging on ScanUL1,
the fp32/int32 accumulators).  A separate tolerance test covers truly
random fp16 data, where association order legitimately changes rounding.

The hypothesis profile is fixed and derandomized, so the suite generates
the same ~250 cases on every run (no flaky CI): 8 algorithm x dtype combos
and 8 strategy x dtype combos at 10 examples each, plus batched / plan /
exclusive / service groups.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import (
    BATCHED_ALGORITHMS,
    SCAN_ALGORITHMS,
    SCAN_STRATEGIES,
    ScanContext,
)
from repro.core.reference import (
    batched_inclusive_scan,
    exclusive_scan,
    inclusive_scan,
)
from repro.serve import ScanService

settings.register_profile(
    "repro_scan",
    settings(
        max_examples=10,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.load_profile("repro_scan")

# shared full-device context: constants and serve plans cache across examples
_CTX = ScanContext()
_SERVICE = ScanService(_CTX)

# lengths biased toward tile/padding boundaries for s in {32, 64, 128}
lengths = st.one_of(
    st.integers(1, 2000),
    st.sampled_from([1, 31, 32, 33, 1023, 1024, 1025, 2047, 2048, 4000]),
)

dtypes = st.sampled_from(["fp16", "int8"])


def _exact_values(n: int, dtype: str, seed: int) -> np.ndarray:
    """Values whose scans are exact on every device path.

    int8 in [-3, 3]: any 32-element tile-row sum (<= 96) fits int8, so even
    ScanUL1's int8 L1 staging of ``C1 = A @ 1_s`` is exact at s=32.  fp16
    integers in [-2, 2]: row sums (<= 64 at s=32, <= 256 at s=128) are
    exact fp16, and all prefixes stay far below 2^24, exact in the fp32
    accumulator.
    """
    rng = np.random.default_rng(0xD1FF + seed)
    if dtype == "int8":
        return rng.integers(-3, 4, n).astype(np.int8)
    return (rng.integers(0, 5, n) - 2).astype(np.float16)


def _pick_s(algorithm: str, dtype: str, s: int) -> int:
    # ScanUL1 stages C1 through the input dtype: int8 needs s=32 so
    # tile-row sums stay within int8 (a documented kernel limit)
    if algorithm == "scanul1" and dtype == "int8":
        return 32
    return s


def _oracle(x: np.ndarray, algorithm: str) -> np.ndarray:
    if algorithm == "vector":
        return inclusive_scan(x, out_dtype=x.dtype)
    return inclusive_scan(x)


class TestScanDifferential:
    """One-shot API vs oracle: 4 algorithms x 2 dtypes, 10 examples each."""

    @pytest.mark.parametrize("algorithm", SCAN_ALGORITHMS)
    @pytest.mark.parametrize("dtype", ["fp16", "int8"])
    @given(
        n=lengths, seed=st.integers(0, 2**31), s=st.sampled_from([32, 64])
    )
    def test_scan_matches_oracle(self, algorithm, dtype, n, seed, s):
        s = _pick_s(algorithm, dtype, s)
        x = _exact_values(n, dtype, seed)
        res = _CTX.scan(x, algorithm=algorithm, s=s)
        expected = _oracle(x, algorithm)
        assert res.values.dtype == expected.dtype
        assert np.array_equal(res.values, expected)


class TestStrategyDifferential:
    """Multi-core strategies vs oracle: 4 strategies x 2 dtypes."""

    @pytest.mark.parametrize("strategy", SCAN_STRATEGIES)
    @pytest.mark.parametrize("dtype", ["fp16", "int8"])
    @given(n=lengths, seed=st.integers(0, 2**31))
    def test_strategy_matches_oracle(self, strategy, dtype, n, seed):
        x = _exact_values(n, dtype, seed)
        res = _CTX.scan_strategy(x, strategy=strategy, s=32)
        assert np.array_equal(res.values, inclusive_scan(x))


class TestBatchedDifferential:
    """Row-wise batched kernels vs the batched oracle."""

    @pytest.mark.parametrize("algorithm", BATCHED_ALGORITHMS)
    @given(
        batch=st.integers(1, 7),
        row_len=st.one_of(
            st.integers(1, 700), st.sampled_from([1, 128, 129, 512, 700])
        ),
        dtype=dtypes,
        seed=st.integers(0, 2**31),
    )
    def test_batched_matches_oracle(self, algorithm, batch, row_len, dtype, seed):
        x = _exact_values(batch * row_len, dtype, seed).reshape(batch, row_len)
        res = _CTX.batched_scan(x, algorithm=algorithm, s=32)
        if algorithm == "vector":
            expected = batched_inclusive_scan(x, out_dtype=x.dtype)
        else:
            expected = batched_inclusive_scan(x)
        assert np.array_equal(res.values, expected)


class TestExclusiveDifferential:
    @given(n=lengths, dtype=dtypes, seed=st.integers(0, 2**31))
    def test_exclusive_matches_oracle(self, n, dtype, seed):
        x = _exact_values(n, dtype, seed)
        res = _CTX.scan(x, algorithm="mcscan", s=32, exclusive=True)
        assert np.array_equal(res.values, exclusive_scan(x))


class TestPlanDifferential:
    """Plan execute vs one-shot vs oracle on the same values.

    Shapes come from a small pool so the module-level context accumulates
    a bounded set of persistent plans (plans pin device memory)."""

    @pytest.mark.parametrize("algorithm", SCAN_ALGORITHMS)
    @given(
        n=st.sampled_from([5, 900, 1024, 1800]),
        dtype=dtypes,
        seed=st.integers(0, 2**31),
    )
    def test_plan_equals_oneshot(self, algorithm, n, dtype, seed):
        x = _exact_values(n, dtype, seed)
        plan = _SERVICE.cache.get_1d(algorithm, n, dtype, s=32)
        planned = plan.execute(x)
        oneshot = _CTX.scan(x, algorithm=algorithm, s=32)
        assert np.array_equal(planned.values, oneshot.values)
        assert np.array_equal(planned.values, _oracle(x, algorithm))
        assert planned.values.dtype == oneshot.values.dtype

    @given(
        n=st.sampled_from([5, 900, 1024, 1800]),
        algorithm=st.sampled_from(SCAN_ALGORITHMS),
        dtype=dtypes,
        seed=st.integers(0, 2**31),
    )
    def test_service_matches_oracle(self, n, algorithm, dtype, seed):
        x = _exact_values(n, dtype, seed)
        ticket = _SERVICE.scan(x, algorithm=algorithm, s=32)
        assert ticket.done
        assert np.array_equal(ticket.result(), _oracle(x, algorithm))

    @given(
        k=st.integers(2, 5),
        algorithm=st.sampled_from(BATCHED_ALGORITHMS),
        dtype=dtypes,
        seed=st.integers(0, 2**31),
    )
    def test_coalesced_batch_matches_oracle(self, k, algorithm, dtype, seed):
        xs = [
            _exact_values(n, dtype, seed + i)
            for i, n in enumerate([700] * k)  # same shape class -> coalesce
        ]
        tickets = [
            _SERVICE.submit(x, algorithm=algorithm, s=32) for x in xs
        ]
        _SERVICE.flush()
        for x, t in zip(xs, tickets):
            assert t.batched and t.batch_size == k
            assert np.array_equal(t.result(), _oracle(x, algorithm))


class TestRandomFp16Tolerance:
    """Truly random fp16 data: association order changes rounding, so the
    kernels agree with the oracle to dtype-dependent tolerances only."""

    @pytest.mark.parametrize(
        "algorithm,rtol",
        [("scanu", 1e-3), ("mcscan", 1e-3), ("scanul1", 2e-2)],
    )
    @given(n=st.integers(100, 4000), seed=st.integers(0, 2**31))
    def test_random_fp16_within_tolerance(self, algorithm, rtol, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float16)
        res = _CTX.scan(x, algorithm=algorithm, s=32)
        expected = inclusive_scan(x)
        scale = np.maximum(np.abs(expected), 1.0)
        assert np.all(np.abs(res.values - expected) <= rtol * scale + 1e-2)
