"""Constant matrix and tiling utility tests."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.hw.config import toy_config
from repro.hw.device import AscendDevice
from repro.core.matrices import (
    all_ones,
    batched_tile_rows,
    host_constant_matrices,
    lower_ones,
    padded_length,
    strict_lower_ones,
    tile_count,
    upload_constants,
    upper_ones,
    validate_tile_size,
)


class TestHostConstantsMemo:
    def test_same_key_returns_same_arrays(self):
        a = host_constant_matrices(16, 16, "fp16")
        b = host_constant_matrices(16, 16, "fp16")
        assert all(x is y for x, y in zip(a, b))

    def test_distinct_keys_are_distinct(self):
        a = host_constant_matrices(16, 16, "fp16")
        b = host_constant_matrices(16, 8, "fp16")
        c = host_constant_matrices(16, 16, "int8")
        assert a[1] is not b[1]
        assert a[0] is not c[0]

    def test_cached_arrays_are_read_only(self):
        u, sl, ones = host_constant_matrices(32, 32, "fp16")
        for arr in (u, sl, ones):
            with pytest.raises(ValueError):
                arr[0] = 7

    def test_values_match_the_generators(self):
        u, sl, ones = host_constant_matrices(16, 8, "int8")
        assert np.array_equal(u, upper_ones(16, np.int8).reshape(-1))
        assert np.array_equal(sl, strict_lower_ones(8, np.int8).reshape(-1))
        assert np.array_equal(ones, all_ones(16, np.int8).reshape(-1))

    def test_two_devices_share_one_host_materialisation(self):
        host_constant_matrices.cache_clear()
        upload_constants(AscendDevice(toy_config()), 16, "fp16")
        info_after_first = host_constant_matrices.cache_info()
        upload_constants(AscendDevice(toy_config()), 16, "fp16")
        info_after_second = host_constant_matrices.cache_info()
        assert info_after_first.misses == 1
        assert info_after_second.misses == 1
        assert info_after_second.hits == info_after_first.hits + 1

    def test_concurrent_access_single_materialisation_stays_frozen(self):
        """Racing warm-up threads get one shared materialisation per key
        and every handed-out array is still read-only."""
        import threading

        host_constant_matrices.cache_clear()
        results = []
        errors = []
        start = threading.Barrier(8)

        def worker():
            try:
                start.wait()
                for _ in range(20):
                    results.append(host_constant_matrices(32, 32, "fp16"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        first = results[0]
        for entry in results:
            assert all(a is b for a, b in zip(entry, first))
            assert all(not a.flags.writeable for a in entry)
        info = host_constant_matrices.cache_info()
        assert info.misses == 1
        assert info.currsize == 1

    def test_unfrozen_entry_fails_loudly(self):
        """A cache entry whose array was made writable again is detected
        at the next access instead of silently corrupting later uploads."""
        host_constant_matrices.cache_clear()
        u, _sl, _ones = host_constant_matrices(16, 16, "fp16")
        u.setflags(write=True)
        try:
            with pytest.raises(KernelError):
                host_constant_matrices(16, 16, "fp16")
        finally:
            u.setflags(write=False)
            host_constant_matrices.cache_clear()


class TestMatrices:
    def test_upper_ones(self):
        u = upper_ones(4)
        assert np.array_equal(
            u, [[1, 1, 1, 1], [0, 1, 1, 1], [0, 0, 1, 1], [0, 0, 0, 1]]
        )

    def test_lower_ones_includes_diagonal(self):
        assert np.array_equal(np.diag(lower_ones(8)), np.ones(8))

    def test_strict_lower_has_zero_diagonal(self):
        sl = strict_lower_ones(8)
        assert np.all(np.diag(sl) == 0)
        assert sl.sum() == 8 * 7 / 2

    def test_all_ones(self):
        assert all_ones(4).sum() == 16

    def test_scan_identity(self):
        """A @ U_s computes per-row scans (the Section 4.1 fact)."""
        rng = np.random.default_rng(0)
        a = rng.integers(-8, 8, (16, 16)).astype(np.float32)
        result = a @ upper_ones(16, np.float32)
        assert np.allclose(result, np.cumsum(a, axis=1))

    def test_equation_1(self):
        """scan(z) = A @ U + L^- @ A @ 1 (Equation 1 of the paper)."""
        rng = np.random.default_rng(1)
        s = 8
        z = rng.integers(-8, 8, s * s).astype(np.float32)
        a = z.reshape(s, s)
        result = a @ upper_ones(s, np.float32) + strict_lower_ones(
            s, np.float32
        ) @ a @ all_ones(s, np.float32)
        assert np.allclose(result.reshape(-1), np.cumsum(z))

    def test_equation_1_rectangular(self):
        """Equation 1 with an m x s tile uses L^-_m (batched tiling)."""
        rng = np.random.default_rng(2)
        m, s = 4, 8
        z = rng.integers(-8, 8, m * s).astype(np.float32)
        a = z.reshape(m, s)
        result = a @ upper_ones(s, np.float32) + strict_lower_ones(
            m, np.float32
        ) @ (a @ all_ones(s, np.float32))
        assert np.allclose(result.reshape(-1), np.cumsum(z))


class TestTiling:
    def test_padded_length(self):
        assert padded_length(100, 64) == 128
        assert padded_length(128, 64) == 128
        with pytest.raises(ShapeError):
            padded_length(0, 64)

    def test_tile_count(self):
        assert tile_count(100, 64) == 2
        assert tile_count(64, 64) == 1

    def test_validate_tile_size(self):
        for s in (16, 32, 64, 128):
            validate_tile_size(s)
        with pytest.raises(KernelError):
            validate_tile_size(100)

    @pytest.mark.parametrize(
        "row_len,s,expected",
        [
            (65536, 128, 128),  # long rows: square tiles
            (1024, 128, 8),  # 1024/128 = 8 rows available
            (100, 128, 1),  # shorter than s: single row
            (4096, 64, 64),
            (3000, 128, 16),  # pads to 3072 -> 24 rows -> pow2 16
        ],
    )
    def test_batched_tile_rows(self, row_len, s, expected):
        assert batched_tile_rows(row_len, s) == expected

    def test_batched_tile_rows_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            batched_tile_rows(0, 128)


class TestUploadConstants:
    def test_upload_shapes(self):
        dev = AscendDevice(toy_config())
        c = upload_constants(dev, 32, "fp16")
        assert c.s == 32 and c.rows == 32
        assert c.u.num_elements == 32 * 32
        assert np.array_equal(
            c.u.to_numpy().reshape(32, 32), upper_ones(32)
        )
        assert np.array_equal(
            c.strict_lower.to_numpy().reshape(32, 32), strict_lower_ones(32)
        )
        assert c.tile_elements == 1024

    def test_upload_rectangular(self):
        dev = AscendDevice(toy_config())
        c = upload_constants(dev, 32, "fp16", rows=8)
        assert c.strict_lower.num_elements == 64
        assert c.tile_elements == 256

    def test_rows_validated(self):
        dev = AscendDevice(toy_config())
        with pytest.raises(ShapeError):
            upload_constants(dev, 32, "fp16", rows=64)

    def test_int8_constants(self):
        dev = AscendDevice(toy_config())
        c = upload_constants(dev, 16, "int8")
        assert c.dtype.name == "int8"

    def test_non_cube_dtype_rejected(self):
        dev = AscendDevice(toy_config())
        with pytest.raises(KernelError):
            upload_constants(dev, 16, "fp32")
