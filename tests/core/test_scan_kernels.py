"""Single-core scan kernel tests: ScanU (Algorithm 1) and ScanUL1
(Algorithm 2), run through the public ScanContext API."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.core.api import ScanContext
from repro.core.matrices import upload_constants
from repro.core.mcscan import MCScanKernel
from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.core.scanu import ScanUKernel
from repro.core.scanul1 import ScanUL1Kernel


@pytest.mark.parametrize("algorithm", ["scanu", "scanul1"])
class TestSingleCoreCorrectness:
    @pytest.mark.parametrize("s", [16, 32, 128])
    def test_exact_fp16(self, scan_ctx, rng, algorithm, s):
        n = 3 * s * s + 7  # forces padding
        x, expected = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm=algorithm, s=s)
        assert res.values.dtype == np.float32
        assert np.array_equal(res.values, expected[:n])

    def test_int8(self, scan_ctx, rng, algorithm):
        n = 40000
        x = rng.integers(-5, 6, n).astype(np.int8)
        res = scan_ctx.scan(x, algorithm=algorithm, s=64)
        assert res.values.dtype == np.int32
        assert np.array_equal(res.values, inclusive_scan(x))

    def test_single_element(self, scan_ctx, algorithm):
        res = scan_ctx.scan(np.array([3.0], dtype=np.float16), algorithm=algorithm)
        assert res.values[0] == 3.0

    def test_all_zeros(self, scan_ctx, algorithm):
        res = scan_ctx.scan(np.zeros(1000, dtype=np.float16), algorithm=algorithm)
        assert np.all(res.values == 0)

    def test_negative_values(self, scan_ctx, rng, algorithm):
        x = -np.abs(rng.integers(0, 4, 5000)).astype(np.float16)
        res = scan_ctx.scan(x, algorithm=algorithm)
        assert np.array_equal(res.values, inclusive_scan(x))


class TestSingleCoreTiming:
    def test_scanul1_faster_than_scanu(self, scan_ctx, rng):
        """Algorithm 2's single-Adds propagation beats Algorithm 1's serial
        chain (the paper's ~2x)."""
        x, _ = exact_fp16_scan_input(1 << 19, rng)
        t_u = scan_ctx.scan(x, algorithm="scanu", s=128).time_ns
        t_ul1 = scan_ctx.scan(x, algorithm="scanul1", s=128).time_ns
        assert 1.5 < t_u / t_ul1 < 3.0

    def test_both_beat_vector_baseline(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(1 << 19, rng)
        t_vec = scan_ctx.scan(x, algorithm="vector").time_ns
        t_u = scan_ctx.scan(x, algorithm="scanu", s=128).time_ns
        t_ul1 = scan_ctx.scan(x, algorithm="scanul1", s=128).time_ns
        assert t_vec / t_u > 3.0  # paper: ~5x
        assert t_vec / t_ul1 > 6.0  # paper: ~9.6x

    def test_scanul1_issues_three_matmuls_per_tile(self, scan_ctx, rng):
        s = 32
        n = 4 * s * s
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="scanul1", s=s)
        assert res.trace.op_count_by_kind()["mmad"] == 3 * 4

    def test_scanu_issues_one_matmul_per_tile(self, scan_ctx, rng):
        s = 32
        n = 4 * s * s
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="scanu", s=s)
        assert res.trace.op_count_by_kind()["mmad"] == 4


class TestKernelValidation:
    def _device_tensors(self, device, n=1024, s=32):
        consts = upload_constants(device, s, "fp16")
        x = device.alloc("x", n, "fp16")
        y = device.alloc("y", n, "fp32")
        return x, y, consts

    def test_unpadded_length_rejected(self, device):
        x, y, consts = self._device_tensors(device, n=1000)
        with pytest.raises(ShapeError):
            ScanUKernel(x, y, consts, 32)

    def test_wrong_output_dtype(self, device):
        consts = upload_constants(device, 32, "fp16")
        x = device.alloc("x", 1024, "fp16")
        y = device.alloc("y", 1024, "fp16")
        with pytest.raises(KernelError):
            ScanUKernel(x, y, consts, 32)
        with pytest.raises(KernelError):
            ScanUL1Kernel(x, y, consts, 32)

    def test_mismatched_constants(self, device):
        consts = upload_constants(device, 64, "fp16")
        x = device.alloc("x", 1024, "fp16")
        y = device.alloc("y", 1024, "fp32")
        with pytest.raises(KernelError):
            ScanUKernel(x, y, consts, 32)

    def test_output_length_mismatch(self, device):
        consts = upload_constants(device, 32, "fp16")
        x = device.alloc("x", 1024, "fp16")
        y = device.alloc("y", 2048, "fp32")
        with pytest.raises(ShapeError):
            ScanUL1Kernel(x, y, consts, 32)

    def test_mcscan_r_too_small(self, device):
        consts = upload_constants(device, 32, "fp16")
        x = device.alloc("x", 4096, "fp16")
        y = device.alloc("y", 4096, "fp32")
        r = device.alloc("r", 2, "fp32")
        kernel = MCScanKernel(x, y, r, consts, 32, block_dim=4)
        with pytest.raises(ShapeError):
            device.launch(kernel)
