"""8-bit (low-precision) operator support — the paper's Section 6.3
outlook implemented: iterations equal the key bit-width."""

import numpy as np

from repro.core.reference import stable_split


class TestUint8RadixSort:
    def test_values_and_indices(self, ops, rng):
        x = rng.integers(0, 256, 30000).astype(np.uint8)
        res = ops.radix_sort(x)
        assert np.array_equal(res.values, np.sort(x))
        assert np.array_equal(res.indices, np.argsort(x, kind="stable"))

    def test_descending(self, ops, rng):
        x = rng.integers(0, 256, 10000).astype(np.uint8)
        res = ops.radix_sort(x, descending=True)
        assert np.array_equal(res.values, np.sort(x)[::-1])

    def test_eight_split_iterations(self, ops, rng):
        x = rng.integers(0, 256, 20000).astype(np.uint8)
        res = ops.radix_sort(x)
        splits = [t for t in res.traces if "split bit" in t.label]
        assert len(splits) == 8

    def test_stability(self, ops, rng):
        x = rng.integers(0, 4, 10000).astype(np.uint8)
        res = ops.radix_sort(x)
        for v in np.unique(x):
            idx = res.indices[res.values == v]
            assert np.all(np.diff(idx) > 0)

    def test_roughly_twice_as_fast_as_fp16(self, ops, rng):
        """The predicted 2x of Section 6.3: half the bits, half the splits."""
        n = 1 << 18
        x8 = rng.integers(0, 256, n).astype(np.uint8)
        x16 = rng.standard_normal(n).astype(np.float16)
        t8 = ops.radix_sort(x8).time_ns
        t16 = ops.radix_sort(x16).time_ns
        assert 1.5 < t16 / t8 < 2.6


class TestUint8Split:
    def test_split_8bit_values(self, ops, rng):
        x = rng.integers(0, 256, 20000).astype(np.uint8)
        f = (rng.random(20000) < 0.5).astype(np.int8)
        res = ops.split(x, f)
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_compress_8bit_values(self, ops, rng):
        x = rng.integers(0, 256, 20000).astype(np.uint8)
        m = (rng.random(20000) < 0.3).astype(np.int8)
        res = ops.compress(x, m)
        assert np.array_equal(res.values, x[m.astype(bool)])
