"""Compress operator and masked_select baseline tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.core.reference import compress as ref_compress


class TestCompressCorrectness:
    def test_basic(self, ops, rng):
        x = rng.standard_normal(30000).astype(np.float16)
        m = (rng.random(30000) < 0.5).astype(np.int8)
        res = ops.compress(x, m)
        assert np.array_equal(res.values, ref_compress(x, m))

    def test_empty_selection(self, ops, rng):
        x = rng.standard_normal(5000).astype(np.float16)
        m = np.zeros(5000, dtype=np.int8)
        res = ops.compress(x, m)
        assert res.values.size == 0

    def test_full_selection(self, ops, rng):
        x = rng.standard_normal(5000).astype(np.float16)
        m = np.ones(5000, dtype=np.int8)
        res = ops.compress(x, m)
        assert np.array_equal(res.values, x)

    @pytest.mark.parametrize("s", [32, 64, 128])
    def test_tile_sizes(self, ops, rng, s):
        x = rng.standard_normal(20000).astype(np.float16)
        m = (rng.random(20000) < 0.5).astype(np.int8)
        res = ops.compress(x, m, s=s)
        assert np.array_equal(res.values, ref_compress(x, m))

    def test_length_mismatch(self, ops):
        with pytest.raises(ShapeError):
            ops.compress(np.ones(10, dtype=np.float16), np.ones(8, dtype=np.int8))


class TestBaseline:
    def test_baseline_correct(self, ops, rng):
        x = rng.standard_normal(20000).astype(np.float16)
        m = (rng.random(20000) < 0.5).astype(np.int8)
        res = ops.masked_select_baseline(x, m)
        assert np.array_equal(res.values, ref_compress(x, m))

    def test_baseline_uses_neither_vector_nor_cube(self, ops, rng):
        """Section 6.2's code-investigation finding."""
        x = rng.standard_normal(20000).astype(np.float16)
        m = (rng.random(20000) < 0.5).astype(np.int8)
        res = ops.masked_select_baseline(x, m)
        kinds = res.traces[0].op_count_by_kind()
        assert "mmad" not in kinds
        assert "vec" not in kinds and "vec_chain" not in kinds

    def test_compress_orders_of_magnitude_faster(self, ops, rng):
        n = 1 << 18
        x = rng.standard_normal(n).astype(np.float16)
        m = (rng.random(n) < 0.5).astype(np.int8)
        t_fast = ops.compress(x, m).time_ns
        t_slow = ops.masked_select_baseline(x, m).time_ns
        assert t_slow / t_fast > 20


class TestCompressBandwidth:
    def test_approaches_paper_range(self, ops, rng):
        """Paper: up to 160 GB/s (~20% of peak) for large inputs."""
        n = 1 << 21
        x = rng.standard_normal(n).astype(np.float16)
        m = (rng.random(n) < 0.5).astype(np.int8)
        bw = ops.compress(x, m, s=128).bandwidth_gbps
        assert 80 < bw < 260
