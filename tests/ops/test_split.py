"""SplitInd operator tests."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.core.reference import stable_split


class TestSplitCorrectness:
    def test_basic(self, ops, rng):
        x = rng.standard_normal(30000).astype(np.float16)
        f = (rng.random(30000) < 0.5).astype(np.int8)
        res = ops.split(x, f)
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    @pytest.mark.parametrize("p_true", [0.0, 0.03, 0.97, 1.0])
    def test_extreme_flag_densities(self, ops, rng, p_true):
        n = 20000
        x = rng.standard_normal(n).astype(np.float16)
        f = (rng.random(n) < p_true).astype(np.int8)
        res = ops.split(x, f)
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_stability(self, ops, rng):
        """Equal values keep their original relative order."""
        x = np.zeros(5000, dtype=np.float16)
        f = (rng.random(5000) < 0.4).astype(np.int8)
        res = ops.split(x, f)
        true_idx = res.indices[: int(f.sum())]
        false_idx = res.indices[int(f.sum()) :]
        assert np.all(np.diff(true_idx) > 0)
        assert np.all(np.diff(false_idx) > 0)

    def test_uint16_values(self, ops, rng):
        x = rng.integers(0, 65536, 10000).astype(np.uint16)
        f = (rng.random(10000) < 0.5).astype(np.int8)
        res = ops.split(x, f)
        ev, _ = stable_split(x, f)
        assert np.array_equal(res.values, ev)

    def test_small_tile_size(self, ops, rng):
        x = rng.standard_normal(5000).astype(np.float16)
        f = (rng.random(5000) < 0.5).astype(np.int8)
        res = ops.split(x, f, s=32)
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_unpadded_length(self, ops, rng):
        """Padding flags with zeros must not corrupt the false side."""
        n = 16384 + 777
        x = rng.standard_normal(n).astype(np.float16)
        f = (rng.random(n) < 0.3).astype(np.int8)
        res = ops.split(x, f)
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)


class TestSplitValidation:
    def test_length_mismatch(self, ops, rng):
        with pytest.raises(ShapeError):
            ops.split(
                np.ones(10, dtype=np.float16), np.ones(9, dtype=np.int8)
            )

    def test_rejects_32bit_values(self, ops):
        # "SplitInd takes as input an array of 16-bit elements" (Section 5)
        with pytest.raises(KernelError):
            ops.split(np.ones(10, dtype=np.float32), np.ones(10, dtype=np.int8))


class TestSplitStructure:
    def test_single_launch_three_phases(self, ops, rng):
        x = rng.standard_normal(40000).astype(np.float16)
        f = (rng.random(40000) < 0.5).astype(np.int8)
        res = ops.split(x, f)
        assert res.kernel_launches == 1
        barriers = sum(
            1 for o in res.traces[0].ops if o.kind == "barrier"
        )
        assert barriers == 2  # MCScan phase boundary + gather boundary

    def test_uses_exclusive_int8_mcscan(self, ops, rng):
        """The mask scan runs on the cube units in int8 (Section 5)."""
        x = rng.standard_normal(40000).astype(np.float16)
        f = (rng.random(40000) < 0.5).astype(np.int8)
        res = ops.split(x, f)
        mmads = [o for o in res.traces[0].ops if o.kind == "mmad"]
        assert len(mmads) > 0
