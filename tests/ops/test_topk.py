"""Top-k operator tests (quickselect + streaming baseline)."""

import numpy as np
import pytest

from repro.errors import KernelError


def _expected_topk(x, k):
    order = np.lexsort((np.arange(x.size), -x.astype(np.float32)))[:k]
    return x[order], order


class TestQuickselectTopK:
    def test_values(self, ops, rng):
        x = rng.standard_normal(60000).astype(np.float16)
        k = 100
        res = ops.topk(x, k)
        ev, _ = _expected_topk(x, k)
        assert np.array_equal(res.values, ev)

    def test_indices_point_at_values(self, ops, rng):
        x = rng.standard_normal(60000).astype(np.float16)
        res = ops.topk(x, 50)
        assert np.array_equal(x[res.indices], res.values)

    def test_k_equals_n_small(self, ops, rng):
        x = rng.standard_normal(3000).astype(np.float16)
        res = ops.topk(x, 3000)
        assert np.array_equal(res.values, np.sort(x)[::-1])

    def test_large_k(self, ops, rng):
        x = rng.standard_normal(80000).astype(np.float16)
        k = 4096
        res = ops.topk(x, k)
        ev, _ = _expected_topk(x, k)
        assert np.array_equal(res.values, ev)

    def test_k_validation(self, ops):
        x = np.ones(10, dtype=np.float16)
        with pytest.raises(KernelError):
            ops.topk(x, 0)
        with pytest.raises(KernelError):
            ops.topk(x, 11)


class TestBaselineTopK:
    def test_values_and_indices(self, ops, rng):
        x = rng.standard_normal(60000).astype(np.float16)
        k = 128
        res = ops.topk_baseline(x, k)
        ev, ei = _expected_topk(x, k)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_duplicates(self, ops, rng):
        x = rng.integers(0, 8, 20000).astype(np.float16)
        res = ops.topk_baseline(x, 64)
        ev, ei = _expected_topk(x, 64)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_single_read_of_input(self, ops, rng):
        """The streaming baseline reads the input once."""
        n = 1 << 17
        x = rng.standard_normal(n).astype(np.float16)
        res = ops.topk_baseline(x, 64)
        assert res.traces[0].gm_read_bytes() == pytest.approx(n * 2, rel=0.01)


class TestNegativeResult:
    def test_baseline_wins_for_small_k(self, ops, rng):
        """Paper Section 5: 'we could not improve the performance of the
        baseline top-k for small values of k (k <= 4096)'."""
        x = rng.standard_normal(1 << 18).astype(np.float16)
        for k in (64, 1024):
            t_quick = ops.topk(x, k).time_ns
            t_base = ops.topk_baseline(x, k).time_ns
            assert t_base < t_quick


class TestRadixTopK:
    """The RadiK-style radix select (paper Section 5's scalable direction)."""

    def _expected(self, x, k):
        order = np.lexsort((np.arange(x.size), -x.astype(np.float32)))[:k]
        return x[order], order

    def test_values(self, ops, rng):
        x = rng.standard_normal(50000).astype(np.float16)
        for k in (1, 100, 5000):
            res = ops.topk_radix(x, k)
            ev, _ = self._expected(x, k)
            assert np.array_equal(res.values, ev)

    def test_indices_tie_order(self, ops, rng):
        x = rng.integers(0, 16, 30000).astype(np.float16)  # heavy ties
        k = 500
        res = ops.topk_radix(x, k)
        ev, ei = self._expected(x, k)
        assert np.array_equal(res.values, ev)
        assert np.array_equal(res.indices, ei)

    def test_k_equals_n(self, ops, rng):
        x = rng.standard_normal(5000).astype(np.float16)
        res = ops.topk_radix(x, 5000)
        assert np.array_equal(res.values, np.sort(x)[::-1])

    def test_negative_infinities(self, ops, rng):
        x = rng.standard_normal(10000).astype(np.float16)
        x[:100] = -np.inf
        res = ops.topk_radix(x, 50)
        ev, _ = self._expected(x, 50)
        assert np.array_equal(res.values, ev)

    def test_sixteen_counting_passes(self, ops, rng):
        x = rng.standard_normal(20000).astype(np.float16)
        res = ops.topk_radix(x, 128)
        counting = [t for t in res.traces if t.label.startswith("count bit")]
        assert len(counting) == 16

    def test_scales_to_large_k(self, ops, rng):
        """Where the streaming baseline degrades (per-core candidate state
        grows with k), radix select stays flat - the RadiK claim."""
        n = 1 << 18
        x = rng.standard_normal(n).astype(np.float16)
        k_large = 1 << 15
        t_radix = ops.topk_radix(x, k_large).time_ns
        t_base = ops.topk_baseline(x, k_large).time_ns
        assert t_radix < t_base
