"""Elementwise / predicate kernel tests."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.ops.elementwise import (
    ElementwiseMapKernel,
    PredicateCountKernel,
    RangeCopyKernel,
)


class TestElementwiseMap:
    def test_map(self, toy_device, rng):
        x = toy_device.alloc("x", 40000, "fp16")
        y = toy_device.alloc("y", 40000, "fp16")
        vals = rng.standard_normal(40000).astype(np.float16)
        x.write(vals)
        toy_device.launch(ElementwiseMapKernel(x, y, lambda v: -v, 4))
        assert np.array_equal(y.to_numpy(), -vals)

    def test_dtype_change(self, toy_device, rng):
        x = toy_device.alloc("x", 1000, "fp16")
        y = toy_device.alloc("y", 1000, "uint16")
        vals = rng.standard_normal(1000).astype(np.float16)
        x.write(vals)
        toy_device.launch(
            ElementwiseMapKernel(x, y, lambda v: v.view(np.uint16), 2)
        )
        assert np.array_equal(y.to_numpy(), vals.view(np.uint16))

    def test_length_mismatch(self, toy_device):
        x = toy_device.alloc("x", 10, "fp16")
        y = toy_device.alloc("y", 11, "fp16")
        with pytest.raises(ShapeError):
            ElementwiseMapKernel(x, y, lambda v: v, 1)


class TestPredicateCount:
    def _run(self, device, vals, op, scalar, bd=3):
        x = device.alloc("x", vals.size, "fp32")
        x.write(vals)
        mask = device.alloc("m", vals.size, "int8")
        counts = device.alloc("c", bd, "int32")
        device.launch(PredicateCountKernel(x, mask, counts, op, scalar, bd))
        return mask.to_numpy(), int(counts.to_numpy().sum())

    def test_count_and_mask(self, toy_device, rng):
        vals = rng.standard_normal(50000).astype(np.float32)
        mask, count = self._run(toy_device, vals, "gt", 0.5)
        assert count == int((vals > 0.5).sum())
        assert np.array_equal(mask.astype(bool), vals > 0.5)

    def test_monotone_cut_position(self, toy_device):
        """For a monotone array the count IS the cut position."""
        vals = np.cumsum(np.ones(10000, dtype=np.float32))
        _, count = self._run(toy_device, vals, "le", 1234.5)
        assert count == 1234

    def test_mask_dtype_enforced(self, toy_device):
        x = toy_device.alloc("x", 10, "fp32")
        m = toy_device.alloc("m", 10, "fp16")
        c = toy_device.alloc("c", 1, "int32")
        with pytest.raises(KernelError):
            PredicateCountKernel(x, m, c, "gt", 0.0, 1)

    def test_counts_shape_enforced(self, toy_device):
        x = toy_device.alloc("x", 10, "fp32")
        m = toy_device.alloc("m", 10, "int8")
        c = toy_device.alloc("c", 1, "int32")
        with pytest.raises(KernelError):
            PredicateCountKernel(x, m, c, "gt", 0.0, 2)


class TestRangeCopy:
    def test_offset_copy(self, toy_device, rng):
        src = toy_device.alloc("s", 30000, "int32")
        dst = toy_device.alloc("d", 10000, "int32")
        vals = rng.integers(0, 1 << 30, 30000).astype(np.int32)
        src.write(vals)
        toy_device.launch(RangeCopyKernel(src, dst, 5000, 10000, 4))
        assert np.array_equal(dst.to_numpy(), vals[5000:15000])

    def test_mapped_copy(self, toy_device, rng):
        src = toy_device.alloc("s", 1000, "fp16")
        dst = toy_device.alloc("d", 1000, "fp16")
        vals = rng.standard_normal(1000).astype(np.float16)
        src.write(vals)
        toy_device.launch(
            RangeCopyKernel(src, dst, 0, 1000, 2, fn=lambda v: -v)
        )
        assert np.array_equal(dst.to_numpy(), -vals)

    def test_bounds(self, toy_device):
        src = toy_device.alloc("s", 100, "fp16")
        dst = toy_device.alloc("d", 100, "fp16")
        with pytest.raises(ShapeError):
            RangeCopyKernel(src, dst, 50, 60, 1)
        with pytest.raises(ShapeError):
            RangeCopyKernel(src, dst, 0, 0, 1)
