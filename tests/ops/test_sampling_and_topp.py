"""Weighted sampling and top-p (nucleus) sampling tests."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.ops.driver import MULTINOMIAL_MAX_SUPPORT
from repro.ops.topp import TopPSampler


def _expected_sample(w, theta):
    cum = np.cumsum(w.astype(np.float64))
    return int(np.searchsorted(cum, theta * cum[-1], side="right"))


class TestWeightedSample:
    def test_matches_inverse_transform(self, ops, rng):
        w = rng.random(50000).astype(np.float16)
        for theta in (0.0, 0.25, 0.5, 0.99):
            res = ops.weighted_sample(w, theta=theta)
            assert int(res.values[0]) == min(_expected_sample(w, theta), w.size - 1)

    def test_point_mass(self, ops):
        w = np.zeros(1000, dtype=np.float16)
        w[123] = 1.0
        res = ops.weighted_sample(w, theta=0.5)
        assert int(res.values[0]) == 123

    def test_random_theta_in_support(self, ops, rng):
        w = rng.random(10000).astype(np.float16)
        res = ops.weighted_sample(w, rng=rng)
        assert 0 <= int(res.values[0]) < 10000

    def test_rejects_negative_weights(self, ops):
        w = np.array([1, -1, 1], dtype=np.float16)
        with pytest.raises(KernelError):
            ops.weighted_sample(w, theta=0.5)

    def test_rejects_zero_mass(self, ops):
        with pytest.raises(KernelError):
            ops.weighted_sample(np.zeros(100, dtype=np.float16), theta=0.5)

    def test_theta_range(self, ops):
        w = np.ones(10, dtype=np.float16)
        with pytest.raises(KernelError):
            ops.weighted_sample(w, theta=1.5)


class TestMultinomialBaseline:
    def test_agrees_with_scan_sampler(self, ops, rng):
        w = rng.random(30000).astype(np.float16)
        a = ops.weighted_sample(w, theta=0.7)
        b = ops.multinomial_baseline(w, theta=0.7)
        # both are inverse-transform; fp rounding may shift the cut by a hair
        assert abs(int(a.values[0]) - int(b.values[0])) <= 1

    def test_support_limit(self, ops):
        """The paper's functional contrast: torch.multinomial supports at
        most 2^24 elements, the scan-based sampler has no limit."""
        big = np.ones(MULTINOMIAL_MAX_SUPPORT + 1, dtype=np.float16)
        with pytest.raises(KernelError):
            ops.multinomial_baseline(big, theta=0.5)


class TestTopP:
    @pytest.fixture()
    def probs(self, rng):
        logits = rng.standard_normal(8192).astype(np.float32) * 2
        p = np.exp(logits - logits.max())
        return (p / p.sum()).astype(np.float16)

    def test_backends_agree(self, ops, probs):
        """Same nucleus cut up to the baseline's fp16-cumsum rounding; the
        sampled *position* must be nearly identical (token ids at adjacent
        positions can of course differ)."""
        sampler = TopPSampler(ops)
        a = sampler.sample(probs, 0.9, theta=0.4, backend="cube")
        b = sampler.sample(probs, 0.9, theta=0.4, backend="baseline")
        assert abs(a.extras["position"] - b.extras["position"]) <= 64
        assert abs(a.extras["nucleus_size"] - b.extras["nucleus_size"]) <= 64

    def test_sample_is_in_nucleus(self, ops, probs):
        sampler = TopPSampler(ops)
        res = sampler.sample(probs, 0.5, theta=0.99, backend="cube")
        token = int(res.values[0])
        # the token must be among the top `nucleus_size` probabilities
        k = res.extras["nucleus_size"]
        threshold = np.sort(probs.astype(np.float32))[::-1][k - 1]
        assert float(probs[token]) >= threshold

    def test_small_p_selects_top_token(self, ops, rng):
        p = np.zeros(4096, dtype=np.float16)
        p[77] = 0.9
        p[12] = 0.1
        sampler = TopPSampler(ops)
        res = sampler.sample(p, 0.5, theta=0.5, backend="cube")
        assert int(res.values[0]) == 77
        assert res.extras["nucleus_size"] == 1

    def test_nucleus_mass_definition(self, ops, probs):
        sampler = TopPSampler(ops)
        res = sampler.sample(probs, 0.9, theta=0.1, backend="cube")
        k = res.extras["nucleus_size"]
        sorted_p = np.sort(probs.astype(np.float64))[::-1]
        exclusive_mass = sorted_p[:k - 1].sum() / sorted_p.sum()
        assert exclusive_mass <= 0.9 + 1e-3

    def test_seventeen_scans(self, ops, probs):
        """Section 5: 'top-p executes 17 scans for each batch: 16 scan
        operations for radix sort plus an additional scan'."""
        sampler = TopPSampler(ops)
        res = sampler.sample(probs, 0.9, theta=0.5, backend="cube")
        scans = [
            t for t in res.traces
            if "split bit" in t.label or "cumsum (MCScan)" in t.label
        ]
        assert len(scans) == 17

    def test_validation(self, ops, probs):
        sampler = TopPSampler(ops)
        with pytest.raises(KernelError):
            sampler.sample(probs, 0.0)
        with pytest.raises(KernelError):
            sampler.sample(probs, 0.9, backend="gpu")
        with pytest.raises(ShapeError):
            sampler.sample(probs.reshape(64, -1), 0.9)
        with pytest.raises(KernelError):
            sampler.sample(probs.astype(np.float32), 0.9)

    def test_baseline_scales_worse(self, ops, rng):
        """Figure 13: the baseline's time grows much faster with the
        distribution size."""
        times = {}
        sampler = TopPSampler(ops)
        for n in (1 << 14, 1 << 17):
            logits = rng.standard_normal(n).astype(np.float32)
            p = np.exp(logits - logits.max())
            p16 = (p / p.sum()).astype(np.float16)
            cube = sampler.sample(p16, 0.9, theta=0.5, backend="cube").time_ns
            base = sampler.sample(p16, 0.9, theta=0.5, backend="baseline").time_ns
            times[n] = base / cube
        assert times[1 << 17] > times[1 << 14]
