"""OperatorResult aggregation tests."""

import numpy as np
import pytest

from repro.ops.result import OperatorResult


class _FakeTrace:
    def __init__(self, total_ns, gm=0):
        self.total_ns = total_ns
        self._gm = gm

    def gm_bytes(self):
        return self._gm


class TestOperatorResult:
    def test_time_is_sum_of_launches(self):
        res = OperatorResult(
            np.zeros(1), [_FakeTrace(1000.0), _FakeTrace(2500.0)], 10, 60
        )
        assert res.time_ns == 3500.0
        assert res.time_us == pytest.approx(3.5)
        assert res.time_ms == pytest.approx(0.0035)
        assert res.kernel_launches == 2

    def test_bandwidth_and_throughput(self):
        res = OperatorResult(np.zeros(1), [_FakeTrace(100.0)], 50, 600)
        assert res.bandwidth_gbps == pytest.approx(6.0)
        assert res.gelems_per_s == pytest.approx(0.5)

    def test_zero_time_guard(self):
        res = OperatorResult(np.zeros(1), [], 10, 60)
        assert res.bandwidth_gbps == 0.0
        assert res.gelems_per_s == 0.0

    def test_gm_bytes_aggregates(self):
        res = OperatorResult(
            np.zeros(1), [_FakeTrace(1, gm=100), _FakeTrace(1, gm=250)], 1, 1
        )
        assert res.gm_bytes() == 350
