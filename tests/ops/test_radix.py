"""Radix sort tests (encode/decode, RadixSingle, full operator)."""

import numpy as np
import pytest

from repro.ops.radix import decode_fp16_np, encode_fp16_np


class TestEncoding:
    def test_roundtrip(self, rng):
        x = rng.standard_normal(1000).astype(np.float16)
        assert np.array_equal(decode_fp16_np(encode_fp16_np(x)), x)

    def test_order_preserving(self, rng):
        x = rng.standard_normal(1000).astype(np.float16)
        e = encode_fp16_np(x)
        order_x = np.argsort(x.astype(np.float32), kind="stable")
        order_e = np.argsort(e, kind="stable")
        assert np.array_equal(x[order_x], x[order_e])

    def test_special_values(self):
        x = np.array([-np.inf, -1.0, -0.0, 0.0, 1.0, np.inf], dtype=np.float16)
        e = encode_fp16_np(x).astype(np.int64)
        # strictly monotone except -0.0/0.0 which may tie-order arbitrarily
        assert e[0] < e[1] < e[2]
        assert e[3] < e[4] < e[5]
        assert e[2] < e[4]

    def test_roundtrip_infinities(self):
        x = np.array([np.inf, -np.inf], dtype=np.float16)
        assert np.array_equal(decode_fp16_np(encode_fp16_np(x)), x)


class TestRadixSort:
    def test_fp16_values_and_indices(self, ops, rng):
        n = 30000
        x = rng.standard_normal(n).astype(np.float16)
        res = ops.radix_sort(x)
        assert np.array_equal(res.values, np.sort(x))
        assert np.array_equal(
            res.indices, np.argsort(x.astype(np.float32), kind="stable")
        )

    def test_descending(self, ops, rng):
        x = rng.standard_normal(20000).astype(np.float16)
        res = ops.radix_sort(x, descending=True)
        assert np.array_equal(res.values, np.sort(x)[::-1])
        # indices consistent with values
        assert np.array_equal(x[res.indices], res.values)

    def test_uint16(self, ops, rng):
        x = rng.integers(0, 65536, 20000).astype(np.uint16)
        res = ops.radix_sort(x)
        assert np.array_equal(res.values, np.sort(x))
        assert np.array_equal(res.indices, np.argsort(x, kind="stable"))

    def test_uint16_descending(self, ops, rng):
        x = rng.integers(0, 65536, 10000).astype(np.uint16)
        res = ops.radix_sort(x, descending=True)
        assert np.array_equal(res.values, np.sort(x)[::-1])

    def test_negative_heavy(self, ops, rng):
        x = (-np.abs(rng.standard_normal(10000)) * 100).astype(np.float16)
        res = ops.radix_sort(x)
        assert np.array_equal(res.values, np.sort(x))

    def test_duplicates_stable(self, ops, rng):
        x = rng.integers(0, 4, 10000).astype(np.float16)
        res = ops.radix_sort(x)
        # stability: indices of equal values are increasing
        for v in np.unique(x):
            idx = res.indices[res.values == v]
            assert np.all(np.diff(idx) > 0)

    def test_small_input(self, ops, rng):
        x = rng.standard_normal(100).astype(np.float16)
        res = ops.radix_sort(x)
        assert np.array_equal(res.values, np.sort(x))

    def test_sixteen_split_iterations(self, ops, rng):
        """LSB radix over 16-bit keys: one split per bit (Section 5)."""
        x = rng.standard_normal(20000).astype(np.float16)
        res = ops.radix_sort(x)
        split_launches = [t for t in res.traces if "split bit" in t.label]
        assert len(split_launches) == 16

    def test_rejects_2d(self, ops):
        with pytest.raises(Exception):
            ops.radix_sort(np.ones((4, 4), dtype=np.float16))


class TestBaselineSort:
    def test_values_and_indices(self, ops, rng):
        n = 30000
        x = rng.standard_normal(n).astype(np.float16)
        res = ops.baseline_sort(x)
        assert np.array_equal(res.values, np.sort(x))
        assert np.array_equal(
            res.indices, np.argsort(x.astype(np.float32), kind="stable")
        )

    def test_descending(self, ops, rng):
        x = rng.standard_normal(20000).astype(np.float16)
        res = ops.baseline_sort(x, descending=True)
        assert np.array_equal(res.values, np.sort(x)[::-1])

    def test_sub_segment_input(self, ops, rng):
        """n below one sort segment: single in-core pass, no merges."""
        x = rng.standard_normal(5000).astype(np.float16)
        res = ops.baseline_sort(x)
        assert np.array_equal(res.values, np.sort(x))

    def test_non_power_of_two(self, ops, rng):
        x = rng.standard_normal(100001).astype(np.float16)
        res = ops.baseline_sort(x)
        assert np.array_equal(res.values, np.sort(x))

    def test_no_cube_usage(self, ops, rng):
        x = rng.standard_normal(20000).astype(np.float16)
        res = ops.baseline_sort(x)
        for t in res.traces:
            assert "mmad" not in t.op_count_by_kind()


class TestFigure11Shape:
    def test_radix_wins_large_loses_small(self, ops, rng):
        """The paper's crossover: torch.sort wins below ~525K, radix wins
        above with growing factor."""
        small = rng.standard_normal(1 << 16).astype(np.float16)
        t_r = ops.radix_sort(small).time_ns
        t_b = ops.baseline_sort(small).time_ns
        assert t_b < t_r  # baseline wins small

        large = rng.standard_normal(1 << 20).astype(np.float16)
        t_r = ops.radix_sort(large).time_ns
        t_b = ops.baseline_sort(large).time_ns
        assert 1.2 < t_b / t_r < 4.0  # radix wins large (paper: 1.3x-3.3x)
