"""Shared fixtures for the test suite.

Most tests use small inputs on either a toy device (2 AI cores, tiny L2)
or a session-scoped full 910B4 context; the session scope matters because
ScanContext caches the constant matrices, keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.hw.config import ASCEND_910B4, toy_config
from repro.hw.device import AscendDevice
from repro.ops.driver import AscendOps


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xA5CE17D)


@pytest.fixture()
def toy_device() -> AscendDevice:
    return AscendDevice(toy_config())


@pytest.fixture()
def device() -> AscendDevice:
    return AscendDevice(ASCEND_910B4)


@pytest.fixture(scope="session")
def scan_ctx() -> ScanContext:
    """Session-scoped full-device scan context (constants cached once)."""
    return ScanContext(ASCEND_910B4)


@pytest.fixture(scope="session")
def ops(scan_ctx) -> AscendOps:
    return AscendOps(scan_ctx)
