"""Fusion pass legality + fused-vs-unfused execution equivalence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import (
    FUSION_MODES,
    FusedNode,
    Graph,
    GraphRunner,
    fuse_graph,
    llm_sample,
    scan_pipeline,
)
from repro.graph.op import OpNode, TensorSpec, register_op
from repro.hw.config import ASCEND_910B4


@register_op
class _CastMapOp(OpNode):
    """Test-only fusable_map op that *changes dtype* — must refuse to
    chain (dtype compatibility legality rule)."""

    kind = "test_cast_map"
    fusable_map = True
    param_defaults = {}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        return (TensorSpec("fp32", specs[0].shape),)

    @classmethod
    def map_fns(cls, params):
        return ("abs",)


@register_op
class _ShrinkMapOp(OpNode):
    """Test-only fusable_map op that *changes shape* — must refuse to
    chain (shape-class compatibility legality rule)."""

    kind = "test_shrink_map"
    fusable_map = True
    param_defaults = {}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        n = specs[0].n
        return (TensorSpec(specs[0].dtype, (max(n // 2, 1),)),)

    @classmethod
    def map_fns(cls, params):
        return ("abs",)


def _chain(n=512, fns=("abs", "double"), outputs=None, tail=True):
    g = Graph(name="chain")
    edge = g.add_input("x", "fp16", (n,))
    for i, fn in enumerate(fns):
        (edge,) = g.add_node(f"m{i}", "elementwise", [edge], {"fn": fn})
    g.set_outputs(outputs if outputs is not None else [edge])
    g.validate()
    return g


def _fused(units):
    return [u for u in units if isinstance(u, FusedNode)]


class TestLegality:
    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigError, match="fusion mode"):
            fuse_graph(_chain(), "eager")
        with pytest.raises(ConfigError, match="fusion mode"):
            GraphRunner(ASCEND_910B4, fusion="eager")

    def test_off_returns_plain_topo_order(self):
        g = _chain()
        units = fuse_graph(g, "off")
        assert units == g.toposort()
        assert not _fused(units)

    def test_chain_fuses_conservative(self):
        units = fuse_graph(_chain(), "conservative")
        (region,) = _fused(units)
        assert region.kind == "fused_elementwise"
        assert region.member_names == ("m0", "m1")
        assert region.pre_fns == ("abs", "double")
        assert region.post_fns == ()
        assert len(units) == 1

    def test_multi_consumer_intermediate_refuses(self):
        g = Graph(name="diamond")
        x = g.add_input("x", "fp16", (256,))
        (a,) = g.add_node("a", "elementwise", [x], {"fn": "abs"})
        (b,) = g.add_node("b", "elementwise", [a], {"fn": "double"})
        (c,) = g.add_node("c", "elementwise", [a], {"fn": "negate"})
        g.set_outputs([b, c])
        g.validate()
        # a.values has two consumers: nothing may fuse across it
        assert not _fused(fuse_graph(g, "aggressive"))

    def test_graph_output_edge_refuses(self):
        g = Graph(name="tap")
        x = g.add_input("x", "fp16", (256,))
        (a,) = g.add_node("a", "elementwise", [x], {"fn": "abs"})
        (b,) = g.add_node("b", "elementwise", [a], {"fn": "double"})
        g.set_outputs([a, b])  # the intermediate is also a graph output
        g.validate()
        assert not _fused(fuse_graph(g, "aggressive"))

    def test_mixed_dtype_refuses(self):
        g = Graph(name="cast")
        x = g.add_input("x", "fp16", (256,))
        (a,) = g.add_node("a", "elementwise", [x], {"fn": "abs"})
        (c,) = g.add_node("c", "test_cast_map", [a], {})
        g.set_outputs([c])
        g.validate()
        assert not _fused(fuse_graph(g, "aggressive"))

    def test_shape_mismatch_refuses(self):
        g = Graph(name="shrink")
        x = g.add_input("x", "fp16", (256,))
        (a,) = g.add_node("a", "elementwise", [x], {"fn": "abs"})
        (sh,) = g.add_node("sh", "test_shrink_map", [a], {})
        g.set_outputs([sh])
        g.validate()
        assert not _fused(fuse_graph(g, "aggressive"))

    def test_scan_absorbed_only_in_aggressive(self):
        g = scan_pipeline(512, pre=("abs", "double"), post=("negate",), s=16)
        conservative = fuse_graph(g, "conservative")
        (region,) = _fused(conservative)
        assert region.kind == "fused_elementwise"
        assert region.member_names == ("pre0", "pre1")
        aggressive = fuse_graph(g, "aggressive")
        (region,) = _fused(aggressive)
        assert region.kind == "fused_scan"
        assert region.member_names == ("pre0", "pre1", "scan", "post0")
        assert region.pre_fns == ("abs", "double")
        assert region.post_fns == ("negate",)
        assert region.scan_member.name == "scan"
        assert len(aggressive) == 1

    def test_bare_scan_with_post_fuses(self):
        g = scan_pipeline(512, pre=(), post=("double", "abs"), s=16)
        (region,) = _fused(fuse_graph(g, "aggressive"))
        assert region.kind == "fused_scan"
        assert region.member_names == ("scan", "post0", "post1")
        assert region.pre_fns == ()
        assert region.post_fns == ("double", "abs")

    def test_vector_scan_refuses(self):
        g = scan_pipeline(512, pre=("abs",), post=("double",),
                          algorithm="vector", s=16)
        for region in _fused(fuse_graph(g, "aggressive")):
            assert region.kind != "fused_scan"

    def test_singleton_regions_stay_plain(self):
        g = _chain(fns=("abs",))
        units = fuse_graph(g, "aggressive")
        assert not _fused(units)


class TestExecutionEquivalence:
    def _run(self, graph, inputs, fusion):
        runner = GraphRunner(ASCEND_910B4, fusion=fusion)
        return runner, runner.execute(graph, inputs)

    @pytest.mark.parametrize("dtype,exclusive", [
        ("fp16", False),
        ("fp16", True),
        ("int8", False),
        ("int8", True),
    ])
    def test_fused_scan_bit_identical(self, dtype, exclusive):
        g = scan_pipeline(
            512, dtype=dtype, pre=("abs",), post=("double",),
            exclusive=exclusive, s=16,
        )
        np_dt = np.float16 if dtype == "fp16" else np.int8
        x = np.random.default_rng(7).integers(-3, 4, 512).astype(np_dt)
        _, off = self._run(g, [x], "off")
        _, on = self._run(g, [x], "aggressive")
        assert off.outputs[0].dtype == on.outputs[0].dtype
        assert np.array_equal(off.outputs[0], on.outputs[0])
        assert on.launches < off.launches
        assert on.time_ns < off.time_ns

    def test_unfoldable_algorithm_trails_map(self):
        # scanul1 has no epilogue seam: the post chain trails as one
        # in-place map pass, still fewer launches than unfused
        g = scan_pipeline(
            512, pre=("abs", "double"), post=("negate", "abs"),
            algorithm="scanul1", s=16,
        )
        x = np.random.default_rng(3).integers(-3, 4, 512).astype(np.float16)
        _, off = self._run(g, [x], "off")
        runner, on = self._run(g, [x], "aggressive")
        assert np.array_equal(off.outputs[0], on.outputs[0])
        assert off.launches == 5
        assert on.launches == 3  # pre map + scan + trailing map
        assert runner.cache.stats()["fused"] == 1

    def test_llm_sample_prep_chain(self):
        probs = np.random.default_rng(11).integers(1, 97, 160)
        probs = probs.astype(np.float16)
        g = llm_sample(160, k=16, prep=("abs", "double"))
        _, off = self._run(g, {"probs": probs}, "off")
        _, on = self._run(g, {"probs": probs}, "aggressive")
        for a, b in zip(off.outputs, on.outputs):
            assert np.array_equal(a, b)
        assert on.launches < off.launches

    def test_off_mode_matches_per_node_lowering(self):
        g = scan_pipeline(512, pre=("abs",), post=("double",), s=16)
        runner = GraphRunner(ASCEND_910B4, fusion="off")
        entries, built = runner.lower(g)
        assert built
        assert [u.kind for u, _ in entries] == [
            "elementwise", "scan", "elementwise",
        ]
        assert all(not low.members for _, low in entries)

    def test_member_attribution_covers_all_nodes(self):
        g = scan_pipeline(512, pre=("abs", "double"), post=("negate",), s=16)
        runner = GraphRunner(ASCEND_910B4, fusion="aggressive")
        res = runner.execute(
            g, [np.ones(512, dtype=np.float16)]
        )
        assert sorted(res.node_ns) == ["post0", "pre0", "pre1", "scan"]
        assert res.node_ns["scan"] > 0
        assert sum(res.node_ns.values()) == pytest.approx(res.time_ns)
        (low,) = [low for _, low in runner.lower(g)[0]]
        assert [k for k, _ in low.members] == [
            "elementwise", "elementwise", "scan", "elementwise",
        ]
        assert sum(w for _, w in low.members) == pytest.approx(1.0)

    def test_fused_region_differentially_validated(self):
        runner = GraphRunner(ASCEND_910B4, fusion="aggressive")
        g = scan_pipeline(512, pre=("abs",), post=("double",), s=16)
        entries, _ = runner.lower(g)
        ((_, low),) = entries
        assert low.validated is True


class TestGraphPlanCache:
    def test_stats_parity_keys(self):
        runner = GraphRunner(ASCEND_910B4, fusion="aggressive")
        runner.execute(
            scan_pipeline(512, s=16), [np.ones(512, dtype=np.float16)]
        )
        stats = runner.cache.stats()
        for key in (
            "lowered", "fused", "hits", "misses", "build_host_s",
            "launches", "tuned", "replays", "timeline_hits",
            "timeline_misses",
        ):
            assert key in stats
        assert stats["lowered"] == 1
        assert stats["fused"] == 1
        assert stats["misses"] == 1
        assert stats["replays"] == 1

    def test_cache_hit_across_node_names(self):
        runner = GraphRunner(ASCEND_910B4, fusion="aggressive")
        a = scan_pipeline(512, s=16)
        _, built_a = runner.lower(a)
        b = Graph(name="renamed")
        edge = b.add_input("inp", "fp16", (512,))
        (edge,) = b.add_node("p", "elementwise", [edge], {"fn": "abs"})
        (edge,) = b.add_node("sc", "scan", [edge], {"s": 16})
        (edge,) = b.add_node("q", "elementwise", [edge], {"fn": "double"})
        b.set_outputs([edge])
        b.validate()
        _, built_b = runner.lower(b)
        assert built_a and not built_b
        assert runner.cache.stats()["hits"] == 1

    def test_fusion_modes_exported(self):
        assert FUSION_MODES == ("off", "conservative", "aggressive")
