"""Graph IR: construction, validation diagnostics, signatures, binding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import ELEMENTWISE_FNS, Graph, OP_REGISTRY, get_op


def _chain(n: int = 64) -> Graph:
    g = Graph(name="chain")
    x = g.add_input("x", "fp16", (n,))
    (a,) = g.add_node("a", "elementwise", [x], {"fn": "abs"})
    (b,) = g.add_node("b", "scan", [a], {"s": 16})
    g.set_outputs([b])
    return g


class TestConstruction:
    def test_valid_chain_validates(self):
        specs = _chain().validate()
        assert specs["a.values"].dtype == "fp16"
        # scan accumulates fp16 into fp32
        assert specs["b.values"].dtype == "fp32"

    def test_toposort_is_dependency_ordered(self):
        g = _chain()
        names = [n.name for n in g.toposort()]
        assert names.index("a") < names.index("b")

    def test_unknown_op_kind_rejected_eagerly(self):
        g = Graph(name="g")
        g.add_input("x", "fp16", (32,))
        with pytest.raises(ConfigError, match="unknown operator"):
            g.add_node("a", "nope", ["x"], {})

    def test_unknown_param_rejected_eagerly(self):
        g = Graph(name="g")
        g.add_input("x", "fp16", (32,))
        with pytest.raises(ConfigError, match="param"):
            g.add_node("a", "elementwise", ["x"], {"fn": "abs", "bogus": 1})

    def test_missing_required_param_rejected(self):
        g = Graph(name="g")
        g.add_input("x", "fp16", (32,))
        with pytest.raises(ConfigError, match="fn"):
            g.add_node("a", "elementwise", ["x"], {})

    def test_duplicate_names_rejected(self):
        g = Graph(name="g")
        g.add_input("x", "fp16", (32,))
        with pytest.raises(ConfigError, match="duplicate"):
            g.add_input("x", "fp16", (32,))

    def test_dotted_input_name_rejected(self):
        g = Graph(name="g")
        with pytest.raises(ConfigError):
            g.add_input("a.b", "fp16", (32,))


class TestValidationErrors:
    def test_cycle_is_config_error(self):
        g = Graph(name="cyclic")
        g.add_node("a", "elementwise", ["b.values"], {"fn": "abs"})
        g.add_node("b", "elementwise", ["a.values"], {"fn": "abs"})
        g.set_outputs(["a.values"])
        with pytest.raises(ConfigError, match="cycle"):
            g.validate()

    def test_dangling_edge_is_config_error(self):
        g = Graph(name="dangling")
        g.add_input("x", "fp16", (32,))
        g.add_node("a", "elementwise", ["ghost"], {"fn": "abs"})
        g.set_outputs(["a.values"])
        with pytest.raises(ConfigError, match="ghost"):
            g.validate()

    def test_dtype_mismatch_is_config_error(self):
        g = Graph(name="mistyped")
        g.add_input("x", "fp32", (32,))
        g.add_node("a", "scan", ["x"], {"s": 16})
        g.set_outputs(["a.values"])
        with pytest.raises(ConfigError):
            g.validate()

    def test_mismatched_split_flag_dtype_is_config_error(self):
        g = Graph(name="badflags")
        g.add_input("x", "fp16", (32,))
        g.add_input("flags", "fp16", (32,))
        g.add_node("a", "split", ["x", "flags"], {"s": 16})
        g.set_outputs(["a.values"])
        with pytest.raises(ConfigError):
            g.validate()

    def test_empty_graph_is_config_error(self):
        g = Graph(name="empty")
        with pytest.raises(ConfigError, match="no nodes"):
            g.validate()

    def test_no_outputs_is_config_error(self):
        g = _chain()
        g.set_outputs([])
        with pytest.raises(ConfigError, match="outputs"):
            g.validate()

    def test_unknown_output_edge_is_config_error(self):
        g = _chain()
        g.set_outputs(["b.ghost"])
        with pytest.raises(ConfigError):
            g.validate()

    def test_wrong_arity_is_config_error(self):
        g = Graph(name="arity")
        g.add_input("x", "fp16", (32,))
        g.add_node("a", "split", ["x"], {"s": 16})
        g.set_outputs(["a.values"])
        with pytest.raises(ConfigError):
            g.validate()

    def test_data_dependent_edge_cannot_feed_a_node(self):
        # compress output length is only known at run time; a downstream
        # node cannot be lowered against it
        from repro.graph import GraphRunner
        from repro.hw.config import toy_config

        g = Graph(name="deep")
        g.add_input("x", "fp16", (64,))
        g.add_input("flags", "int8", (64,))
        (c,) = g.add_node("c", "compress", ["x", "flags"], {"s": 16})
        g.add_node("e", "elementwise", [c], {"fn": "abs"})
        g.set_outputs(["e.values"])
        g.validate()  # structurally fine
        with pytest.raises(ConfigError, match="data-dependent"):
            GraphRunner(toy_config()).lower(g)


class TestSignatures:
    def test_equal_graphs_share_a_signature(self):
        assert _chain().signature() == _chain().signature()

    def test_shape_changes_the_signature(self):
        assert _chain(64).signature() != _chain(128).signature()

    def test_runtime_params_do_not_change_top_p_signature(self):
        def sampler(p, theta):
            g = Graph(name="s")
            g.add_input("probs", "fp16", (64,))
            g.add_input("ids", "int32", (64,))
            g.add_node(
                "t",
                "top_p_sample",
                ["probs", "ids"],
                {"p": p, "theta": theta, "s": 16},
            )
            g.set_outputs(["t.token"])
            return g

        # p and theta are runtime-only: one captured program serves all
        assert (
            sampler(0.9, 0.1).signature() == sampler(0.5, 0.7).signature()
        )


class TestBinding:
    def test_bind_checks_dtype(self):
        g = _chain()
        with pytest.raises(ConfigError):
            g.bind({"x": np.zeros(64, dtype=np.float32)})

    def test_bind_checks_shape(self):
        g = _chain()
        with pytest.raises(ConfigError):
            g.bind({"x": np.zeros(65, dtype=np.float16)})

    def test_bind_accepts_sequence_in_declaration_order(self):
        g = _chain()
        bound = g.bind([np.zeros(64, dtype=np.float16)])
        assert set(bound) == {"x"}

    def test_registry_covers_the_op_zoo(self):
        expected = {
            "scan",
            "elementwise",
            "split",
            "compress",
            "radix_sort",
            "topk",
            "top_p_sample",
        }
        assert expected <= set(OP_REGISTRY)
        for kind in expected:
            assert get_op(kind).kind == kind
        assert {"negate", "double", "abs", "relu"} <= set(ELEMENTWISE_FNS)
