"""Every registered op, interpreter vs oracle, across dtype x size.

Two layers of differential:

* **device vs oracle** — each op's real device lowering, run on
  exactness-conditioned validation inputs, must match its NumPy oracle
  bit for bit (this is also what :class:`GraphRunner` enforces at
  lowering time — a divergence raises KernelError there).
* **interpreter vs oracle** — executing a one-node graph through the
  runner returns exactly ``Graph.run_oracle``'s bits (served numerics
  are the oracle by construction; the check pins the wiring).

Sizes cover a sub-tile length (40 < s*s = 256), an exact tile (256) and
a non-divisible length (300) at the toy device's s=16.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import ScanContext
from repro.graph import Graph, GraphRunner
from repro.graph.op import TensorSpec, get_op
from repro.hw.config import toy_config
from repro.ops import AscendOps

S = 16
SIZES = (40, 256, 300)  # sub-tile, exact tile, non-divisible


@pytest.fixture(scope="module")
def runner() -> GraphRunner:
    return GraphRunner(toy_config())


@pytest.fixture(scope="module")
def ops() -> AscendOps:
    return AscendOps(scan_context=ScanContext(toy_config()))


def _cases():
    """(kind, params, input specs) across the op zoo's dtype matrix."""
    for n in SIZES:
        for dtype in ("fp16", "int8"):
            for exclusive in (False, True):
                algorithm = "mcscan" if exclusive else "scanu"
                yield (
                    "scan",
                    {"algorithm": algorithm, "s": S, "exclusive": exclusive},
                    [TensorSpec(dtype, (n,))],
                )
        for dtype in ("fp16", "int8", "int16", "fp32", "int32"):
            yield ("elementwise", {"fn": "relu"}, [TensorSpec(dtype, (n,))])
        yield ("elementwise", {"fn": "negate"}, [TensorSpec("fp16", (n,))])
        for dtype in ("fp16", "uint8", "int16", "uint16"):
            pair = [TensorSpec(dtype, (n,)), TensorSpec("int8", (n,))]
            yield ("split", {"s": S}, pair)
            yield ("compress", {"s": S}, pair)
            for descending in (False, True):
                yield (
                    "radix_sort",
                    {"s": S, "descending": descending},
                    [TensorSpec(dtype, (n,))],
                )
        for method in ("baseline", "quickselect", "radix"):
            yield (
                "topk",
                {"k": 8, "s": S, "method": method},
                [TensorSpec("fp16", (n,))],
            )
        yield ("topk", {"k": n, "s": S}, [TensorSpec("fp16", (n,))])
        yield (
            "top_p_sample",
            {"p": 0.8, "theta": 0.3, "s": S},
            [TensorSpec("fp16", (n,)), TensorSpec("int32", (n,))],
        )


def _case_id(case):
    kind, params, specs = case
    label = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    shapes = "/".join(f"{s.dtype}{s.n}" for s in specs)
    return f"{kind}[{shapes}]({label})"


CASES = list(_cases())


@pytest.mark.parametrize("case", CASES, ids=map(_case_id, CASES))
def test_device_run_matches_oracle(case, ops):
    """The op's device lowering is bit-exact against its NumPy oracle on
    exactness-conditioned inputs."""
    kind, params, specs = case
    op = get_op(kind)
    params = op.resolve_params(params)
    inputs = op.validation_inputs(specs, params)
    got = op.device_run(ops, inputs, params)
    want = op.oracle(inputs, params)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.dtype == w.dtype
        assert np.array_equal(g, w)


@pytest.mark.parametrize("case", CASES, ids=map(_case_id, CASES))
def test_interpreter_matches_graph_oracle(case, runner):
    """A one-node graph executes (lower + replay + served numerics) to
    exactly the graph oracle's bits."""
    kind, params, specs = case
    op = get_op(kind)
    feed_arrays = op.validation_inputs(specs, op.resolve_params(params))
    g = Graph(name=f"solo_{kind}")
    edges = [
        g.add_input(f"in{i}", spec.dtype, spec.shape)
        for i, spec in enumerate(specs)
    ]
    out = g.add_node("op", kind, edges, params)
    g.set_outputs(list(out))
    feed = {f"in{i}": arr for i, arr in enumerate(feed_arrays)}
    res = runner.execute(g, feed)
    want = g.run_oracle(feed)
    assert len(res.outputs) == len(want)
    for got, exp in zip(res.outputs, want):
        assert got.dtype == exp.dtype
        assert np.array_equal(got, exp)
    assert res.launches >= 1
    assert res.time_ns > 0


def test_lowering_is_memoized_per_shape_class(runner):
    """Same (op, shape class) lowers once; a second graph reuses it."""

    def sort_graph(n):
        g = Graph(name=f"sort{n}")
        g.add_input("x", "fp16", (n,))
        g.add_node("r", "radix_sort", ["x"], {"s": S})
        g.set_outputs(["r.values", "r.indices"])
        return g

    misses_before = runner.cache.misses
    _, built_first = runner.lower(sort_graph(64))
    _, built_again = runner.lower(sort_graph(64))
    assert built_first or runner.cache.misses == misses_before
    assert not built_again
    hits_before = runner.cache.hits
    runner.lower(sort_graph(64))
    assert runner.cache.hits > hits_before


def test_runtime_params_reuse_one_top_p_program(runner):
    """p/theta are runtime-only for top_p_sample: different values hit
    the same cached program and still sample per the oracle."""
    n = 64

    def sampler(p, theta):
        g = Graph(name="s")
        g.add_input("probs", "fp16", (n,))
        g.add_input("ids", "int32", (n,))
        g.add_node(
            "t",
            "top_p_sample",
            ["probs", "ids"],
            {"p": p, "theta": theta, "s": S},
        )
        g.set_outputs(["t.token"])
        return g

    rng = np.random.default_rng(9)
    probs = (1 + rng.integers(0, 97, n)).astype(np.float16)
    ids = np.arange(n, dtype=np.int32)
    feed = {"probs": probs, "ids": ids}

    runner.lower(sampler(0.9, 0.1))
    misses_before = runner.cache.misses
    tokens = set()
    for p, theta in ((0.9, 0.1), (0.5, 0.7), (0.8, 0.99 - 0.5)):
        g = sampler(p, theta)
        res = runner.execute(g, feed)
        assert np.array_equal(res.outputs[0], g.run_oracle(feed)[0])
        tokens.add(int(res.outputs[0][0]))
    assert runner.cache.misses == misses_before  # one program served all
    assert len(tokens) > 1  # the runtime params actually steer the draw


def test_scan_node_respects_tune_store():
    """An algorithm-less scan node resolves through the TuneStore and the
    lowered node is flagged tuned."""
    from repro.tune import TunedEntry, TuneStore

    config = toy_config()
    n = 1024
    store = TuneStore(config)
    store.record(
        f"1d:{n}:fp16:i",
        TunedEntry(
            algorithm="mcscan",
            s=S,
            block_dim=None,
            layout="1d",
            tuned_ns=1.0,
            default_ns=2.0,
        ),
    )
    g = Graph(name="tuned")
    g.add_input("x", "fp16", (n,))
    g.add_node("sc", "scan", ["x"], {})
    g.set_outputs(["sc.values"])

    tuned_runner = GraphRunner(config, tune_store=store)
    entries, _ = tuned_runner.lower(g)
    assert entries[0][1].tuned
    x = np.random.default_rng(4).integers(-2, 3, n).astype(np.float16)
    res = tuned_runner.execute(g, {"x": x})
    assert np.array_equal(res.outputs[0], g.run_oracle({"x": x})[0])


def test_multi_node_pipeline_end_to_end(runner):
    """abs -> scan -> (values) pipeline: dtype flows fp16 -> fp32 and the
    composition matches composing the oracles by hand."""
    n = 300
    g = Graph(name="pipe")
    g.add_input("x", "fp16", (n,))
    (a,) = g.add_node("a", "elementwise", ["x"], {"fn": "abs"})
    (b,) = g.add_node("b", "scan", [a], {"s": S})
    g.set_outputs([b])
    rng = np.random.default_rng(21)
    x = rng.integers(-3, 4, n).astype(np.float16)
    res = runner.execute(g, {"x": x})
    from repro.core.reference import inclusive_scan

    want = inclusive_scan(np.abs(x))
    assert res.outputs[0].dtype == want.dtype
    assert np.array_equal(res.outputs[0], want)
