"""Graph requests through the serving stack: batching, chaos, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import inclusive_scan
from repro.errors import DeviceFault
from repro.graph import llm_sample, oracle_outputs, sort_graph
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.serve import RetryPolicy, ScanService
from repro.shard import DevicePool, PoolScanService

S = 16


def _scores(rng, vocab: int) -> np.ndarray:
    # pairwise-distinct fp16: no tie-order hazard vs the oracle
    return (rng.permutation(vocab) + 1).astype(np.float16)


def _flush_resilient(svc, limit: int = 50) -> None:
    for _ in range(limit):
        try:
            svc.flush()
        except DeviceFault:
            continue
        if not svc.pending:
            return
    raise AssertionError("queue did not drain within the flush budget")


class TestSingleService:
    def test_graph_and_scan_requests_share_one_flush(self):
        svc = ScanService(config=toy_config())
        rng = np.random.default_rng(3)
        graph = llm_sample(96, k=8, p=0.75, s=S)
        jobs = []
        for i in range(6):
            if i % 2 == 0:
                probs = _scores(rng, 96)
                t = svc.submit_graph(graph, {"probs": probs})
                jobs.append(("graph", t, oracle_outputs(graph, {"probs": probs})))
            else:
                x = rng.integers(-3, 4, 200).astype(np.float16)
                t = svc.submit(x, algorithm="scanu", s=S)
                jobs.append(("scan", t, inclusive_scan(x)))
        assert svc.pending == 6
        svc.flush()
        assert svc.pending == 0
        for kind, t, want in jobs:
            assert t.done
            if kind == "graph":
                got = t.result()
                assert len(got) == len(want)
                for g, w in zip(got, want):
                    assert np.array_equal(g, w)
            else:
                assert np.array_equal(t.values, want)
        svc.shutdown()

    def test_ticket_result_before_flush_raises(self):
        svc = ScanService(config=toy_config())
        graph = llm_sample(64, k=8, p=0.75, s=S)
        t = svc.submit_graph(
            graph, {"probs": _scores(np.random.default_rng(0), 64)}
        )
        assert not t.done
        with pytest.raises(RuntimeError, match="still queued"):
            t.result()
        svc.flush()
        assert t.done
        assert t.graph == "llm_sample"
        assert t.nodes == 2
        assert t.launches >= 1
        assert t.algorithm == "graph"
        svc.shutdown()

    def test_runtime_params_steer_the_served_draw(self):
        svc = ScanService(config=toy_config())
        graph = llm_sample(128, k=16, p=0.9, s=S)
        probs = _scores(np.random.default_rng(7), 128)
        tickets = {}
        for theta in (0.125, 0.875):
            params = {"sample": {"theta": theta}}
            tickets[theta] = (
                svc.submit_graph(graph, {"probs": probs}, params=params),
                oracle_outputs(graph, {"probs": probs}, params),
            )
        svc.flush()
        tokens = set()
        for t, want in tickets.values():
            assert np.array_equal(t.result()[0], want[0])
            tokens.add(int(t.result()[0][0]))
        assert len(tokens) == 2  # theta actually reached the sampler
        svc.shutdown()

    def test_plan_cache_reuses_programs_across_requests(self):
        svc = ScanService(config=toy_config())
        rng = np.random.default_rng(5)
        graph = llm_sample(96, k=8, p=0.75, s=S)
        svc.submit_graph(graph, {"probs": _scores(rng, 96)})
        svc.flush()
        runner = svc.graph_runner
        assert runner is not None
        misses = runner.cache.misses
        hits = runner.cache.hits
        for _ in range(3):
            svc.submit_graph(graph, {"probs": _scores(rng, 96)})
        svc.flush()
        assert runner.cache.misses == misses  # same shape class: no rebuild
        assert runner.cache.hits > hits
        svc.submit_graph(llm_sample(160, k=8, p=0.75, s=S),
                         {"probs": _scores(rng, 160)})
        svc.flush()
        assert runner.cache.misses > misses  # new shape class lowers fresh
        svc.shutdown()

    def test_per_op_breakdown_in_stats_and_summary(self):
        svc = ScanService(config=toy_config())
        rng = np.random.default_rng(9)
        svc.submit_graph(
            llm_sample(96, k=8, p=0.75, s=S), {"probs": _scores(rng, 96)}
        )
        svc.submit_graph(
            sort_graph(128, s=S),
            {"x": _scores(rng, 128)},
        )
        svc.flush()
        per_op = svc.stats.op_device_ns
        assert {"topk", "top_p_sample", "radix_sort"} <= set(per_op)
        for count, ns in per_op.values():
            assert count >= 1
            assert ns > 0
        text = svc.stats.summary()
        assert "op breakdown" in text
        assert "top_p_sample" in text
        svc.shutdown()


class TestPoolChaos:
    def test_pool_serves_graphs_bit_identical_under_faults(self):
        config = toy_config()
        pool = DevicePool(3, config)
        svc = PoolScanService(
            pool=pool, config=config, retry=RetryPolicy(max_attempts=4)
        )
        for m in (0, 1):
            pool.inject_faults(m, FaultPlan(seed=31 + m, transient_rate=0.2))
        rng = np.random.default_rng(41)
        graphs = {v: llm_sample(v, k=8, p=0.75, s=S) for v in (96, 160)}
        jobs = []
        for j in range(9):
            vocab = 96 if j % 2 == 0 else 160
            probs = _scores(rng, vocab)
            params = {"sample": {"theta": float(rng.integers(1, 8)) / 8.0}}
            t = svc.submit_graph(graphs[vocab], {"probs": probs}, params=params)
            jobs.append((t, oracle_outputs(graphs[vocab], {"probs": probs}, params)))
        _flush_resilient(svc)
        for t, want in jobs:
            assert t.done
            got = t.result()
            for g, w in zip(got, want):
                assert np.array_equal(g, w)
        svc.shutdown()

    def test_dead_member_fails_over_without_losing_tickets(self):
        config = toy_config()
        pool = DevicePool(2, config)
        svc = PoolScanService(
            pool=pool, config=config, retry=RetryPolicy(max_attempts=3)
        )
        # member 0 dies permanently on its first launch
        pool.inject_faults(0, FaultPlan(seed=1, die_at_launch=1))
        rng = np.random.default_rng(43)
        graph = llm_sample(96, k=8, p=0.75, s=S)
        jobs = []
        for _ in range(4):
            probs = _scores(rng, 96)
            t = svc.submit_graph(graph, {"probs": probs})
            jobs.append((t, oracle_outputs(graph, {"probs": probs})))
        _flush_resilient(svc)
        for t, want in jobs:
            assert t.done
            for g, w in zip(t.result(), want):
                assert np.array_equal(g, w)
        svc.shutdown()

    def test_pool_shares_one_graph_runner(self):
        config = toy_config()
        pool = DevicePool(3, config)
        svc = PoolScanService(pool=pool, config=config)
        graph = llm_sample(96, k=8, p=0.75, s=S)
        svc.submit_graph(
            graph, {"probs": _scores(np.random.default_rng(2), 96)}
        )
        svc.flush()
        runners = {id(w.graph_runner) for w in svc.workers}
        assert len(runners) == 1  # lowered once, replayed anywhere
        svc.shutdown()
