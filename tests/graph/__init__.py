"""Operator-graph runtime tests."""
