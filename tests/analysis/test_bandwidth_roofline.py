"""Bandwidth accounting and roofline tests."""

import pytest

from repro.analysis.bandwidth import (
    gelems_per_s,
    io_bandwidth_gbps,
    peak_fraction,
    scan_peak_fraction_bound,
    traffic_breakdown,
)
from repro.analysis.roofline import (
    machine_balance_flops_per_byte,
    roofline_point,
)
from repro.hw.config import ASCEND_910B4
from repro.core.reference import exact_fp16_scan_input


class TestMetrics:
    def test_io_bandwidth(self):
        assert io_bandwidth_gbps(800, 1.0) == 800.0
        assert io_bandwidth_gbps(100, 0.0) == 0.0

    def test_gelems(self):
        assert gelems_per_s(1000, 10.0) == 100.0

    def test_peak_fraction(self):
        assert peak_fraction(400.0, ASCEND_910B4) == pytest.approx(0.5)

    def test_mcscan_375_percent_bound(self):
        """The paper's 37.5% is exactly the io/traffic ratio for fp16."""
        io = 2 + 4  # fp16 in + fp32 out
        traffic = 2 * 2 + 3 * 4  # x read twice + intermediate out/in/out
        assert scan_peak_fraction_bound(io, traffic) == pytest.approx(0.375)

    def test_bound_guards_zero(self):
        with pytest.raises(ZeroDivisionError):
            scan_peak_fraction_bound(6, 0)


class TestTrafficBreakdown:
    def test_consistency_with_trace(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(100_000, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        tb = traffic_breakdown(res.trace)
        assert tb.read_bytes + tb.write_bytes == tb.total_bytes
        assert 0.0 <= tb.hit_ratio <= 1.0


class TestRoofline:
    def test_machine_balance_positive(self):
        assert machine_balance_flops_per_byte(ASCEND_910B4) > 1.0

    def test_scan_is_memory_bound(self, scan_ctx, rng):
        """Scan's operational intensity (~1 add/element over >= 6 bytes) is
        far below the balance point — Section 2.1's premise."""
        n = 1 << 18
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan")
        pt = roofline_point(res.trace, flops=float(n))
        assert pt.memory_bound
        assert pt.operational_intensity < machine_balance_flops_per_byte(
            ASCEND_910B4
        )
        assert 0.0 < pt.roofline_fraction <= 1.0

    def test_achieved_below_attainable(self, scan_ctx, rng):
        x, _ = exact_fp16_scan_input(1 << 18, rng)
        res = scan_ctx.scan(x, algorithm="scanul1")
        pt = roofline_point(res.trace, flops=float(1 << 18))
        assert pt.achieved_flops_per_ns <= pt.attainable_flops_per_ns
