"""Work/depth model tests — including cross-checks against live traces."""

import pytest

from repro.errors import ShapeError
from repro.analysis.workdepth import (
    mcscan_costs,
    scanu_costs,
    scanul1_costs,
    vector_baseline_costs,
)
from repro.core.reference import exact_fp16_scan_input


class TestClosedForms:
    def test_scanu_counts(self):
        c = scanu_costs(4 * 128 * 128, 128)
        assert c.tiles == 4
        assert c.matmuls == 4
        assert c.vector_instructions == 4 * 128
        assert c.cube_mac_work == 4 * 128 ** 3

    def test_scanul1_three_matmuls(self):
        c = scanul1_costs(4 * 128 * 128, 128)
        assert c.matmuls == 12
        assert c.vector_instructions == 4

    def test_scanul1_less_depth_than_scanu(self):
        n = 64 * 128 * 128
        assert scanul1_costs(n, 128).depth < scanu_costs(n, 128).depth

    def test_vector_baseline_no_cube(self):
        c = vector_baseline_costs(128 * 128 * 8)
        assert c.matmuls == 0
        assert c.cube_mac_work == 0
        assert c.work == c.vector_instructions

    def test_mcscan_depth_shrinks_with_blocks(self):
        n = 256 * 128 * 128
        d1 = mcscan_costs(n, 128, blocks=1).depth
        d20 = mcscan_costs(n, 128, blocks=20).depth
        assert d20 < d1 / 10

    def test_mcscan_traffic_exceeds_single_core(self):
        """The recomputation strategy buys parallelism with extra reads."""
        n = 16 * 128 * 128
        assert (
            mcscan_costs(n, 128, blocks=4).gm_traffic_bytes
            > scanu_costs(n, 128).gm_traffic_bytes
        )

    def test_rejects_unpadded(self):
        with pytest.raises(ShapeError):
            scanu_costs(100, 128)
        with pytest.raises(ShapeError):
            vector_baseline_costs(100)


class TestTraceCrossChecks:
    """The simulator must execute exactly the op counts the model predicts."""

    def test_scanu_trace_matches_model(self, scan_ctx, rng):
        s = 64
        n = 8 * s * s
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="scanu", s=s)
        model = scanu_costs(n, s)
        counts = res.trace.op_count_by_kind()
        assert counts["mmad"] == model.matmuls
        # GM traffic: model counts x in + 3x y (intermediate out, read, out)
        assert res.trace.gm_bytes() == model.gm_traffic_bytes + s * s * 2  # + U_s load

    def test_scanul1_trace_matches_model(self, scan_ctx, rng):
        s = 64
        n = 8 * s * s
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="scanul1", s=s)
        model = scanul1_costs(n, s)
        counts = res.trace.op_count_by_kind()
        assert counts["mmad"] == model.matmuls
        # + 3 constant loads (U, L^-, 1)
        assert res.trace.gm_bytes() == model.gm_traffic_bytes + 3 * s * s * 2

    def test_mcscan_trace_matches_model(self, scan_ctx, rng):
        s = 64
        n = 64 * s * s
        x, _ = exact_fp16_scan_input(n, rng)
        res = scan_ctx.scan(x, algorithm="mcscan", s=s, block_dim=4)
        model = mcscan_costs(n, s, blocks=4)
        counts = res.trace.op_count_by_kind()
        assert counts["mmad"] == model.matmuls
        # traffic: model + per-block U_s loads
        assert res.trace.gm_bytes() == model.gm_traffic_bytes + 4 * s * s * 2
