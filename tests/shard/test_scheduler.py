"""Continuous batching, deadline admission, and EDF/cost-model routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import inclusive_scan
from repro.errors import KernelError
from repro.hw import FaultPlan
from repro.hw.config import toy_config
from repro.serve import Arrival, TrafficSpec
from repro.shard import PoolScanService, TrafficScheduler, run_traffic

S = 16


def pool(devices=2, **kw):
    kw.setdefault("max_batch", 8)
    return PoolScanService(devices, config=toy_config(), **kw)


def spec(**kw) -> TrafficSpec:
    base = dict(
        name="t",
        process="poisson",
        rate_rps=400_000.0,
        requests=64,
        sizes=(256, 1024),
        slo_ns=500_000.0,
    )
    base.update(kw)
    return TrafficSpec(**base)


def _x(n, seed=0):
    return np.random.default_rng(seed).integers(-2, 3, n).astype(np.float16)


class TestContinuousServing:
    def test_serves_everything_bit_identical_to_oracle(self):
        svc = pool()
        admitted = {}
        rep = run_traffic(
            svc, spec(), 1, s=S,
            on_admit=lambda t, x: admitted.__setitem__(t.req_id, x),
        )
        assert rep.accounted()
        assert rep.served == rep.offered and not rep.failed
        for t in rep.tickets:
            assert t.done
            assert np.array_equal(t.result(), inclusive_scan(admitted[t.req_id]))

    def test_deterministic_per_seed(self):
        r1 = run_traffic(pool(), spec(), 7, s=S)
        r2 = run_traffic(pool(), spec(), 7, s=S)
        assert r1.latencies_ns == r2.latencies_ns
        assert r1.launches == r2.launches
        for a, b in zip(r1.tickets, r2.tickets):
            assert a.req_id == b.req_id and np.array_equal(a.values, b.values)

    def test_timestamps_threaded_through_tickets(self):
        rep = run_traffic(pool(), spec(), 2, s=S)
        for t in rep.tickets:
            assert t.t_arrival_ns is not None
            assert t.t_arrival_ns <= t.t_admit_ns <= t.t_complete_ns
            assert t.deadline_ns == pytest.approx(
                t.t_arrival_ns + 500_000.0
            )
            assert t.deadline_met is (t.t_complete_ns <= t.deadline_ns)
            assert t.sim_latency_ns == pytest.approx(
                t.t_complete_ns - t.t_arrival_ns
            )
        stats_hits = sum(1 for t in rep.tickets if t.deadline_met)
        assert rep.deadline_met == stats_hits

    def test_continuous_batches_where_naive_cannot(self):
        s = spec(rate_rps=800_000.0, requests=128, slo_ns=100_000.0)
        cont = run_traffic(pool(), s, 3, s=S)
        naive = run_traffic(pool(), s, 3, policy="naive", s=S)
        assert cont.batched_fraction > 0.5
        assert naive.batched_fraction == 0.0
        assert cont.launches < naive.launches + naive.shed

    def test_continuous_beats_naive_p99_at_load(self):
        """The tentpole claim: under moderate-to-high offered load with a
        tight SLO, per-arrival launching queues up while continuous
        batching amortizes — better p99 *and* better goodput."""
        s = spec(rate_rps=800_000.0, requests=200, slo_ns=100_000.0)
        cont = run_traffic(pool(), s, 1, s=S)
        naive = run_traffic(pool(), s, 1, policy="naive", s=S)
        assert cont.percentile(0.99) < naive.percentile(0.99)
        assert cont.goodput_rps > naive.goodput_rps
        assert cont.deadline_met > naive.deadline_met

    def test_pool_stats_absorb_the_run(self):
        svc = pool()
        rep = run_traffic(svc, spec(), 4, s=S)
        assert svc.pending == 0 and not svc._tickets
        for w in svc.workers:
            assert not w._tickets and len(w.batcher) == 0
        # the simulated span covers the whole run incl. idle gaps, so it
        # is at least the busiest member and at least the last completion
        assert svc.makespan_ns >= max(svc.busy_ns)
        assert svc.makespan_ns == pytest.approx(rep.span_ns)
        assert all(0.0 <= u <= 1.0 for u in svc.device_utilisation())

    def test_unknown_policy_rejected(self):
        with pytest.raises(KernelError, match="traffic policy"):
            TrafficScheduler(pool(), policy="psychic")

    def test_closed_loop_mixing_rejected(self):
        svc = pool()
        sched = TrafficScheduler(svc)
        svc.submit(_x(256), s=S)
        t = sched.offer(
            Arrival(index=0, t_ns=10.0, n=256, deadline_ns=1e9),
            _x(256, 1), s=S,
        )
        assert t is not None
        with pytest.raises(KernelError, match="not supported"):
            # force the staged bucket out: mixing open/closed loop on one
            # batcher would interleave foreign requests into the bucket
            bucket = sched.buckets[0]
            if not bucket.staged:
                sched._stage(bucket)
            sched._dispatch(bucket)


class TestPlacement:
    def test_cost_model_ignores_stale_busy_time(self):
        """Placement scores predicted completion from the member's *free
        frontier*, not accumulated ``busy_ns`` — a member with a large
        historical load but an idle device wins over a recently-loaded
        one (the pre-tentpole router could never see this)."""
        svc = pool()
        svc.busy_ns[0] = 1e12  # enormous history, but idle now
        rep = run_traffic(svc, spec(requests=48), 5, s=S)
        served_by = {t.device for t in rep.tickets}
        assert 0 in served_by  # member 0 still serves fresh work

    def test_simultaneous_shape_classes_spread_across_members(self):
        """Two buckets staged at the same instant place on different
        members: the reservation frontier sees the first bucket's
        predicted occupancy when placing the second."""
        svc = pool()
        sched = TrafficScheduler(svc)
        # two full buckets of different shape classes, all at t=0
        for i in range(8):
            sched.offer(
                Arrival(index=i, t_ns=0.0, n=256, deadline_ns=1e9),
                _x(256, i), s=S,
            )
        for i in range(8):
            sched.offer(
                Arrival(index=8 + i, t_ns=0.0, n=1024, deadline_ns=1e9),
                _x(1024, i), s=S,
            )
        staged = [b for b in sched.buckets if b.staged]
        assert len(staged) == 2
        assert staged[0].target != staged[1].target

    def test_edf_orders_ready_buckets(self):
        """Among buckets whose launch time has arrived, the earliest
        deadline dispatches first."""
        svc = pool()
        sched = TrafficScheduler(svc)
        # bucket A: late deadline; bucket B: earlier deadline; both are
        # deadline-staged immediately (tight SLO) at the same instant
        a = sched.offer(
            Arrival(index=0, t_ns=0.0, n=1024, deadline_ns=40_000.0),
            _x(1024), s=S,
        )
        b = sched.offer(
            Arrival(index=1, t_ns=0.0, n=256, deadline_ns=20_000.0),
            _x(256), s=S,
        )
        order = []
        while sched.buckets:
            bucket = sched._next_event()
            if bucket.staged:
                order.append(bucket.deadline_ns)
                sched._dispatch(bucket)
            else:
                sched._stage(bucket)
        assert a.done and b.done
        # ties on event time resolve earliest-deadline-first
        assert order == sorted(order)


class TestAdmissionEdgeCases:
    def test_deadline_expired_at_submit_is_shed(self):
        svc = pool()
        sched = TrafficScheduler(svc)
        t = sched.offer(
            Arrival(index=0, t_ns=1000.0, n=256, deadline_ns=500.0),
            _x(256), s=S,
        )
        assert t is None
        assert sched.stats.shed_requests == 1
        assert not svc._tickets and svc.pending == 0

    def test_infeasible_deadline_is_shed_not_failed(self):
        svc = pool()
        sched = TrafficScheduler(svc)
        # deadline is ahead of the clock but inside the solo service time
        t = sched.offer(
            Arrival(index=0, t_ns=0.0, n=16384, deadline_ns=1.0),
            _x(16384), s=S,
        )
        assert t is None and sched.stats.shed_requests == 1

    def test_burst_larger_than_max_batch_in_one_tick(self):
        """A single arrival tick bigger than the bucket capacity chunks
        into multiple launches and still serves completely."""
        s = spec(
            process="bursty",
            burst_mean=24.0,  # 3x the 8-row bucket capacity
            requests=48,
            rate_rps=100_000.0,
            slo_ns=5_000_000.0,
            sizes=(512,),
        )
        svc = pool()
        admitted = {}
        rep = run_traffic(
            svc, s, 6, s=S,
            on_admit=lambda t, x: admitted.__setitem__(t.req_id, x),
        )
        assert rep.accounted() and rep.failed == 0
        assert rep.served == rep.offered
        # capacity respected: no launch carried more than the bucket cap
        assert max(t.batch_size for t in rep.tickets) <= 8
        assert rep.batched_fraction > 0.5
        for t in rep.tickets:
            assert np.array_equal(t.result(), inclusive_scan(admitted[t.req_id]))

    def test_same_tick_arrival_joins_bucket_staged_that_tick(self):
        """A partial bucket that deadline-stages at tick t is still
        joinable by an arrival at that same tick (join-in-flight, before
        the device start): both ride one batched launch."""
        svc = pool()
        sched = TrafficScheduler(svc)
        t1 = sched.offer(
            Arrival(index=0, t_ns=0.0, n=1024, deadline_ns=1e9),
            _x(1024, 1), s=S,
        )
        bucket = sched.buckets[0]
        # deadline pressure fires at this tick: the bucket stages partial
        sched._stage(bucket)
        assert bucket.staged and len(bucket.requests) == 1
        # the same-tick arrival joins the *staged* bucket (run() offers
        # arrivals before firing a tied bucket event for exactly this)
        t2 = sched.offer(
            Arrival(index=1, t_ns=0.0, n=1024, deadline_ns=1e9),
            _x(1024, 2), s=S,
        )
        assert len(sched.buckets) == 1 and len(bucket.requests) == 2
        sched._dispatch(bucket)
        assert t1.batched and t2.batched
        assert t1.batch_size == t2.batch_size == 2

    def test_all_dead_pool_sheds_everything_and_drains(self):
        svc = pool()
        svc._dead = [True] * len(svc.workers)
        rep = run_traffic(svc, spec(requests=32), 8, s=S)
        assert rep.accounted()
        assert rep.shed == rep.offered and rep.served == 0
        assert not svc._tickets and svc.pending == 0

    def test_pool_dying_mid_run_fails_tickets_explicitly(self):
        """Members all dying *under* continuous arrivals: already-admitted
        work is failed explicitly (tickets retained), later arrivals are
        shed, and the generator drains with every request accounted."""
        svc = pool()
        seen = []

        def kill_after(t, x):
            seen.append(t)
            if len(seen) == 10:
                for i in range(len(svc.workers)):
                    svc._dead[i] = True

        rep = run_traffic(
            svc, spec(requests=64, slo_ns=5_000_000.0), 9, s=S,
            on_admit=kill_after,
        )
        assert rep.accounted()
        assert rep.shed > 0
        assert rep.failed + rep.served == len(seen)
        for t in rep.failed_tickets:
            assert not t.done and t.deadline_met is False
        assert not svc._tickets and svc.pending == 0
        for w in svc.workers:
            assert not w._tickets and len(w.batcher) == 0


class TestFailover:
    def test_member_death_reroutes_under_load(self):
        svc = PoolScanService(
            2, config=toy_config(), max_batch=8,
            pool=None,
        )
        svc.workers[0].ctx.device.fault_plan = FaultPlan(die_at_launch=2)
        admitted = {}
        rep = run_traffic(
            svc, spec(requests=64, slo_ns=2_000_000.0), 11, s=S,
            on_admit=lambda t, x: admitted.__setitem__(t.req_id, x),
        )
        assert rep.accounted() and rep.failed == 0
        assert rep.served == rep.admitted
        assert svc._dead[0] and not svc._dead[1]
        # everything still serves bit-identical after the failover
        for t in rep.tickets:
            assert np.array_equal(t.result(), inclusive_scan(admitted[t.req_id]))
        # rerouted work landed on the survivor
        assert any(t.device == 1 for t in rep.tickets)
        assert not svc._tickets and svc.pending == 0
