"""Sharded 1-D scan: partitioning, differential exactness, timing model."""

import numpy as np
import pytest

from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.errors import ConfigError, KernelError, ShapeError
from repro.hw.config import toy_config
from repro.shard import DevicePool, ShardedScanner, shard_ranges
from repro.tune import TunedEntry, TuneStore


@pytest.fixture()
def pool():
    return DevicePool(3, toy_config())


class TestShardRanges:
    def test_covers_input_contiguously(self):
        ranges = shard_ranges(10_000, 3, 256)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10_000
        for (_, e1), (s2, _) in zip(ranges, ranges[1:]):
            assert e1 == s2

    def test_interior_boundaries_unit_aligned(self):
        for n in (10_000, 65_536, 12_345):
            for d in (1, 2, 3, 4):
                for start, end in shard_ranges(n, d, 256)[:-1]:
                    assert start % 256 == 0
                    assert end % 256 == 0

    def test_balanced_at_unit_granularity(self):
        ranges = shard_ranges(40 * 256, 4, 256)
        sizes = [e - s for s, e in ranges]
        assert max(sizes) - min(sizes) <= 256

    def test_short_input_drops_empty_shards(self):
        ranges = shard_ranges(100, 4, 256)
        assert ranges == [(0, 100)]
        assert len(shard_ranges(300, 4, 256)) == 2

    def test_single_shard_is_whole_input(self):
        assert shard_ranges(999, 1, 256) == [(0, 999)]

    def test_validation(self):
        with pytest.raises(ShapeError):
            shard_ranges(0, 2, 256)
        with pytest.raises(ShapeError):
            shard_ranges(100, 0, 256)
        with pytest.raises(ShapeError):
            shard_ranges(100, 2, 0)


class TestDifferential:
    """Sharded output must be bit-identical to the core.reference oracle."""

    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4])
    @pytest.mark.parametrize("n", [4096, 12_345, 50_000])
    def test_fp16_exact_bit_identical(self, rng, num_devices, n):
        pool = DevicePool(num_devices, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, expected = exact_fp16_scan_input(n, rng)
        result = scanner.scan(x)
        assert result.values.dtype == np.float32
        assert np.array_equal(result.values, inclusive_scan(x))
        assert np.array_equal(result.values, expected)

    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4])
    @pytest.mark.parametrize("n", [4096, 12_345, 50_000])
    def test_int8_bit_identical(self, rng, num_devices, n):
        pool = DevicePool(num_devices, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x = rng.integers(-30, 31, size=n).astype(np.int8)
        result = scanner.scan(x)
        assert result.values.dtype == np.int32
        assert np.array_equal(result.values, inclusive_scan(x))

    def test_non_divisible_shard_sizes(self, rng):
        # n chosen so the tail shard is unpadded and shards are uneven
        pool = DevicePool(3, toy_config())
        scanner = ShardedScanner(pool, algorithm="scanul1", s=16)
        x, _ = exact_fp16_scan_input(257 * 3 + 1, rng)
        result = scanner.scan(x)
        assert np.array_equal(result.values, inclusive_scan(x))

    def test_other_algorithms_agree(self, rng):
        x, _ = exact_fp16_scan_input(20_000, rng)
        ref = inclusive_scan(x)
        for algorithm in ("scanu", "scanul1", "ssa"):
            pool = DevicePool(2, toy_config())
            scanner = ShardedScanner(pool, algorithm=algorithm, s=16)
            assert np.array_equal(scanner.scan(x).values, ref)


class TestScanner:
    def test_shard_records_cover_input(self, pool, rng):
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(30_000, rng)
        result = scanner.scan(x)
        assert result.num_devices == 3
        assert result.shards[0].start == 0
        assert result.shards[-1].end == 30_000
        assert sum(r.n for r in result.shards) == 30_000
        assert result.n_elements == 30_000

    def test_wall_clock_is_two_stage_max(self, pool, rng):
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(30_000, rng)
        result = scanner.scan(x)
        assert result.scan_stage_ns == max(r.scan_ns for r in result.shards)
        assert result.carry_stage_ns == max(
            r.carry_ns for r in result.shards[1:]
        )
        assert result.wall_ns == result.scan_stage_ns + result.carry_stage_ns
        # device 0 never runs a carry pass
        assert result.shards[0].carry_ns == 0.0
        assert all(r.carry_ns > 0 for r in result.shards[1:])

    def test_single_device_has_no_carry_stage(self, rng):
        scanner = ShardedScanner(DevicePool(1, toy_config()), s=16)
        x, _ = exact_fp16_scan_input(4096, rng)
        assert scanner.scan(x).carry_stage_ns == 0.0

    def test_plans_memoized_across_scans(self, pool, rng):
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(30_000, rng)
        first = scanner.scan(x)
        assert all(not r.plan_hit for r in first.shards)
        built = scanner.plans_built
        again = scanner.scan(x)
        assert all(r.plan_hit for r in again.shards)
        assert scanner.plans_built == built

    def test_rejects_bad_inputs(self, pool, rng):
        scanner = ShardedScanner(pool, s=16)
        with pytest.raises(ShapeError):
            scanner.scan(np.zeros((2, 8), dtype=np.float16))
        with pytest.raises(ShapeError):
            scanner.scan(np.zeros(0, dtype=np.float16))
        with pytest.raises(KernelError):
            ShardedScanner(pool, algorithm="vector")
        with pytest.raises(KernelError):
            ShardedScanner(pool, algorithm="nope")

    def test_pool_validates_device_count(self):
        with pytest.raises(ConfigError):
            DevicePool(0, toy_config())

    def test_release_frees_pool_gm(self, pool, rng):
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(30_000, rng)
        scanner.scan(x)
        used = pool.gm_used_bytes()
        freed = scanner.release()
        assert freed > 0
        assert all(a < b for a, b in zip(pool.gm_used_bytes(), used))

    def test_tuned_vector_entry_falls_back_to_cube(self, rng):
        """A tuned store recommending the vector baseline (input-dtype
        output) must not break the accumulator-dtype carry chain."""
        cfg = toy_config()
        store = TuneStore(cfg)
        n = 8192  # one 2-device shard of 16384
        store.record(
            f"1d:{n}:fp16:i",
            TunedEntry(
                algorithm="vector", s=0, block_dim=None, layout="1d",
                tuned_ns=1.0, default_ns=2.0,
            ),
        )
        pool = DevicePool(2, cfg, tune_store=store)
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16, tuned=True)
        x, _ = exact_fp16_scan_input(16_384, rng)
        result = scanner.scan(x)
        assert result.values.dtype == np.float32
        assert np.array_equal(result.values, inclusive_scan(x))
        assert all(not r.tuned for r in result.shards)


class TestAdversarialBoundaries:
    """Wide pools (D > 4) and shard sizes engineered to sit exactly on,
    just above, or just below the s^2 tile boundary (s=16 -> 256), where
    the padded-tail and carry-chain paths are most fragile."""

    @pytest.mark.parametrize("num_devices", [6, 8])
    @pytest.mark.parametrize("n", [6 * 256 - 1, 6 * 256, 6 * 256 + 1,
                                   8 * 256 + 1, 40_000])
    def test_fp16_exact_wide_pool(self, rng, num_devices, n):
        pool = DevicePool(num_devices, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, expected = exact_fp16_scan_input(n, rng)
        result = scanner.scan(x)
        assert np.array_equal(result.values, expected)
        assert sum(r.n for r in result.shards) == n

    @pytest.mark.parametrize("num_devices", [6, 8])
    @pytest.mark.parametrize("k", [3, 7])
    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_int8_exact_at_tile_multiples(self, rng, num_devices, k, delta):
        """size = k*s^2 +/- 1 per intended shard: every interior boundary
        stays unit-aligned while the tail shard absorbs the remainder."""
        n = num_devices * k * 256 + delta
        pool = DevicePool(num_devices, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x = rng.integers(-30, 31, size=n).astype(np.int8)
        result = scanner.scan(x)
        assert np.array_equal(result.values, inclusive_scan(x))
        for start, end in [(r.start, r.end) for r in result.shards][:-1]:
            assert end % 256 == 0

    def test_single_element_tail_shard(self, rng):
        """shard_ranges(513, 3, 256) -> [0,256), [256,512), [512,513):
        the last device scans exactly one element and its carry still
        lands correctly."""
        assert shard_ranges(513, 3, 256) == [(0, 256), (256, 512), (512, 513)]
        pool = DevicePool(3, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(513, rng)
        result = scanner.scan(x)
        assert result.shards[-1].n == 1
        assert np.array_equal(result.values, inclusive_scan(x))

    def test_more_devices_than_units_drops_idle_members(self, rng):
        """An 8-device pool on a 3-unit input uses only 3 shards; the
        idle members contribute neither time nor output."""
        pool = DevicePool(8, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(3 * 256 + 5, rng)
        result = scanner.scan(x)
        assert result.num_devices <= 4
        assert np.array_equal(result.values, inclusive_scan(x))

    @pytest.mark.parametrize("algorithm", ["scanu", "scanul1", "ssa"])
    def test_other_algorithms_agree_at_d6(self, rng, algorithm):
        x, _ = exact_fp16_scan_input(6 * 700 + 1, rng)
        pool = DevicePool(6, toy_config())
        scanner = ShardedScanner(pool, algorithm=algorithm, s=16)
        assert np.array_equal(scanner.scan(x).values, inclusive_scan(x))

    def test_wide_pool_carry_chain_timing(self, rng):
        """At D=6 the two-stage makespan law still holds: wall clock is
        max scan time plus max carry time, and only device 0 skips the
        carry pass."""
        pool = DevicePool(6, toy_config())
        scanner = ShardedScanner(pool, algorithm="mcscan", s=16)
        x, _ = exact_fp16_scan_input(60_000, rng)
        result = scanner.scan(x)
        assert result.num_devices == 6
        assert result.shards[0].carry_ns == 0.0
        assert all(r.carry_ns > 0 for r in result.shards[1:])
        assert result.wall_ns == result.scan_stage_ns + result.carry_stage_ns
