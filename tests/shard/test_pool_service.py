"""Device-pool serving: routing, correctness, shared tuning, reporting."""

import numpy as np
import pytest

from repro.core.reference import exact_fp16_scan_input, inclusive_scan
from repro.hw.config import toy_config
from repro.serve import DEAD
from repro.shard import DevicePool, PoolScanService
from repro.tune import TuneStore, WorkloadKey, ensure_tuned


@pytest.fixture()
def svc():
    return PoolScanService(2, config=toy_config())


def _submit_mix(svc, rng, *, fp16_reqs=8, int8_reqs=4):
    inputs = {}
    for _ in range(fp16_reqs):
        x, _e = exact_fp16_scan_input(4096, rng)
        ticket = svc.submit(x)
        inputs[ticket.req_id] = x
    for _ in range(int8_reqs):
        x = rng.integers(-20, 21, size=2048).astype(np.int8)
        ticket = svc.submit(x, algorithm="scanul1", s=16)
        inputs[ticket.req_id] = x
    return inputs


class TestRoutingAndCorrectness:
    def test_results_match_oracle_on_every_device(self, svc, rng):
        inputs = _submit_mix(svc, rng)
        done = svc.flush()
        assert len(done) == len(inputs)
        for ticket in done:
            assert np.array_equal(
                ticket.result(), inclusive_scan(inputs[ticket.req_id])
            )

    def test_multiple_devices_actually_serve(self, svc, rng):
        _submit_mix(svc, rng)
        done = svc.flush()
        assert sorted({t.device for t in done}) == [0, 1]

    def test_groups_are_not_split_across_devices(self, svc, rng):
        """All requests of one launch group land on one member, so pool
        routing never costs a batching win."""
        inputs = _submit_mix(svc, rng, fp16_reqs=6, int8_reqs=0)
        done = svc.flush()
        shapes = {}
        for t in done:
            shapes.setdefault((t.n, t.dtype, t.algorithm), set()).add(t.device)
        for devices in shapes.values():
            assert len(devices) == 1
        assert all(t.batched for t in done)
        assert len(inputs) == 6

    def test_lpt_prefers_least_loaded(self, rng):
        svc = PoolScanService(2, config=toy_config(), batching=False)
        # one heavy group and several light ones: LPT places the heavy one
        # first, lights fill the other member
        heavy, _ = exact_fp16_scan_input(65_536, rng)
        svc.submit(heavy, algorithm="mcscan", s=16)
        light_inputs = []
        for _ in range(3):
            x, _e = exact_fp16_scan_input(4096, rng)
            svc.submit(x, algorithm="scanu", s=16)
            light_inputs.append(x)
        done = svc.flush()
        heavy_dev = done[0].device
        assert all(t.device != heavy_dev for t in done[1:])

    def test_submit_order_preserved_in_flush(self, svc, rng):
        inputs = _submit_mix(svc, rng)
        done = svc.flush()
        assert [t.req_id for t in done] == sorted(inputs)

    def test_busy_accounting_and_makespan(self, svc, rng):
        _submit_mix(svc, rng)
        svc.flush()
        assert svc.makespan_ns == max(svc.busy_ns)
        assert svc.throughput_gelems > 0
        util = svc.device_utilisation()
        assert len(util) == 2
        assert max(util) == 1.0
        assert svc.total_requests == 12

    def test_empty_flush_is_harmless(self, svc):
        assert svc.flush() == []
        assert svc.makespan_ns == 0.0
        assert svc.device_utilisation() == [0.0, 0.0]


class TestFlushInvariants:
    """Satellite: flush ordering and accounting invariants that the
    failover rework must preserve."""

    def test_submit_order_across_multiple_flush_rounds(self, svc, rng):
        seen = []
        for _ in range(3):
            inputs = _submit_mix(svc, rng, fp16_reqs=5, int8_reqs=3)
            done = svc.flush()
            assert [t.req_id for t in done] == sorted(inputs)
            seen.extend(t.req_id for t in done)
        # ids are globally monotonic across rounds too
        assert seen == sorted(seen)

    def test_busy_ns_matches_worker_device_time(self, svc, rng):
        for _ in range(2):
            _submit_mix(svc, rng)
            svc.flush()
        for i, worker in enumerate(svc.workers):
            assert svc.busy_ns[i] == pytest.approx(worker.stats.device_ns)
        # across rounds the true span accumulates per-round maxima: never
        # below the busiest member, never above fully-serialized rounds
        assert max(svc.busy_ns) <= svc.makespan_ns <= sum(svc.busy_ns)

    def test_makespan_counts_idle_between_rounds(self, svc, rng):
        """A member that dominates round 1 and idles in round 2 must not
        report 100% utilisation: the pool span keeps growing with every
        round (the satellite-2 fix — the old ``max(busy_ns)`` definition
        pinned the busiest member at exactly 1.0 forever)."""
        for _ in range(2):
            _submit_mix(svc, rng)
            svc.flush()
        util = svc.device_utilisation()
        # both members served work in both rounds, so neither was busy for
        # the *whole* accumulated span
        assert max(util) < 1.0
        assert all(0.0 < u < 1.0 for u in util)

    def test_utilisation_reports_dead_members_explicitly(self, svc, rng):
        _submit_mix(svc, rng)
        svc.flush()
        svc._dead[1] = True
        report = svc.utilisation()
        assert [r["member"] for r in report] == [0, 1]
        assert report[1]["dead"] is True and report[1]["state"] == DEAD
        assert report[0]["dead"] is False
        for r in report:
            assert 0.0 <= r["fraction"] <= 1.0
            assert r["busy_ns"] == svc.busy_ns[r["member"]]

    def test_utilisation_sums_and_bounds_under_skewed_mix(self, rng):
        svc = PoolScanService(3, config=toy_config(), batching=False)
        heavy, _ = exact_fp16_scan_input(65_536, rng)
        svc.submit(heavy, algorithm="mcscan", s=16)
        for _ in range(5):
            x, _e = exact_fp16_scan_input(4096, rng)
            svc.submit(x, algorithm="scanu", s=16)
        svc.flush()
        util = svc.device_utilisation()
        assert max(util) == 1.0
        assert all(0.0 <= u <= 1.0 for u in util)
        # utilisation is busy/makespan, so the sum matches total busy time
        assert sum(util) == pytest.approx(
            sum(svc.busy_ns) / svc.makespan_ns
        )
        # every request was served by exactly one worker launch
        assert sum(len(w.stats.launches) for w in svc.workers) == 6
        assert svc.total_requests == 6

    def test_every_ticket_resolved_after_flush(self, svc, rng):
        inputs = _submit_mix(svc, rng)
        done = svc.flush()
        assert {t.req_id for t in done} == set(inputs)
        assert svc.pending == 0 and not svc._tickets
        for worker in svc.workers:
            assert not worker._tickets and len(worker.batcher) == 0


class TestRouterCostModel:
    """Satellite: the LPT cost proxy must charge batched groups by the
    rows they actually carry, not their bucket capacity."""

    def test_padded_elements_charges_actual_rows(self):
        from repro.serve import LaunchGroup, PlanKey, ScanRequest

        reqs = [
            ScanRequest(
                req_id=i, x=np.zeros(100, np.float16), algorithm="scanu",
                s=16, exclusive=False, t_submit=0.0, dtype="fp16",
            )
            for i in range(5)
        ]
        group = LaunchGroup(
            key=PlanKey("scanu", 128, "fp16", 8, 16),
            requests=reqs,
            batched=True,
            bucket=8,
        )
        # 5 rows in an 8-bucket cost 5 padded rows — not 8 (the pre-fix
        # capacity charge that over-weighted half-full buckets)
        assert group.padded_elements == 128 * 5

    def test_capacity_charging_misplaces_groups(self, rng):
        """Regression for the pre-fix router: three batched shape classes
        whose bucket-capacity costs all tie at 8192 padded elements while
        their real element counts (and simulated launch times) differ.
        The old proxy therefore sorted them in submission order and built
        a strictly worse LPT schedule than actual-rows costing does."""

        def build(svc):
            r = np.random.default_rng(0)
            for rows, n in [(3, 2048), (7, 1024), (2, 4096)]:
                for _ in range(rows):
                    x = r.integers(-2, 3, n).astype(np.float16)
                    svc.submit(x, algorithm="scanu", s=16)

        fixed = PoolScanService(2, config=toy_config(), max_batch=16)
        build(fixed)
        fixed.flush()

        # emulate the pre-fix router: same groups, sorted by the old
        # capacity-based cost, placed least-loaded exactly like flush
        old = PoolScanService(2, config=toy_config(), max_batch=16)
        build(old)
        groups = old.batcher.drain()
        groups.sort(
            key=lambda g: g.key.padded * (g.bucket or len(g.requests)),
            reverse=True,
        )
        for g in groups:
            target = min(range(2), key=lambda i: old.busy_ns[i])
            served, leftover, fault = old._dispatch(g, target)
            assert leftover is None and fault is None
        assert max(fixed.busy_ns) < max(old.busy_ns)


class TestSharedTuning:
    def test_one_store_serves_all_members(self, rng):
        cfg = toy_config()
        store = TuneStore(cfg)
        ctx_pool = DevicePool(2, cfg, tune_store=store)
        workload = WorkloadKey(kind="1d", n=4096, dtype="fp16")
        ensure_tuned(ctx_pool[0], [workload], store)
        assert len(store) == 1
        # a second ensure_tuned is a no-op: the store already covers it
        assert ensure_tuned(ctx_pool[1], [workload], store) == []

        svc = PoolScanService(pool=ctx_pool, tune_store=store, min_group=1)
        inputs = {}
        for _ in range(4):
            x, _e = exact_fp16_scan_input(4096, rng)
            t = svc.submit(x)  # no explicit config: store decides
            inputs[t.req_id] = x
        done = svc.flush()
        assert all(t.tuned for t in done)
        for t in done:
            assert np.array_equal(
                t.result(), inclusive_scan(inputs[t.req_id])
            )

    def test_summary_reports_per_device_lines(self, svc, rng):
        _submit_mix(svc, rng)
        svc.flush()
        text = svc.summary()
        assert "dev0" in text and "dev1" in text
        assert "makespan" in text
        assert "% of makespan" in text

    def test_pool_devices_are_named(self):
        pool = DevicePool(3, toy_config())
        assert [d.name for d in pool.devices] == ["dev0", "dev1", "dev2"]
