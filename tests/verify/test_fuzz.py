"""Schedule fuzzer: workload matrix, replay determinism, invariant
checker sensitivity, shrinking, and the committed seed corpus.

The acceptance test for the whole harness lives here too: a deliberately
re-introduced failover drain-order bug must be caught within 100 fuzz
seeds and shrunk to a minimal decision trace.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.config import toy_config
from repro.serve.batcher import RequestBatcher
from repro.shard import DevicePool, PoolScanService
from repro.verify import (
    FUZZ_SEED0,
    WORKLOAD_MATRIX,
    ServeInvariantChecker,
    WorkloadSpec,
    failure_to_json,
    load_corpus,
    replay_corpus,
    run_fuzz,
    run_seed,
    shrink_trace,
)
from repro.verify.fuzz import _SPEC_BY_NAME, _warm


class TestWorkloadMatrix:
    def test_names_unique_and_resolvable(self):
        names = [spec.name for spec in WORKLOAD_MATRIX]
        assert len(names) == len(set(names))
        assert set(_SPEC_BY_NAME) == set(names)

    def test_matrix_spans_the_fault_space(self):
        assert any(s.num_devices >= 4 for s in WORKLOAD_MATRIX)
        assert any(s.dtype == "int8" for s in WORKLOAD_MATRIX)
        assert any(s.transient for s in WORKLOAD_MATRIX)
        assert any(s.deaths for s in WORKLOAD_MATRIX)
        assert any(s.slow for s in WORKLOAD_MATRIX)
        assert any(s.gm_budget for s in WORKLOAD_MATRIX)
        assert any(s.exclusive_mix for s in WORKLOAD_MATRIX)

    def test_sizes_straddle_the_padding_unit(self):
        for spec in WORKLOAD_MATRIX:
            unit = spec.s * spec.s
            assert any(n < unit for n in spec.sizes)
            assert any(n >= unit for n in spec.sizes)

    def test_total_death_spec_rejected(self):
        with pytest.raises(ConfigError, match="kills every member"):
            WorkloadSpec(name="doomed", num_devices=2, deaths=((0, 1), (1, 2)))

    def test_describe_mentions_fault_profile(self):
        spec = _SPEC_BY_NAME["mixed-fp16-d4"]
        text = spec.describe()
        assert "D=4" in text and "transient" in text and "deaths" in text


class TestRunSeed:
    @pytest.mark.parametrize(
        "name", ["clean-fp16-d1", "transient-fp16-d1", "death-fp16-d2"]
    )
    def test_sample_specs_pass(self, name):
        result = run_seed(_SPEC_BY_NAME[name], 3)
        assert result.ok, [v.describe() for v in result.violations]
        assert result.served == _SPEC_BY_NAME[name].requests
        assert result.trace  # a controller actually steered the run

    def test_seed_determinism(self):
        spec = _SPEC_BY_NAME["transient-fp16-d1"]
        a = run_seed(spec, 7)
        b = run_seed(spec, 7)
        assert a.trace == b.trace
        assert (a.served, a.flush_faults, a.ok) == (
            b.served,
            b.flush_faults,
            b.ok,
        )

    def test_trace_replay_is_deterministic(self):
        spec = _SPEC_BY_NAME["transient-fp16-d1"]
        live = run_seed(spec, 7)
        replay = run_seed(spec, 7, trace=live.trace)
        assert replay.trace == live.trace
        assert replay.served == live.served
        assert replay.ok == live.ok

    def test_canonical_replay_differs_from_hot_seed(self):
        """Replaying an empty trace pins the canonical schedule; a seed
        whose live run made non-canonical picks serves the same requests
        but down a different schedule (fewer / zero divergences)."""
        spec = _SPEC_BY_NAME["transient-fp16-d1"]
        live = run_seed(spec, 7)
        assert any(d.pick for d in live.trace)
        canonical = run_seed(spec, 7, trace=[])
        assert canonical.ok
        assert not any(d.pick for d in canonical.trace)
        assert canonical.served == live.served


class TestInvariantChecker:
    def _service(self, spec):
        config = toy_config()
        pool = DevicePool(spec.num_devices, config)
        svc = PoolScanService(pool=pool, config=config, max_batch=8)
        _warm(spec, svc)
        return svc

    def test_clean_run_has_no_violations(self):
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        svc = self._service(spec)
        checker = ServeInvariantChecker(svc)
        xs = [(np.arange(200) % 5 - 2).astype(np.float16) for _ in range(4)]
        tickets = [svc.submit(x, algorithm="scanu", s=16) for x in xs]
        for t, x in zip(tickets, xs):
            checker.expect(t, x)
        checker.observe(svc.flush())
        assert checker.finish() == []

    def test_lost_ticket_flagged(self):
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        svc = self._service(spec)
        checker = ServeInvariantChecker(svc)
        x = (np.arange(200) % 5 - 2).astype(np.float16)
        t = svc.submit(x, algorithm="scanu", s=16)
        checker.expect(t, x)
        svc.flush()
        checker.observe([])  # pretend the flush returned nothing
        violations = checker.finish()
        assert any(
            v.invariant == "exactly_once" and "lost" in v.detail
            for v in violations
        )

    def test_double_resolution_flagged(self):
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        svc = self._service(spec)
        checker = ServeInvariantChecker(svc)
        x = (np.arange(200) % 5 - 2).astype(np.float16)
        t = svc.submit(x, algorithm="scanu", s=16)
        checker.expect(t, x)
        done = list(svc.flush())
        checker.observe(done)
        checker.observe(done)  # the same ticket returned twice
        assert any(
            v.invariant == "exactly_once" and "resolved 2 times" in v.detail
            for v in checker.finish()
        )

    def test_corrupted_result_flagged(self):
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        svc = self._service(spec)
        checker = ServeInvariantChecker(svc)
        x = (np.arange(200) % 5 - 2).astype(np.float16)
        t = svc.submit(x, algorithm="scanu", s=16)
        checker.expect(t, x)
        done = list(svc.flush())
        done[0].values[0] += 1  # bit-flip the served result
        checker.observe(done)
        assert any(v.invariant == "oracle" for v in checker.finish())

    def test_unexpected_completion_flagged(self):
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        svc = self._service(spec)
        checker = ServeInvariantChecker(svc)
        x = (np.arange(200) % 5 - 2).astype(np.float16)
        svc.submit(x, algorithm="scanu", s=16)
        # never expect()ed: completion must be flagged as unsubmitted
        checker.observe(svc.flush())
        assert any(
            v.invariant == "exactly_once" and "never submitted" in v.detail
            for v in checker.violations
        )


class TestShrinking:
    def test_non_reproducing_failure_returns_trace_unchanged(self):
        """If the recorded schedule does not actually fail (a data bug,
        not a schedule bug), shrinking must not pretend otherwise."""
        spec = _SPEC_BY_NAME["clean-fp16-d1"]
        good = run_seed(spec, 3)
        assert good.ok
        assert shrink_trace(spec, 3, good.trace) == good.trace


class TestSeedCorpus:
    def test_corpus_loads_and_references_known_specs(self):
        entries = load_corpus()
        assert entries
        for e in entries:
            assert e.spec in _SPEC_BY_NAME
            assert e.seed >= 0
            assert e.note  # every pinned seed documents why it is pinned

    def test_corpus_replays_clean(self):
        report = replay_corpus()
        assert report.seeds_run == len(load_corpus())
        assert report.ok, report.describe()

    def test_unknown_spec_rejected(self, tmp_path):
        bad = tmp_path / "corpus.json"
        bad.write_text(
            json.dumps(
                {"version": 1, "entries": [{"spec": "no-such", "seed": 1}]}
            )
        )
        with pytest.raises(ConfigError, match="unknown workload"):
            load_corpus(bad)


class TestAcceptance:
    def test_reintroduced_drain_order_bug_caught_and_shrunk(
        self, monkeypatch
    ):
        """The ISSUE acceptance criterion: silently dropping the last
        request recalled by the failover drain (a realistic off-by-one in
        ``take_pending``) must be caught within 100 seeds, and the
        failing seed must shrink to a minimal decision trace."""
        original = RequestBatcher.take_pending

        def buggy(self):
            pending = original(self)
            if self.controller is not None and len(pending) > 1:
                return pending[:-1]  # drop the last recalled request
            return pending

        monkeypatch.setattr(RequestBatcher, "take_pending", buggy)
        report = run_fuzz(seeds=100, shrink=True, max_failures=1)
        assert not report.ok, "the planted drain bug was never caught"
        failure = report.failures[0]
        assert failure.seed < 100
        assert any(
            v.invariant in ("exactly_once", "crash")
            for v in failure.violations
        )
        assert failure.shrunk is not None
        assert len(failure.shrunk) <= len(failure.trace)
        # the shrunk schedule still reproduces while the bug is planted
        bad = run_seed(
            _SPEC_BY_NAME[failure.spec], failure.seed, trace=failure.shrunk
        )
        assert not bad.ok

    def test_failure_serialises_to_json(self, monkeypatch):
        original = RequestBatcher.take_pending

        def buggy(self):
            pending = original(self)
            if self.controller is not None and len(pending) > 1:
                return pending[:-1]
            return pending

        monkeypatch.setattr(RequestBatcher, "take_pending", buggy)
        report = run_fuzz(seeds=100, shrink=True, max_failures=1)
        assert report.failures
        blob = json.dumps(failure_to_json(report.failures[0]))
        data = json.loads(blob)
        assert data["spec"] in _SPEC_BY_NAME
        assert isinstance(data["trace"], list)
        assert data["violations"]


class TestFuzzLoop:
    def test_smoke_slice_over_full_matrix(self):
        report = run_fuzz(seeds=len(WORKLOAD_MATRIX), shrink=False)
        assert report.ok, report.describe()
        assert report.seeds_run == len(WORKLOAD_MATRIX)
        assert set(report.per_spec) == set(_SPEC_BY_NAME)
        assert report.served > 0
        assert report.decisions > 0

    def test_report_describe_mentions_outcome(self):
        report = run_fuzz(seeds=2, shrink=False)
        text = report.describe()
        assert "2 seed(s)" in text
        assert "all invariants held" in text

    def test_progress_callback_sees_every_seed(self):
        calls = []
        run_fuzz(
            seeds=4,
            shrink=False,
            progress=lambda done, total, fails: calls.append(
                (done, total, fails)
            ),
        )
        assert calls == [(1, 4, 0), (2, 4, 0), (3, 4, 0), (4, 4, 0)]

    def test_input_data_depends_only_on_seed(self):
        """Request payloads derive from (FUZZ_SEED0, seed) alone — the
        same rng construction the chaos suite uses — so schedule
        decisions can never perturb the data."""
        rng_a = np.random.default_rng((FUZZ_SEED0, 9))
        rng_b = np.random.default_rng((FUZZ_SEED0, 9))
        assert np.array_equal(
            rng_a.integers(-2, 3, 64), rng_b.integers(-2, 3, 64)
        )


class TestFusedGraphMix:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_fused_mix_green_across_pool_sizes(self, devices):
        """The fusion=aggressive graph workload stays invariant-clean at
        D in {1, 2, 4} — fused-region replay, per-kernel retry and the
        graph-ticket oracle seam are pool-size independent."""
        base = _SPEC_BY_NAME["graph-fused-mix"]
        spec = dataclasses.replace(
            base,
            name=f"graph-fused-d{devices}",
            num_devices=devices,
            transient=tuple(m for m in base.transient if m < devices),
        )
        result = run_seed(spec, 3)
        assert result.ok, [v.describe() for v in result.violations]
        assert result.served == spec.requests

    def test_fused_spec_is_in_matrix_and_corpus(self):
        assert _SPEC_BY_NAME["graph-fused-mix"].graph_fused
        assert any(
            e.spec == "graph-fused-mix" for e in load_corpus()
        )
