"""ScheduleController: record, replay, clamp, shrinkability conventions."""

from __future__ import annotations

import pytest

from repro.verify import Decision, ScheduleController
from repro.verify.controller import trace_from_json, trace_to_json


class TestChoose:
    def test_seed_determinism(self):
        a = ScheduleController(7)
        b = ScheduleController(7)
        picks_a = [a.choose("p", 5) for _ in range(20)]
        picks_b = [b.choose("p", 5) for _ in range(20)]
        assert picks_a == picks_b
        assert a.trace == b.trace

    def test_different_seeds_diverge(self):
        a = ScheduleController(1)
        b = ScheduleController(2)
        assert [a.choose("p", 100) for _ in range(10)] != [
            b.choose("p", 100) for _ in range(10)
        ]

    def test_in_range_and_recorded(self):
        ctl = ScheduleController(3)
        for _ in range(50):
            pick = ctl.choose("point", 4)
            assert 0 <= pick < 4
        assert ctl.decisions == 50
        assert all(d.point == "point" and d.n == 4 for d in ctl.trace)

    def test_trivial_choice_unrecorded(self):
        ctl = ScheduleController(0)
        assert ctl.choose("p", 1) == 0
        assert ctl.choose("p", 0) == 0
        assert ctl.trace == []


class TestReplay:
    def test_replays_recorded_picks_verbatim(self):
        live = ScheduleController(11)
        picks = [live.choose("p", 6) for _ in range(12)]
        replay = ScheduleController(999, trace=live.trace)  # seed ignored
        assert [replay.choose("p", 6) for _ in range(12)] == picks
        assert replay.trace == live.trace

    def test_clamps_to_live_alternative_count(self):
        """A divergent re-run with fewer alternatives must not crash:
        the replayed pick is clamped to n-1."""
        replay = ScheduleController(0, trace=[Decision("p", 8, 7)])
        assert replay.choose("p", 3) == 2

    def test_falls_back_to_canonical_past_trace_end(self):
        replay = ScheduleController(123, trace=[Decision("p", 4, 2)])
        assert replay.choose("p", 4) == 2
        assert [replay.choose("p", 4) for _ in range(5)] == [0] * 5

    def test_empty_trace_is_fully_canonical(self):
        replay = ScheduleController(42, trace=[])
        assert [replay.choose("p", 9) for _ in range(8)] == [0] * 8
        assert replay.chance("f", 0.99) is False

    def test_replayed_run_records_its_own_trace(self):
        """Replaying yields a closed trace: re-replaying the replay's
        trace reproduces it again (fixed point)."""
        live = ScheduleController(5)
        for _ in range(6):
            live.choose("x", 4)
            live.chance("y", 0.5)
        first = ScheduleController(0, trace=live.trace)
        for _ in range(6):
            first.choose("x", 4)
            first.chance("y", 0.5)
        second = ScheduleController(0, trace=first.trace)
        for _ in range(6):
            second.choose("x", 4)
            second.chance("y", 0.5)
        assert first.trace == live.trace == second.trace


class TestChance:
    def test_zero_probability_never_fires_never_records(self):
        ctl = ScheduleController(1)
        assert not any(ctl.chance("f", 0.0) for _ in range(50))
        assert ctl.trace == []

    def test_recorded_as_binary_decision(self):
        ctl = ScheduleController(1)
        fired = [ctl.chance("f", 0.5) for _ in range(40)]
        assert any(fired) and not all(fired)
        assert all(d.n == 2 and d.pick in (0, 1) for d in ctl.trace)
        assert [bool(d.pick) for d in ctl.trace] == fired

    def test_replay_controls_timing_independent_of_probability(self):
        """A replayed trace decides fault timing exactly even if the
        probability changed between record and replay."""
        trace = [Decision("f", 2, 1), Decision("f", 2, 0), Decision("f", 2, 1)]
        replay = ScheduleController(0, trace=trace)
        assert [replay.chance("f", 0.0001) for _ in range(3)] == [
            True,
            False,
            True,
        ]


class TestPermute:
    def test_identity_under_all_zero_trace(self):
        items = list("abcdef")
        replay = ScheduleController(0, trace=[])
        assert replay.permute("q", items) == items

    def test_permutation_is_seeded_and_recorded(self):
        items = list(range(8))
        a = ScheduleController(9)
        b = ScheduleController(9)
        out_a = a.permute("q", items)
        out_b = b.permute("q", items)
        assert out_a == out_b
        assert sorted(out_a) == items  # a permutation, nothing lost
        assert a.decisions == len(items) - 1  # one swap decision per slot

    def test_replay_reproduces_the_permutation(self):
        items = list("abcdefgh")
        live = ScheduleController(13)
        shuffled = live.permute("q", items)
        replay = ScheduleController(0, trace=live.trace)
        assert replay.permute("q", items) == shuffled

    def test_short_inputs_record_nothing(self):
        ctl = ScheduleController(2)
        assert ctl.permute("q", []) == []
        assert ctl.permute("q", ["only"]) == ["only"]
        assert ctl.trace == []


class TestTraceSerialisation:
    def test_json_round_trip(self):
        ctl = ScheduleController(21)
        for _ in range(5):
            ctl.choose("a", 7)
            ctl.chance("b", 0.4)
        ctl.permute("c", list(range(4)))
        data = trace_to_json(ctl.trace)
        assert all(
            isinstance(p, str) and isinstance(n, int) and isinstance(k, int)
            for p, n, k in data
        )
        assert trace_from_json(data) == ctl.trace

    def test_decision_describe(self):
        assert Decision("pool.group", 4, 2).describe() == "pool.group: 2/4"


class TestIntrospection:
    def test_nonzero_decisions_counts_divergences(self):
        ctl = ScheduleController(
            0,
            trace=[
                Decision("a", 4, 0),
                Decision("a", 4, 3),
                Decision("a", 4, 1),
            ],
        )
        for _ in range(3):
            ctl.choose("a", 4)
        assert ctl.decisions == 3
        assert ctl.nonzero_decisions == 2

    def test_describe_trace_canonical(self):
        ctl = ScheduleController(0, trace=[])
        for _ in range(4):
            ctl.choose("a", 4)
        assert ctl.describe_trace() == "(canonical schedule)"

    def test_describe_trace_lists_hot_decisions_and_elides(self):
        trace = [Decision("p", 5, 4) for _ in range(25)]
        ctl = ScheduleController(0, trace=trace)
        for _ in range(25):
            ctl.choose("p", 5)
        text = ctl.describe_trace(limit=3)
        assert text.count("p: 4/5") == 3
        assert "22 more" in text


@pytest.mark.parametrize("seed", [0, 1, 17, 0xA5CE])
def test_any_seed_trace_replays_to_itself(seed):
    """Closure property the shrinker relies on: every recorded trace,
    replayed over the same decision sequence, reproduces itself."""
    live = ScheduleController(seed)
    script = [("c", 5), ("f", 0.3), ("c", 2), ("f", 0.8), ("c", 9)]
    for _ in range(4):
        for kind, arg in script:
            if kind == "c":
                live.choose("x", arg)
            else:
                live.chance("y", arg)
    replay = ScheduleController(0, trace=live.trace)
    for _ in range(4):
        for kind, arg in script:
            if kind == "c":
                replay.choose("x", arg)
            else:
                replay.chance("y", arg)
    assert replay.trace == live.trace
