"""Property-based tests (hypothesis) for the core data structures and the
algorithmic invariants of the scan kernels and operators.

Each example runs a full device simulation, so example counts are kept
moderate; the strategies are designed to hit padding edges (lengths around
tile multiples) and extreme mask densities.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import ScanContext
from repro.core.reference import (
    exclusive_scan,
    inclusive_scan,
    stable_split,
    compress as ref_compress,
)
from repro.hw.hbm import waterfill
from repro.ops.driver import AscendOps
from repro.ops.radix import decode_fp16_np, encode_fp16_np

# shared device state (constants cached across examples)
_CTX = ScanContext()
_OPS = AscendOps(_CTX)

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# lengths biased toward tile-boundary edges
lengths = st.one_of(
    st.integers(1, 300),
    st.sampled_from([1023, 1024, 1025, 16383, 16384, 16385, 40000]),
)


@st.composite
def int8_arrays(draw):
    n = draw(lengths)
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return rng.integers(-30, 31, n).astype(np.int8)


@st.composite
def fp16_small_int_arrays(draw):
    n = draw(lengths)
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 5, n) - 2).astype(np.float16)


class TestScanProperties:
    @_SETTINGS
    @given(x=int8_arrays(), s=st.sampled_from([32, 128]))
    def test_mcscan_matches_oracle(self, x, s):
        res = _CTX.scan(x, algorithm="mcscan", s=s)
        assert np.array_equal(res.values, inclusive_scan(x))

    @_SETTINGS
    @given(x=int8_arrays())
    def test_exclusive_inclusive_relation(self, x):
        inc = _CTX.scan(x, algorithm="mcscan").values
        exc = _CTX.scan(x, algorithm="mcscan", exclusive=True).values
        assert exc[0] == 0
        assert np.array_equal(exc[1:], inc[:-1])
        assert np.array_equal(exc, exclusive_scan(x))

    @_SETTINGS
    @given(x=fp16_small_int_arrays(), algo=st.sampled_from(["scanu", "scanul1"]))
    def test_single_core_agree_with_mcscan(self, x, algo):
        a = _CTX.scan(x, algorithm=algo, s=32).values
        b = _CTX.scan(x, algorithm="mcscan", s=32).values
        assert np.array_equal(a, b)

    @_SETTINGS
    @given(x=int8_arrays())
    def test_scan_last_element_is_total(self, x):
        res = _CTX.scan(x, algorithm="mcscan")
        assert res.values[-1] == int(x.astype(np.int64).sum())

    @_SETTINGS
    @given(x=int8_arrays())
    def test_scan_differences_recover_input(self, x):
        res = _CTX.scan(x, algorithm="mcscan")
        recovered = np.diff(np.concatenate([[0], res.values]))
        assert np.array_equal(recovered.astype(np.int8), x)


class TestSplitProperties:
    @_SETTINGS
    @given(
        n=st.integers(10, 5000),
        seed=st.integers(0, 2 ** 31),
        p=st.floats(0.0, 1.0),
    )
    def test_split_permutation_and_stability(self, n, seed, p):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float16)
        f = (rng.random(n) < p).astype(np.int8)
        res = _OPS.split(x, f, s=32)
        # the index output is a permutation
        assert np.array_equal(np.sort(res.indices), np.arange(n))
        # values are the gathered originals
        assert np.array_equal(res.values, x[res.indices])
        # matches the stable-split oracle
        ev, ei = stable_split(x, f)
        assert np.array_equal(res.indices, ei)

    @_SETTINGS
    @given(n=st.integers(10, 5000), seed=st.integers(0, 2 ** 31))
    def test_compress_equals_boolean_indexing(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float16)
        m = (rng.random(n) < 0.5).astype(np.int8)
        res = _OPS.compress(x, m, s=32)
        assert np.array_equal(res.values, ref_compress(x, m))


class TestSortProperties:
    @_SETTINGS
    @given(n=st.integers(2, 3000), seed=st.integers(0, 2 ** 31))
    def test_radix_sort_sorted_and_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float16)
        res = _OPS.radix_sort(x, s=32)
        assert np.array_equal(res.values, np.sort(x))
        assert np.array_equal(np.sort(res.indices), np.arange(n))
        assert np.array_equal(x[res.indices], res.values)

    @_SETTINGS
    @given(n=st.integers(2, 3000), seed=st.integers(0, 2 ** 31))
    def test_radix_equals_baseline_sort(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 1 << 16, n).astype(np.uint16)
        a = _OPS.radix_sort(x, s=32)
        b = _OPS.baseline_sort(x.view(np.float16))
        # comparing values via the stable argsort indices on distinct reps
        assert np.array_equal(a.values, np.sort(x))

    @_SETTINGS
    @given(seed=st.integers(0, 2 ** 31), n=st.integers(1, 4096))
    def test_encode_fp16_monotone(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float16)
        e = encode_fp16_np(x)
        assert np.array_equal(decode_fp16_np(e), x)
        order = np.argsort(x.astype(np.float32), kind="stable")
        assert np.all(np.diff(e[order].astype(np.int64)) >= 0)


class TestSimulatorProperties:
    @_SETTINGS
    @given(
        demands=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=30),
        pool=st.floats(0.1, 2000.0),
    )
    def test_waterfill_invariants(self, demands, pool):
        rates = waterfill(demands, pool)
        assert len(rates) == len(demands)
        assert sum(rates) <= pool * (1 + 1e-9)
        for r, d in zip(rates, demands):
            assert 0 <= r <= d * (1 + 1e-9)
        # max-min fairness: if a flow got less than its demand, no other
        # flow got strictly more than it + epsilon unless also demand-capped
        for i, (r, d) in enumerate(zip(rates, demands)):
            if r < d - 1e-9:
                for j, (r2, d2) in enumerate(zip(rates, demands)):
                    assert r2 <= r + 1e-6 or r2 >= d2 - 1e-9

    @_SETTINGS
    @given(x=int8_arrays())
    def test_timeline_invariants(self, x):
        """Per-engine ops never overlap; deps always precede dependents."""
        res = _CTX.scan(x, algorithm="mcscan", s=32)
        trace = res.trace
        tl = trace.timeline
        by_engine = {}
        for op in trace.ops:
            by_engine.setdefault(op.engine, []).append(tl.span(op.op_id))
            for d in op.deps:
                assert tl.span(op.op_id)[0] >= tl.span(d)[1] - 1e-6
        for spans in by_engine.values():
            spans.sort()
            for (s1, f1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-6
