"""Graph-level fusion: group fusible regions into :class:`FusedNode`\\ s.

The pass runs after toposort/type inference and *only* changes how the
interpreter lowers the graph — the IR, its signature, and the host oracle
(:meth:`Graph.run_oracle`) are untouched, so served numerics are identical
with fusion on or off by construction.  What changes is the captured
device program: a fused region becomes **one** program (one launch chain,
intermediates kept in UB) instead of one program per node.

Regions and legality
--------------------
Two region shapes are recognised, controlled by the ``fusion`` knob:

* ``conservative`` — chains of spec-preserving elementwise maps
  (``fusable_map`` ops whose input and output :class:`TensorSpec` are
  equal and statically shaped).  Lowered through
  :class:`~repro.graph.op.FusedElementwiseOp` as one multi-fn
  :class:`~repro.ops.elementwise.ElementwiseMapKernel` pass.
* ``aggressive`` — additionally absorbs a ``scan`` node between a map
  chain and a trailing map chain (``elementwise→scan``,
  ``scan→elementwise``, or both), folding the epilogue into the scan
  kernel's vector stage where the algorithm exposes that seam
  (:data:`~repro.core.api.FOLDABLE_SCAN_ALGORITHMS`).

An intermediate edge may be fused over only when it has **exactly one
consumer** and is **not a graph output** — otherwise the edge's value must
materialise in GM and the region is cut at that point.  ``off`` disables
the pass entirely (byte-identical lowering to the pre-fusion runner).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .ir import Graph, Node
from .op import get_op

__all__ = ["FUSION_MODES", "FusedNode", "fuse_graph"]

FUSION_MODES = ("off", "conservative", "aggressive")


@dataclass(frozen=True)
class FusedNode:
    """A fusible region: a run of member :class:`Node`\\ s lowered as one
    captured program.  ``kind`` is ``fused_elementwise`` (pure map chain)
    or ``fused_scan`` (map chain / scan / map chain)."""

    name: str
    kind: str
    #: member nodes in topological (chain) order
    members: "tuple[Node, ...]"
    #: edges read from outside the region (single edge for these chains)
    inputs: "tuple[str, ...]"
    #: edges the region exposes to the rest of the graph (the tail
    #: member's outputs; interior edges are fused away and never
    #: materialise)
    outputs: "tuple[str, ...]"

    @property
    def member_names(self) -> "tuple[str, ...]":
        return tuple(m.name for m in self.members)

    @property
    def member_kinds(self) -> "tuple[str, ...]":
        return tuple(m.kind for m in self.members)

    @property
    def scan_index(self) -> "int | None":
        for i, m in enumerate(self.members):
            if m.kind == "scan":
                return i
        return None

    @property
    def scan_member(self) -> "Node | None":
        i = self.scan_index
        return None if i is None else self.members[i]

    def _fns(self, members) -> "tuple[str, ...]":
        out: "list[str]" = []
        for m in members:
            out.extend(get_op(m.kind).map_fns(m.params))
        return tuple(out)

    @property
    def pre_fns(self) -> "tuple[str, ...]":
        """Flattened map-fn names before the scan (all of them for a pure
        elementwise region)."""
        i = self.scan_index
        return self._fns(self.members if i is None else self.members[:i])

    @property
    def post_fns(self) -> "tuple[str, ...]":
        """Flattened map-fn names after the scan (empty for a pure
        elementwise region)."""
        i = self.scan_index
        return () if i is None else self._fns(self.members[i + 1 :])


def _is_spec_preserving_map(node: Node, specs) -> bool:
    """True when ``node`` is a single-input ``fusable_map`` op whose
    output spec equals its input spec (dtype *and* static shape) — the
    dtype/shape legality rule for chaining."""
    op = get_op(node.kind)
    if not op.fusable_map:
        return False
    if len(node.inputs) != 1 or len(op.output_names) != 1:
        return False
    in_spec = specs[node.inputs[0]]
    out_spec = specs[node.output_edges()[0]]
    return in_spec == out_spec and in_spec.shape is not None


def fuse_graph(graph: Graph, mode: str = "conservative"):
    """Group fusible regions of ``graph`` into :class:`FusedNode`\\ s.

    Returns the topological node order with each fused region replaced by
    a single :class:`FusedNode` (singleton regions stay plain
    :class:`Node`\\ s).  Pure analysis — ``graph`` is not modified.
    """
    if mode not in FUSION_MODES:
        raise ConfigError(
            f"unknown fusion mode {mode!r}; known: {FUSION_MODES}"
        )
    order = graph.toposort()
    if mode == "off":
        return list(order)
    specs = graph.infer()

    # consumer multiplicity per edge: every node-input occurrence plus
    # every graph-output occurrence pins the edge (it must materialise)
    consumers: "dict[str, int]" = {}
    sole_consumer: "dict[str, Node]" = {}
    for node in graph.nodes:
        for edge in node.inputs:
            consumers[edge] = consumers.get(edge, 0) + 1
            sole_consumer[edge] = node
    for edge in graph.outputs:
        consumers[edge] = consumers.get(edge, 0) + 1

    def fusible_edge(edge: str) -> bool:
        return consumers.get(edge, 0) == 1 and edge in sole_consumer

    def next_member(node: Node) -> "Node | None":
        """The sole consumer of ``node``'s single output edge, or None
        when the edge is pinned (multi-consumer or a graph output)."""
        edges = node.output_edges()
        if len(edges) != 1 or not fusible_edge(edges[0]):
            return None
        return sole_consumer[edges[0]]

    def scan_fusible(node: Node) -> bool:
        # the competitor "vector" baseline has no cube/vector split to
        # fold an epilogue into, and changes the output dtype contract
        return node.kind == "scan" and node.params.get("algorithm") != "vector"

    used: "set[str]" = set()
    result: "list[Node | FusedNode]" = []
    for node in order:
        if node.name in used:
            continue
        is_map = _is_spec_preserving_map(node, specs)
        starts_scan = mode == "aggressive" and scan_fusible(node)
        if not is_map and not starts_scan:
            result.append(node)
            continue

        members = [node]
        has_scan = starts_scan
        cursor = node
        while True:
            nxt = next_member(cursor)
            if nxt is None or nxt.name in used:
                break
            if _is_spec_preserving_map(nxt, specs):
                members.append(nxt)
                cursor = nxt
                continue
            if mode == "aggressive" and not has_scan and scan_fusible(nxt):
                members.append(nxt)
                cursor = nxt
                has_scan = True
                continue
            break

        if len(members) < 2:
            result.append(node)
            continue
        used.update(m.name for m in members)
        kind = "fused_scan" if has_scan else "fused_elementwise"
        result.append(
            FusedNode(
                name="+".join(m.name for m in members),
                kind=kind,
                members=tuple(members),
                inputs=tuple(members[0].inputs),
                outputs=tuple(members[-1].output_edges()),
            )
        )
    return result
