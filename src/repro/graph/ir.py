"""Graph IR: nodes (operators) connected by named tensor edges.

A :class:`Graph` is a small dataflow program over the registered operator
zoo (:mod:`repro.graph.op`): graph *inputs* are named tensors with a
declared :class:`~repro.graph.op.TensorSpec`; each *node* applies one
registered op kind to a list of edges and produces one edge per declared
output (``<node>.<output_name>``); graph *outputs* name the edges the
caller receives back, in order.

:meth:`Graph.validate` runs the structural diagnostics — unknown op
kinds, bad parameters, arity mismatches, dangling (undefined) input
edges, duplicate edge producers, cycles (Kahn's algorithm, reporting the
stuck nodes), missing outputs — and then type inference, where each op's
:meth:`~repro.graph.op.OpNode.infer` checks dtypes/shapes edge by edge.
Everything raises :class:`~repro.errors.ConfigError` with the node name
in the message.  The deterministic topological order it produces (Kahn
with a FIFO ready queue over declaration order) is what the interpreter
executes and what :meth:`Graph.signature` hashes for plan caching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .op import TensorSpec, get_op, np_dtype_of

__all__ = ["Node", "Graph"]

_VALID_NAME = "edge and node names must be non-empty strings without '.'"


@dataclass(frozen=True)
class Node:
    """One operator application: ``name.<out> = kind(*inputs; params)``."""

    name: str
    kind: str
    #: names of the edges consumed, in op argument order
    inputs: "tuple[str, ...]"
    #: resolved parameters (defaults merged at add_node time)
    params: "dict"

    def output_edges(self) -> "tuple[str, ...]":
        op = get_op(self.kind)
        return tuple(f"{self.name}.{out}" for out in op.output_names)


@dataclass
class Graph:
    """A validated operator graph (build with :meth:`add_input` /
    :meth:`add_node` / :meth:`set_outputs`, then :meth:`validate`)."""

    name: str = "graph"
    #: graph input name -> declared spec, in declaration order
    inputs: "dict[str, TensorSpec]" = field(default_factory=dict)
    nodes: "list[Node]" = field(default_factory=list)
    #: edge names returned to the caller, in order
    outputs: "list[str]" = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def add_input(self, name: str, dtype: str, shape=None) -> str:
        if not name or not isinstance(name, str) or "." in name:
            raise ConfigError(f"graph {self.name!r}: {_VALID_NAME}, got {name!r}")
        if name in self.inputs or any(n.name == name for n in self.nodes):
            raise ConfigError(
                f"graph {self.name!r}: duplicate name {name!r}"
            )
        shape = None if shape is None else tuple(int(d) for d in shape)
        self.inputs[name] = TensorSpec(dtype, shape)
        return name

    def add_node(
        self, name: str, kind: str, inputs, params: "dict | None" = None
    ) -> "tuple[str, ...]":
        """Append a node; returns its output edge names.  Op kind,
        parameter names and required parameters are checked eagerly —
        arity/dtype/shape checks happen in :meth:`validate`, which can see
        the whole graph."""
        if not name or not isinstance(name, str) or "." in name:
            raise ConfigError(f"graph {self.name!r}: {_VALID_NAME}, got {name!r}")
        if name in self.inputs or any(n.name == name for n in self.nodes):
            raise ConfigError(f"graph {self.name!r}: duplicate name {name!r}")
        op = get_op(kind)
        node = Node(
            name=name,
            kind=kind,
            inputs=tuple(inputs),
            params=op.resolve_params(params),
        )
        self.nodes.append(node)
        return node.output_edges()

    def set_outputs(self, outputs) -> None:
        self.outputs = list(outputs)

    # -- structure ----------------------------------------------------------

    def producers(self) -> "dict[str, Node]":
        """edge name -> producing node (graph inputs excluded); raises on
        duplicate producers."""
        prod: "dict[str, Node]" = {}
        for node in self.nodes:
            for edge in node.output_edges():
                if edge in self.inputs:
                    raise ConfigError(
                        f"graph {self.name!r}: node {node.name!r} output "
                        f"{edge!r} collides with a graph input"
                    )
                if edge in prod:
                    raise ConfigError(
                        f"graph {self.name!r}: edge {edge!r} produced by "
                        f"both {prod[edge].name!r} and {node.name!r}"
                    )
                prod[edge] = node
        return prod

    def toposort(self) -> "list[Node]":
        """Deterministic topological order (Kahn, FIFO over declaration
        order).  Raises :class:`ConfigError` naming dangling edges or the
        nodes stuck on a cycle."""
        prod = self.producers()
        for node in self.nodes:
            for edge in node.inputs:
                if edge not in self.inputs and edge not in prod:
                    raise ConfigError(
                        f"graph {self.name!r}: node {node.name!r} reads "
                        f"dangling edge {edge!r} (not a graph input and no "
                        f"node produces it)"
                    )
        indegree = {node.name: 0 for node in self.nodes}
        consumers: "dict[str, list[Node]]" = {}
        for node in self.nodes:
            for edge in node.inputs:
                producer = prod.get(edge)
                if producer is not None:
                    indegree[node.name] += 1
                    consumers.setdefault(producer.name, []).append(node)
        ready = deque(n for n in self.nodes if indegree[n.name] == 0)
        order: "list[Node]" = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for consumer in consumers.get(node.name, ()):
                indegree[consumer.name] -= 1
                if indegree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(self.nodes):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise ConfigError(
                f"graph {self.name!r}: cycle through node(s) {stuck}"
            )
        return order

    # -- typing -------------------------------------------------------------

    def infer(self) -> "dict[str, TensorSpec]":
        """Edge name -> inferred spec for every edge (inputs included).
        Runs each op's dtype/shape checks in topological order."""
        specs: "dict[str, TensorSpec]" = dict(self.inputs)
        for node in self.toposort():
            op = get_op(node.kind)
            in_specs = [specs[e] for e in node.inputs]
            try:
                out_specs = op.infer(in_specs, node.params)
            except ConfigError as exc:
                raise ConfigError(
                    f"graph {self.name!r}: node {node.name!r}: {exc}"
                ) from None
            for edge, spec in zip(node.output_edges(), out_specs):
                specs[edge] = spec
        return specs

    def validate(self) -> "dict[str, TensorSpec]":
        """Full structural + type validation; returns the edge specs."""
        if not self.nodes:
            raise ConfigError(f"graph {self.name!r} has no nodes")
        if not self.outputs:
            raise ConfigError(f"graph {self.name!r} declares no outputs")
        specs = self.infer()
        for edge in self.outputs:
            if edge not in specs:
                raise ConfigError(
                    f"graph {self.name!r}: output {edge!r} is not a known "
                    f"edge"
                )
        return specs

    def signature(self) -> tuple:
        """Hashable identity of the lowered program: per-node (kind,
        shape-class) in topological order plus the output wiring.  Two
        graphs with equal signatures replay the same captured device
        programs, so this is the batcher's coalescing key."""
        specs = self.validate()
        node_sigs = []
        for node in self.toposort():
            op = get_op(node.kind)
            in_specs = [specs[e] for e in node.inputs]
            node_sigs.append((node.kind, op.shape_class(in_specs, node.params)))
        return (self.name, tuple(node_sigs), tuple(self.outputs))

    # -- execution (host oracle) --------------------------------------------

    def bind(self, inputs) -> "dict[str, np.ndarray]":
        """Normalize caller inputs (dict or sequence in declaration order)
        into edge-name -> array, checking dtype and declared shape."""
        if not isinstance(inputs, dict):
            seq = list(inputs)
            if len(seq) != len(self.inputs):
                raise ConfigError(
                    f"graph {self.name!r} takes {len(self.inputs)} input(s) "
                    f"({list(self.inputs)}), got {len(seq)}"
                )
            inputs = dict(zip(self.inputs, seq))
        missing = set(self.inputs) - set(inputs)
        extra = set(inputs) - set(self.inputs)
        if missing or extra:
            raise ConfigError(
                f"graph {self.name!r}: input mismatch "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})"
            )
        bound = {}
        for name, spec in self.inputs.items():
            x = np.ascontiguousarray(inputs[name])
            want = np_dtype_of(spec.dtype)
            if x.dtype != want:
                raise ConfigError(
                    f"graph {self.name!r}: input {name!r} must be "
                    f"{spec.dtype}, got {x.dtype}"
                )
            if spec.shape is not None and tuple(x.shape) != spec.shape:
                raise ConfigError(
                    f"graph {self.name!r}: input {name!r} must have shape "
                    f"{spec.shape}, got {tuple(x.shape)}"
                )
            bound[name] = x
        return bound

    def run_oracle(self, inputs, params_override=None) -> "tuple[np.ndarray, ...]":
        """Evaluate the graph on host with every op's NumPy oracle — the
        served numerics.  ``params_override`` maps node name -> dict of
        runtime parameter values (e.g. a per-request sampling ``theta``)."""
        values = self.bind(inputs)
        overrides = params_override or {}
        for node in self.toposort():
            op = get_op(node.kind)
            params = node.params
            if node.name in overrides:
                params = op.resolve_params({**params, **overrides[node.name]})
            outs = op.oracle([values[e] for e in node.inputs], params)
            for edge, val in zip(node.output_edges(), outs):
                values[edge] = val
        return tuple(values[e] for e in self.outputs)
