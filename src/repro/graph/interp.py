"""Graph lowering + interpretation: capture once, replay per request.

:class:`GraphRunner` owns a dedicated *build* device (its own
:class:`~repro.core.api.ScanContext` on the **same** ``DeviceConfig``
object the serving devices use, so memoized kernel timelines — keyed by
config identity — transfer to every pool member) plus the ops driver and
a scan :class:`~repro.serve.plan.PlanCache`.  Lowering a node means
running its real device implementation once on the build device under
:meth:`AscendDevice.capture_launches
<repro.hw.device.AscendDevice.capture_launches>`, harvesting the traced
kernels, and differentially checking the device outputs bit-exactly
against the op's NumPy oracle on exactness-conditioned validation inputs
(:class:`~repro.errors.KernelError` on divergence).  Scan nodes instead
go through the plan cache — consulting the TuneStore like
``ScanService`` — so tuned scan configurations flow into graphs for
free.

Lowered nodes are memoized in :class:`GraphPlanCache` keyed on
``(kind, shape_class)``: the steady-state cost of serving a graph
request is replaying the captured kernels (O(1) memoized timelines) plus
the host oracle numerics — no re-tracing, which is exactly what the
hand-chained ``AscendOps`` path pays on every call.

Build-device residency: all capture-time GM traffic lands on the build
device, so pool members' GM accounting (and the fuzz harness's GM
invariants) are untouched by graph serving; members only ever replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.api import FOLDABLE_SCAN_ALGORITHMS, ScanContext, ScanPlan
from ..errors import ConfigError, KernelError
from ..hw.datatypes import as_dtype, cube_accum_dtype
from ..ops.driver import AscendOps
from ..ops.elementwise import ElementwiseMapKernel
from ..ops.topp import TopPSampler
from ..serve.plan import PlanCache
from .fuse import FUSION_MODES, FusedNode, fuse_graph
from .ir import Graph, Node
from .op import ELEMENTWISE_FNS, OpNode, TensorSpec, get_op

__all__ = [
    "LoweredNode",
    "GraphPlanCache",
    "GraphRunner",
    "top_p_device_sample",
    "DEFAULT_SCAN_ALGORITHM",
]

#: scan algorithm when a scan node neither names one nor has a tuned entry
DEFAULT_SCAN_ALGORITHM = "scanu"


def top_p_device_sample(
    ops: AscendOps,
    probs: np.ndarray,
    ids: np.ndarray,
    *,
    p: float,
    theta: float,
    s: int = 128,
) -> np.ndarray:
    """Device top-p pipeline (radix sort + MCScan cumsum + predicate
    counts) with the winner looked up in ``ids`` — the lowering behind the
    ``top_p_sample`` op."""
    res = TopPSampler(ops, s=s).sample(probs, p, backend="cube", theta=theta)
    token = int(ids[int(res.values[0])])
    return np.asarray([token], dtype=np.int64)


@dataclass
class LoweredNode:
    """One op kind at one shape class, lowered to replayable device
    programs.  ``traced`` replays on any device sharing the build config
    (timelines are memoized per config identity)."""

    kind: str
    shape_class: tuple
    #: captured device programs, in launch order
    traced: "list"
    #: host seconds the capture + differential validation cost (cold)
    build_host_s: float
    #: True when the build-time device-vs-oracle check ran bit-exactly;
    #: None when delegated (scan plans validate inside build_plan)
    validated: "bool | None"
    #: True when a TuneStore entry picked the configuration (scan nodes)
    tuned: bool = False
    #: True when the captured program's structure depends on the build
    #: data (quickselect) — replay timing is a steady-state approximation
    data_dependent: bool = False
    #: the owning scan plan, when the node lowered through the plan cache
    plan: "ScanPlan | None" = None
    replays: int = 0
    #: for fused regions: positional ``(member kind, device-time weight)``
    #: pairs summing to 1 — weights attribute a replayed region's span back
    #: to the original node kinds (empty for unfused nodes)
    members: "tuple" = ()

    @property
    def launches(self) -> int:
        return len(self.traced)

    def device_ns(self, device) -> float:
        """Simulated ns of one replay of this node (memoized timelines)."""
        return sum(device.time_traced(t) for t in self.traced)


class GraphPlanCache:
    """Build-once store of :class:`LoweredNode` keyed on
    ``(kind, shape_class)`` — the graph analogue of the scan PlanCache."""

    def __init__(self):
        self._lowered: "dict[tuple, LoweredNode]" = {}
        self.hits = 0
        self.misses = 0
        self.build_host_s = 0.0

    def get(self, key: tuple) -> "LoweredNode | None":
        low = self._lowered.get(key)
        if low is not None:
            self.hits += 1
        return low

    def put(self, key: tuple, low: LoweredNode) -> None:
        self.misses += 1
        self.build_host_s += low.build_host_s
        self._lowered[key] = low

    def __len__(self) -> int:
        return len(self._lowered)

    def __contains__(self, key: tuple) -> bool:
        return key in self._lowered

    def stats(self) -> dict:
        """Cache counters, shaped like ``PlanCache.stats`` (the scan plan
        cache): size / hits / misses / build cost, plus graph-specific
        gauges (fused regions, replays, memoized-timeline hit rates)."""
        lowered = list(self._lowered.values())
        return {
            "lowered": len(lowered),
            "fused": sum(1 for l in lowered if l.members),
            "hits": self.hits,
            "misses": self.misses,
            "build_host_s": self.build_host_s,
            "launches": sum(l.launches for l in lowered),
            "tuned": sum(1 for l in lowered if l.tuned),
            "replays": sum(l.replays for l in lowered),
            "timeline_hits": sum(
                t.timeline_hits for l in lowered for t in l.traced
            ),
            "timeline_misses": sum(
                t.timeline_misses for l in lowered for t in l.traced
            ),
        }


@dataclass
class GraphRunner:
    """Lowers and interprets operator graphs against one device config.

    One runner is shared across a whole service (all pool members): the
    cache key is the shape class, and replayed timelines are valid on any
    member because every member runs the same config object.
    """

    config: "object"
    tune_store: "object | None" = None
    validate: bool = True
    #: graph-level fusion mode (see :func:`repro.graph.fuse.fuse_graph`):
    #: ``off`` lowers one program per node, ``conservative`` fuses
    #: elementwise chains, ``aggressive`` additionally folds pre/post maps
    #: into scan programs
    fusion: str = "conservative"
    ctx: ScanContext = field(init=False)
    ops: AscendOps = field(init=False)
    plans: PlanCache = field(init=False)
    cache: GraphPlanCache = field(init=False)

    def __post_init__(self):
        if self.fusion not in FUSION_MODES:
            raise ConfigError(
                f"unknown fusion mode {self.fusion!r}; known: {FUSION_MODES}"
            )
        self.ctx = ScanContext(self.config)
        self.ops = AscendOps(scan_context=self.ctx)
        self.plans = PlanCache(self.ctx, validate=self.validate)
        self.cache = GraphPlanCache()

    @property
    def device(self):
        return self.ctx.device

    # -- lowering -----------------------------------------------------------

    def lower(self, graph: Graph) -> "tuple[list, bool]":
        """Validate, fuse (per :attr:`fusion`) and lower every unit;
        returns (``[(unit, LoweredNode)]`` in topological order — a unit
        is a :class:`Node` or a :class:`FusedNode` region lowered to one
        captured program — and whether anything had to be built)."""
        specs = graph.validate()
        entries = []
        built = False
        for unit in fuse_graph(graph, self.fusion):
            if isinstance(unit, FusedNode):
                key = self._fused_key(unit, specs)
                low = self.cache.get(key)
                if low is None:
                    low = self._build_fused(unit, key, specs)
                    self.cache.put(key, low)
                    built = True
                entries.append((unit, low))
                continue
            node = unit
            op = get_op(node.kind)
            in_specs = [specs[e] for e in node.inputs]
            key = (node.kind, op.shape_class(in_specs, node.params))
            low = self.cache.get(key)
            if low is None:
                low = self._build(op, key, node, in_specs)
                self.cache.put(key, low)
                built = True
            entries.append((node, low))
        return entries, built

    # -- fused regions -------------------------------------------------------

    def _fused_key(self, unit: FusedNode, specs) -> tuple:
        """Name-free cache key of a fused region: the fn chain(s) plus the
        member shape classes — two regions with equal keys replay the same
        captured program."""
        in_spec = specs[unit.inputs[0]]
        if unit.kind == "fused_elementwise":
            op = get_op("fused_elementwise")
            params = op.resolve_params({"fns": unit.pre_fns})
            return ("fused_elementwise", op.shape_class([in_spec], params))
        scan = unit.scan_member
        scan_sc = get_op("scan").shape_class(
            [specs[scan.inputs[0]]], scan.params
        )
        return ("fused_scan", (unit.pre_fns, scan_sc, unit.post_fns))

    def _build_fused(
        self, unit: FusedNode, key: tuple, specs
    ) -> LoweredNode:
        in_spec = specs[unit.inputs[0]]
        if unit.kind == "fused_elementwise":
            # lower through the registered FusedElementwiseOp: the generic
            # capture path differentially validates the one-pass kernel
            # against the composed member oracles bit-exactly
            op = get_op("fused_elementwise")
            node = Node(
                name=unit.name,
                kind="fused_elementwise",
                inputs=unit.inputs,
                params=op.resolve_params({"fns": unit.pre_fns}),
            )
            low = self._build(op, key, node, [in_spec])
        else:
            low = self._build_fused_scan(key, unit, in_spec)
        low.members = self._member_weights(unit, low)
        return low

    def _member_weights(self, unit: FusedNode, low: LoweredNode) -> tuple:
        """Positional ``(kind, weight)`` pairs attributing the fused
        region's replayed device time back to its members: the scan member
        gets its standalone plan's share, map members split the remainder
        in proportion to their fn counts."""
        total = low.device_ns(self.device)
        counts = {
            m.name: len(get_op(m.kind).map_fns(m.params))
            for m in unit.members
            if m.kind != "scan"
        }
        tot_fns = float(sum(counts.values())) or 1.0
        if total <= 0:
            k = len(unit.members)
            return tuple((m.kind, 1.0 / k) for m in unit.members)
        if unit.scan_index is None:
            return tuple(
                (m.kind, counts[m.name] / tot_fns) for m in unit.members
            )
        scan_share = total / len(unit.members)
        if low.plan is not None:
            scan_share = min(low.plan.time_ns(), total)
        rem = max(total - scan_share, 0.0)
        return tuple(
            (m.kind, scan_share / total)
            if m.kind == "scan"
            else (m.kind, (rem / total) * (counts[m.name] / tot_fns))
            for m in unit.members
        )

    def _build_fused_scan(
        self, key: tuple, unit: FusedNode, in_spec: TensorSpec
    ) -> LoweredNode:
        """Capture one program for a map-chain / scan / map-chain region.

        The scan stage resolves exactly like an unfused scan node
        (explicit params, then TuneStore, then default — sharing the plan
        cache, so the standalone plan also prices the scan's share of the
        fused span).  Post-maps fold into the scan kernel's vector stage
        when the algorithm exposes that seam
        (:data:`FOLDABLE_SCAN_ALGORITHMS`); otherwise they trail as one
        in-place multi-fn map pass.  The captured outputs are checked
        bit-exactly against the composition of the member oracles."""
        t0 = time.perf_counter()
        scan_node = unit.scan_member
        n = in_spec.n
        dtype = in_spec.dtype
        exclusive = bool(scan_node.params["exclusive"])
        algorithm, s, block_dim, tuned = self._resolve_scan(
            n, dtype, exclusive, scan_node.params
        )
        plan = self.plans.get_1d(
            algorithm,
            n,
            dtype,
            s=s,
            exclusive=exclusive,
            block_dim=block_dim,
            tuned=tuned,
        )

        pre = tuple(ELEMENTWISE_FNS[f] for f in unit.pre_fns)
        post = tuple(ELEMENTWISE_FNS[f] for f in unit.post_fns)
        foldable = algorithm in FOLDABLE_SCAN_ALGORITHMS
        folded = post if foldable else ()
        trailing = () if foldable else post

        ctx = self.ctx
        device = self.device
        dt = as_dtype(dtype)
        out_dt = cube_accum_dtype(dt)
        consts = ctx.constants(s, dt)
        ell = s * s
        # exactness-conditioned build input (the ScanOp family): small
        # integers keep every map stage and the accumulator cumsum exact,
        # so the differential check below can demand bit equality
        rng = np.random.default_rng((0xC0FFEE, 11, n))
        if dtype == "fp16":
            x = rng.integers(-2, 3, n).astype(np.float16)
        else:
            x = rng.integers(-20, 21, n).astype(np.int8)

        mark = device.memory.mark()
        try:
            with device.capture_launches() as captured:
                x_gm, padded = ctx._upload_padded("fused_x", x, ell, dt)
                scan_in = x_gm
                if pre:
                    t_gm = device.alloc("fused_t", (padded,), dt)
                    if ctx.warm_inputs:
                        device.warm_l2(x_gm)
                    vbd = self.ops._vec_block_dim(padded)
                    device.launch(
                        ElementwiseMapKernel(
                            x_gm, t_gm, pre, vbd, label="fused pre"
                        ),
                        label="fused pre",
                    )
                    scan_in = t_gm
                y_gm = device.alloc("fused_y", (padded,), out_dt)
                if ctx.warm_inputs:
                    device.warm_l2(scan_in, y_gm)
                kernel = ctx._cube_1d_kernel(
                    algorithm,
                    scan_in,
                    y_gm,
                    consts,
                    s,
                    block_dim,
                    exclusive,
                    post_fns=folded,
                )
                device.launch(
                    kernel, label=f"fused {algorithm}(s={s})"
                )
                if trailing:
                    vbd = self.ops._vec_block_dim(padded)
                    device.launch(
                        ElementwiseMapKernel(
                            y_gm, y_gm, trailing, vbd, label="fused post"
                        ),
                        label="fused post",
                    )
                got = y_gm.to_numpy()[:n]
        finally:
            device.memory.release(mark)
        if not captured:
            raise KernelError(
                "lowering fused_scan captured no device launches"
            )

        validated = None
        if self.validate:
            expected = x
            for m in unit.members:
                expected = get_op(m.kind).oracle([expected], m.params)[0]
            if got.dtype != expected.dtype or not np.array_equal(
                got, expected
            ):
                raise KernelError(
                    f"graph lowering validation failed for fused_scan "
                    f"{unit.name!r}: the captured program and the "
                    f"composition of its member oracles diverge on the "
                    f"exactness-conditioned build input"
                )
            validated = True
        return LoweredNode(
            kind="fused_scan",
            shape_class=key[1],
            traced=list(captured),
            build_host_s=time.perf_counter() - t0,
            validated=validated,
            tuned=tuned,
            plan=plan,
        )

    def _build(
        self,
        op: "type[OpNode]",
        key: tuple,
        node: Node,
        in_specs: "list[TensorSpec]",
    ) -> LoweredNode:
        if any(s.n is None for s in in_specs):
            raise ConfigError(
                f"node {node.name!r} ({node.kind}) consumes a data-dependent"
                f"-length edge; such edges can only be graph outputs"
            )
        if node.kind == "scan":
            return self._build_scan(key, node, in_specs)
        t0 = time.perf_counter()
        inputs = op.validation_inputs(in_specs, node.params)
        with self.device.capture_launches() as captured:
            got = op.device_run(self.ops, inputs, node.params)
        if not captured:
            raise KernelError(
                f"lowering {node.kind} captured no device launches"
            )
        validated = None
        if self.validate:
            expected = op.oracle(inputs, node.params)
            for i, (g, e) in enumerate(zip(got, expected)):
                if g.dtype != e.dtype or not np.array_equal(g, e):
                    raise KernelError(
                        f"graph lowering validation failed for {node.kind} "
                        f"output {op.output_names[i]!r}: device and oracle "
                        f"diverge on the exactness-conditioned build input"
                    )
            validated = True
        return LoweredNode(
            kind=node.kind,
            shape_class=key[1],
            traced=list(captured),
            build_host_s=time.perf_counter() - t0,
            validated=validated,
            data_dependent=op.data_dependent_trace,
        )

    def _build_scan(
        self, key: tuple, node: Node, in_specs: "list[TensorSpec]"
    ) -> LoweredNode:
        """Scan nodes lower through the plan cache (TuneStore-aware,
        plan-level exact validation), keeping the plan alive so its traced
        program stays replayable."""
        t0 = time.perf_counter()
        n = in_specs[0].n
        dtype = in_specs[0].dtype
        exclusive = bool(node.params["exclusive"])
        algorithm, s, block_dim, tuned = self._resolve_scan(
            n, dtype, exclusive, node.params
        )
        plan = self.plans.get_1d(
            algorithm,
            n,
            dtype,
            s=s,
            exclusive=exclusive,
            block_dim=block_dim,
            tuned=tuned,
        )
        return LoweredNode(
            kind=node.kind,
            shape_class=key[1],
            traced=[plan.traced],
            build_host_s=time.perf_counter() - t0,
            validated=plan.validated,
            tuned=tuned,
            plan=plan,
        )

    def _resolve_scan(
        self, n: int, dtype: str, exclusive: bool, params: dict
    ) -> "tuple[str, int, int | None, bool]":
        """(algorithm, s, block_dim, tuned) for a scan node — explicit
        parameters win; otherwise the TuneStore, then the serve default.
        Tuned ``vector`` entries are skipped: the graph scan contract is
        accumulator-dtype output (see :class:`~repro.graph.op.ScanOp`)."""
        algorithm = params["algorithm"]
        s = params["s"]
        if algorithm is not None:
            return algorithm, s or 128, None, False
        if self.tune_store is not None:
            entry = self.tune_store.lookup_1d(
                n=n, dtype=dtype, exclusive=exclusive
            )
            if entry is not None and entry.algorithm != "vector":
                return entry.algorithm, entry.s, entry.block_dim, True
        default = "mcscan" if exclusive else DEFAULT_SCAN_ALGORITHM
        return default, s or 128, None, False

    # -- interpretation -----------------------------------------------------

    def replay(self, entries, device=None) -> "list":
        """Replay every node's captured programs on ``device`` (default:
        the build device); returns the traces in launch order.  Numerics
        are the caller's oracle — this is pure device-time accounting."""
        device = device if device is not None else self.device
        traces = []
        for node, low in entries:
            low.replays += 1
            for tk in low.traced:
                traces.append(device.replay(tk, label=f"graph {node.name}"))
        return traces

    def execute(
        self, graph: Graph, inputs, *, params_override=None, device=None
    ) -> "GraphRunResult":
        """Lower (or hit the cache), replay, and evaluate the oracle —
        the one-call interpreter used by the example, the CLI demo and the
        differential tests.  Serving (`ScanService._serve_graph`) does the
        same steps with batching/retry/stats around them."""
        entries, _ = self.lower(graph)
        traces = self.replay(entries, device=device)
        outputs = graph.run_oracle(inputs, params_override)
        per_node = {}
        i = 0
        for unit, low in entries:
            span = traces[i : i + low.launches]
            i += low.launches
            ns = sum(t.total_ns for t in span)
            if isinstance(unit, FusedNode) and low.members:
                # attribute the fused span back to the original nodes
                for m, (_, w) in zip(unit.members, low.members):
                    per_node[m.name] = per_node.get(m.name, 0.0) + ns * w
            else:
                per_node[unit.name] = ns
        return GraphRunResult(
            outputs=outputs,
            traces=traces,
            node_ns=per_node,
        )


@dataclass
class GraphRunResult:
    """Oracle outputs + replayed device accounting of one graph run."""

    outputs: "tuple[np.ndarray, ...]"
    traces: "list"
    #: node name -> summed simulated ns of its launches
    node_ns: "dict[str, float]"

    @property
    def time_ns(self) -> float:
        return sum(t.total_ns for t in self.traces)

    @property
    def launches(self) -> int:
        return len(self.traces)
