"""Operator-graph front end: serve the whole op zoo through one runtime.

Build a :class:`~repro.graph.ir.Graph` out of registered operators
(:mod:`repro.graph.op`), fuse adjacent elementwise/scan regions into
single captured programs (:mod:`repro.graph.fuse`), lower once per shape
class to captured device programs (:mod:`repro.graph.interp`), and serve
it through the existing batching/pool/failover stack via
``ScanService.submit_graph`` / ``PoolScanService.submit_graph``
(:mod:`repro.graph.service`).
"""

from .fuse import FUSION_MODES, FusedNode, fuse_graph
from .interp import GraphPlanCache, GraphRunner, LoweredNode
from .ir import Graph, Node
from .op import (
    ELEMENTWISE_FNS,
    OP_REGISTRY,
    OpNode,
    TensorSpec,
    get_op,
    register_op,
)
from .service import (
    GraphKey,
    GraphRequest,
    GraphTicket,
    graph_oracle_job,
    llm_sample,
    oracle_outputs,
    scan_graph,
    scan_pipeline,
    sort_graph,
)

__all__ = [
    "Graph",
    "Node",
    "OpNode",
    "TensorSpec",
    "OP_REGISTRY",
    "ELEMENTWISE_FNS",
    "register_op",
    "get_op",
    "FUSION_MODES",
    "FusedNode",
    "fuse_graph",
    "GraphRunner",
    "GraphPlanCache",
    "LoweredNode",
    "GraphKey",
    "GraphRequest",
    "GraphTicket",
    "llm_sample",
    "sort_graph",
    "scan_graph",
    "scan_pipeline",
    "oracle_outputs",
    "graph_oracle_job",
]
