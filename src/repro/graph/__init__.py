"""Operator-graph front end: serve the whole op zoo through one runtime.

Build a :class:`~repro.graph.ir.Graph` out of registered operators
(:mod:`repro.graph.op`), lower it once per shape class to captured
device programs (:mod:`repro.graph.interp`), and serve it through the
existing batching/pool/failover stack via ``ScanService.submit_graph`` /
``PoolScanService.submit_graph`` (:mod:`repro.graph.service`).
"""

from .interp import GraphPlanCache, GraphRunner, LoweredNode
from .ir import Graph, Node
from .op import (
    ELEMENTWISE_FNS,
    OP_REGISTRY,
    OpNode,
    TensorSpec,
    get_op,
    register_op,
)
from .service import (
    GraphKey,
    GraphRequest,
    GraphTicket,
    graph_oracle_job,
    llm_sample,
    oracle_outputs,
    scan_graph,
    sort_graph,
)

__all__ = [
    "Graph",
    "Node",
    "OpNode",
    "TensorSpec",
    "OP_REGISTRY",
    "ELEMENTWISE_FNS",
    "register_op",
    "get_op",
    "GraphRunner",
    "GraphPlanCache",
    "LoweredNode",
    "GraphKey",
    "GraphRequest",
    "GraphTicket",
    "llm_sample",
    "sort_graph",
    "scan_graph",
    "oracle_outputs",
    "graph_oracle_job",
]
