"""Graph serving types + canned graphs.

:class:`GraphRequest` duck-types :class:`~repro.serve.batcher.ScanRequest`
just enough for the shared :class:`~repro.serve.batcher.RequestBatcher`
queue (``req_id``/``t_submit`` plus the ``graph_key`` marker the drain
branches on); :class:`GraphKey` is the coalescing key — the graph's
lowered-program signature — shaped like a
:class:`~repro.serve.plan.PlanKey` with ``batch=None`` so graph groups
pass through the batcher whole.  :class:`GraphTicket` extends
:class:`~repro.serve.service.ScanTicket`: ``values`` holds the tuple of
output arrays in ``graph.outputs`` order (oracle numerics, resolved by
the same deferred-executor machinery as scan numerics).

The canned graphs are the repo's two first-class graph workloads:
:func:`llm_sample` (top-k → top-p nucleus sampling, the
``examples/llm_sampling.py`` pipeline as a served graph) and
:func:`sort_graph` (full radix sort, the ``torch.sort`` contract).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..serve.service import ScanTicket
from .ir import Graph

__all__ = [
    "GraphKey",
    "GraphRequest",
    "GraphTicket",
    "llm_sample",
    "sort_graph",
    "scan_graph",
    "scan_pipeline",
    "oracle_outputs",
    "graph_oracle_job",
]


@dataclass(frozen=True)
class GraphKey:
    """Batcher coalescing key for graph requests (hashable; equal keys =
    same lowered programs).  Field layout mirrors ``PlanKey`` where the
    shared serving code peeks (``batch``/``padded``/``s``)."""

    graph: str
    #: Graph.signature() — per-node (kind, shape-class) + output wiring
    signature: tuple
    #: total input elements, the router/LPT cost proxy (per request)
    padded: int
    #: None keeps graph groups on the batcher's pass-through-whole path
    batch: "None" = None
    s: int = 0
    exclusive: bool = False
    algorithm: str = "graph"
    dtype: str = ""


@dataclass
class GraphRequest:
    """One queued graph request (internal to the service)."""

    req_id: int
    graph: Graph
    #: input edge name -> bound array (validated by Graph.bind)
    inputs: "dict[str, np.ndarray]"
    #: node name -> runtime parameter overrides (e.g. sampling theta)
    params: "dict | None"
    graph_key: GraphKey
    #: host clock (perf_counter) at submit, for per-request latency
    t_submit: float = field(default_factory=time.perf_counter)

    @property
    def n(self) -> int:
        return sum(v.size for v in self.inputs.values())


@dataclass
class GraphTicket(ScanTicket):
    """Handle for one submitted graph request; ``values`` is the tuple of
    output arrays in ``graph.outputs`` order."""

    #: graph name (the ScanTicket ``algorithm`` field reads "graph")
    graph: str = ""
    #: device launches replayed to serve the request
    launches: int = 0
    #: operator nodes in the served graph
    nodes: int = 0

    def result(self) -> "tuple[np.ndarray, ...]":
        if not self.done:
            raise RuntimeError(
                f"graph request {self.req_id} is still queued; call "
                f"flush() first"
            )
        return self.values


# -- canned graphs -----------------------------------------------------------


def llm_sample(
    vocab: int,
    *,
    k: int = 32,
    p: float = 0.9,
    theta: float = 0.5,
    method: str = "baseline",
    s: int = 128,
    prep: "tuple[str, ...]" = (),
) -> Graph:
    """Top-k → top-p nucleus sampling over a ``vocab``-sized fp16
    probability row: ``topk`` narrows to the k largest, ``top_p_sample``
    sorts/cumsums the survivors and samples at ``theta`` — the
    ``examples/llm_sampling.py`` pipeline as one served graph.  Outputs:
    the sampled token id (int64), plus the top-k values/ids.

    ``prep`` prepends a chain of named elementwise maps to the
    probability row (e.g. ``("abs", "double")`` — a stand-in for logit
    post-processing); single-consumer and spec-preserving, the chain is
    exactly what the fusion pass collapses into one program."""
    if k > vocab:
        raise ConfigError(f"llm_sample k={k} exceeds vocab {vocab}")
    g = Graph(name="llm_sample")
    probs = g.add_input("probs", "fp16", (vocab,))
    for i, fn in enumerate(prep):
        (probs,) = g.add_node(f"prep{i}", "elementwise", [probs], {"fn": fn})
    tk_v, tk_i = g.add_node(
        "topk", "topk", [probs], {"k": k, "method": method, "s": s}
    )
    (token,) = g.add_node(
        "sample",
        "top_p_sample",
        [tk_v, tk_i],
        {"p": p, "theta": theta, "s": s},
    )
    g.set_outputs([token, tk_v, tk_i])
    g.validate()
    return g


def sort_graph(
    n: int, *, dtype: str = "fp16", descending: bool = False, s: int = 128
) -> Graph:
    """Full stable sort of one column — the ``torch.sort`` contract
    (values + original indices) as a one-node graph."""
    g = Graph(name="sort")
    x = g.add_input("x", dtype, (n,))
    vals, idx = g.add_node(
        "rsort", "radix_sort", [x], {"descending": descending, "s": s}
    )
    g.set_outputs([vals, idx])
    g.validate()
    return g


def scan_graph(
    n: int,
    *,
    dtype: str = "fp16",
    exclusive: bool = False,
    algorithm: "str | None" = None,
    s: "int | None" = None,
) -> Graph:
    """A raw prefix sum as a one-node graph (TuneStore-resolved when
    ``algorithm`` is None) — lets graph and scan traffic mix in one
    service queue."""
    g = Graph(name="scan")
    x = g.add_input("x", dtype, (n,))
    (y,) = g.add_node(
        "scan",
        "scan",
        [x],
        {"exclusive": exclusive, "algorithm": algorithm, "s": s},
    )
    g.set_outputs([y])
    g.validate()
    return g


def scan_pipeline(
    n: int,
    *,
    dtype: str = "fp16",
    pre: "tuple[str, ...]" = ("abs",),
    post: "tuple[str, ...]" = ("double",),
    exclusive: bool = False,
    algorithm: "str | None" = None,
    s: "int | None" = None,
) -> Graph:
    """Elementwise pre-maps → prefix sum → elementwise post-maps, the
    canonical fusible region: under ``fusion=aggressive`` the whole
    pipeline lowers to one captured program (pre chain in one UB pass, the
    post chain folded into the scan kernel's vector stage)."""
    g = Graph(name="scan_pipeline")
    edge = g.add_input("x", dtype, (n,))
    for i, fn in enumerate(pre):
        (edge,) = g.add_node(f"pre{i}", "elementwise", [edge], {"fn": fn})
    (edge,) = g.add_node(
        "scan",
        "scan",
        [edge],
        {"exclusive": exclusive, "algorithm": algorithm, "s": s},
    )
    for i, fn in enumerate(post):
        (edge,) = g.add_node(f"post{i}", "elementwise", [edge], {"fn": fn})
    g.set_outputs([edge])
    g.validate()
    return g


# -- numerics ----------------------------------------------------------------


def oracle_outputs(
    graph: Graph, inputs, params: "dict | None" = None
) -> "tuple[np.ndarray, ...]":
    """The NumPy oracle a served graph request must be bit-identical to."""
    return graph.run_oracle(inputs, params)


def graph_oracle_job(
    graph: Graph, inputs: "dict[str, np.ndarray]", params: "dict | None"
) -> "tuple[list, float]":
    """Deferred-executor job shape for graph numerics: returns
    ``([outputs], seconds)`` so ``ScanService.resolve_deferred`` can
    treat a graph request as a one-row numerics chunk."""
    t0 = time.perf_counter()
    outputs = graph.run_oracle(inputs, params)
    return [outputs], time.perf_counter() - t0
