"""Operator registry for the graph runtime (one class per operator).

Adapted from the AscendGraph idiom (a per-op ``Operator`` class registry
consumed by an FX-graph interpreter): each operator the serve layer can
host is a subclass of :class:`OpNode` registered under its ``kind`` via
:func:`register_op`.  An op class declares

* **arity and typing** — :meth:`~OpNode.infer` validates input
  :class:`TensorSpec` dtypes/shapes and produces the output specs (raising
  :class:`~repro.errors.ConfigError` with a diagnostic on mismatch);
* **a shape-class signature** — :meth:`~OpNode.shape_class` is the
  memoization key of the graph plan cache: two nodes with equal shape
  classes replay the same captured device program;
* **a NumPy oracle** — :meth:`~OpNode.oracle` defines the op's served
  numerics (the graph layer serves oracle bits, exactly as the scan serve
  layer's ``plan_compute`` numerics *are* the checker oracle);
* **a device lowering** — :meth:`~OpNode.device_run` executes the op once
  through :class:`~repro.ops.driver.AscendOps` on the build device; the
  interpreter runs it under :meth:`AscendDevice.capture_launches
  <repro.hw.device.AscendDevice.capture_launches>` to harvest the traced
  kernels, and differentially compares the device outputs against the
  oracle on **exactness-conditioned** validation data
  (:meth:`~OpNode.validation_inputs`) before admitting the lowering.

Tie/rounding conventions: sorting ops (radix_sort, topk, top_p_sample)
define ties as *stable on the original index* — the device radix sort is
a stable LSB sort on order-preserving key encodings, which matches the
oracle's ``np.argsort(kind="stable")`` exactly.  Signed zeros and NaN are
outside the contract (the fp16 key encoding orders ``-0.0 < +0.0`` where
NumPy sorts them equal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reference import (
    accum_np_dtype,
    compress as compress_oracle,
    exclusive_scan,
    inclusive_scan,
    stable_split,
)
from ..errors import ConfigError
from ..ops.elementwise import ElementwiseMapKernel

__all__ = [
    "TensorSpec",
    "OpNode",
    "OP_REGISTRY",
    "register_op",
    "get_op",
    "ELEMENTWISE_FNS",
]

#: named elementwise functions — the kernel and the oracle share the same
#: callable, so the device map (``fn(src).astype(out_dt)`` per tile) and
#: the oracle are identical by construction
ELEMENTWISE_FNS = {
    "negate": lambda v: -v,
    "double": lambda v: v + v,
    "abs": lambda v: np.abs(v),
    "relu": lambda v: np.maximum(v, 0),
}

_DTYPE_NAMES = {
    np.dtype(np.float16): "fp16",
    np.dtype(np.float32): "fp32",
    np.dtype(np.int8): "int8",
    np.dtype(np.uint8): "uint8",
    np.dtype(np.int16): "int16",
    np.dtype(np.uint16): "uint16",
    np.dtype(np.int32): "int32",
    np.dtype(np.int64): "int64",
}
_NP_DTYPES = {name: dt for dt, name in _DTYPE_NAMES.items()}


def dtype_name(np_dtype) -> str:
    dt = np.dtype(np_dtype)
    if dt not in _DTYPE_NAMES:
        raise ConfigError(f"graph tensors do not support dtype {dt}")
    return _DTYPE_NAMES[dt]


def np_dtype_of(name: str) -> np.dtype:
    if name not in _NP_DTYPES:
        raise ConfigError(f"unknown graph dtype {name!r}")
    return _NP_DTYPES[name]


@dataclass(frozen=True)
class TensorSpec:
    """Dtype + shape of one graph edge.  ``shape`` of None marks a
    data-dependent length (e.g. compress output) that only the oracle can
    determine."""

    dtype: str
    shape: "tuple[int, ...] | None" = None

    @property
    def n(self) -> "int | None":
        return None if self.shape is None else int(np.prod(self.shape))


#: kind -> OpNode subclass
OP_REGISTRY: "dict[str, type[OpNode]]" = {}


def register_op(cls: "type[OpNode]") -> "type[OpNode]":
    """Class decorator: register an :class:`OpNode` under ``cls.kind``."""
    if not cls.kind:
        raise ConfigError(f"{cls.__name__} must set a non-empty kind")
    if cls.kind in OP_REGISTRY:
        raise ConfigError(f"operator kind {cls.kind!r} registered twice")
    OP_REGISTRY[cls.kind] = cls
    return cls


def get_op(kind: str) -> "type[OpNode]":
    op = OP_REGISTRY.get(kind)
    if op is None:
        raise ConfigError(
            f"unknown operator kind {kind!r}; registered: "
            f"{sorted(OP_REGISTRY)}"
        )
    return op


class OpNode:
    """Base class for registered operators (all hooks are classmethods —
    node instances live in the IR as (kind, params) records, see
    :mod:`repro.graph.ir`)."""

    kind: str = ""
    #: number of input edges
    num_inputs: int = 1
    #: output edge name suffixes (node ``a`` with outputs ``("values",)``
    #: produces edge ``a.values``)
    output_names: "tuple[str, ...]" = ("values",)
    #: parameter defaults; a default of ``Ellipsis`` marks a required
    #: parameter the node must supply at construction
    param_defaults: "dict[str, object]" = {}
    #: True when the captured trace's timing is a steady-state
    #: approximation (data-dependent control flow, e.g. quickselect)
    data_dependent_trace: bool = False
    #: True for single-input ops that are pure per-element maps preserving
    #: dtype and shape — the fusion pass may chain them (see
    #: :mod:`repro.graph.fuse`); such ops must implement :meth:`map_fns`
    fusable_map: bool = False

    @classmethod
    def map_fns(cls, params: dict) -> "tuple[str, ...]":
        """Named :data:`ELEMENTWISE_FNS` entries this map applies, in
        order.  Only meaningful when :attr:`fusable_map` is True."""
        raise NotImplementedError

    # -- parameters ---------------------------------------------------------

    @classmethod
    def resolve_params(cls, params: "dict | None") -> dict:
        """Merge ``params`` over the declared defaults; unknown keys and
        missing required parameters raise :class:`ConfigError`."""
        params = dict(params or {})
        unknown = set(params) - set(cls.param_defaults)
        if unknown:
            raise ConfigError(
                f"op {cls.kind!r} got unknown parameter(s) "
                f"{sorted(unknown)}; accepts {sorted(cls.param_defaults)}"
            )
        out = dict(cls.param_defaults)
        out.update(params)
        missing = [k for k, v in out.items() if v is Ellipsis]
        if missing:
            raise ConfigError(
                f"op {cls.kind!r} requires parameter(s) {sorted(missing)}"
            )
        return out

    # -- typing -------------------------------------------------------------

    @classmethod
    def infer(
        cls, specs: "list[TensorSpec]", params: dict
    ) -> "tuple[TensorSpec, ...]":
        """Validate input specs and produce output specs."""
        raise NotImplementedError

    @classmethod
    def check_arity(cls, specs: "list[TensorSpec]") -> None:
        if len(specs) != cls.num_inputs:
            raise ConfigError(
                f"op {cls.kind!r} takes {cls.num_inputs} input(s), "
                f"got {len(specs)}"
            )

    @classmethod
    def shape_class(cls, specs: "list[TensorSpec]", params: dict) -> tuple:
        """Hashable plan-cache key component.  The default covers every op
        whose trace depends only on input shapes/dtypes plus the structural
        parameters listed in :attr:`trace_params`."""
        return (
            tuple((s.dtype, s.shape) for s in specs),
            tuple(sorted((k, params[k]) for k in cls.trace_params())),
        )

    @classmethod
    def trace_params(cls) -> "tuple[str, ...]":
        """Parameters that change the emitted device program (runtime-only
        scalars like ``theta`` are excluded: the trace structure — and so
        the cached timing — does not depend on them)."""
        return tuple(sorted(cls.param_defaults))

    # -- numerics ------------------------------------------------------------

    @classmethod
    def oracle(
        cls, inputs: "list[np.ndarray]", params: dict
    ) -> "tuple[np.ndarray, ...]":
        raise NotImplementedError

    @classmethod
    def validation_inputs(
        cls, specs: "list[TensorSpec]", params: dict
    ) -> "list[np.ndarray]":
        """Deterministic, exactness-conditioned inputs for the build-time
        differential check (device vs oracle must be bit-exact on them)."""
        raise NotImplementedError

    @classmethod
    def device_run(
        cls, ops, inputs: "list[np.ndarray]", params: dict
    ) -> "tuple[np.ndarray, ...]":
        """Execute once on the (build) device via ``ops`` (AscendOps)."""
        raise NotImplementedError


def _rng(specs: "list[TensorSpec]", salt: int) -> np.random.Generator:
    total = sum(s.n or 0 for s in specs)
    return np.random.default_rng((0xC0FFEE, salt, total))


def _distinct_fp16(n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` distinct positive fp16 values (deterministic permutation).

    Up to 2048 they are exact small integers; beyond that, positive fp16
    bit patterns in ascending order (order-preserving, exact under the
    fp32 cast the oracles compare through)."""
    if n <= 2048:
        return (rng.permutation(n) + 1).astype(np.float16)
    if n > 30000:
        raise ConfigError(
            f"validation needs distinct positive fp16 values; n={n} exceeds "
            f"the representable supply"
        )
    return (rng.permutation(n).astype(np.uint16) + 1).view(np.float16)


def _stable_order(x: np.ndarray, *, descending: bool) -> np.ndarray:
    """The device sort's order: stable on the original index.  Keys are
    widened exactly (fp16->fp32, ints->int64) so negation never rounds."""
    keys = (
        x.astype(np.float32)
        if x.dtype == np.float16
        else x.astype(np.int64)
    )
    if descending:
        keys = -keys
    return np.argsort(keys, kind="stable")


_SCAN_DTYPES = ("fp16", "int8")
_SORT_DTYPES = ("fp16", "uint8", "int16", "uint16")


@register_op
class ScanOp(OpNode):
    """1-D prefix sum through the serve layer's tuned plan machinery.

    ``algorithm``/``s`` of None defer to the runner's TuneStore (exactly
    like :meth:`ScanService.submit`); the output is always the accumulator
    dtype (fp32 for fp16, int32 for int8) — tuned entries that resolve to
    the in-dtype ``vector`` baseline fall back to the default plan rather
    than change the node's declared output type."""

    kind = "scan"
    num_inputs = 1
    output_names = ("values",)
    param_defaults = {"algorithm": None, "s": None, "exclusive": False}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        (x,) = specs
        if x.dtype not in _SCAN_DTYPES:
            raise ConfigError(
                f"scan takes {_SCAN_DTYPES} input, got {x.dtype!r}"
            )
        out = dtype_name(accum_np_dtype(np_dtype_of(x.dtype)))
        return (TensorSpec(out, x.shape),)

    @classmethod
    def oracle(cls, inputs, params):
        fn = exclusive_scan if params["exclusive"] else inclusive_scan
        return (fn(inputs[0]),)

    @classmethod
    def validation_inputs(cls, specs, params):
        # PlanCache validates scan plans itself on exact data; this input
        # only feeds the (unused) generic path
        rng = _rng(specs, 1)
        n = specs[0].n
        if specs[0].dtype == "fp16":
            return [rng.integers(-2, 3, n).astype(np.float16)]
        return [rng.integers(-20, 21, n).astype(np.int8)]

    @classmethod
    def device_run(cls, ops, inputs, params):
        algorithm = params["algorithm"] or "scanu"
        s = params["s"] or 128
        plan = ops.sc.build_plan(
            algorithm=algorithm,
            n=inputs[0].size,
            dtype=inputs[0].dtype,
            s=s,
            exclusive=params["exclusive"],
        )
        try:
            result = plan.execute(inputs[0])
        finally:
            plan.release()
        return (result.values,)


@register_op
class ElementwiseOp(OpNode):
    """Tiled elementwise map ``y = fn(x)`` (fn named in
    :data:`ELEMENTWISE_FNS`; kernel and oracle share the callable)."""

    kind = "elementwise"
    num_inputs = 1
    output_names = ("values",)
    param_defaults = {"fn": Ellipsis}
    fusable_map = True

    @classmethod
    def map_fns(cls, params):
        return (params["fn"],)

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        if params["fn"] not in ELEMENTWISE_FNS:
            raise ConfigError(
                f"unknown elementwise fn {params['fn']!r}; "
                f"known: {sorted(ELEMENTWISE_FNS)}"
            )
        (x,) = specs
        if x.dtype not in ("fp16", "int8", "int16", "fp32", "int32"):
            raise ConfigError(
                f"elementwise does not support dtype {x.dtype!r}"
            )
        return (TensorSpec(x.dtype, x.shape),)

    @classmethod
    def oracle(cls, inputs, params):
        fn = ELEMENTWISE_FNS[params["fn"]]
        x = inputs[0]
        return (np.asarray(fn(x)).astype(x.dtype),)

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 2)
        n = specs[0].n
        dt = np_dtype_of(specs[0].dtype)
        return [rng.integers(-3, 4, n).astype(dt)]

    @classmethod
    def device_run(cls, ops, inputs, params):
        x = inputs[0]
        fn = ELEMENTWISE_FNS[params["fn"]]
        from ..hw.datatypes import as_dtype

        dt = as_dtype(dtype_name(x.dtype))
        mark = ops.device.memory.mark()
        try:
            x_gm = ops._alloc_padded("ew_x", x, 1, dt)
            y_gm = ops.device.alloc("ew_y", (x.size,), dt)
            if ops.sc.warm_inputs:
                ops.device.warm_l2(x_gm)
            vbd = ops._vec_block_dim(x.size)
            label = f"elementwise {params['fn']}"
            ops.device.launch(
                ElementwiseMapKernel(x_gm, y_gm, fn, vbd, label=label),
                label=label,
            )
            values = y_gm.to_numpy()
        finally:
            ops.device.memory.release(mark)
        return (values,)


@register_op
class FusedElementwiseOp(OpNode):
    """A chain of elementwise maps executed in one UB pass (graph-level
    fusion).  ``fns`` is the ordered tuple of :data:`ELEMENTWISE_FNS`
    names; the oracle composes the member oracles stage by stage (with the
    dtype re-applied after every stage), so it is bit-identical to running
    the chain as separate :class:`ElementwiseOp` nodes — which makes the
    generic build-time differential check *the* fused-vs-composed
    validation required by the fusion pass."""

    kind = "fused_elementwise"
    num_inputs = 1
    output_names = ("values",)
    param_defaults = {"fns": Ellipsis}
    fusable_map = True

    @classmethod
    def map_fns(cls, params):
        return tuple(params["fns"])

    @classmethod
    def resolve_params(cls, params):
        out = super().resolve_params(params)
        fns = out["fns"]
        if isinstance(fns, str) or not isinstance(fns, (tuple, list)):
            raise ConfigError(
                f"fused_elementwise fns must be a sequence of fn names, "
                f"got {fns!r}"
            )
        out["fns"] = tuple(fns)
        return out

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        fns = tuple(params["fns"])
        if not fns:
            raise ConfigError("fused_elementwise needs at least one fn")
        unknown = [f for f in fns if f not in ELEMENTWISE_FNS]
        if unknown:
            raise ConfigError(
                f"unknown elementwise fn(s) {unknown}; "
                f"known: {sorted(ELEMENTWISE_FNS)}"
            )
        (x,) = specs
        if x.dtype not in ("fp16", "int8", "int16", "fp32", "int32"):
            raise ConfigError(
                f"fused_elementwise does not support dtype {x.dtype!r}"
            )
        return (TensorSpec(x.dtype, x.shape),)

    @classmethod
    def oracle(cls, inputs, params):
        x = inputs[0]
        dt = x.dtype
        for name in params["fns"]:
            x = np.asarray(ELEMENTWISE_FNS[name](x)).astype(dt)
        return (x,)

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 2)
        n = specs[0].n
        dt = np_dtype_of(specs[0].dtype)
        return [rng.integers(-3, 4, n).astype(dt)]

    @classmethod
    def device_run(cls, ops, inputs, params):
        x = inputs[0]
        fns = tuple(ELEMENTWISE_FNS[name] for name in params["fns"])
        from ..hw.datatypes import as_dtype

        dt = as_dtype(dtype_name(x.dtype))
        mark = ops.device.memory.mark()
        try:
            x_gm = ops._alloc_padded("few_x", x, 1, dt)
            y_gm = ops.device.alloc("few_y", (x.size,), dt)
            if ops.sc.warm_inputs:
                ops.device.warm_l2(x_gm)
            vbd = ops._vec_block_dim(x.size)
            label = f"fused elementwise x{len(fns)}"
            ops.device.launch(
                ElementwiseMapKernel(x_gm, y_gm, fns, vbd, label=label),
                label=label,
            )
            values = y_gm.to_numpy()
        finally:
            ops.device.memory.release(mark)
        return (values,)


@register_op
class SplitOp(OpNode):
    """Stable split (SplitInd): true-flagged values first, then false,
    both in submission order, plus the original indices."""

    kind = "split"
    num_inputs = 2
    output_names = ("values", "indices")
    param_defaults = {"s": 128}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        x, flags = specs
        if x.dtype not in _SORT_DTYPES:
            raise ConfigError(
                f"split takes {_SORT_DTYPES} values, got {x.dtype!r}"
            )
        if flags.dtype != "int8":
            raise ConfigError(
                f"split flags must be int8, got {flags.dtype!r}"
            )
        if (
            x.shape is not None
            and flags.shape is not None
            and x.shape != flags.shape
        ):
            raise ConfigError(
                f"split values/flags shapes differ: {x.shape} vs "
                f"{flags.shape}"
            )
        return (TensorSpec(x.dtype, x.shape), TensorSpec("int32", x.shape))

    @classmethod
    def oracle(cls, inputs, params):
        values, order = stable_split(inputs[0], inputs[1])
        return (values, order.astype(np.int32))

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 3)
        n = specs[0].n
        dt = np_dtype_of(specs[0].dtype)
        lo, hi = (-3, 4) if dt != np.dtype(np.uint8) else (0, 7)
        x = rng.integers(lo, hi, n).astype(dt)
        flags = (rng.random(n) < 0.5).astype(np.int8)
        return [x, flags]

    @classmethod
    def device_run(cls, ops, inputs, params):
        res = ops.split(inputs[0], inputs[1], s=params["s"])
        return (res.values, res.indices)


@register_op
class CompressOp(OpNode):
    """Masked select: masked values in original order (output length is
    data-dependent — its spec carries no shape)."""

    kind = "compress"
    num_inputs = 2
    output_names = ("values",)
    param_defaults = {"s": 128}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        x, mask = specs
        if x.dtype not in _SORT_DTYPES:
            raise ConfigError(
                f"compress takes {_SORT_DTYPES} values, got {x.dtype!r}"
            )
        if mask.dtype != "int8":
            raise ConfigError(
                f"compress mask must be int8, got {mask.dtype!r}"
            )
        if (
            x.shape is not None
            and mask.shape is not None
            and x.shape != mask.shape
        ):
            raise ConfigError(
                f"compress values/mask shapes differ: {x.shape} vs "
                f"{mask.shape}"
            )
        return (TensorSpec(x.dtype, None),)

    @classmethod
    def oracle(cls, inputs, params):
        return (compress_oracle(inputs[0], inputs[1]),)

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 4)
        n = specs[0].n
        dt = np_dtype_of(specs[0].dtype)
        lo, hi = (-3, 4) if dt != np.dtype(np.uint8) else (0, 7)
        x = rng.integers(lo, hi, n).astype(dt)
        mask = (rng.random(n) < 0.5).astype(np.int8)
        return [x, mask]

    @classmethod
    def device_run(cls, ops, inputs, params):
        res = ops.compress(inputs[0], inputs[1], s=params["s"])
        return (res.values,)


@register_op
class RadixSortOp(OpNode):
    """Stable LSB radix sort returning (values, indices), the
    ``torch.sort`` contract.  Ties keep original order (both the device's
    stable splits and the oracle's stable argsort guarantee it)."""

    kind = "radix_sort"
    num_inputs = 1
    output_names = ("values", "indices")
    param_defaults = {"s": 128, "descending": False}

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        (x,) = specs
        if x.dtype not in _SORT_DTYPES:
            raise ConfigError(
                f"radix_sort takes {_SORT_DTYPES} keys, got {x.dtype!r}"
            )
        return (TensorSpec(x.dtype, x.shape), TensorSpec("int32", x.shape))

    @classmethod
    def oracle(cls, inputs, params):
        x = inputs[0]
        order = _stable_order(x, descending=params["descending"])
        return (x[order], order.astype(np.int32))

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 5)
        n = specs[0].n
        dt = np_dtype_of(specs[0].dtype)
        if dt == np.dtype(np.float16):
            # strictly positive integers: exact, no signed-zero hazard;
            # duplicates exercise the stable-tie contract
            return [(1 + rng.integers(0, 97, n)).astype(np.float16)]
        lo, hi = (0, 97) if dt.kind == "u" else (-48, 49)
        return [rng.integers(lo, hi, n).astype(dt)]

    @classmethod
    def device_run(cls, ops, inputs, params):
        res = ops.radix_sort(
            inputs[0], s=params["s"], descending=params["descending"]
        )
        return (res.values, res.indices)


_TOPK_METHODS = ("baseline", "quickselect", "radix")


@register_op
class TopKOp(OpNode):
    """Top-k selection (descending values + original indices).

    ``method`` picks the device lowering: the streaming ``baseline``
    kernel (single launch, data-independent trace — the default),
    the paper's ``quickselect`` on SplitInd, or the RadiK-style ``radix``
    counting selection.  Quickselect/radix traces depend on the data, so
    their captured timing is a steady-state approximation
    (:attr:`data_dependent_trace`)."""

    kind = "topk"
    num_inputs = 1
    output_names = ("values", "indices")
    param_defaults = {"k": Ellipsis, "s": 128, "method": "baseline"}
    data_dependent_trace = True

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        (x,) = specs
        if x.dtype != "fp16":
            raise ConfigError(f"topk takes fp16 values, got {x.dtype!r}")
        k = params["k"]
        if not isinstance(k, int) or k < 1:
            raise ConfigError(f"topk k must be a positive int, got {k!r}")
        if x.n is not None and k > x.n:
            raise ConfigError(f"topk k={k} exceeds input length {x.n}")
        if params["method"] not in _TOPK_METHODS:
            raise ConfigError(
                f"unknown topk method {params['method']!r}; "
                f"known: {_TOPK_METHODS}"
            )
        return (TensorSpec("fp16", (k,)), TensorSpec("int32", (k,)))

    @classmethod
    def oracle(cls, inputs, params):
        x = inputs[0]
        order = _stable_order(x, descending=True)[: params["k"]]
        return (x[order], order.astype(np.int32))

    @classmethod
    def validation_inputs(cls, specs, params):
        # distinct values: the baseline kernel's merge does not promise
        # the oracle's lowest-index-first tie order
        return [_distinct_fp16(specs[0].n, _rng(specs, 6))]

    @classmethod
    def device_run(cls, ops, inputs, params):
        method = params["method"]
        if method == "baseline":
            res = ops.topk_baseline(inputs[0], params["k"])
        elif method == "quickselect":
            res = ops.topk(inputs[0], params["k"], s=params["s"])
        else:
            res = ops.topk_radix(inputs[0], params["k"], s=params["s"])
        return (res.values, res.indices)


@register_op
class TopPSampleOp(OpNode):
    """Llama3 nucleus sampling: radix-sort descending, MCScan cumsum, two
    predicate-count passes (17 chained scans per sample on the cube
    backend) — returns the sampled token id looked up in ``ids``.

    ``p`` is structural (the nucleus cut); ``theta`` is the runtime draw
    in [0, 1) — neither changes the trace structure, so one captured
    program serves every (p, theta).  The oracle mirrors the device
    pipeline expression for expression (fp32 cumsum of the descending
    stable sort, the same scalar comparisons), so on exactness-conditioned
    probabilities the two are bit-identical."""

    kind = "top_p_sample"
    num_inputs = 2
    output_names = ("token",)
    param_defaults = {"p": Ellipsis, "theta": 0.5, "s": 128}

    @classmethod
    def trace_params(cls):
        return ("s",)

    @classmethod
    def infer(cls, specs, params):
        cls.check_arity(specs)
        probs, ids = specs
        if probs.dtype != "fp16":
            raise ConfigError(
                f"top_p_sample takes fp16 probabilities, got {probs.dtype!r}"
            )
        if ids.dtype != "int32":
            raise ConfigError(
                f"top_p_sample ids must be int32, got {ids.dtype!r}"
            )
        if (
            probs.shape is not None
            and ids.shape is not None
            and probs.shape != ids.shape
        ):
            raise ConfigError(
                f"top_p_sample probs/ids shapes differ: {probs.shape} vs "
                f"{ids.shape}"
            )
        p = params["p"]
        if not 0.0 < p <= 1.0:
            raise ConfigError(f"top_p_sample p must be in (0, 1], got {p!r}")
        theta = params["theta"]
        if not 0.0 <= theta < 1.0:
            raise ConfigError(
                f"top_p_sample theta must be in [0, 1), got {theta!r}"
            )
        return (TensorSpec("int64", (1,)),)

    @classmethod
    def oracle(cls, inputs, params):
        probs, ids = inputs
        n = probs.size
        order = _stable_order(probs, descending=True)
        cum = np.cumsum(probs[order], dtype=np.float32)
        total = float(cum[-1])
        if total <= 0:
            raise ConfigError("top_p_sample probabilities sum to zero")
        k_nucleus = min(1 + int(np.count_nonzero(cum <= params["p"] * total)), n)
        mass = float(cum[k_nucleus - 1])
        cut = params["theta"] * mass
        pos = min(int(np.count_nonzero(cum < cut)), k_nucleus - 1)
        token = ids[order[pos]]
        return (np.asarray([token], dtype=np.int64),)

    @classmethod
    def validation_inputs(cls, specs, params):
        rng = _rng(specs, 7)
        n = specs[0].n
        # strictly positive integer-valued fp16: the descending sort has
        # no signed-zero hazard and the fp32 cumsum is exact (sum < 2^24)
        probs = (1 + rng.integers(0, 97, n)).astype(np.float16)
        ids = np.arange(n, dtype=np.int32)
        return [probs, ids]

    @classmethod
    def device_run(cls, ops, inputs, params):
        from .interp import top_p_device_sample

        token = top_p_device_sample(
            ops,
            inputs[0],
            inputs[1],
            p=params["p"],
            theta=params["theta"],
            s=params["s"],
        )
        return (token,)
