"""The sweep driver: default-first incumbent search with roofline pruning.

For each workload the tuner

1. evaluates the **default** configuration (the serve layer's fallback)
   first, establishing the incumbent — this is what guarantees the tuned
   result is never slower than the default;
2. computes the roofline floor of every other candidate and visits them in
   ascending-floor order;
3. **prunes** any candidate whose floor already meets or exceeds the
   incumbent's measured time (the floor is a sound lower bound, so the
   candidate cannot win — and the trace-heavy small-``s`` configs on large
   inputs are exactly the ones whose cube-issue floor blows up);
4. traces and scores the survivors on the compiled timeline, updating the
   incumbent as it goes (a falling incumbent prunes ever harder).

The winner is recorded in a :class:`~repro.tune.store.TuneStore` together
with the default's time, so the store itself is evidence of the win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.api import ScanContext
from .evaluate import evaluate_candidate
from .space import (
    Candidate,
    WorkloadKey,
    candidate_floor_ns,
    default_candidate,
    enumerate_candidates,
)
from .store import TunedEntry, TuneStore

__all__ = [
    "CandidateOutcome",
    "TuneResult",
    "tune_workload",
    "ensure_tuned",
    "format_result",
]


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's fate during the sweep."""

    candidate: Candidate
    floor_ns: float
    #: "default" | "evaluated" | "pruned"
    status: str
    device_ns: "float | None" = None
    trace_host_s: float = 0.0


@dataclass
class TuneResult:
    """Outcome of tuning one workload."""

    workload: WorkloadKey
    best: Candidate
    best_ns: float
    default_ns: float
    outcomes: "list[CandidateOutcome]" = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        return sum(1 for o in self.outcomes if o.status != "pruned")

    @property
    def pruned(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "pruned")

    @property
    def speedup(self) -> float:
        return self.default_ns / self.best_ns if self.best_ns else 0.0

    @property
    def entry(self) -> TunedEntry:
        return TunedEntry(
            algorithm=self.best.algorithm,
            s=self.best.s,
            block_dim=self.best.block_dim,
            layout=self.best.layout,
            tuned_ns=self.best_ns,
            default_ns=self.default_ns,
            evaluated=self.evaluated,
            pruned=self.pruned,
        )


def tune_workload(
    ctx: ScanContext,
    workload: WorkloadKey,
    *,
    store: "TuneStore | None" = None,
    log=None,
) -> TuneResult:
    """Sweep the candidate space for one workload; optionally record the
    winner into ``store``.  ``log`` (a ``str -> None`` callable) receives
    one progress line per evaluated candidate."""
    say = log if log is not None else (lambda _msg: None)
    default = default_candidate(workload)
    default_cost = evaluate_candidate(ctx, workload, default)
    best, best_ns = default, default_cost.device_ns
    outcomes = [
        CandidateOutcome(
            default,
            candidate_floor_ns(ctx.config, workload, default),
            "default",
            default_cost.device_ns,
            default_cost.trace_host_s,
        )
    ]
    say(
        f"{workload.store_key}: default {default.describe()} "
        f"= {default_cost.device_ns / 1e3:.1f} us"
    )

    rest = [c for c in enumerate_candidates(ctx.config, workload) if c != default]
    floors = {c: candidate_floor_ns(ctx.config, workload, c) for c in rest}
    for cand in sorted(rest, key=lambda c: floors[c]):
        floor = floors[cand]
        if floor >= best_ns:
            outcomes.append(CandidateOutcome(cand, floor, "pruned"))
            continue
        cost = evaluate_candidate(ctx, workload, cand)
        outcomes.append(
            CandidateOutcome(cand, floor, "evaluated", cost.device_ns, cost.trace_host_s)
        )
        say(f"  {cand.describe()} = {cost.device_ns / 1e3:.1f} us")
        if cost.device_ns < best_ns:
            best, best_ns = cand, cost.device_ns

    result = TuneResult(
        workload=workload,
        best=best,
        best_ns=best_ns,
        default_ns=default_cost.device_ns,
        outcomes=outcomes,
    )
    if store is not None:
        store.record(workload.store_key, result.entry)
    say(
        f"  -> best {best.describe()} = {best_ns / 1e3:.1f} us "
        f"({result.speedup:.2f}x vs default; "
        f"{result.evaluated} traced, {result.pruned} pruned)"
    )
    return result


def ensure_tuned(
    ctx: ScanContext,
    workloads: "list[WorkloadKey]",
    store: TuneStore,
    *,
    log=None,
) -> "list[TuneResult]":
    """Tune exactly the workloads ``store`` has no entry for; returns the
    results of the sweeps that actually ran (an already-covered store
    returns ``[]``).

    The membership test reads :attr:`TuneStore.entries` directly rather
    than going through ``lookup_1d``, so warming a store does not skew the
    hit/miss counters the serve layer reports.  This is the device-pool
    bring-up path: every pool member shares one store, so the sweep cost is
    paid once no matter how many devices serve the workloads."""
    results = []
    for workload in workloads:
        if workload.store_key in store.entries:
            continue
        results.append(tune_workload(ctx, workload, store=store, log=log))
    return results


def format_result(result: TuneResult) -> str:
    """Multi-line human-readable report for one tuned workload."""
    lines = [
        f"workload {result.workload.store_key}",
        f"  default : {result.outcomes[0].candidate.describe():40s}"
        f" {result.default_ns / 1e3:10.2f} us",
        f"  tuned   : {result.best.describe():40s}"
        f" {result.best_ns / 1e3:10.2f} us  ({result.speedup:.2f}x)",
        f"  searched: {len(result.outcomes)} candidates,"
        f" {result.evaluated} traced, {result.pruned} pruned by roofline floor",
    ]
    return "\n".join(lines)
