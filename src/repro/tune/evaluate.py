"""Candidate cost evaluation: trace once, score on the compiled timeline.

The evaluator never executes numerics during search — it emits the op DAG
(one host-side Python trace per surviving candidate) and asks the device
for the deterministic compiled-timeline device time via
:meth:`~repro.hw.device.AscendDevice.time_traced`.  All device tensors
are scratch, allocated inside a mark/release scope so a long sweep reuses
HBM; the shared constant matrices are fetched *before* the mark (they are
cached on the context and must outlive the scope — the same ordering the
one-shot operators use).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.api import ScanContext
from ..core.batched import batched_kernel_cls, default_batched_block_dim
from ..core.matrices import batched_tile_rows, padded_length
from ..core.vector_baseline import BatchedCumSumKernel, CumSumKernel, CUMSUM_COLS
from ..errors import ConfigError
from ..hw.datatypes import as_dtype, cube_accum_dtype
from .space import Candidate, WorkloadKey

__all__ = ["CandidateCost", "evaluate_candidate"]


@dataclass(frozen=True)
class CandidateCost:
    """Measured cost of one candidate: total device ns for the workload
    (all launches), plus the trace's host cost for the tuner's report."""

    device_ns: float
    launches: int
    trace_host_s: float


def _evaluate_1d(
    ctx: ScanContext, n: int, dtype: str, cand: Candidate, exclusive: bool
) -> CandidateCost:
    dt = as_dtype(dtype)
    if cand.algorithm == "vector":
        out_dt = dt
        consts = None
        unit = CUMSUM_COLS
    else:
        out_dt = cube_accum_dtype(dt)
        consts = ctx.constants(cand.s, dt)  # before mark: context-cached
        unit = cand.s * cand.s
    padded = padded_length(n, unit)
    t0 = time.perf_counter()
    mark = ctx.device.memory.mark()
    try:
        x_gm = ctx.device.alloc("tune_x", (padded,), dt)
        y_gm = ctx.device.alloc("tune_y", (padded,), out_dt)
        if ctx.warm_inputs:
            ctx.device.warm_l2(x_gm, y_gm)
        if cand.algorithm == "vector":
            kernel = CumSumKernel(x_gm, y_gm)
        else:
            kernel = ctx._cube_1d_kernel(
                cand.algorithm, x_gm, y_gm, consts, cand.s, cand.block_dim, exclusive
            )
        traced = ctx.device.trace_kernel(kernel, label=f"tune {cand.describe()}")
        ns = ctx.device.time_traced(traced)
    finally:
        ctx.device.memory.release(mark)
    return CandidateCost(ns, 1, time.perf_counter() - t0)


def _evaluate_batched(
    ctx: ScanContext, batch: int, row_len: int, dtype: str, cand: Candidate
) -> CandidateCost:
    dt = as_dtype(dtype)
    if cand.algorithm == "vector":
        out_dt = dt
        consts = None
        unit = CUMSUM_COLS
    else:
        out_dt = cube_accum_dtype(dt)
        rows = batched_tile_rows(row_len, cand.s)
        consts = ctx.constants(cand.s, dt, rows=rows)  # before mark
        unit = consts.tile_elements
    padded = padded_length(row_len, unit)
    t0 = time.perf_counter()
    mark = ctx.device.memory.mark()
    try:
        x_gm = ctx.device.alloc("tune_bx", (batch, padded), dt)
        y_gm = ctx.device.alloc("tune_by", (batch, padded), out_dt)
        if ctx.warm_inputs:
            ctx.device.warm_l2(x_gm, y_gm)
        if cand.algorithm == "vector":
            bd = min(ctx.config.num_vector_cores, batch)
            kernel = BatchedCumSumKernel(x_gm, y_gm, bd)
        else:
            bd = (
                default_batched_block_dim(ctx.config, cand.algorithm, batch)
                if cand.block_dim is None
                else cand.block_dim
            )
            kernel = batched_kernel_cls(cand.algorithm)(x_gm, y_gm, consts, cand.s, bd)
        traced = ctx.device.trace_kernel(kernel, label=f"tune {cand.describe()}")
        ns = ctx.device.time_traced(traced)
    finally:
        ctx.device.memory.release(mark)
    return CandidateCost(ns, 1, time.perf_counter() - t0)


def evaluate_candidate(
    ctx: ScanContext, workload: WorkloadKey, cand: Candidate
) -> CandidateCost:
    """Score a candidate for a workload in device nanoseconds.

    For a batched workload served with ``layout="1d"``, one row is traced
    and the timeline replays per row: total = batch × per-row time (each
    launch pays its own launch overhead — already inside
    :meth:`time_traced`).
    """
    if workload.kind == "1d":
        if cand.layout != "1d":
            raise ConfigError(f"1-D workload cannot use layout {cand.layout!r}")
        return _evaluate_1d(ctx, workload.n, workload.dtype, cand, workload.exclusive)
    if cand.layout == "batched":
        return _evaluate_batched(ctx, workload.batch, workload.n, workload.dtype, cand)
    row = _evaluate_1d(ctx, workload.n, workload.dtype, cand, False)
    return CandidateCost(
        row.device_ns * workload.batch, workload.batch, row.trace_host_s
    )
