"""Simulator-guided autotuner with a persistent tuned-plan store.

The serve layer's heuristics (``scanu``, ``s=128``) are a reasonable
default, but the best plan configuration depends on the workload shape —
MCScan dominates at large 1-D sizes, small tile sizes lose to Mmad issue
overhead, and few-long-row batches are sometimes better served row-by-row
through a multi-core 1-D plan.  This package searches that space *on the
simulator* (one host-side trace per surviving candidate, never executing
numerics), prunes with sound roofline lower bounds from
:mod:`repro.analysis`, and persists the winners in a fingerprinted JSON
store that :meth:`ScanContext.build_plan(tuned=True)
<repro.core.api.ScanContext.build_plan>` and the serve layer consult.

See ``repro tune --help`` for the CLI entry point.
"""

from .evaluate import CandidateCost, evaluate_candidate
from .space import (
    SWEEP_S,
    Candidate,
    WorkloadKey,
    candidate_floor_ns,
    default_candidate,
    enumerate_candidates,
)
from .store import STORE_VERSION, TunedEntry, TuneStore, config_fingerprint
from .tuner import (
    CandidateOutcome,
    TuneResult,
    ensure_tuned,
    format_result,
    tune_workload,
)
from .warmup import WarmupReport, warm_pool, warm_service, warm_tune_store

__all__ = [
    "SWEEP_S",
    "STORE_VERSION",
    "Candidate",
    "CandidateCost",
    "CandidateOutcome",
    "TunedEntry",
    "TuneResult",
    "TuneStore",
    "WorkloadKey",
    "candidate_floor_ns",
    "config_fingerprint",
    "default_candidate",
    "ensure_tuned",
    "enumerate_candidates",
    "evaluate_candidate",
    "format_result",
    "tune_workload",
    "WarmupReport",
    "warm_tune_store",
    "warm_service",
    "warm_pool",
]
