"""Candidate search space of the autotuner.

A *workload* is what the serve layer sees — a logical shape plus dtype
(and exclusivity / batch geometry).  A *candidate* is one concrete plan
configuration that could serve it: algorithm (or competitor strategy) ×
tile size ``s`` × ``block_dim`` × layout (batched kernel vs one 1-D plan
replayed per row).

The expensive part of evaluating a candidate is not device time — it is
the *host-side Python trace* (op-DAG emission), which grows with the tile
count.  So the space attaches a roofline **floor** to every candidate: a
device-time lower bound derived from :mod:`repro.analysis.roofline` that
is sound by construction (no schedule can beat the memory roof, the MTE
link width, or the cube's serialised Mmad issue).  The tuner evaluates the
default config first and then visits candidates in ascending-floor order,
skipping any whose floor already exceeds the incumbent — which is exactly
what kills the trace-heavy small-``s`` configs on large inputs without
ever tracing them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.roofline import cube_issue_floor_ns, link_floor_ns, memory_floor_ns
from ..core.api import BATCHED_ALGORITHMS, PLAN_1D_ALGORITHMS
from ..core.batched import default_batched_block_dim
from ..core.matrices import batched_tile_rows, padded_length
from ..core.vector_baseline import CUMSUM_COLS
from ..errors import ConfigError
from ..hw.config import DeviceConfig
from ..hw.datatypes import as_dtype, cube_accum_dtype

__all__ = [
    "SWEEP_S",
    "WorkloadKey",
    "Candidate",
    "default_candidate",
    "enumerate_candidates",
    "candidate_floor_ns",
]

#: tile sizes the sweep considers (the paper evaluates 16..128; s is the
#: side of the U_s constant matrix, so tiles hold s*s elements)
SWEEP_S = (16, 32, 64, 128)

#: algorithms whose 1-D kernels split tiles over block_dim cube cores
_MULTI_CORE_1D = ("mcscan", "ssa", "rss", "lookback")


@dataclass(frozen=True)
class WorkloadKey:
    """What the tuner optimises for: a logical request shape.

    ``kind`` is ``"1d"`` (then ``n`` is the element count, ``batch`` is
    None) or ``"batched"`` (then ``n`` is the row length and ``batch``
    the row count).  Keys use the *logical* n, not a padded length —
    padding depends on ``s``, which is precisely what is being chosen.
    """

    kind: str
    n: int
    dtype: str
    exclusive: bool = False
    batch: "int | None" = None

    def __post_init__(self):
        if self.kind not in ("1d", "batched"):
            raise ConfigError(f"workload kind must be '1d' or 'batched', got {self.kind!r}")
        if self.n < 1:
            raise ConfigError(f"workload n must be >= 1, got {self.n}")
        if (self.kind == "batched") != (self.batch is not None):
            raise ConfigError("batched workloads need batch, 1-D workloads must not set it")
        if self.batch is not None and self.batch < 1:
            raise ConfigError(f"batch must be >= 1, got {self.batch}")
        as_dtype(self.dtype)  # validates the name

    @property
    def store_key(self) -> str:
        if self.kind == "1d":
            return f"1d:{self.n}:{self.dtype}:{'x' if self.exclusive else 'i'}"
        return f"batched:{self.batch}x{self.n}:{self.dtype}"


@dataclass(frozen=True)
class Candidate:
    """One concrete plan configuration for a workload.

    ``layout`` is ``"batched"`` for the row-parallel batched kernels and
    ``"1d"`` for serving each row through a single 1-D plan (only
    meaningful for batched workloads; 1-D workloads always use ``"1d"``).
    ``block_dim`` of None means the algorithm's own heuristic.
    """

    algorithm: str
    s: int
    block_dim: "int | None" = None
    layout: str = "1d"

    def describe(self) -> str:
        bd = "auto" if self.block_dim is None else str(self.block_dim)
        if self.algorithm == "vector":
            return f"{self.layout}/vector(bd={bd})"
        return f"{self.layout}/{self.algorithm}(s={self.s}, bd={bd})"


def default_candidate(workload: WorkloadKey) -> Candidate:
    """The configuration the serve layer falls back to without a store —
    :meth:`ScanService.submit`'s defaults.  It is always a member of the
    search space and always evaluated first, which is what guarantees the
    tuned choice is never slower than the default."""
    if workload.exclusive:
        return Candidate("mcscan", 128, None, "1d")
    layout = "batched" if workload.kind == "batched" else "1d"
    return Candidate("scanu", 128, None, layout)


def _1d_block_dims(config: DeviceConfig, n_tiles: int) -> "list[int | None]":
    """block_dim sweep for the multi-core 1-D kernels: the heuristic
    (None → min(cores, tiles)) plus a coarse power-of-two ladder below it."""
    limit = max(1, min(config.num_ai_cores, n_tiles))
    dims: "list[int | None]" = [None]
    bd = 1
    while bd < limit:
        dims.append(bd)
        bd *= 2
    return dims


def _batched_block_dims(config: DeviceConfig, algorithm: str, batch: int) -> "list[int | None]":
    default = default_batched_block_dim(config, algorithm, batch)
    dims: "list[int | None]" = [None]
    bd = 1
    while bd < default:
        dims.append(bd)
        bd *= 2
    return dims


def enumerate_candidates(
    config: DeviceConfig, workload: WorkloadKey
) -> "list[Candidate]":
    """All candidates for a workload, default first, no duplicates."""
    default = default_candidate(workload)
    seen = {default}
    out = [default]

    def add(c: Candidate) -> None:
        if c not in seen:
            seen.add(c)
            out.append(c)

    if workload.kind == "1d":
        for algorithm in PLAN_1D_ALGORITHMS:
            if workload.exclusive and algorithm != "mcscan":
                continue
            if algorithm == "vector":
                add(Candidate("vector", 0, None, "1d"))
                continue
            for s in SWEEP_S:
                n_tiles = padded_length(workload.n, s * s) // (s * s)
                dims = (
                    _1d_block_dims(config, n_tiles)
                    if algorithm in _MULTI_CORE_1D
                    else [None]
                )
                for bd in dims:
                    add(Candidate(algorithm, s, bd, "1d"))
        return out

    # batched workloads: the row-parallel kernels ...
    for algorithm in BATCHED_ALGORITHMS:
        if algorithm == "vector":
            add(Candidate("vector", 0, None, "batched"))
            continue
        for s in SWEEP_S:
            for bd in _batched_block_dims(config, algorithm, workload.batch):
                add(Candidate(algorithm, s, bd, "batched"))
    # ... versus one 1-D plan replayed per row (competitive for few long
    # rows, where per-row multi-core beats row-parallelism)
    row = WorkloadKey("1d", workload.n, workload.dtype)
    for cand in enumerate_candidates(config, row):
        add(Candidate(cand.algorithm, cand.s, cand.block_dim, "1d"))
    return out


def _pad_unit(cand: Candidate, row_len: int) -> int:
    """Padding granularity a candidate imposes on its (row) length."""
    if cand.algorithm == "vector":
        return CUMSUM_COLS
    if cand.layout == "batched":
        # batched tiles are m x s with m = batched_tile_rows(...) <= s
        return batched_tile_rows(row_len, cand.s) * cand.s
    return cand.s * cand.s


def _gm_floor_bytes(workload: WorkloadKey, cand: Candidate) -> int:
    """Bytes any execution of this candidate must move through GM: padded
    input read once + padded output written once (a lower bound — real
    kernels add partials/r-array traffic)."""
    dt = as_dtype(workload.dtype)
    out_itemsize = (
        dt.itemsize if cand.algorithm == "vector" else cube_accum_dtype(dt).itemsize
    )
    padded = padded_length(workload.n, _pad_unit(cand, workload.n))
    rows = workload.batch if (workload.batch and cand.layout == "batched") else 1
    return rows * padded * (dt.itemsize + out_itemsize)


def candidate_floor_ns(
    config: DeviceConfig, workload: WorkloadKey, cand: Candidate
) -> float:
    """Sound device-time lower bound for one candidate (used to prune).

    max(memory roof, MTE-link width, cube Mmad issue) + launch overhead;
    for the per-row 1-D layout on a batched workload the whole bound is
    paid once per row.
    """
    per_launch_workload = workload
    launches = 1
    if workload.kind == "batched" and cand.layout == "1d":
        per_launch_workload = WorkloadKey("1d", workload.n, workload.dtype)
        launches = workload.batch

    gm = _gm_floor_bytes(per_launch_workload, cand)
    floor = memory_floor_ns(config, gm)

    if cand.algorithm == "vector":
        lanes = config.num_vector_cores
        floor = max(floor, link_floor_ns(config, gm, lanes))
    else:
        unit = _pad_unit(cand, per_launch_workload.n)
        padded = padded_length(per_launch_workload.n, unit)
        n_tiles = padded // unit
        if cand.layout == "batched":
            n_tiles *= workload.batch  # tiles across all rows
        if cand.algorithm in _MULTI_CORE_1D and cand.layout == "1d":
            bd = cand.block_dim or max(1, min(config.num_ai_cores, n_tiles))
        elif cand.layout == "batched":
            bd = cand.block_dim or default_batched_block_dim(
                config, cand.algorithm, workload.batch or 1
            )
        else:
            bd = 1  # scanu / scanul1 run their cube stage on one core
        bd = max(1, min(bd, config.num_ai_cores))
        lanes = bd * config.vector_cores_per_ai_core
        floor = max(floor, link_floor_ns(config, gm, lanes))
        # every tile costs at least one Mmad issue on its core
        mmads_per_core = -(-n_tiles // bd)
        floor = max(floor, cube_issue_floor_ns(config, mmads_per_core))

    return launches * (floor + config.costs.kernel_launch_ns)
