"""Parallel fleet warm-up: pay tracing and tuning cost before serving.

A cold :class:`~repro.serve.service.ScanService` pays two host costs the
first time each shape class arrives: the tuner sweep (when a tuned store
is attached but has no entry) and the plan build (the 49–80 ms Python
kernel trace).  Both are pure functions of the device config and the
workload key, so a fleet bring-up can pay them *up front* — and, because
tuning runs on the simulator and touches no shared state, it can pay them
on a **process pool**:

* :func:`warm_tune_store` splits the untuned workloads round-robin across
  worker processes; each worker tunes its slice into a private
  :class:`~repro.tune.store.TuneStore` shard and ships the shard back as
  a JSON payload; the parent merges the shards.  Merging is exact — the
  tuner is deterministic per workload, so the merged store is
  entry-for-entry identical to a serial sweep (the differential test in
  ``tests/tune/test_warmup.py`` holds this).
* :func:`warm_service` then prebuilds the plan cache of one service for
  those workloads (plans hold traced op DAGs and simulated device
  allocations, so they are built in-process, per member).
* :func:`warm_pool` does both for every member of a
  :class:`~repro.shard.PoolScanService` behind one call.

Steady-state serving after warm-up never pays trace or tune cost inline:
every launch is a plan-cache hit.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..hw.config import DeviceConfig
from .space import WorkloadKey
from .store import TuneStore
from .tuner import tune_workload

__all__ = ["WarmupReport", "warm_tune_store", "warm_service", "warm_pool"]


@dataclass
class WarmupReport:
    """What one warm-up pass did, and what it cost."""

    #: workloads handed in
    requested: int = 0
    #: sweeps actually run (workloads the store had no entry for)
    tuned: int = 0
    #: workloads skipped because the store already covered them
    skipped: int = 0
    #: store keys added or improved by merging worker shards
    merged: int = 0
    #: worker processes used (1 = in-process serial)
    workers: int = 1
    #: plans built into serve-layer caches (:func:`warm_service` only)
    plans_built: int = 0
    #: wall seconds for the whole pass
    host_s: float = 0.0
    #: per-worker shard sizes, in worker order (serial pass: one entry)
    shard_sizes: "list[int]" = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"warm-up: {self.tuned} tuned / {self.skipped} cached of "
            f"{self.requested} workloads on {self.workers} worker(s), "
            f"{self.plans_built} plans built, {self.host_s * 1e3:.0f} ms"
        )


def _tune_shard(payload: "tuple[DeviceConfig, list[WorkloadKey]]") -> dict:
    """Worker entry point: tune one slice of workloads into a store shard.

    Module-level (picklable) and self-contained: no live objects cross the
    process boundary — the shard travels back as a plain JSON payload.

    Each workload gets a **fresh** :class:`~repro.core.api.ScanContext`.
    Traced device times depend on GM allocation addresses, which depend on
    what the context tuned before (cached constant matrices shift later
    allocations), so tuning a slice on one shared context would make every
    entry a function of the round-robin slice assignment.  A context per
    workload makes each entry a pure function of (config, workload) — the
    invariant that lets N merged shards equal one serial sweep exactly.
    """
    from ..core.api import ScanContext

    config, workloads = payload
    shard = TuneStore(config)
    for workload in workloads:
        tune_workload(ScanContext(config), workload, store=shard)
    return shard.to_payload()


def warm_tune_store(
    workloads: "list[WorkloadKey]",
    store: TuneStore,
    *,
    workers: "int | None" = None,
    log=None,
) -> WarmupReport:
    """Tune every workload ``store`` lacks, fanning the sweeps out over
    ``workers`` processes (default: the machine's CPU count).

    Workloads are dealt round-robin so slow sweeps spread across workers;
    each worker returns an independent store shard and the parent merges
    them (strictly-better-wins, same-fingerprint-only).  ``workers <= 1``
    — or a single pending workload — runs serially in-process, through the
    same shard-and-merge path, so both modes produce identical stores.
    """
    say = log if log is not None else (lambda _msg: None)
    t0 = time.perf_counter()
    report = WarmupReport(requested=len(workloads))
    todo = [w for w in workloads if w.store_key not in store.entries]
    report.skipped = len(workloads) - len(todo)
    if not todo:
        report.host_s = time.perf_counter() - t0
        return report

    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, len(todo)))
    report.workers = n_workers
    slices = [todo[i::n_workers] for i in range(n_workers)]

    if n_workers == 1:
        payloads = [_tune_shard((store.config, todo))]
    else:
        say(f"warming {len(todo)} workloads on {n_workers} processes")
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            payloads = list(
                pool.map(_tune_shard, [(store.config, s) for s in slices])
            )

    for payload in payloads:
        shard = TuneStore.from_payload(payload, store.config)
        report.shard_sizes.append(len(shard))
        report.merged += store.merge(shard)
    report.tuned = len(todo)
    report.host_s = time.perf_counter() - t0
    say(report.describe())
    return report


def _resolve_config(
    service, workload: WorkloadKey
) -> "tuple[str, int, int | None, str, bool]":
    """(algorithm, s, block_dim, layout, tuned) a warmed service will use
    for this workload — the tuned entry when the store has one, otherwise
    ``submit``'s heuristic defaults.  Reads ``store.entries`` directly so
    warming never skews the lookup hit/miss counters the service reports.
    """
    store = service.tune_store
    entry = store.entries.get(workload.store_key) if store is not None else None
    if entry is not None:
        return entry.algorithm, entry.s, entry.block_dim, entry.layout, True
    if workload.exclusive:
        return "mcscan", 128, None, "1d", False
    layout = "batched" if workload.kind == "batched" else "1d"
    return "scanu", 128, None, layout, False


def warm_service(
    service,
    workloads: "list[WorkloadKey]",
    *,
    buckets: "tuple[int, ...]" = (),
) -> int:
    """Prebuild one service's plan cache for ``workloads``; returns the
    number of plans built (0 = everything was already cached).

    For a 1-D workload the exact 1-D plan is built; ``buckets`` lists
    batch sizes the service should additionally expect that workload to
    arrive in (each rounded to its power-of-two bucket), so the coalesced
    batched launches hit too.  Batched workloads warm whichever layout
    their tuned entry picked.
    """
    from ..core.api import BATCHED_ALGORITHMS
    from ..serve.batcher import bucket_size

    cache = service.cache
    max_batch = service.batcher.max_batch
    built = 0

    def build_1d(algorithm, n, dtype, s, exclusive, block_dim, tuned):
        nonlocal built
        key = cache.key_1d(
            algorithm, n, dtype, s=s, exclusive=exclusive, block_dim=block_dim
        )
        if key not in cache:
            cache.get_1d(
                algorithm, n, dtype, s=s, exclusive=exclusive,
                block_dim=block_dim, tuned=tuned,
            )
            built += 1

    def build_batched(algorithm, batch, row_len, dtype, s, tuned):
        nonlocal built
        bucket = bucket_size(batch, max_batch=max_batch)
        key = cache.key_batched(algorithm, bucket, row_len, dtype, s=s)
        if key not in cache:
            cache.get_batched(
                algorithm, bucket, row_len, dtype, s=s, tuned=tuned
            )
            built += 1

    for workload in workloads:
        algorithm, s, block_dim, layout, tuned = _resolve_config(
            service, workload
        )
        if workload.kind == "1d":
            build_1d(
                algorithm, workload.n, workload.dtype, s,
                workload.exclusive, block_dim, tuned,
            )
            # the batcher only coalesces requests the batched kernels can
            # serve; mcscan/exclusive verdicts always launch per-request
            if workload.exclusive or algorithm not in BATCHED_ALGORITHMS:
                continue
            for batch in buckets:
                build_batched(algorithm, batch, workload.n, workload.dtype, s, tuned)
        elif layout == "batched":
            build_batched(
                algorithm, workload.batch, workload.n, workload.dtype, s, tuned
            )
        else:
            # tuned verdict: serve each row through one 1-D plan
            build_1d(
                algorithm, workload.n, workload.dtype, s, False, block_dim, tuned
            )
    return built


def warm_pool(
    pool_service,
    workloads: "list[WorkloadKey]",
    *,
    buckets: "tuple[int, ...]" = (),
    workers: "int | None" = None,
    log=None,
) -> WarmupReport:
    """Warm a whole device pool: one parallel tuning pass into the shared
    store, then per-member plan prebuilds (plans are device state, so each
    member traces its own — in-process, against its own simulated device).
    """
    t0 = time.perf_counter()
    store = pool_service.tune_store
    if store is not None:
        report = warm_tune_store(workloads, store, workers=workers, log=log)
    else:
        report = WarmupReport(requested=len(workloads))
    for member in pool_service.workers:
        report.plans_built += warm_service(member, workloads, buckets=buckets)
    report.host_s = time.perf_counter() - t0
    return report
