"""Persistent tuned-plan store.

A :class:`TuneStore` maps workload keys to the winning plan configuration
found by the tuner, versioned JSON on disk.  Entries are only valid for
the exact device they were tuned on, so the file carries a **fingerprint**
— a SHA-256 over the canonical JSON form of the full
:class:`~repro.hw.config.DeviceConfig` (core counts, clock, buffer sizes,
every cost constant).  Loading a store against a different config, or a
file with a different schema version, yields an *empty* store (flagged
``invalidated``) rather than silently serving stale configurations.

The store is deliberately dependency-free state: plain dataclasses and
:mod:`json`, no pickle — the file is diffable and safe to commit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass

from ..errors import ConfigError
from ..hw.config import DeviceConfig

__all__ = ["STORE_VERSION", "TunedEntry", "TuneStore", "config_fingerprint"]

#: bump when the on-disk schema changes; older files are discarded
STORE_VERSION = 1


def config_fingerprint(config: DeviceConfig) -> str:
    """SHA-256 over the canonical JSON of the device config.

    Any change to the simulated hardware — a cost constant, a buffer
    size, the core count — changes the fingerprint and therefore
    invalidates every tuned entry, which is exactly right: tuning results
    are measurements of one specific machine.
    """
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class TunedEntry:
    """The winning configuration for one workload, with its evidence."""

    algorithm: str
    s: int
    block_dim: "int | None"
    #: "batched" for the row-parallel kernels, "1d" for per-row plans
    layout: str
    #: measured device ns of the winner (total, all launches)
    tuned_ns: float
    #: measured device ns of the default configuration on this workload
    default_ns: float
    #: candidates actually traced / pruned by the roofline floors
    evaluated: int = 0
    pruned: int = 0

    @property
    def speedup(self) -> float:
        return self.default_ns / self.tuned_ns if self.tuned_ns else 0.0


class TuneStore:
    """In-memory map of workload key → :class:`TunedEntry`, with JSON
    persistence, device fingerprinting and merge.

    Lookup methods mirror what :meth:`ScanContext.build_plan` needs; hit
    and miss counters feed the serve layer's stats.
    """

    def __init__(self, config: DeviceConfig, *, path: "str | None" = None):
        self.config = config
        self.fingerprint = config_fingerprint(config)
        self.path = path
        self.entries: "dict[str, TunedEntry]" = {}
        #: True when a load discarded a stale/foreign file
        self.invalidated = False
        self.lookup_hits = 0
        self.lookup_misses = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- record / lookup -----------------------------------------------------

    def record(self, store_key: str, entry: TunedEntry) -> None:
        """Insert or improve: an existing entry is only replaced by one
        with a strictly better tuned time (merge-friendly semantics)."""
        old = self.entries.get(store_key)
        if old is None or entry.tuned_ns < old.tuned_ns:
            self.entries[store_key] = entry

    def _lookup(self, store_key: str) -> "TunedEntry | None":
        entry = self.entries.get(store_key)
        if entry is None:
            self.lookup_misses += 1
        else:
            self.lookup_hits += 1
        return entry

    def lookup_1d(
        self, *, n: int, dtype: str, exclusive: bool = False
    ) -> "TunedEntry | None":
        key = f"1d:{n}:{dtype}:{'x' if exclusive else 'i'}"
        return self._lookup(key)

    def lookup_batched(
        self, *, batch: int, row_len: int, dtype: str
    ) -> "TunedEntry | None":
        return self._lookup(f"batched:{batch}x{row_len}:{dtype}")

    def merge(self, other: "TuneStore") -> int:
        """Fold another store's entries in (better ``tuned_ns`` wins per
        key); returns how many keys were added or improved.  Merging
        across device fingerprints is refused."""
        if other.fingerprint != self.fingerprint:
            raise ConfigError(
                "cannot merge tune stores from different device configs "
                f"({other.fingerprint[:12]} vs {self.fingerprint[:12]})"
            )
        changed = 0
        for key, entry in other.entries.items():
            old = self.entries.get(key)
            if old is None or entry.tuned_ns < old.tuned_ns:
                self.entries[key] = entry
                changed += 1
        return changed

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "version": STORE_VERSION,
            "device": self.config.name,
            "fingerprint": self.fingerprint,
            "entries": {
                key: dataclasses.asdict(entry)
                for key, entry in sorted(self.entries.items())
            },
        }

    def save(self, path: "str | None" = None) -> str:
        """Write the store atomically (write + rename); returns the path."""
        path = path or self.path
        if path is None:
            raise ConfigError("TuneStore.save() needs a path")
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as f:
            json.dump(self.to_payload(), f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_payload(cls, payload: dict, config: DeviceConfig) -> "TuneStore":
        """Rehydrate a store from :meth:`to_payload` output — the warm-up
        path's shard transport (workers return payload dicts over the
        process pool; the parent merges them).  Unlike :meth:`load`, which
        tolerates stale files by returning an empty store, an in-memory
        payload that does not match is a programming error and raises
        :class:`~repro.errors.ConfigError` outright."""
        store = cls(config)
        version = payload.get("version")
        if version != STORE_VERSION:
            raise ConfigError(
                f"tune-store payload has schema version {version!r}, "
                f"expected {STORE_VERSION}"
            )
        fingerprint = payload.get("fingerprint")
        if fingerprint != store.fingerprint:
            raise ConfigError(
                "tune-store payload was produced on a different device "
                f"config ({str(fingerprint)[:12]} vs {store.fingerprint[:12]})"
            )
        for key, raw in payload.get("entries", {}).items():
            store.entries[key] = TunedEntry(**raw)
        return store

    @classmethod
    def load(cls, path: str, config: DeviceConfig) -> "TuneStore":
        """Load a store for ``config``; a missing file, an older schema
        version, or a fingerprint mismatch all yield an empty store (the
        latter two flagged ``invalidated``) — never stale entries."""
        store = cls(config, path=path)
        if not os.path.exists(path):
            return store
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            store.invalidated = True
            return store
        if (
            payload.get("version") != STORE_VERSION
            or payload.get("fingerprint") != store.fingerprint
        ):
            store.invalidated = True
            return store
        for key, raw in payload.get("entries", {}).items():
            store.entries[key] = TunedEntry(**raw)
        return store
