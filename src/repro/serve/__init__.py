"""Plan-cached scan serving layer.

The one-shot :class:`~repro.core.api.ScanContext` API re-traces the whole
kernel (Python-level op emission + hazard analysis) on every call, which
dominates host-side latency.  This package adds the serving discipline an
operator integration would use in steady state:

* :class:`PlanCache` — memoizes built :class:`~repro.core.api.ScanPlan`
  objects per (algorithm, padded length, dtype, batch, s) so repeated
  shapes skip tracing entirely;
* :class:`RequestBatcher` — coalesces queued same-shape 1-D requests into
  one batched-kernel launch with per-request scatter-back;
* :class:`ScanService` — the ``submit``/``flush`` façade tying the two
  together, with per-request latency and aggregate throughput statistics.

``python -m repro serve-bench`` exercises the layer end to end.
"""

from .batcher import LaunchGroup, RequestBatcher, ScanRequest, bucket_size
from .executor import HostExecutor, HostJob
from .numerics import assemble_rows, group_scan_values
from .plan import PlanCache, PlanKey
from .resilience import DEAD, DEGRADED, HEALTHY, MemberHealth, RetryPolicy
from .service import ScanService, ScanTicket
from .stats import HOST_PHASES, LaunchRecord, ServiceStats
from .traffic import (
    TRAFFIC_SEED0,
    Arrival,
    TrafficReport,
    TrafficSpec,
    generate_arrivals,
    make_input,
    percentile_ns,
)

__all__ = [
    "PlanCache",
    "PlanKey",
    "RequestBatcher",
    "ScanRequest",
    "LaunchGroup",
    "bucket_size",
    "ScanService",
    "ScanTicket",
    "ServiceStats",
    "LaunchRecord",
    "HOST_PHASES",
    "HostExecutor",
    "HostJob",
    "assemble_rows",
    "group_scan_values",
    "RetryPolicy",
    "MemberHealth",
    "HEALTHY",
    "DEGRADED",
    "DEAD",
    "TRAFFIC_SEED0",
    "Arrival",
    "TrafficSpec",
    "TrafficReport",
    "generate_arrivals",
    "make_input",
    "percentile_ns",
]
