"""The ``submit``/``flush`` scan service façade.

:meth:`ScanService.submit` validates and enqueues a 1-D scan request,
returning a :class:`ScanTicket` immediately; :meth:`ScanService.flush`
drains the queue through the :class:`~repro.serve.batcher.RequestBatcher`,
replays each launch group's simulated timeline via plan-cache hits
(building plans on first miss), computes the group's numerics in **one
stacked NumPy pass** (:mod:`repro.serve.numerics` — bit-identical to the
per-request path), scatters results back onto the tickets, and records
per-request host latency plus per-launch simulated throughput.

Each launch is split into its two independent halves: the schedule-facing
timeline replay (fault injection, retries, busy-time accounting — always
on the calling thread, in deterministic order) and the pure functional
numerics, which are deferred as jobs on a
:class:`~repro.serve.executor.HostExecutor` and joined before ``flush``
returns.  With ``parallel=`` workers the numerics run on pool threads —
results and schedules stay bit-identical because the jobs are pure.

This mirrors how an inference-serving integration drives the paper's
operators: shapes recur, so tracing cost is paid once per shape class and
the steady state is functional compute + scheduling only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.api import ScanContext, ScanPlan
from ..errors import DeviceFault, KernelError, ShapeError
from ..hw.config import ASCEND_910B4, DeviceConfig
from .batcher import LaunchGroup, RequestBatcher, ScanRequest
from .executor import HostExecutor, HostJob
from .numerics import group_scan_values
from .plan import PlanCache
from .resilience import RetryPolicy
from .stats import LaunchRecord, ServiceStats

__all__ = ["ScanTicket", "ScanService"]

#: EWMA weight for the observed-slowdown estimate (new launches count 25%)
_SLOWDOWN_ALPHA = 0.25


def _sorted_by_submit_sequence(tickets: "list[ScanTicket]") -> "list[ScanTicket]":
    """Order completed tickets by submit sequence.

    ``req_id`` *is* the submit-sequence key: scan and graph submissions
    draw from one monotone counter per façade (``_next_id``), so sorting
    on it returns mixed scan+graph traffic in submit order.  That only
    holds while ids stay unique — a duplicate would mean two requests
    shared a sequence slot (one of them mis-ordered, its twin's ticket
    silently clobbered upstream), so it is asserted here rather than
    assumed.
    """
    tickets.sort(key=lambda t: t.req_id)
    for prev, cur in zip(tickets, tickets[1:]):
        if prev.req_id == cur.req_id:
            raise KernelError(
                f"two completed tickets share request id {cur.req_id}; "
                f"submit-order return needs one monotone id sequence "
                f"across scan and graph traffic"
            )
    return tickets


@dataclass
class ScanTicket:
    """Handle for one submitted request; filled in by ``flush``."""

    req_id: int
    n: int
    algorithm: str
    dtype: str
    s: int
    exclusive: bool
    done: bool = False
    values: "np.ndarray | None" = None
    #: wall seconds from submit to completion (queueing + execution)
    host_s: float = 0.0
    #: simulated device time of the launch that served this request; shared
    #: across the whole batch for batched launches (see ``batch_size``)
    device_ns: float = 0.0
    #: True when the serving launch reused a cached plan
    plan_hit: bool = False
    #: True when served as a row of a coalesced batched launch
    batched: bool = False
    #: number of requests sharing the launch (1 for single launches)
    batch_size: int = 1
    #: True when the plan config came from the tuned-plan store
    tuned: bool = False
    #: explicit block_dim the tuned config requested (None = heuristic)
    block_dim: "int | None" = None
    #: pool member index that served the request (None outside device pools)
    device: "int | None" = None
    #: relaunches absorbed while serving this request (incl. failovers)
    retries: int = 0
    #: DeviceFaults observed while serving this request
    faults: int = 0
    #: simulated-clock arrival time (ns); None outside open-loop traffic
    t_arrival_ns: "float | None" = None
    #: simulated-clock time the request's batch was admitted onto a device
    #: queue (staged for launch); None outside open-loop traffic
    t_admit_ns: "float | None" = None
    #: simulated-clock completion time (ns); None outside open-loop traffic
    t_complete_ns: "float | None" = None
    #: simulated-clock completion deadline (ns); None = no deadline
    deadline_ns: "float | None" = None
    #: True/False once completion was judged against the deadline; None
    #: when no deadline applies (or the request was never served)
    deadline_met: "bool | None" = None

    @property
    def sim_latency_ns(self) -> "float | None":
        """Simulated arrival-to-completion latency (queueing + batching
        wait + device time); None outside open-loop traffic."""
        if self.t_arrival_ns is None or self.t_complete_ns is None:
            return None
        return self.t_complete_ns - self.t_arrival_ns

    def result(self) -> np.ndarray:
        if not self.done:
            raise RuntimeError(
                f"request {self.req_id} is still queued; call flush() first"
            )
        return self.values


class ScanService:
    """Plan-cached, request-batching front end over a scan context."""

    def __init__(
        self,
        ctx: "ScanContext | None" = None,
        *,
        config: DeviceConfig = ASCEND_910B4,
        max_batch: int = 64,
        min_group: int = 2,
        batching: bool = True,
        validate_plans: bool = True,
        gm_budget: "int | None" = None,
        tune_store=None,
        retry: "RetryPolicy | None" = None,
        controller=None,
        parallel: "int | None" = None,
        executor: "HostExecutor | None" = None,
        graph_fusion: str = "conservative",
    ):
        self.ctx = ctx if ctx is not None else ScanContext(config)
        #: host executor the group numerics jobs run on — shared when the
        #: pool front end hands one in, owned (and built from ``parallel``)
        #: otherwise.  Parallelism here is invisible to results and
        #: schedules: only pure NumPy passes are deferred.
        if executor is not None:
            self.executor = executor
            self._owns_executor = False
        else:
            self.executor = HostExecutor(parallel)
            self._owns_executor = True
        #: pending (numerics job, rows-to-finish) pairs; joined by
        #: :meth:`resolve_deferred` at the end of every flush (or by the
        #: pool front end, after every member flushed, when it set
        #: ``_defer_external`` for cross-member overlap)
        self._deferred: "list[tuple[HostJob, list]]" = []
        self._defer_external = False
        #: bounded-retry discipline for transient DeviceFaults
        self.retry = retry if retry is not None else RetryPolicy()
        #: EWMA of served launch time (incl. stretch + backoff) over the
        #: healthy memoized timeline; 1.0 on an undisturbed device.  The
        #: pool router weights its load estimate by this.
        self.observed_slowdown = 1.0
        #: tuned-plan store consulted when submit() is given no explicit
        #: algorithm/s (see repro.tune.TuneStore); also exposed to the
        #: context so direct build_plan(tuned=True) calls share it
        self.tune_store = tune_store
        if tune_store is not None:
            self.ctx.tune_store = tune_store
        self.cache = PlanCache(
            self.ctx, validate=validate_plans, gm_budget=gm_budget
        )
        self.batcher = RequestBatcher(
            self.cache,
            max_batch=max_batch,
            # min_group above any queue length disables coalescing entirely
            min_group=min_group if batching else (1 << 62),
            controller=controller,
        )
        self.stats = ServiceStats()
        self._tickets: dict[int, ScanTicket] = {}
        self._next_id = 0
        #: lazily-built operator-graph runner (shared across a pool's
        #: members by the pool front end); see repro.graph.interp
        self.graph_runner = None
        #: fusion mode the runner is built with (off/conservative/aggressive)
        self.graph_fusion = graph_fusion

    # -- submission ---------------------------------------------------------

    def _prepare(
        self,
        x: np.ndarray,
        *,
        algorithm: "str | None" = None,
        s: "int | None" = None,
        exclusive: bool = False,
        req_id: "int | None" = None,
    ) -> "tuple[ScanRequest, ScanTicket]":
        """Validate one submission and materialise its request + ticket
        without enqueueing — the routing seam the device-pool front end
        (:class:`repro.shard.PoolScanService`) uses to build tickets
        centrally and hand the request to whichever member it picks."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"submit expects a 1-D array, got shape {x.shape}")
        if x.size == 0:
            raise ShapeError("submit expects a non-empty array")
        x, dt = self._normalize_input(x)
        tuned = False
        block_dim: "int | None" = None
        if algorithm is None and s is None and self.tune_store is not None:
            t_tune = time.perf_counter()
            entry = self.tune_store.lookup_1d(
                n=x.size, dtype=dt.name, exclusive=exclusive
            )
            self.stats.add_phase("tune", time.perf_counter() - t_tune)
            if entry is not None:
                algorithm = entry.algorithm
                s = entry.s
                block_dim = entry.block_dim
                tuned = True
        if algorithm is None:
            algorithm = "scanu"
        if s is None:
            s = 128
        # key construction validates algorithm/exclusive combinations early
        self.cache.key_1d(
            algorithm, x.size, dt, s=s, exclusive=exclusive, block_dim=block_dim
        )
        if req_id is None:
            req_id = self._next_id
            self._next_id += 1
        req = ScanRequest(
            req_id=req_id,
            x=x,
            algorithm=algorithm,
            s=s,
            exclusive=exclusive,
            t_submit=time.perf_counter(),
            block_dim=block_dim,
            tuned=tuned,
            dtype=dt.name,
        )
        ticket = ScanTicket(
            req_id=req_id,
            n=x.size,
            algorithm=algorithm,
            dtype=dt.name,
            s=s,
            exclusive=exclusive,
            tuned=tuned,
            block_dim=block_dim,
        )
        return req, ticket

    def _normalize_input(
        self, x: np.ndarray
    ) -> "tuple[np.ndarray, object]":
        """Resolve the plan dtype exactly once, at submit.

        Integer inputs whose values fit int8 are narrowed here, so every
        downstream consumer — batcher grouping keys, plan-cache keys,
        pool routing — sees one canonical shape class instead of re-keying
        from ``x.dtype`` and fragmenting the cache.  fp16/int8 pass
        through; everything else (including float32, whose narrowing
        would silently lose precision) is rejected exactly as before.
        """
        try:
            return x, self.ctx._as_plan_dtype(x.dtype)
        except KernelError:
            if x.dtype.kind in "iu":
                info = np.iinfo(np.int8)
                if int(x.min()) >= info.min and int(x.max()) <= info.max:
                    return x.astype(np.int8), self.ctx._as_plan_dtype(np.int8)
            raise

    def submit(
        self,
        x: np.ndarray,
        *,
        algorithm: "str | None" = None,
        s: "int | None" = None,
        exclusive: bool = False,
    ) -> ScanTicket:
        """Enqueue one 1-D scan; returns an unfilled ticket.

        ``algorithm``/``s`` of None mean *let the service decide*: with a
        tuned-plan store attached, the workload is looked up there and a
        hit supplies algorithm, tile size and block_dim; otherwise (and
        for explicit arguments, which always win) the heuristic default
        ``scanu``/``s=128`` applies.
        """
        req, ticket = self._prepare(
            x, algorithm=algorithm, s=s, exclusive=exclusive
        )
        self.enqueue(req, ticket)
        return ticket

    def enqueue(self, req: ScanRequest, ticket: ScanTicket) -> None:
        """Accept an already-prepared request/ticket pair (used directly by
        the pool front end after routing; ``submit`` is prepare + enqueue).

        Request ids double as the submit-sequence key ``flush`` orders
        completed tickets by, so they must be unique within one service:
        a colliding id would silently overwrite a tracked ticket (a lost
        request) and break submit-order return.  Scan and graph requests
        draw from one monotone ``_next_id`` counter precisely so this
        holds for mixed traffic too.
        """
        if req.req_id in self._tickets:
            raise KernelError(
                f"request id {req.req_id} is already tracked; scan and "
                f"graph submissions must draw from one id sequence"
            )
        self._tickets[req.req_id] = ticket
        self.batcher.add(req)

    def scan(self, x: np.ndarray, **kwargs) -> ScanTicket:
        """Convenience: submit one request and flush immediately."""
        ticket = self.submit(x, **kwargs)
        self.flush()
        return ticket

    # -- graph submission ----------------------------------------------------

    def _graph_runner(self):
        """The service's operator-graph runner, built on first use (the
        import is deferred: repro.graph imports from repro.serve)."""
        if self.graph_runner is None:
            from ..graph.interp import GraphRunner

            self.graph_runner = GraphRunner(
                self.ctx.device.config,
                tune_store=self.tune_store,
                fusion=self.graph_fusion,
            )
        return self.graph_runner

    def _prepare_graph(
        self, graph, inputs, *, params=None, req_id: "int | None" = None
    ):
        """Validate one graph submission and materialise its request +
        ticket without enqueueing (the pool front end's routing seam,
        mirroring :meth:`_prepare`)."""
        from ..graph.service import GraphKey, GraphRequest, GraphTicket

        t0 = time.perf_counter()
        bound = graph.bind(inputs)
        signature = graph.signature()
        self.stats.add_phase("trace", time.perf_counter() - t0)
        if req_id is None:
            req_id = self._next_id
            self._next_id += 1
        total = sum(v.size for v in bound.values())
        key = GraphKey(graph=graph.name, signature=signature, padded=total)
        req = GraphRequest(
            req_id=req_id,
            graph=graph,
            inputs=bound,
            params=dict(params) if params else None,
            graph_key=key,
            t_submit=time.perf_counter(),
        )
        first = next(iter(bound.values()))
        ticket = GraphTicket(
            req_id=req_id,
            n=total,
            algorithm="graph",
            dtype=str(first.dtype),
            s=0,
            exclusive=False,
            graph=graph.name,
            nodes=len(graph.nodes),
        )
        return req, ticket

    def submit_graph(self, graph, inputs, *, params=None):
        """Enqueue one operator-graph request; returns an unfilled
        :class:`~repro.graph.service.GraphTicket`.

        ``inputs`` is a dict (or declaration-order sequence) of input
        arrays; ``params`` optionally overrides runtime node parameters
        per node name (e.g. ``{"sample": {"theta": 0.73}}``).  The request
        rides the same queue, flush, retry and failover machinery as scan
        requests; its numerics are the graph's NumPy oracle, so results
        are bit-identical to :func:`repro.graph.oracle_outputs` by
        construction, while device time is accounted by replaying the
        captured per-node programs.
        """
        req, ticket = self._prepare_graph(graph, inputs, params=params)
        self.enqueue(req, ticket)
        return ticket

    @property
    def pending(self) -> int:
        return len(self.batcher)

    # -- execution ----------------------------------------------------------

    def flush(self) -> "list[ScanTicket]":
        """Serve every queued request; returns their tickets in submit order.

        Exception-safe: if a launch fails terminally (a permanent
        :class:`~repro.errors.DeviceFault`, or retries exhausted), every
        not-yet-served request — including the failing group's — is
        re-queued with its ticket still tracked before the fault
        propagates, so a later ``flush()`` (or the pool's failover onto
        another member) can still serve it.  No ticket is ever lost.
        """
        groups = self.batcher.drain()
        completed: list[ScanTicket] = []
        try:
            for gi, group in enumerate(groups):
                try:
                    if group.graph:
                        completed.extend(self._serve_graph(group))
                    elif group.batched:
                        completed.extend(self._serve_batched(group))
                    else:
                        completed.extend(self._serve_singles(group))
                except Exception:
                    for later in groups[gi + 1 :]:
                        self._requeue(later.requests)
                    raise
        except Exception:
            # tickets whose launch already succeeded must still get their
            # values before the fault propagates — failover (the pool's
            # recall) keys off ``ticket.done``
            self.resolve_deferred()
            raise
        if not self._defer_external:
            self.resolve_deferred()
        return _sorted_by_submit_sequence(completed)

    def resolve_deferred(self) -> None:
        """Join every pending numerics job and finish its tickets.

        Called at the end of every flush (and on the fault path before the
        exception propagates).  Under an external owner — the pool front
        end defers resolution across members so their numerics overlap —
        this runs once after all members flushed.  Idempotent."""
        deferred, self._deferred = self._deferred, []
        for job, rows in deferred:
            values, numerics_s = job.result()
            self.stats.add_phase("numerics", numerics_s)
            for local_i, ticket, req in rows:
                ticket.values = values[local_i]
                self._finish(ticket, req)

    def shutdown(self) -> None:
        """Join pending numerics and release owned executor threads."""
        self.resolve_deferred()
        if self._owns_executor:
            self.executor.shutdown()

    def _requeue(self, requests: "list[ScanRequest]") -> None:
        """Put unserved requests back on the queue (tickets stay tracked)."""
        for req in requests:
            self.batcher.add(req)

    def _replay_with_retry(self, replay_fn):
        """Run one launch attempt (``replay_fn`` returning its traces as a
        list) under the retry policy.

        Returns ``(traces, retries, faults, backoff_ns)`` on success.
        Transient faults are retried up to ``retry.max_attempts`` total
        attempts, each retry charging exponential backoff to simulated
        device time.  A permanent fault, or exhausting the attempts,
        re-raises the final :class:`~repro.errors.DeviceFault` with its
        ``attempts`` stamped.  Every fault (served or not) is counted in
        ``stats.fault_events``.

        This is the schedule-bearing half of a launch (fault draws,
        slowdown EWMA, simulated time) and always runs on the calling
        thread; the numerics half is deferred separately.  Scan launches
        replay one plan timeline per attempt; graph requests call this
        once per captured kernel, so a transient fault relaunches only
        the kernel it hit, not the whole multi-node replay (the numerics
        are oracle-computed, so a replayed prefix has no side effects to
        undo).
        """
        t0 = time.perf_counter()
        try:
            policy = self.retry
            default_backoff = self.ctx.config.costs.relaunch_backoff_ns
            backoff_ns = 0.0
            faults = 0
            attempt = 0
            while True:
                attempt += 1
                try:
                    traces = replay_fn()
                except DeviceFault as fault:
                    self.stats.record_fault()
                    faults += 1
                    if fault.permanent or attempt >= policy.max_attempts:
                        fault.attempts = attempt
                        raise
                    backoff_ns += policy.backoff_for(attempt - 1, default_backoff)
                    continue
                total_ns = sum(t.total_ns for t in traces)
                nominal = total_ns - sum(t.stretch_ns for t in traces)
                if nominal > 0:
                    observed = (total_ns + backoff_ns) / nominal
                    self.observed_slowdown += _SLOWDOWN_ALPHA * (
                        observed - self.observed_slowdown
                    )
                return traces, attempt - 1, faults, backoff_ns
        finally:
            self.stats.add_phase("timeline", time.perf_counter() - t0)

    def _replay_plan(self, plan: ScanPlan):
        """Replay ``plan``'s simulated timeline under the retry policy;
        returns ``(trace, retries, faults, backoff_ns)``."""
        traces, retries, faults, backoff_ns = self._replay_with_retry(
            lambda: [plan.replay_timing()]
        )
        return traces[0], retries, faults, backoff_ns

    def _get_plan(self, group: LaunchGroup) -> "tuple[ScanPlan, bool]":
        key = group.key
        t0 = time.perf_counter()
        hit = key in self.cache
        plan = self.cache.get_batched(
            key.algorithm, key.batch, key.padded, key.dtype, s=key.s,
            tuned=any(r.tuned for r in group.requests),
        )
        if not hit:
            self.stats.add_phase("trace", time.perf_counter() - t0)
        return plan, hit

    def _finish(self, ticket: ScanTicket, req: ScanRequest) -> None:
        ticket.done = True
        ticket.host_s = time.perf_counter() - req.t_submit
        self.stats.record_request(ticket.host_s)

    def _submit_numerics(
        self,
        xs: "list[np.ndarray]",
        *,
        algorithm: str,
        in_dtype,
        exclusive: bool,
    ) -> "list[tuple[int, tuple[HostJob, list]]]":
        """Start the group's stacked numerics, split into row chunks when
        the executor is parallel.  Returns ``(chunk_lo, deferred_entry)``
        pairs; :meth:`_defer_row` routes each served row to its chunk.

        Chunking is by row index, so the split — and therefore every
        result bit — is independent of worker count and thread timing.
        """
        chunks = self.executor.chunk_count(len(xs))
        size = -(-len(xs) // chunks)
        entries = []
        for lo in range(0, len(xs), size):
            job = self.executor.submit(
                group_scan_values,
                xs[lo : lo + size],
                algorithm=algorithm,
                in_dtype=in_dtype,
                exclusive=exclusive,
            )
            entry = (job, [])
            self._deferred.append(entry)
            entries.append((lo, entry))
        return entries

    def _defer_row(
        self, entries, i: int, ticket: ScanTicket, req: ScanRequest
    ) -> None:
        """Mark group row ``i`` for resolution once its chunk's job joins."""
        for lo, entry in reversed(entries):
            if lo <= i:
                entry[1].append((i - lo, ticket, req))
                return
        raise KernelError(f"row {i} matches no numerics chunk")

    def _serve_batched(self, group: LaunchGroup) -> "list[ScanTicket]":
        plan, hit = self._get_plan(group)
        # numerics are pure, so they start before the replay and overlap it
        # under a parallel executor; a terminal fault below simply leaves
        # the job's rows unclaimed (the requests go back on the queue)
        entries = self._submit_numerics(
            [req.x for req in group.requests],
            algorithm=plan.algorithm,
            in_dtype=plan.in_dtype,
            exclusive=False,
        )
        hits_before = plan.timeline_hits
        try:
            trace, retries, faults, backoff_ns = self._replay_plan(plan)
        except Exception:
            # tickets stay tracked; the whole group goes back on the queue
            self._requeue(group.requests)
            raise
        group_tuned = any(r.tuned for r in group.requests)
        per_launch_n = sum(req.n for req in group.requests)
        io = per_launch_n * plan._io_bytes_per_element()
        served_ns = trace.total_ns + backoff_ns
        self.stats.record_launch(
            LaunchRecord(
                kind="batched",
                device_ns=served_ns,
                n_elements=per_launch_n,
                io_bytes=io,
                requests=len(group.requests),
                plan_hit=hit,
                timeline_hit=plan.timeline_hits > hits_before,
                tuned=group_tuned,
                retries=retries,
                faults=faults,
                backoff_ns=backoff_ns,
            )
        )
        tickets = []
        for i, req in enumerate(group.requests):
            # pop only after the launch succeeded: a fault above leaves
            # every ticket of the group pending, not silently dropped
            ticket = self._tickets.pop(req.req_id)
            ticket.device_ns = served_ns
            ticket.plan_hit = hit
            ticket.batched = True
            ticket.batch_size = len(group.requests)
            ticket.retries += retries
            ticket.faults += faults
            self._defer_row(entries, i, ticket, req)
            tickets.append(ticket)
        return tickets

    def _serve_singles(self, group: LaunchGroup) -> "list[ScanTicket]":
        # every request in a fallback group shares one exact 1-D plan key
        # (the batcher re-partitions per request), so the whole group's
        # numerics ride one stacked pass; each request still gets its own
        # launch — its own replay, fault draws and simulated time
        key = group.key
        entries = self._submit_numerics(
            [req.x for req in group.requests],
            algorithm=key.algorithm,
            in_dtype=self.ctx._as_plan_dtype(key.dtype),
            exclusive=key.exclusive,
        )
        tickets = []
        for idx, req in enumerate(group.requests):
            t0 = time.perf_counter()
            hit = key in self.cache
            plan = self.cache.get_1d(
                req.algorithm, req.n, req.plan_dtype, s=req.s,
                exclusive=req.exclusive, block_dim=req.block_dim,
                tuned=req.tuned,
            )
            if not hit:
                self.stats.add_phase("trace", time.perf_counter() - t0)
            hits_before = plan.timeline_hits
            try:
                trace, retries, faults, backoff_ns = self._replay_plan(plan)
            except Exception:
                # this request and everything after it go back on the queue
                self._requeue(group.requests[idx:])
                raise
            served_ns = trace.total_ns + backoff_ns
            self.stats.record_launch(
                LaunchRecord(
                    kind="single",
                    device_ns=served_ns,
                    n_elements=req.n,
                    io_bytes=req.n * plan._io_bytes_per_element(),
                    requests=1,
                    plan_hit=hit,
                    timeline_hit=plan.timeline_hits > hits_before,
                    tuned=req.tuned,
                    retries=retries,
                    faults=faults,
                    backoff_ns=backoff_ns,
                )
            )
            ticket = self._tickets.pop(req.req_id)
            ticket.device_ns = served_ns
            ticket.plan_hit = hit
            ticket.retries += retries
            ticket.faults += faults
            self._defer_row(entries, idx, ticket, req)
            tickets.append(ticket)
        return tickets

    def _serve_graph(self, group: LaunchGroup) -> "list[ScanTicket]":
        """Serve a group of same-signature graph requests: lower once per
        shape class (cached), replay every node's captured programs per
        request under the retry policy, defer oracle numerics, and record
        per-op device/host breakdowns.

        Requests in a graph group share lowered programs but replay
        independently — each gets its own fault draws and simulated time,
        exactly like the 1-D fallback path.  Retry granularity is one
        captured kernel (the unit of a device launch): a multi-node graph
        replays tens of kernels per request, and all-or-nothing retry
        would make the request's success probability vanish under
        per-launch fault rates."""
        from ..graph.service import graph_oracle_job

        runner = self._graph_runner()
        tickets = []
        for idx, req in enumerate(group.requests):
            t0 = time.perf_counter()
            entries, built = runner.lower(req.graph)
            if built:
                self.stats.add_phase("trace", time.perf_counter() - t0)
            node_spans: list = []
            traces: list = []
            retries = faults = 0
            backoff_ns = 0.0
            hits_before = sum(
                tk.timeline_hits for _, low in entries for tk in low.traced
            )
            try:
                for node, low in entries:
                    t_node = time.perf_counter()
                    span = []
                    for tk in low.traced:
                        ktr, kretries, kfaults, kbackoff = (
                            self._replay_with_retry(
                                lambda tk=tk, node=node: [
                                    self.ctx.device.replay(
                                        tk,
                                        label=(
                                            f"graph {req.graph.name}"
                                            f".{node.name}"
                                        ),
                                    )
                                ]
                            )
                        )
                        span.append(ktr[0])
                        retries += kretries
                        faults += kfaults
                        backoff_ns += kbackoff
                    low.replays += 1
                    node_spans.append(
                        (low, span, time.perf_counter() - t_node)
                    )
                    traces.extend(span)
            except Exception:
                # this request and everything after it go back on the queue
                self._requeue(group.requests[idx:])
                raise
            hits_after = sum(
                tk.timeline_hits for _, low in entries for tk in low.traced
            )
            for low, span, node_host_s in node_spans:
                span_ns = sum(t.total_ns for t in span)
                if low.members:
                    # fused region: attribute the span back to the member
                    # kinds by the build-time device-time weights, so the
                    # per-op breakdown matches the unfused vocabulary
                    for kind, w in low.members:
                        self.stats.record_op(
                            kind, span_ns * w, host_s=node_host_s * w
                        )
                else:
                    self.stats.record_op(low.kind, span_ns, host_s=node_host_s)
            served_ns = sum(t.total_ns for t in traces) + backoff_ns
            io = sum(v.nbytes for v in req.inputs.values())
            self.stats.record_launch(
                LaunchRecord(
                    kind="graph",
                    device_ns=served_ns,
                    n_elements=req.n,
                    io_bytes=io,
                    requests=1,
                    plan_hit=not built,
                    timeline_hit=hits_after > hits_before,
                    tuned=any(low.tuned for _, low in entries),
                    retries=retries,
                    faults=faults,
                    backoff_ns=backoff_ns,
                )
            )
            # pop only after the launch succeeded (see _serve_singles)
            ticket = self._tickets.pop(req.req_id)
            ticket.device_ns = served_ns
            ticket.plan_hit = not built
            ticket.tuned = any(low.tuned for _, low in entries)
            ticket.retries += retries
            ticket.faults += faults
            ticket.launches = len(traces)
            ticket.batch_size = len(group.requests)
            job = self.executor.submit(
                graph_oracle_job, req.graph, req.inputs, req.params
            )
            self._deferred.append((job, [(0, ticket, req)]))
            tickets.append(ticket)
        return tickets

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        cache = self.cache.stats()
        lines = [
            "scan service",
            f"plan cache      : {cache['plans']} plans "
            f"({cache['tuned_plans']} tuned), "
            f"{cache['hits']} hits / {cache['misses']} misses, "
            f"{cache['evictions']} evictions "
            f"({cache['evicted_gm_bytes'] / 1e6:.1f} MB freed), "
            f"{cache['build_host_s'] * 1e3:.1f} ms build time, "
            f"{cache['gm_bytes'] / 1e6:.1f} MB GM pinned",
            f"timeline cache  : {cache['timeline_hits']} hits / "
            f"{cache['timeline_misses']} misses (memoized replays)",
        ]
        if self.graph_runner is not None:
            g = self.graph_runner.cache.stats()
            lines.append(
                f"graph cache     : {g['lowered']} lowered "
                f"({g['fused']} fused, {g['tuned']} tuned, "
                f"fusion={self.graph_fusion}), "
                f"{g['hits']} hits / {g['misses']} misses, "
                f"{g['replays']} replays, "
                f"{g['build_host_s'] * 1e3:.1f} ms build time"
            )
        if self.tune_store is not None:
            lines.append(
                f"tuned store     : {len(self.tune_store)} entries, "
                f"{self.tune_store.lookup_hits} lookup hits / "
                f"{self.tune_store.lookup_misses} misses"
            )
        lines.append(self.stats.summary())
        return "\n".join(lines)
