"""Vectorized launch-group numerics: one stacked NumPy pass per group.

The per-request serving path computes each request's scan with its own
padded allocation and its own ``np.cumsum`` call.  Requests in one launch
group share a shape class — same algorithm, dtype, exclusivity and padded
length — so the whole group can be assembled into a single 2-D array and
scanned with one row-wise pass.  Row-wise ``cumsum`` over axis 1 performs
exactly the same sequence of accumulator-dtype additions per row as the
1-D per-request computation, so the stacked results are **bit-identical**
to :func:`repro.core.replay.plan_compute` / ``plan_compute_batched`` —
the differential suite in ``tests/serve/test_numerics.py`` pins this
across dtype × exclusive × ragged group shapes.

Functions here are *pure* (input arrays → output arrays): they touch no
device, no schedule controller and no shared mutable state, which is what
lets the serve layer defer them onto a :class:`~repro.serve.executor.
HostExecutor` thread (NumPy releases the GIL on large array kernels)
without affecting schedule determinism.

Casting note: ``np.cumsum(x16, dtype=np.float32)`` (buffered cast-and-add)
and ``np.cumsum(x16.astype(np.float32))`` perform the identical fp32
addition sequence — the fp16→fp32 cast is exact — so the explicit up-front
cast used here is bit-identical while keeping the accumulate loop
unbuffered (measurably faster and GIL-friendlier).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.reference import accum_np_dtype
from ..core.replay import _VECTOR_ALGORITHMS
from ..hw.datatypes import DType

__all__ = ["assemble_rows", "group_scan_values"]


def assemble_rows(
    xs: "list[np.ndarray]", width: int, np_dtype
) -> np.ndarray:
    """Stack request arrays into one ``(len(xs), width)`` zero-padded batch.

    Same-length rows take the single-memcpy fast path; ragged groups
    (requests that share a padding class but differ in logical length)
    zero-fill per row.  Trailing zeros never leak into a row's first
    ``n`` prefix sums, so downstream slicing recovers exact results.
    """
    k = len(xs)
    if k and all(x.size == width for x in xs):
        out = np.stack(xs).astype(np_dtype, copy=False)
        return out
    out = np.zeros((k, width), dtype=np_dtype)
    for i, x in enumerate(xs):
        out[i, : x.size] = x
    return out


def group_scan_values(
    xs: "list[np.ndarray]",
    *,
    algorithm: str,
    in_dtype: DType,
    exclusive: bool = False,
) -> "tuple[list[np.ndarray], float]":
    """Scan a whole launch group in one stacked pass.

    Returns ``(values, host_s)`` where ``values[i]`` is the length-``n_i``
    scan of ``xs[i]`` — bit-identical to running ``plan_compute`` on each
    request separately — and ``host_s`` is the wall time the numerics
    took (attributed to the service's ``numerics`` host phase; when the
    pass ran on an executor thread these seconds overlap other phases).
    """
    t0 = time.perf_counter()
    width = max(x.size for x in xs)
    xp = assemble_rows(xs, width, in_dtype.np_dtype)
    acc = accum_np_dtype(xp.dtype)
    # dtype=acc pins the accumulator: without it NumPy promotes integer
    # cumsums to the platform int (int32 rows would come back int64)
    inc = np.cumsum(xp.astype(acc, copy=False), axis=1, dtype=acc)
    if exclusive:
        out = np.empty_like(inc)
        out[:, 0] = 0
        out[:, 1:] = inc[:, :-1]
    elif algorithm in _VECTOR_ALGORITHMS:
        out = inc.astype(in_dtype.np_dtype)
    else:
        out = inc
    values = [out[i, : x.size] for i, x in enumerate(xs)]
    return values, time.perf_counter() - t0
