"""Serve-layer resilience primitives: retry policy and member health.

:class:`RetryPolicy` bounds how a :class:`~repro.serve.service.ScanService`
reacts to a transient :class:`~repro.errors.DeviceFault`: up to
``max_attempts`` launches, with an exponential backoff between attempts
that is charged to *simulated device time* (the driver teardown +
re-issue the real stack would pay), so fault-heavy traffic shows up in
device throughput and in the pool router's load accounting, not just in
counters.

:class:`MemberHealth` is the pool's per-member health record
(:meth:`~repro.shard.service.PoolScanService.member_health`):

* ``healthy`` — no faults observed, no measurable slowdown;
* ``degraded`` — transient faults/retries/failovers observed, or the
  member's served launches run measurably slower than their memoized
  timelines (an injected MTE/vector slowdown);
* ``dead`` — a permanent fault was observed; the member is excluded from
  routing and its queued work has been rerouted onto survivors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["HEALTHY", "DEGRADED", "DEAD", "RetryPolicy", "MemberHealth"]

HEALTHY = "healthy"
DEGRADED = "degraded"
DEAD = "dead"

#: observed slowdown above which a member counts as degraded even without
#: any fault event (pure engine-slowdown degradation)
SLOWDOWN_DEGRADED_THRESHOLD = 1.05


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry discipline for transient launch faults."""

    #: total launch attempts per request/group (1 = no retry)
    max_attempts: int = 3
    #: base simulated backoff charged before each relaunch; None uses the
    #: device config's ``costs.relaunch_backoff_ns``
    backoff_ns: "float | None" = None
    #: backoff growth per consecutive retry (exponential)
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ns is not None and self.backoff_ns < 0:
            raise ConfigError(
                f"backoff_ns must be >= 0, got {self.backoff_ns}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1.0, "
                f"got {self.backoff_multiplier}"
            )

    def backoff_for(self, retry_index: int, default_ns: float) -> float:
        """Simulated ns charged before retry number ``retry_index`` (0-based)."""
        base = self.backoff_ns if self.backoff_ns is not None else default_ns
        return base * self.backoff_multiplier**retry_index


@dataclass(frozen=True)
class MemberHealth:
    """Point-in-time health snapshot of one pool member."""

    member: int
    state: str  # HEALTHY / DEGRADED / DEAD
    #: successful-launch retries recorded by the member's service stats
    retries: int
    #: DeviceFault events the member's service observed (incl. terminal)
    fault_events: int
    #: launch groups taken away from this member and rerouted
    failovers: int
    #: EWMA of served device time over the healthy memoized timeline
    slowdown: float
