"""Request batcher: coalesce same-shape 1-D scans into batched launches.

Queued requests are partitioned by *launch group*: requests whose
(algorithm, padded row length, dtype, s) match can ride the row-wise
batched kernels (:class:`~repro.core.batched.BatchedScanUKernel` /
``BatchedScanUL1Kernel`` / the batched vector baseline) as rows of one
2-D launch, each scattered back to its own ticket afterwards.

Batch sizes are rounded up to power-of-two *buckets* (rows beyond the
real batch are zero-padded), so the plan cache needs only ``log2``
distinct batched plans per shape class instead of one per observed batch
size.  Groups smaller than ``min_group`` — and requests the batched
kernels cannot serve (``mcscan``, exclusive scans) — fall back to 1-D
plans, one launch per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.api import BATCHED_ALGORITHMS
from .plan import PlanCache, PlanKey

__all__ = ["ScanRequest", "LaunchGroup", "RequestBatcher", "bucket_size"]


def bucket_size(batch: int, *, max_batch: int = 64) -> int:
    """Smallest power of two >= batch, capped at the largest power of two
    <= ``max_batch``.

    The cap must itself be a power of two: buckets are the plan cache's
    batched shape classes, and a non-power-of-two ``max_batch`` (say 48)
    would otherwise leak through as a bucket of 48 — a shape class that
    defeats the log2-classes guarantee and pads every 33-row batch as if
    it were 48 rows.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    cap = 1 << (max_batch.bit_length() - 1)
    return min(1 << (batch - 1).bit_length(), cap)


@dataclass
class ScanRequest:
    """One queued 1-D scan request (internal to the service)."""

    req_id: int
    x: np.ndarray
    algorithm: str
    s: int
    exclusive: bool
    #: host clock (perf_counter) at submit, for per-request latency
    t_submit: float
    #: explicit block_dim (only set by tuned configs; None = heuristic)
    block_dim: "int | None" = None
    #: True when the config came from a tuned-plan store lookup
    tuned: bool = False
    #: plan dtype name resolved once at submit (``_prepare``); grouping
    #: keys use it so int64 input and int8 input land in one shape class
    dtype: "str | None" = None
    #: simulated-clock arrival time (ns) under open-loop traffic; None for
    #: closed-loop submit/flush callers (no simulated arrival process)
    t_arrival_ns: "float | None" = None
    #: simulated-clock completion deadline (ns); None = no deadline
    deadline_ns: "float | None" = None

    @property
    def n(self) -> int:
        return self.x.size

    @property
    def plan_dtype(self) -> "str | np.dtype":
        """Dtype used for plan-cache keys (normalized name if resolved)."""
        return self.dtype if self.dtype is not None else self.x.dtype


@dataclass
class LaunchGroup:
    """A set of requests served by one device launch (or, for the 1-D
    fallback, one launch each)."""

    #: plan-cache shape class the group maps to (1-D key for fallbacks)
    key: PlanKey
    requests: "list[ScanRequest]" = field(default_factory=list)
    #: True when served as rows of one batched kernel launch
    batched: bool = False
    #: bucket row capacity of the batched launch (0 for fallbacks)
    bucket: int = 0
    #: True when the requests are operator-graph requests (replayed
    #: node-by-node by ``ScanService._serve_graph``, one replay each)
    graph: bool = False

    @property
    def padded_elements(self) -> int:
        """Padded element count of the *actual rows* the group carries —
        the cost proxy the device-pool router sorts by (LPT: heaviest
        group first) and deadline admission charges.

        Batched groups are costed by the rows launched, not the bucket
        capacity: a half-full bucket moves (and pays for) its real rows,
        and charging ``key.padded * bucket`` instead over-weighted it —
        the router would place a 5-row group in an 8-bucket ahead of a
        genuinely heavier group whose bucket happened to be fuller.
        """
        return self.key.padded * len(self.requests)


class RequestBatcher:
    """Accumulates requests and partitions them into launch groups."""

    def __init__(
        self,
        cache: PlanCache,
        *,
        max_batch: int = 64,
        min_group: int = 2,
        controller=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.cache = cache
        self.max_batch = max_batch
        self.min_group = min_group
        #: optional :class:`repro.verify.ScheduleController`; permutes the
        #: pending-queue order seen by ``drain``/``take_pending`` so the
        #: fuzzer can exercise every coalescing/failover interleaving
        #: (results must be submission-order independent)
        self.controller = controller
        self._pending: list[ScanRequest] = []
        #: requests that rode a batched launch / total drained, for stats
        self.coalesced = 0
        self.drained = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: ScanRequest) -> None:
        self._pending.append(request)

    def take_pending(self) -> "list[ScanRequest]":
        """Remove and return every queued request (failover drain).

        The device-pool serving layer uses this to recall work from a
        member that faulted before its queue was flushed.  Under a
        schedule controller the recall order is permuted — rerouted work
        must serve correctly whatever order the drain observes.
        """
        pending, self._pending = self._pending, []
        if self.controller is not None and len(pending) > 1:
            pending = self.controller.permute("batcher.take_pending", pending)
        return pending

    def _batchable(self, request: ScanRequest) -> bool:
        return (
            request.algorithm in BATCHED_ALGORITHMS and not request.exclusive
        )

    def drain(self) -> "list[LaunchGroup]":
        """Partition and clear the pending queue.

        Returns groups in deterministic order (by first-submitted request),
        splitting oversized groups at the bucket cap (the largest power of
        two <= ``max_batch``).
        """
        pending, self._pending = self._pending, []
        if self.controller is not None and len(pending) > 1:
            pending = self.controller.permute("batcher.drain", pending)
        self.drained += len(pending)
        by_shape: dict[PlanKey, LaunchGroup] = {}
        order: list[LaunchGroup] = []
        for req in pending:
            graph_key = getattr(req, "graph_key", None)
            if graph_key is not None:
                # graph requests group by lowered-program signature; the
                # key's batch is None, so the group passes through whole
                # below (each request replays its own captured programs)
                group = by_shape.get(graph_key)
                if group is None:
                    group = by_shape[graph_key] = LaunchGroup(
                        key=graph_key, graph=True
                    )
                    order.append(group)
                group.requests.append(req)
                continue
            if self._batchable(req):
                key = self.cache.key_batched(
                    req.algorithm, 1, req.n, req.plan_dtype, s=req.s
                )
            else:
                key = self.cache.key_1d(
                    req.algorithm, req.n, req.plan_dtype, s=req.s,
                    exclusive=req.exclusive, block_dim=req.block_dim,
                )
            group = by_shape.get(key)
            if group is None:
                group = by_shape[key] = LaunchGroup(key=key)
                order.append(group)
            group.requests.append(req)

        out: list[LaunchGroup] = []
        # chunk at the bucket cap (pow2 floor of max_batch), not max_batch
        # itself: a 48-row chunk cannot ride a 32-row bucket
        chunk_rows = 1 << (self.max_batch.bit_length() - 1)
        for group in order:
            if (
                group.key.batch is None
                or len(group.requests) < self.min_group
            ):
                if group.key.batch is None:
                    # already a 1-D shape class
                    out.append(group)
                    continue
                # Batched class too small for a batched launch: fall back
                # to 1-D plans.  The 1-D key must be derived *per request*
                # — requests that share a batched shape class can still
                # differ in 1-D key (e.g. tuned block_dim, exclusive) —
                # so re-partition instead of keying off requests[0].
                fallback: dict[PlanKey, LaunchGroup] = {}
                for req in group.requests:
                    key = self.cache.key_1d(
                        req.algorithm,
                        req.n,
                        req.plan_dtype,
                        s=group.key.s,
                        exclusive=req.exclusive,
                        block_dim=req.block_dim,
                    )
                    sub = fallback.get(key)
                    if sub is None:
                        sub = fallback[key] = LaunchGroup(key=key)
                        out.append(sub)
                    sub.requests.append(req)
                continue
            for lo in range(0, len(group.requests), chunk_rows):
                chunk = group.requests[lo : lo + chunk_rows]
                bucket = bucket_size(len(chunk), max_batch=self.max_batch)
                out.append(
                    LaunchGroup(
                        key=PlanKey(
                            group.key.algorithm,
                            group.key.padded,
                            group.key.dtype,
                            bucket,
                            group.key.s,
                        ),
                        requests=chunk,
                        batched=True,
                        bucket=bucket,
                    )
                )
                self.coalesced += len(chunk)
        return out
