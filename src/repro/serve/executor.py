"""Host-side execution seam: inline by default, thread pool on request.

:class:`HostExecutor` is the single knob behind the serve layer's
``parallel=`` parameters.  Jobs submitted to it are **pure functions**
(the vectorized group numerics of :mod:`repro.serve.numerics`): their
results depend only on their arguments, never on execution order, which
is what keeps thread-pool execution invisible to the schedule fuzzer —
same seed, same oracle bits, same tickets, same simulated timeline.

Everything schedule-bearing (batcher drains, routing picks, fault draws,
timeline replays, busy-time accounting) stays on the calling thread; only
the NumPy passes — which release the GIL on large arrays — are deferred.

``workers`` of ``None``, 0 or 1 mean *inline*: ``submit`` runs the
function immediately on the calling thread and wraps the outcome, so the
serial path has no queueing, no threads and no behavioural difference
beyond object plumbing.  ``workers >= 2`` uses a
:class:`~concurrent.futures.ThreadPoolExecutor`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

__all__ = ["HostExecutor", "HostJob"]


class HostJob:
    """Handle for one deferred computation; ``result()`` joins it."""

    __slots__ = ("_future", "_value", "_error")

    def __init__(self, *, future=None, value=None, error=None):
        self._future = future
        self._value = value
        self._error = error

    def result(self):
        if self._future is not None:
            return self._future.result()
        if self._error is not None:
            raise self._error
        return self._value


class HostExecutor:
    """Inline or thread-pooled runner for pure host-side jobs."""

    def __init__(self, workers: "int | None" = None):
        self.workers = 0 if workers is None else max(0, int(workers))
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-host"
            )
            if self.workers >= 2
            else None
        )

    @property
    def parallel(self) -> bool:
        """True when jobs actually run on pool threads."""
        return self._pool is not None

    def submit(self, fn, /, *args, **kwargs) -> HostJob:
        """Run ``fn(*args, **kwargs)`` — now (inline) or on a pool thread.

        Inline submission executes immediately and captures the outcome,
        so ``result()`` re-raises at the same join point the parallel
        mode would; callers handle both modes identically.
        """
        if self._pool is not None:
            return HostJob(future=self._pool.submit(fn, *args, **kwargs))
        try:
            return HostJob(value=fn(*args, **kwargs))
        except Exception as exc:  # noqa: BLE001 - mirrored to result()
            return HostJob(error=exc)

    def chunk_count(self, items: int, *, min_chunk: int = 8) -> int:
        """How many pieces to split an ``items``-row group into: one per
        worker, but never chunks smaller than ``min_chunk`` rows (tiny
        slices pay more in per-call overhead than threads return)."""
        if self._pool is None or items < 2 * min_chunk:
            return 1
        return max(1, min(self.workers, items // min_chunk))

    def shutdown(self) -> None:
        """Join and release pool threads (idempotent; inline is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "HostExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
