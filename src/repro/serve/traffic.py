"""Open-loop traffic generation on a simulated clock.

The serve/shard layers so far are *closed-loop*: a caller submits a
batch, calls ``flush``, and waits — the paper's Fig. 5/12 regime, where
a full batch is already assembled.  Real serving is arrival-driven:
requests of mixed sizes arrive continuously, and batching policy (how
long to hold a bucket open, when a deadline forces a launch) dominates
tail latency long before kernel speed does.

This module is the load-generator half of that layer: seeded arrival
processes (Poisson, bursty, diurnal) over a weighted shape distribution,
each arrival carrying a completion deadline.  Everything is a pure
function of ``(TRAFFIC_SEED0, seed)`` — the schedule controller never
influences *what* arrives, only how the scheduler serves it, so a
replayed fuzz trace sees identical traffic.

The serving half — continuous batching, deadline admission, EDF +
cost-model routing — lives in :mod:`repro.shard.scheduler`, which layers
over :class:`~repro.shard.PoolScanService`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError

__all__ = [
    "TRAFFIC_SEED0",
    "Arrival",
    "TrafficSpec",
    "TrafficReport",
    "generate_arrivals",
    "make_input",
    "percentile_ns",
]

#: root seed for every derived traffic stream (arrival times, sizes,
#: request payloads) — disjoint by construction from the fuzz layer's
#: FUZZ_SEED0-derived fault seeds
TRAFFIC_SEED0 = 0x0BE1

#: arrival process names ``generate_arrivals`` understands
_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Arrival:
    """One open-loop request arrival on the simulated clock."""

    #: arrival index in time order (also the data-draw order)
    index: int
    #: simulated arrival time (ns)
    t_ns: float
    #: request length (elements)
    n: int
    #: simulated completion deadline (ns); completion after this counts
    #: as a deadline miss (goodput excludes it)
    deadline_ns: float


@dataclass(frozen=True)
class TrafficSpec:
    """One open-loop workload: an arrival process over a shape mix.

    ``rate_rps`` is the *offered* load in requests per simulated second;
    the arrival horizon follows from ``requests / rate_rps``.  Sizes are
    drawn per arrival from ``sizes`` with ``size_weights`` (uniform when
    None) — a skewed-small mixture approximates the small-to-medium
    segment traffic an inference integration feeds the scan operators.
    """

    name: str
    #: arrival process: "poisson" | "bursty" | "diurnal"
    process: str = "poisson"
    #: mean offered load, requests per simulated second
    rate_rps: float = 100_000.0
    #: arrivals to generate
    requests: int = 64
    #: request length mix (elements), drawn per arrival
    sizes: "tuple[int, ...]" = (1024, 4096, 16384)
    #: draw weights for ``sizes`` (None = uniform)
    size_weights: "tuple[float, ...] | None" = None
    #: per-request completion SLO: deadline = arrival + slo_ns
    slo_ns: float = 5_000_000.0
    #: bursty: mean burst size (geometric); bursts arrive as one tick
    burst_mean: float = 4.0
    #: diurnal: rate modulation depth in [0, 1) over the horizon
    diurnal_depth: float = 0.8
    dtype: str = "fp16"

    def __post_init__(self):
        if self.process not in _PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {_PROCESSES}"
            )
        if self.rate_rps <= 0:
            raise ConfigError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ConfigError(
                f"diurnal_depth must be in [0, 1), got {self.diurnal_depth}"
            )
        if self.size_weights is not None and len(self.size_weights) != len(
            self.sizes
        ):
            raise ConfigError(
                f"size_weights has {len(self.size_weights)} entries for "
                f"{len(self.sizes)} sizes"
            )

    @property
    def np_dtype(self):
        return np.float16 if self.dtype == "fp16" else np.int8

    @property
    def mean_gap_ns(self) -> float:
        """Mean inter-arrival gap implied by the offered rate."""
        return 1e9 / self.rate_rps


def _draw_sizes(spec: TrafficSpec, rng, count: int) -> np.ndarray:
    p = None
    if spec.size_weights is not None:
        w = np.asarray(spec.size_weights, dtype=float)
        p = w / w.sum()
    return rng.choice(np.asarray(spec.sizes), size=count, p=p)


def _arrival_times(spec: TrafficSpec, rng) -> "list[float]":
    """Draw ``spec.requests`` arrival timestamps (ns, sorted)."""
    gap = spec.mean_gap_ns
    if spec.process == "poisson":
        gaps = rng.exponential(gap, spec.requests)
        return list(np.cumsum(gaps))
    if spec.process == "bursty":
        # burst epochs are Poisson at rate/burst_mean; each epoch lands a
        # geometric burst *in one arrival tick* (identical timestamps) —
        # the adversarial case for bucket capacity and same-tick joins
        times: list[float] = []
        t = 0.0
        while len(times) < spec.requests:
            t += rng.exponential(gap * spec.burst_mean)
            burst = int(rng.geometric(1.0 / spec.burst_mean))
            times.extend([t] * min(burst, spec.requests - len(times)))
        return times
    # diurnal: inhomogeneous Poisson by thinning — one modulation period
    # over the whole horizon, rate(t) = rate * (1 + depth * sin(2 pi t/T))
    horizon = spec.requests * gap
    peak = spec.rate_rps * (1.0 + spec.diurnal_depth)
    times = []
    t = 0.0
    while len(times) < spec.requests:
        t += rng.exponential(1e9 / peak)
        rate_t = spec.rate_rps * (
            1.0 + spec.diurnal_depth * math.sin(2.0 * math.pi * t / horizon)
        )
        if rng.random() <= rate_t / peak:
            times.append(t)
    return times


def generate_arrivals(spec: TrafficSpec, seed: int) -> "list[Arrival]":
    """Generate the spec's arrival stream for one seed.

    Deterministic in ``(TRAFFIC_SEED0, seed, spec)`` and independent of
    every scheduling decision, so fuzz replays and policy comparisons
    (continuous vs naive on the *same* traffic) are exact.
    """
    rng = np.random.default_rng((TRAFFIC_SEED0, seed))
    times = _arrival_times(spec, rng)
    sizes = _draw_sizes(spec, rng, len(times))
    return [
        Arrival(
            index=i,
            t_ns=float(t),
            n=int(n),
            deadline_ns=float(t) + spec.slo_ns,
        )
        for i, (t, n) in enumerate(zip(times, sizes))
    ]


def make_input(rng, n: int, dtype) -> np.ndarray:
    """One request payload: small integers cast to the serving dtype, so
    fp16 scans stay exact (no rounding ambiguity against the oracle)."""
    return rng.integers(-2, 3, n).astype(dtype)


def percentile_ns(values: "list[float]", q: float) -> float:
    """Nearest-rank percentile over simulated latencies (0.0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass
class TrafficReport:
    """Outcome of one open-loop run (see ``repro.shard.scheduler``)."""

    spec: str
    seed: int
    #: "continuous" (bucketed batching) or "naive" (per-arrival launch)
    policy: str
    #: arrivals offered by the generator
    offered: int = 0
    #: arrivals admitted (ticket enqueued toward a device)
    admitted: int = 0
    #: admitted requests served to completion
    served: int = 0
    #: arrivals refused at admission (deadline infeasible / pool dead)
    shed: int = 0
    #: admitted requests that could not be served (every member dead);
    #: their tickets are retained in ``failed_tickets``, never lost
    failed: int = 0
    #: served requests that met their deadline
    deadline_met: int = 0
    #: simulated end-to-end span of the run (last completion or arrival)
    span_ns: float = 0.0
    #: per-served-request simulated latencies (arrival -> completion, ns)
    latencies_ns: "list[float]" = field(default_factory=list)
    #: served tickets in completion order
    tickets: list = field(default_factory=list)
    #: tickets of admitted-but-unservable requests (explicit, not lost)
    failed_tickets: list = field(default_factory=list)
    #: device launches issued / requests that rode a batched launch
    launches: int = 0
    coalesced: int = 0

    def percentile(self, q: float) -> float:
        return percentile_ns(self.latencies_ns, q)

    @property
    def offered_rps(self) -> float:
        if not self.span_ns:
            return 0.0
        return self.offered / (self.span_ns / 1e9)

    @property
    def goodput_rps(self) -> float:
        """Served requests that met their deadline, per simulated second
        of the run span — the serving quality the load curves plot."""
        if not self.span_ns:
            return 0.0
        return self.deadline_met / (self.span_ns / 1e9)

    @property
    def batched_fraction(self) -> float:
        return self.coalesced / self.served if self.served else 0.0

    def accounted(self) -> bool:
        """Every offered arrival is exactly one of served/shed/failed."""
        return self.offered == self.served + self.shed + self.failed

    def describe(self) -> str:
        return (
            f"{self.spec} seed={self.seed} [{self.policy}]: "
            f"{self.offered} offered -> {self.served} served "
            f"({self.deadline_met} in deadline), {self.shed} shed, "
            f"{self.failed} failed; "
            f"p50 {self.percentile(0.50) / 1e3:.1f} us, "
            f"p99 {self.percentile(0.99) / 1e3:.1f} us, "
            f"p999 {self.percentile(0.999) / 1e3:.1f} us; "
            f"goodput {self.goodput_rps:,.0f} rps "
            f"of {self.offered_rps:,.0f} offered "
            f"({self.batched_fraction:.0%} coalesced, "
            f"{self.launches} launches)"
        )
