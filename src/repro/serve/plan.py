"""Plan cache: memoized traced scan operators keyed by shape class.

A key identifies everything that determines the traced op DAG — the
algorithm, the *padded* problem size (so every request length that rounds
up to the same tile multiple shares one plan), the input dtype, the batch
capacity (``None`` for 1-D plans) and the tile width ``s``.  Values are
:class:`~repro.core.api.ScanPlan` objects, built on first miss via
``ScanContext.build_plan`` / ``build_batched_plan``.

Plans pin their GM tensors for the lifetime of the context (the simulated
HBM is a bump allocator with stack discipline — nothing inside a plan can
be freed individually), so the cache never evicts; ``gm_bytes`` reports
the footprint so callers can budget their working set of shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import BATCHED_ALGORITHMS, SCAN_ALGORITHMS, ScanContext, ScanPlan
from ..core.matrices import batched_tile_rows, padded_length
from ..core.vector_baseline import CUMSUM_COLS
from ..errors import KernelError

__all__ = ["PlanKey", "PlanCache"]


@dataclass(frozen=True)
class PlanKey:
    """Identity of one traced plan (a shape class, not a single shape)."""

    algorithm: str
    #: padded 1-D length, or padded row length for batched plans
    padded: int
    dtype: str
    #: batch row capacity; None marks a 1-D plan
    batch: "int | None"
    s: int
    exclusive: bool = False


def _pad_unit(algorithm: str, row_len: int, s: int, *, batched: bool) -> int:
    if algorithm == "vector":
        return CUMSUM_COLS
    if batched:
        return batched_tile_rows(row_len, s) * s
    return s * s


class PlanCache:
    """Build-once / execute-many store of :class:`ScanPlan` objects."""

    def __init__(self, ctx: ScanContext, *, validate: bool = True):
        self.ctx = ctx
        self.validate = validate
        self._plans: dict[PlanKey, ScanPlan] = {}
        self.hits = 0
        self.misses = 0
        #: cumulative host seconds spent building plans (the cold cost)
        self.build_host_s = 0.0

    # -- key construction ---------------------------------------------------

    def key_1d(
        self,
        algorithm: str,
        n: int,
        dtype,
        *,
        s: int = 128,
        exclusive: bool = False,
    ) -> PlanKey:
        if algorithm not in SCAN_ALGORITHMS:
            raise KernelError(
                f"unknown algorithm {algorithm!r}; pick one of {SCAN_ALGORITHMS}"
            )
        dt = self.ctx._as_plan_dtype(dtype)
        unit = _pad_unit(algorithm, n, s, batched=False)
        return PlanKey(
            algorithm, padded_length(n, unit), dt.name, None, s, exclusive
        )

    def key_batched(
        self, algorithm: str, batch: int, row_len: int, dtype, *, s: int = 128
    ) -> PlanKey:
        if algorithm not in BATCHED_ALGORITHMS:
            raise KernelError(
                f"unknown batched algorithm {algorithm!r}; "
                f"pick one of {BATCHED_ALGORITHMS}"
            )
        dt = self.ctx._as_plan_dtype(dtype)
        unit = _pad_unit(algorithm, row_len, s, batched=True)
        return PlanKey(algorithm, padded_length(row_len, unit), dt.name, batch, s)

    # -- lookup / build -----------------------------------------------------

    def get_1d(
        self,
        algorithm: str,
        n: int,
        dtype,
        *,
        s: int = 128,
        exclusive: bool = False,
    ) -> ScanPlan:
        key = self.key_1d(algorithm, n, dtype, s=s, exclusive=exclusive)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = self.ctx.build_plan(
            algorithm=algorithm,
            n=key.padded,
            dtype=key.dtype,
            s=s,
            exclusive=exclusive,
            validate=self.validate,
        )
        self.build_host_s += plan.build_host_s
        self._plans[key] = plan
        return plan

    def get_batched(
        self, algorithm: str, batch: int, row_len: int, dtype, *, s: int = 128
    ) -> ScanPlan:
        key = self.key_batched(algorithm, batch, row_len, dtype, s=s)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = self.ctx.build_batched_plan(
            algorithm=algorithm,
            batch=batch,
            row_len=key.padded,
            dtype=key.dtype,
            s=s,
            validate=self.validate,
        )
        self.build_host_s += plan.build_host_s
        self._plans[key] = plan
        return plan

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def gm_bytes(self) -> int:
        """Device-memory footprint pinned by the cached plans."""
        total = 0
        for plan in self._plans.values():
            total += plan.x_gm.num_elements * plan.x_gm.dtype.itemsize
            total += plan.y_gm.num_elements * plan.y_gm.dtype.itemsize
        return total

    @property
    def timeline_hits(self) -> int:
        """Replays served from memoized timelines across all cached plans."""
        return sum(p.timeline_hits for p in self._plans.values())

    @property
    def timeline_misses(self) -> int:
        """Replays that computed a timeline across all cached plans."""
        return sum(p.timeline_misses for p in self._plans.values())

    def stats(self) -> dict:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "build_host_s": self.build_host_s,
            "gm_bytes": self.gm_bytes,
            "timeline_hits": self.timeline_hits,
            "timeline_misses": self.timeline_misses,
        }
