"""Plan cache: memoized traced scan operators keyed by shape class.

A key identifies everything that determines the traced op DAG — the
algorithm, the *padded* problem size (so every request length that rounds
up to the same tile multiple shares one plan), the input dtype, the batch
capacity (``None`` for 1-D plans), the tile width ``s`` and the
``block_dim`` override (``None`` = the algorithm's heuristic).  Values
are :class:`~repro.core.api.ScanPlan` objects, built on first miss via
``ScanContext.build_plan`` / ``build_batched_plan``.

The cache is **bounded**: with a ``gm_budget`` (bytes of simulated HBM the
cached plans may pin) it evicts least-recently-used plans, releasing their
GM tensors back to the device allocator's hole list
(:meth:`ScanPlan.release <repro.core.api.ScanPlan.release>`), so a
long-running service with a drifting shape distribution cannot pin HBM
without limit.  The plan just built (or just hit) is never evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.api import (
    BATCHED_ALGORITHMS,
    PLAN_1D_ALGORITHMS,
    ScanContext,
    ScanPlan,
)
from ..core.matrices import batched_tile_rows, padded_length
from ..core.vector_baseline import CUMSUM_COLS
from ..errors import ConfigError, KernelError

__all__ = ["PlanKey", "PlanCache"]


@dataclass(frozen=True)
class PlanKey:
    """Identity of one traced plan (a shape class, not a single shape)."""

    algorithm: str
    #: padded 1-D length, or padded row length for batched plans
    padded: int
    dtype: str
    #: batch row capacity; None marks a 1-D plan
    batch: "int | None"
    s: int
    exclusive: bool = False
    #: explicit block_dim override; None means the algorithm's heuristic
    block_dim: "int | None" = None


def _pad_unit(algorithm: str, row_len: int, s: int, *, batched: bool) -> int:
    if algorithm == "vector":
        return CUMSUM_COLS
    if batched:
        return batched_tile_rows(row_len, s) * s
    return s * s


class PlanCache:
    """Build-once / execute-many store of :class:`ScanPlan` objects,
    LRU-bounded by the GM bytes its plans pin."""

    def __init__(
        self,
        ctx: ScanContext,
        *,
        validate: bool = True,
        gm_budget: "int | None" = None,
    ):
        if gm_budget is not None and gm_budget < 1:
            raise ConfigError(f"gm_budget must be positive, got {gm_budget}")
        self.ctx = ctx
        self.validate = validate
        self.gm_budget = gm_budget
        #: LRU order: oldest first; hits move a key to the end
        self._plans: "OrderedDict[PlanKey, ScanPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: GM bytes returned to the allocator by evictions
        self.evicted_gm_bytes = 0
        #: cumulative host seconds spent building plans (the cold cost)
        self.build_host_s = 0.0

    # -- key construction ---------------------------------------------------

    def key_1d(
        self,
        algorithm: str,
        n: int,
        dtype,
        *,
        s: int = 128,
        exclusive: bool = False,
        block_dim: "int | None" = None,
    ) -> PlanKey:
        if algorithm not in PLAN_1D_ALGORITHMS:
            raise KernelError(
                f"unknown algorithm {algorithm!r}; "
                f"pick one of {PLAN_1D_ALGORITHMS}"
            )
        dt = self.ctx._as_plan_dtype(dtype)
        unit = _pad_unit(algorithm, n, s, batched=False)
        return PlanKey(
            algorithm,
            padded_length(n, unit),
            dt.name,
            None,
            s,
            exclusive,
            block_dim,
        )

    def key_batched(
        self, algorithm: str, batch: int, row_len: int, dtype, *, s: int = 128
    ) -> PlanKey:
        if algorithm not in BATCHED_ALGORITHMS:
            raise KernelError(
                f"unknown batched algorithm {algorithm!r}; "
                f"pick one of {BATCHED_ALGORITHMS}"
            )
        dt = self.ctx._as_plan_dtype(dtype)
        unit = _pad_unit(algorithm, row_len, s, batched=True)
        return PlanKey(algorithm, padded_length(row_len, unit), dt.name, batch, s)

    # -- lookup / build -----------------------------------------------------

    def _hit(self, key: PlanKey) -> "ScanPlan | None":
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
        return plan

    def _admit(self, key: PlanKey, plan: ScanPlan) -> None:
        self.build_host_s += plan.build_host_s
        self._plans[key] = plan
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        """Evict LRU plans until the GM footprint fits the budget.  The
        most-recent plan always stays, even if it alone exceeds the
        budget — a cache that cannot serve its current request is useless."""
        if self.gm_budget is None:
            return
        while len(self._plans) > 1 and self.gm_bytes > self.gm_budget:
            _, plan = self._plans.popitem(last=False)
            self.evicted_gm_bytes += plan.release()
            self.evictions += 1

    def get_1d(
        self,
        algorithm: str,
        n: int,
        dtype,
        *,
        s: int = 128,
        exclusive: bool = False,
        block_dim: "int | None" = None,
        tuned: bool = False,
    ) -> ScanPlan:
        key = self.key_1d(
            algorithm, n, dtype, s=s, exclusive=exclusive, block_dim=block_dim
        )
        plan = self._hit(key)
        if plan is not None:
            return plan
        self.misses += 1
        plan = self.ctx.build_plan(
            algorithm=algorithm,
            n=key.padded,
            dtype=key.dtype,
            s=s,
            block_dim=block_dim,
            exclusive=exclusive,
            validate=self.validate,
        )
        plan.tuned = tuned
        self._admit(key, plan)
        return plan

    def get_batched(
        self,
        algorithm: str,
        batch: int,
        row_len: int,
        dtype,
        *,
        s: int = 128,
        tuned: bool = False,
    ) -> ScanPlan:
        key = self.key_batched(algorithm, batch, row_len, dtype, s=s)
        plan = self._hit(key)
        if plan is not None:
            return plan
        self.misses += 1
        plan = self.ctx.build_batched_plan(
            algorithm=algorithm,
            batch=batch,
            row_len=key.padded,
            dtype=key.dtype,
            s=s,
            validate=self.validate,
        )
        plan.tuned = tuned
        self._admit(key, plan)
        return plan

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def gm_bytes(self) -> int:
        """Device-memory footprint pinned by the cached plans (inputs,
        outputs and per-plan scratch such as MCScan's ``r`` array)."""
        return sum(plan.gm_bytes for plan in self._plans.values())

    @property
    def tuned_plans(self) -> int:
        """Cached plans whose configuration came from a tuned-plan store."""
        return sum(1 for p in self._plans.values() if p.tuned)

    @property
    def timeline_hits(self) -> int:
        """Replays served from memoized timelines across all cached plans."""
        return sum(p.timeline_hits for p in self._plans.values())

    @property
    def timeline_misses(self) -> int:
        """Replays that computed a timeline across all cached plans."""
        return sum(p.timeline_misses for p in self._plans.values())

    def stats(self) -> dict:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_gm_bytes": self.evicted_gm_bytes,
            "tuned_plans": self.tuned_plans,
            "build_host_s": self.build_host_s,
            "gm_bytes": self.gm_bytes,
            "timeline_hits": self.timeline_hits,
            "timeline_misses": self.timeline_misses,
        }
