"""Service statistics: per-request latency and per-launch throughput.

Host latency (wall seconds from ``submit`` to completion) and simulated
device time are tracked separately — the whole point of the serve layer
is that the host side stops dominating, so the report shows both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HOST_PHASES", "LaunchRecord", "ServiceStats"]

#: canonical host-phase order for reports: plan building (kernel tracing),
#: tuned-store lookups, functional NumPy numerics, simulated-timeline
#: replay (incl. retry/fault handling), and pool routing decisions
HOST_PHASES = ("trace", "tune", "numerics", "timeline", "routing")


@dataclass(frozen=True)
class LaunchRecord:
    """One device launch issued by the service."""

    kind: str  # "batched" or "single"
    device_ns: float
    #: logical elements across all requests in the launch
    n_elements: int
    io_bytes: int
    requests: int
    plan_hit: bool
    #: True when the launch replayed a memoized timeline (no scheduling)
    timeline_hit: bool = False
    #: True when the launch's plan config came from a tuned-plan store
    tuned: bool = False
    #: relaunches needed before this launch succeeded (0 = first try)
    retries: int = 0
    #: transient DeviceFaults absorbed while serving this launch
    faults: int = 0
    #: simulated backoff charged to device time across those retries
    backoff_ns: float = 0.0


def _percentile(sorted_vals: "list[float]", q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


@dataclass
class ServiceStats:
    """Aggregates over the lifetime of one :class:`ScanService`."""

    host_latencies_s: "list[float]" = field(default_factory=list)
    launches: "list[LaunchRecord]" = field(default_factory=list)
    #: every DeviceFault observed, including ones whose launch ultimately
    #: failed (so this can exceed the sum of per-launch ``faults``)
    fault_events: int = 0
    #: accumulated host seconds per serving phase (see :data:`HOST_PHASES`).
    #: Phases deferred onto executor threads report the seconds they ran,
    #: which overlap other phases — the breakdown attributes work, it is
    #: not a partition of wall-clock under ``parallel=``.
    phase_host_s: "dict[str, float]" = field(default_factory=dict)
    #: op kind -> (replayed launches, summed simulated device ns) for
    #: graph traffic — the per-op dimension of the device-time breakdown
    op_device_ns: "dict[str, tuple[int, float]]" = field(default_factory=dict)
    #: simulated arrival-to-completion latencies (ns) under open-loop
    #: traffic — queueing + batching wait + device time on the simulated
    #: clock, disjoint from the host-side ``host_latencies_s``
    sim_latencies_ns: "list[float]" = field(default_factory=list)
    #: served requests whose completion beat / missed their deadline
    deadline_hits: int = 0
    deadline_misses: int = 0
    #: requests refused at admission (deadline infeasible or pool dead)
    shed_requests: int = 0

    def record_op(self, kind: str, device_ns: float, *, host_s: float = 0.0) -> None:
        """Charge one graph node's replay to its op kind: simulated device
        ns here, host seconds as an ``op:<kind>`` phase.  The op phases
        are a breakdown *dimension* of the ``timeline`` phase (the node
        replays happen inside it), not additive with the canonical
        phases."""
        count, ns = self.op_device_ns.get(kind, (0, 0.0))
        self.op_device_ns[kind] = (count + 1, ns + device_ns)
        if host_s:
            self.add_phase(f"op:{kind}", host_s)

    def op_line(self) -> "str | None":
        """One formatted per-op device-time line, or None without graph
        traffic."""
        if not self.op_device_ns:
            return None
        parts = [
            f"{kind} {count}x {ns / 1e3:.1f} us"
            for kind, (count, ns) in sorted(self.op_device_ns.items())
        ]
        return "op breakdown    : " + ", ".join(parts)

    def record_request(self, host_s: float) -> None:
        self.host_latencies_s.append(host_s)

    def record_sim_request(
        self, latency_ns: float, *, deadline_met: "bool | None" = None
    ) -> None:
        """Record one served open-loop request: simulated latency plus its
        deadline verdict (None = the request carried no deadline)."""
        self.sim_latencies_ns.append(latency_ns)
        if deadline_met is True:
            self.deadline_hits += 1
        elif deadline_met is False:
            self.deadline_misses += 1

    def record_shed(self, count: int = 1) -> None:
        """Count requests refused at admission (never enqueued)."""
        self.shed_requests += count

    def record_launch(self, record: LaunchRecord) -> None:
        self.launches.append(record)

    def record_fault(self) -> None:
        self.fault_events += 1

    def add_phase(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of host time to one serving phase."""
        self.phase_host_s[phase] = self.phase_host_s.get(phase, 0.0) + seconds

    def phase_line(self) -> "str | None":
        """One formatted breakdown line, or None before any phase ran."""
        if not self.phase_host_s:
            return None
        parts = [
            f"{name} {self.phase_host_s[name] * 1e3:.2f} ms"
            for name in HOST_PHASES
            if name in self.phase_host_s
        ]
        for name in sorted(self.phase_host_s):
            if name not in HOST_PHASES:
                parts.append(f"{name} {self.phase_host_s[name] * 1e3:.2f} ms")
        return "host phases     : " + ", ".join(parts)

    # -- request-side metrics ----------------------------------------------

    @property
    def requests(self) -> int:
        return len(self.host_latencies_s)

    @property
    def mean_host_latency_s(self) -> float:
        if not self.host_latencies_s:
            return 0.0
        return sum(self.host_latencies_s) / len(self.host_latencies_s)

    def host_latency_percentile_s(self, q: float) -> float:
        return _percentile(sorted(self.host_latencies_s), q)

    # -- simulated open-loop metrics -----------------------------------------

    @property
    def sim_requests(self) -> int:
        """Served open-loop requests (simulated-latency samples)."""
        return len(self.sim_latencies_ns)

    def sim_latency_percentile_ns(self, q: float) -> float:
        """Simulated latency percentile (p50/p99/p999 of the traffic run)."""
        return _percentile(sorted(self.sim_latencies_ns), q)

    @property
    def mean_sim_latency_ns(self) -> float:
        if not self.sim_latencies_ns:
            return 0.0
        return sum(self.sim_latencies_ns) / len(self.sim_latencies_ns)

    # -- launch-side metrics -----------------------------------------------

    @property
    def launch_count(self) -> int:
        return len(self.launches)

    @property
    def coalesced_requests(self) -> int:
        return sum(r.requests for r in self.launches if r.kind == "batched")

    @property
    def n_elements(self) -> int:
        return sum(r.n_elements for r in self.launches)

    @property
    def device_ns(self) -> float:
        return sum(r.device_ns for r in self.launches)

    @property
    def gelems_per_s(self) -> float:
        """Simulated device throughput (elements/ns == GElems/s)."""
        ns = self.device_ns
        return self.n_elements / ns if ns else 0.0

    @property
    def bandwidth_gbps(self) -> float:
        ns = self.device_ns
        if not ns:
            return 0.0
        return sum(r.io_bytes for r in self.launches) / ns

    @property
    def plan_hit_rate(self) -> float:
        if not self.launches:
            return 0.0
        return sum(1 for r in self.launches if r.plan_hit) / len(self.launches)

    @property
    def timeline_hit_rate(self) -> float:
        """Fraction of launches served from a memoized timeline (every
        launch after a plan's first is a hit once replay caching is on)."""
        if not self.launches:
            return 0.0
        return sum(1 for r in self.launches if r.timeline_hit) / len(
            self.launches
        )

    @property
    def tuned_launches(self) -> int:
        """Launches whose plan configuration came from the tuned store."""
        return sum(1 for r in self.launches if r.tuned)

    @property
    def tuned_requests(self) -> int:
        """Requests served by tuned-plan launches."""
        return sum(r.requests for r in self.launches if r.tuned)

    @property
    def tuned_hit_rate(self) -> float:
        """Fraction of launches that used a tuned plan configuration."""
        if not self.launches:
            return 0.0
        return self.tuned_launches / len(self.launches)

    # -- resilience metrics --------------------------------------------------

    @property
    def total_retries(self) -> int:
        """Relaunches across all successful launches."""
        return sum(r.retries for r in self.launches)

    @property
    def total_faults(self) -> int:
        """Transient faults absorbed by launches that went on to succeed."""
        return sum(r.faults for r in self.launches)

    @property
    def total_backoff_ns(self) -> float:
        """Simulated retry backoff charged to device time."""
        return sum(r.backoff_ns for r in self.launches)

    @property
    def faulted_launches(self) -> int:
        """Launches that needed at least one retry."""
        return sum(1 for r in self.launches if r.retries)

    def summary(self) -> str:
        lat = sorted(self.host_latencies_s)
        lines = [
            f"requests        : {self.requests} "
            f"({self.coalesced_requests} coalesced into batched launches)",
            f"launches        : {self.launch_count} "
            f"(plan hit rate {self.plan_hit_rate:.0%}, "
            f"timeline hit rate {self.timeline_hit_rate:.0%}, "
            f"tuned {self.tuned_hit_rate:.0%})",
            f"host latency    : mean {self.mean_host_latency_s * 1e3:.2f} ms, "
            f"p50 {_percentile(lat, 0.50) * 1e3:.2f} ms, "
            f"p99 {_percentile(lat, 0.99) * 1e3:.2f} ms",
            f"device          : {self.device_ns / 1e3:.1f} us simulated, "
            f"{self.gelems_per_s:.1f} GElems/s, "
            f"{self.bandwidth_gbps:.1f} GB/s",
        ]
        if self.sim_latencies_ns:
            sim = sorted(self.sim_latencies_ns)
            lines.append(
                f"sim latency     : {self.sim_requests} requests, "
                f"p50 {_percentile(sim, 0.50) / 1e3:.1f} us, "
                f"p99 {_percentile(sim, 0.99) / 1e3:.1f} us, "
                f"p999 {_percentile(sim, 0.999) / 1e3:.1f} us; "
                f"{self.deadline_hits} in deadline / "
                f"{self.deadline_misses} late / "
                f"{self.shed_requests} shed"
            )
        phases = self.phase_line()
        if phases is not None:
            lines.append(phases)
        ops = self.op_line()
        if ops is not None:
            lines.append(ops)
        if self.fault_events:
            lines.append(
                f"resilience      : {self.fault_events} fault events, "
                f"{self.total_retries} retries over "
                f"{self.faulted_launches} launches, "
                f"{self.total_backoff_ns / 1e3:.1f} us backoff"
            )
        return "\n".join(lines)
