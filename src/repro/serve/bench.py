"""Serve-layer benchmark scenarios (shared by ``repro serve-bench`` and
``benchmarks/bench_serve.py``).

Two claims are measured:

* **plan-cache latency** — host wall time of a cache-hit execution vs the
  cold path a first request to a shape class pays (plan build, i.e. the
  full Python-level kernel trace plus validation, then execute).  The hit
  path skips emission, which dominates, so the speedup is large (the
  acceptance bar is >= 5x on ScanUL1, the most emission-heavy kernel).
  The one-shot ``ScanContext.scan`` latency is reported alongside for
  reference — it is the trace-every-call regime the cache replaces;
* **batched-submission throughput** — simulated device throughput of N
  same-shape requests submitted individually through the service (which
  coalesces them into one batched launch) vs calling the batched kernel
  directly on the same 2-D block.  When the batch fills its bucket the
  service issues the identical DAG, so the two agree to within noise; the
  acceptance bar is 10%;
* **replay engines** — host wall time of re-scheduling one cached plan
  via the three replay paths: the reference discrete-event scheduler
  (``engine="des"``, the per-execute cost before timeline memoization),
  the compiled array-form engine (``"compiled"``) and the memoized
  timeline (``"cached"``).  All three produce ns-identical timelines
  (asserted here and in the differential test suite); the acceptance bar
  is a >= 5x wall-clock win of the memoized path over the DES path.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.api import ScanContext
from ..hw.compiled import assert_timelines_equal
from ..hw.config import ASCEND_910B4, DeviceConfig
from .plan import PlanCache
from .service import ScanService

__all__ = [
    "bench_plan_cache",
    "bench_batched_throughput",
    "bench_replay_engines",
    "bench_graph_cache",
    "run_serve_bench",
    "format_report",
    "serve_bench_json",
]


def _bench_input(n: int, dtype: str, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(0xBE7C4 + seed)
    if dtype == "fp16":
        return (rng.integers(0, 3, n) - 1).astype(np.float16)
    return rng.integers(-2, 3, n).astype(np.int8)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_plan_cache(
    *,
    algorithm: str = "scanul1",
    n: int = 1 << 20,
    dtype: str = "fp16",
    s: int = 128,
    repeats: int = 3,
    config: DeviceConfig = ASCEND_910B4,
    ctx: "ScanContext | None" = None,
) -> dict:
    """Cold (cache-miss) vs cache-hit host latency for one shape class."""
    ctx = ctx if ctx is not None else ScanContext(config)
    x = _bench_input(n, dtype)

    oneshot_s = _best_of(lambda: ctx.scan(x, algorithm=algorithm, s=s), repeats)

    cache = PlanCache(ctx)
    t0 = time.perf_counter()
    plan = cache.get_1d(algorithm, n, dtype, s=s)
    result = plan.execute(x)
    cold_s = time.perf_counter() - t0  # what the first request pays
    hit_s = _best_of(lambda: plan.execute(x), repeats)

    return {
        "algorithm": algorithm,
        "n": n,
        "dtype": dtype,
        "s": s,
        "cold_host_s": cold_s,
        "oneshot_host_s": oneshot_s,
        "build_host_s": plan.build_host_s,
        "hit_host_s": hit_s,
        "speedup": cold_s / hit_s if hit_s > 0 else float("inf"),
        "validated": plan.validated,
        "device_us": result.trace.total_ns / 1e3,
    }


def bench_batched_throughput(
    *,
    algorithm: str = "scanu",
    batch: int = 16,
    row_len: int = 1 << 16,
    dtype: str = "fp16",
    s: int = 128,
    config: DeviceConfig = ASCEND_910B4,
    ctx: "ScanContext | None" = None,
) -> dict:
    """Service-coalesced submission vs a direct batched-kernel call."""
    ctx = ctx if ctx is not None else ScanContext(config)
    block = _bench_input(batch * row_len, dtype).reshape(batch, row_len)

    direct = ctx.batched_scan(block, algorithm=algorithm, s=s)
    direct_gelems = direct.n_elements / direct.trace.total_ns

    service = ScanService(ctx, max_batch=batch)
    tickets = [
        service.submit(block[i], algorithm=algorithm, s=s)
        for i in range(batch)
    ]
    service.flush()
    launches = {t.device_ns for t in tickets}
    assert len(launches) == 1, "expected one coalesced launch"
    service_ns = launches.pop()
    service_gelems = sum(t.n for t in tickets) / service_ns

    for i, t in enumerate(tickets):
        np.testing.assert_array_equal(t.result(), direct.values[i])

    return {
        "algorithm": algorithm,
        "batch": batch,
        "row_len": row_len,
        "dtype": dtype,
        "s": s,
        "direct_gelems": direct_gelems,
        "service_gelems": service_gelems,
        "throughput_ratio": service_gelems / direct_gelems,
        "coalesced": all(t.batched for t in tickets),
        "service_summary": service.summary(),
    }


def bench_replay_engines(
    *,
    algorithm: str = "scanul1",
    n: int = 1 << 20,
    dtype: str = "fp16",
    s: int = 128,
    repeats: int = 5,
    config: DeviceConfig = ASCEND_910B4,
    ctx: "ScanContext | None" = None,
) -> dict:
    """Replay-path wall clock for one plan: DES vs compiled vs memoized.

    The replay timings isolate the scheduling cost (what timeline
    memoization removes); the execute timings show the same three paths
    end-to-end, where the functional NumPy computation is a shared floor.
    Timelines from all three paths are asserted ns-identical, and one
    ``audit_timing=True`` replay exercises the self-checking mode.
    """
    ctx = ctx if ctx is not None else ScanContext(config)
    cache = PlanCache(ctx)
    plan = cache.get_1d(algorithm, n, dtype, s=s)
    traced = plan.traced
    device = ctx.device
    x = _bench_input(n, dtype)

    des_trace = device.replay(traced, engine="des")
    compiled_trace = device.replay(traced, engine="compiled")
    cached_trace = device.replay(traced, engine="cached")
    assert_timelines_equal(
        compiled_trace.timeline, des_trace.timeline, label=f"{algorithm} compiled"
    )
    assert_timelines_equal(
        cached_trace.timeline, des_trace.timeline, label=f"{algorithm} cached"
    )
    device.replay(traced, audit_timing=True)  # self-check mode stays live

    replay_des_s = _best_of(lambda: device.replay(traced, engine="des"), repeats)
    replay_compiled_s = _best_of(
        lambda: device.replay(traced, engine="compiled"), repeats
    )
    replay_cached_s = _best_of(
        lambda: device.replay(traced, engine="cached"), repeats
    )
    execute_des_s = _best_of(lambda: plan.execute(x, engine="des"), repeats)
    execute_cached_s = _best_of(lambda: plan.execute(x), repeats)

    return {
        "algorithm": algorithm,
        "n": n,
        "dtype": dtype,
        "s": s,
        "ops": len(traced.program),
        "replay_des_s": replay_des_s,
        "replay_compiled_s": replay_compiled_s,
        "replay_cached_s": replay_cached_s,
        "replay_compiled_speedup": replay_des_s / replay_compiled_s
        if replay_compiled_s > 0
        else float("inf"),
        "replay_cached_speedup": replay_des_s / replay_cached_s
        if replay_cached_s > 0
        else float("inf"),
        "execute_des_s": execute_des_s,
        "execute_cached_s": execute_cached_s,
        "execute_speedup": execute_des_s / execute_cached_s
        if execute_cached_s > 0
        else float("inf"),
        "timelines_identical": True,  # assert_timelines_equal above raised otherwise
        "device_us": des_trace.total_ns / 1e3,
    }


def bench_graph_cache(
    *,
    requests: int = 6,
    vocab: int = 96,
    fusion: str = "aggressive",
    config: DeviceConfig = ASCEND_910B4,
) -> dict:
    """Graph-serving slice: fused-region lowering through the service,
    reporting the GraphPlanCache counters (lowered/fused/hits/misses) the
    service summary surfaces."""
    from ..graph import llm_sample, scan_pipeline

    service = ScanService(config=config, graph_fusion=fusion)
    rng = np.random.default_rng(0xBE7C4)
    sample = llm_sample(vocab, k=8, p=0.75, s=16, prep=("abs", "double"))
    pipe = scan_pipeline(256, pre=("abs",), post=("double",), s=16)
    for j in range(requests):
        if j % 2:
            service.submit_graph(
                pipe, {"x": rng.integers(-2, 3, 256).astype(np.float16)}
            )
        else:
            probs = (rng.permutation(vocab) + 1).astype(np.float16)
            service.submit_graph(sample, {"probs": probs})
    service.flush()
    stats = service.graph_runner.cache.stats()
    (cache_line,) = [
        line.strip()
        for line in service.summary().splitlines()
        if line.startswith("graph cache")
    ]
    return {
        "fusion": fusion,
        "requests": requests,
        "lowered": stats["lowered"],
        "fused_regions": stats["fused"],
        "hits": stats["hits"],
        "misses": stats["misses"],
        "replays": stats["replays"],
        "summary_line": cache_line,
    }


def run_serve_bench(
    *,
    n: int = 1 << 20,
    batch: int = 16,
    row_len: int = 1 << 16,
    dtype: str = "fp16",
    repeats: int = 3,
    config: DeviceConfig = ASCEND_910B4,
) -> dict:
    """Full serve-layer benchmark: plan cache per algorithm + batching."""
    ctx = ScanContext(config)
    plan_rows = [
        bench_plan_cache(
            algorithm=a, n=n, dtype=dtype, repeats=repeats, ctx=ctx
        )
        for a in ("scanu", "scanul1", "mcscan", "vector")
    ]
    batched_rows = [
        bench_batched_throughput(
            algorithm=a, batch=batch, row_len=row_len, dtype=dtype, ctx=ctx
        )
        for a in ("scanu", "scanul1")
    ]
    replay_rows = [
        bench_replay_engines(
            algorithm=a, n=n, dtype=dtype, repeats=repeats, ctx=ctx
        )
        for a in ("scanu", "scanul1", "mcscan")
    ]
    return {
        "n": n,
        "dtype": dtype,
        "config": config.name,
        "plan_cache": plan_rows,
        "batched": batched_rows,
        "replay_engines": replay_rows,
        "graph_cache": bench_graph_cache(config=config),
    }


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`run_serve_bench` result."""
    lines = [
        f"serve-bench: plan cache + request batching "
        f"(n={report['n']:,}, {report['dtype']})",
        "",
        "plan cache: host latency, cold (build+execute) vs cache hit",
        f"{'algorithm':>10} {'cold':>10} {'hit':>10} {'speedup':>8} "
        f"{'one-shot':>10} {'device':>10}",
    ]
    for r in report["plan_cache"]:
        lines.append(
            f"{r['algorithm']:>10} {r['cold_host_s'] * 1e3:8.1f}ms "
            f"{r['hit_host_s'] * 1e3:8.1f}ms {r['speedup']:7.1f}x "
            f"{r['oneshot_host_s'] * 1e3:8.1f}ms {r['device_us']:8.1f}us"
        )
    lines += [
        "",
        "batched submission: simulated throughput, service vs direct kernel",
        f"{'algorithm':>10} {'batch':>6} {'direct':>12} {'service':>12} "
        f"{'ratio':>7}",
    ]
    for r in report["batched"]:
        lines.append(
            f"{r['algorithm']:>10} {r['batch']:>6} "
            f"{r['direct_gelems']:8.1f} GE/s {r['service_gelems']:8.1f} GE/s "
            f"{r['throughput_ratio']:6.3f}"
        )
    phase_lines = [
        (r["algorithm"], line.split(":", 1)[1].strip())
        for r in report["batched"]
        for line in r["service_summary"].splitlines()
        if line.startswith("host phases")
    ]
    if phase_lines:
        lines += ["", "per-phase host time (trace/tune/numerics/timeline):"]
        lines += [f"{algo:>10} {detail}" for algo, detail in phase_lines]
    if report.get("replay_engines"):
        lines += [
            "",
            "replay engines: scheduling wall time per execute "
            "(timelines ns-identical across all three)",
            f"{'algorithm':>10} {'ops':>5} {'DES':>10} {'compiled':>10} "
            f"{'memoized':>10} {'cached/DES':>10}",
        ]
        for r in report["replay_engines"]:
            lines.append(
                f"{r['algorithm']:>10} {r['ops']:>5} "
                f"{r['replay_des_s'] * 1e3:8.2f}ms "
                f"{r['replay_compiled_s'] * 1e3:8.2f}ms "
                f"{r['replay_cached_s'] * 1e3:8.2f}ms "
                f"{r['replay_cached_speedup']:9.1f}x"
            )
    if report.get("graph_cache"):
        g = report["graph_cache"]
        lines += [
            "",
            f"graph serving ({g['requests']} requests, "
            f"fusion={g['fusion']}):",
            f"  {g['summary_line']}",
        ]
    return "\n".join(lines)


def serve_bench_json(report: dict) -> dict:
    """JSON-serializable form of a :func:`run_serve_bench` report.

    The report dicts are already plain scalars/strings; this adds a schema
    tag so ``BENCH_serve.json`` files stay comparable across PRs.
    """
    return {"schema": 1, "benchmark": "serve", **report}
