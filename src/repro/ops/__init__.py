"""Scan-based operators (paper Section 5): split, compress, radix sort,
top-k, top-p (nucleus) sampling, and weighted sampling, plus the baselines
the paper compares against."""

from .compress import CompressKernel, MaskedSelectBaselineKernel
from .driver import MULTINOMIAL_MAX_SUPPORT, AscendOps
from .elementwise import ElementwiseMapKernel, PredicateCountKernel, RangeCopyKernel
from .radix_select import CountMatchKernel
from .radix import (
    DecodeFp16Kernel,
    EncodeFp16Kernel,
    RadixSingleKernel,
    decode_fp16_np,
    encode_fp16_np,
)
from .result import OperatorResult
from .sampling import MultinomialTwoPassKernel
from .sort_baseline import BaselineSortKernel
from .split import SplitIndKernel
from .topk_baseline import BaselineTopKKernel
from .topp import TOPP_BACKENDS, TopPSampler

__all__ = [
    "AscendOps",
    "CountMatchKernel",
    "BaselineSortKernel",
    "BaselineTopKKernel",
    "CompressKernel",
    "DecodeFp16Kernel",
    "ElementwiseMapKernel",
    "EncodeFp16Kernel",
    "MaskedSelectBaselineKernel",
    "MULTINOMIAL_MAX_SUPPORT",
    "MultinomialTwoPassKernel",
    "OperatorResult",
    "PredicateCountKernel",
    "RangeCopyKernel",
    "RadixSingleKernel",
    "SplitIndKernel",
    "TOPP_BACKENDS",
    "TopPSampler",
    "decode_fp16_np",
    "encode_fp16_np",
]
