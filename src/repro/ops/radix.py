"""LSB radix sort built on SplitInd (paper Section 5, Figure 11).

"A radix sort algorithm loops over the bits of the input elements, starting
at the least significant bit, and executes a split where the mask is
obtained by reading the corresponding bit (radix) on each iteration."

Components:

* :class:`RadixSingleKernel` — the vector-only radix extraction: for bit
  ``b`` it produces the int8 flag array ``flag = NOT bit_b(key)`` using
  ``ShiftRight`` / ``Not`` vector instructions (flag = 1 means the key goes
  to the *front*, so zero bits first gives an ascending sort);
* :class:`EncodeFp16Kernel` / :class:`DecodeFp16Kernel` — the pre/post
  processing for floats (Knuth ex. 5.2.5-8/9, also [9]): positive numbers
  get their MSB inverted, negative numbers all bits, yielding an
  order-preserving unsigned encoding;
* the per-bit split itself is :class:`~repro.ops.split.SplitIndKernel`.

The driver in :mod:`repro.ops.driver` chains ``16`` (bit-width) iterations
with ping-pong buffers and carries the original indices through every
split, so the operator returns (sorted values, argsort indices) like
``torch.sort``.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = [
    "RadixSingleKernel",
    "EncodeFp16Kernel",
    "DecodeFp16Kernel",
    "encode_fp16_np",
    "decode_fp16_np",
]

#: elements per vector tile of the elementwise kernels
_TILE = 16384


def encode_fp16_np(x: np.ndarray) -> np.ndarray:
    """Order-preserving fp16 -> uint16 encoding (reference / host side)."""
    bits = x.astype(np.float16).view(np.uint16)
    sign = (bits >> 15).astype(bool)
    out = np.where(sign, ~bits, bits ^ np.uint16(0x8000))
    return out.astype(np.uint16)


def decode_fp16_np(e: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_fp16_np`."""
    e = np.asarray(e, dtype=np.uint16)
    was_positive = (e >> 15).astype(bool)
    bits = np.where(was_positive, e ^ np.uint16(0x8000), ~e)
    return bits.astype(np.uint16).view(np.float16)


class _ElementwiseVecKernel(Kernel):
    """Shared scaffolding: tile loop over all vector cores."""

    mode = "vec"

    def __init__(self, x: GlobalTensor, y: GlobalTensor, block_dim: int):
        super().__init__(block_dim=block_dim)
        if y.num_elements != x.num_elements:
            raise ShapeError("output length must match input")
        self.x = x
        self.y = y

    def _tiles(self, ctx):
        n = self.x.num_elements
        n_tiles = -(-n // _TILE)
        per_block = -(-n_tiles // self.block_dim) * _TILE
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        off = start
        while off < end:
            ln = min(_TILE, end - off)
            yield off, ln
            off += ln


class RadixSingleKernel(_ElementwiseVecKernel):
    """Extract radix ``bit`` of uint16 keys into an int8 flag array
    (flag = 1 where the bit is zero: those elements split to the front)."""

    def __init__(self, keys: GlobalTensor, flags: GlobalTensor, bit: int, block_dim: int):
        super().__init__(keys, flags, block_dim)
        if keys.dtype.name not in ("uint16", "uint8"):
            raise KernelError(
                f"radix keys must be uint16 or uint8, got {keys.dtype.name}"
            )
        if flags.dtype.name != "int8":
            raise KernelError(f"radix flags must be int8, got {flags.dtype.name}")
        if not 0 <= bit < keys.dtype.itemsize * 8:
            raise KernelError(
                f"bit must be in [0, {keys.dtype.itemsize * 8}), got {bit}"
            )
        self.bit = bit

    def run(self, ctx) -> None:
        esz = self.x.dtype.itemsize
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * esz)
        q_bits = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * esz)
        q_out = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE)
        for off, ln in self._tiles(ctx):
            keys = q_in.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, keys, self.x.slice(off, ln), label="load keys")
            bits = q_bits.alloc_tensor(self.x.dtype, ln)
            I.shift_right(ctx, bits, keys, self.bit, label=f"bit {self.bit}")
            flags = q_out.alloc_tensor("int8", ln)
            # flag = NOT(bit & 1): compare (bit & 1) == 0
            I.bit_and(ctx, bits, bits, 1, label="mask lsb")
            I.compare_scalar(ctx, flags, bits, "eq", 0, label="not")
            I.data_copy(ctx, self.y.slice(off, ln), flags, label="store flags")
            q_out.free_tensor(flags)
            q_bits.free_tensor(bits)
            q_in.free_tensor(keys)


class EncodeFp16Kernel(_ElementwiseVecKernel):
    """Order-preserving fp16 -> uint16 encode (radix sort pre-processing)."""

    def __init__(self, x: GlobalTensor, y: GlobalTensor, block_dim: int):
        super().__init__(x, y, block_dim)
        if x.dtype.name != "fp16" or y.dtype.name != "uint16":
            raise KernelError(
                f"encode maps fp16 -> uint16, got {x.dtype.name} -> {y.dtype.name}"
            )

    def run(self, ctx) -> None:
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        q_out = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        for off, ln in self._tiles(ctx):
            t = q_in.alloc_tensor("fp16", ln)
            I.data_copy(ctx, t, self.x.slice(off, ln), label="load")
            out = q_out.alloc_tensor("uint16", ln)
            src_arr = t.array
            dst_arr = out.array

            def _encode() -> None:
                dst_arr[...] = encode_fp16_np(src_arr)

            # sign extraction, select, xor/not: four bit-wise vector
            # instructions over the tile (paper: "implemented the pre- and
            # post-processing steps using AscendC bit-wise vector
            # instructions")
            I.vector_macro(
                ctx,
                label="encode fp16",
                reads=(t,),
                writes=(out,),
                nbytes=4 * ln * 2,
                n_instructions=4,
                apply=_encode,
            )
            I.data_copy(ctx, self.y.slice(off, ln), out, label="store")
            q_out.free_tensor(out)
            q_in.free_tensor(t)


class DecodeFp16Kernel(_ElementwiseVecKernel):
    """uint16 -> fp16 decode (radix sort post-processing)."""

    def __init__(self, x: GlobalTensor, y: GlobalTensor, block_dim: int):
        super().__init__(x, y, block_dim)
        if x.dtype.name != "uint16" or y.dtype.name != "fp16":
            raise KernelError(
                f"decode maps uint16 -> fp16, got {x.dtype.name} -> {y.dtype.name}"
            )

    def run(self, ctx) -> None:
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        q_out = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        for off, ln in self._tiles(ctx):
            t = q_in.alloc_tensor("uint16", ln)
            I.data_copy(ctx, t, self.x.slice(off, ln), label="load")
            out = q_out.alloc_tensor("fp16", ln)
            src_arr = t.array
            dst_arr = out.array

            def _decode() -> None:
                dst_arr[...] = decode_fp16_np(src_arr)

            I.vector_macro(
                ctx,
                label="decode fp16",
                reads=(t,),
                writes=(out,),
                nbytes=4 * ln * 2,
                n_instructions=4,
                apply=_decode,
            )
            I.data_copy(ctx, self.y.slice(off, ln), out, label="store")
            q_out.free_tensor(out)
            q_in.free_tensor(t)
