"""Generic elementwise / predicate vector kernels.

Small building blocks used by the composite operators:

* :class:`ElementwiseMapKernel` — a tiled multi-core map (negation,
  scaling, ...) whose cost is a configurable number of vector instructions
  per tile;
* :class:`PredicateCountKernel` — compares every element against a scalar,
  writes the int8 mask, and writes per-core true-counts to a small GM
  array.  This is the device-side "find the cut position" step of top-p
  sampling and inverse-transform weighted sampling (the position equals the
  count for a monotone predicate).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["ElementwiseMapKernel", "PredicateCountKernel", "RangeCopyKernel"]

_TILE = 16384


class ElementwiseMapKernel(Kernel):
    """``y = fn(x)`` tiled over all participating vector cores.

    ``fn`` may be a single callable or a sequence of callables; a sequence
    is applied left-to-right *inside UB* on each tile (graph-level fusion:
    one GM round trip for the whole chain), with the output dtype re-applied
    after every stage so the result is bit-identical to running the chain
    as separate single-fn kernels.
    """

    mode = "vec"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        fn: "Callable[[np.ndarray], np.ndarray] | tuple | list",
        block_dim: int,
        *,
        n_instructions: int = 1,
        label: str = "map",
    ):
        super().__init__(block_dim=block_dim)
        if y.num_elements != x.num_elements:
            raise ShapeError("map output length must match input")
        self.x = x
        self.y = y
        self.fns = tuple(fn) if isinstance(fn, (tuple, list)) else (fn,)
        if not self.fns:
            raise KernelError("map kernel needs at least one fn")
        self.n_instructions = n_instructions * len(self.fns)
        self.label = label

    def run(self, ctx) -> None:
        n = self.x.num_elements
        # shrink the tile for wide lanes so two double-buffered queues
        # still fit the 192 KB UB (4-byte dtypes would need 256 KB at
        # the full tile)
        itemsize = max(self.x.dtype.itemsize, self.y.dtype.itemsize)
        tile = min(_TILE, _TILE * 2 // itemsize)
        n_tiles = -(-n // tile)
        per_block = -(-n_tiles // self.block_dim) * tile
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        if start >= end:
            return
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=tile * self.x.dtype.itemsize
        )
        q_out = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=tile * self.y.dtype.itemsize
        )
        off = start
        while off < end:
            ln = min(tile, end - off)
            t = q_in.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, t, self.x.slice(off, ln), label=f"{self.label} in")
            out = q_out.alloc_tensor(self.y.dtype, ln)
            src, dst, fns, out_dt = t.array, out.array, self.fns, self.y.dtype.np_dtype

            def _apply() -> None:
                arr = src
                for f in fns:
                    arr = np.asarray(f(arr)).astype(out_dt)
                dst[...] = arr

            I.vector_macro(
                ctx,
                label=self.label,
                reads=(t,),
                writes=(out,),
                nbytes=max(t.nbytes, out.nbytes) * self.n_instructions,
                n_instructions=self.n_instructions,
                apply=_apply,
            )
            I.data_copy(ctx, self.y.slice(off, ln), out, label=f"{self.label} out")
            q_out.free_tensor(out)
            q_in.free_tensor(t)
            off += ln


class PredicateCountKernel(Kernel):
    """``mask = x <op> scalar`` plus per-block true counts.

    For a monotone predicate over a monotone array (e.g. ``cumsum <= theta``)
    the total count *is* the cut position, so summing the small per-block
    count array yields the sampled index / nucleus size without another full
    scan.
    """

    mode = "vec"

    def __init__(
        self,
        x: GlobalTensor,
        mask: GlobalTensor,
        counts: GlobalTensor,
        op: str,
        scalar: float,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        if mask.num_elements != x.num_elements:
            raise ShapeError("mask length must match input")
        if mask.dtype.name != "int8":
            raise KernelError("predicate mask must be int8")
        if counts.num_elements < block_dim or counts.dtype.name != "int32":
            raise KernelError("counts must be int32 with one entry per block")
        self.x = x
        self.mask = mask
        self.counts = counts
        self.op = op
        self.scalar = scalar

    def run(self, ctx) -> None:
        n = self.x.num_elements
        n_tiles = -(-n // _TILE)
        per_block = -(-n_tiles // self.block_dim) * _TILE
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * self.x.dtype.itemsize
        )
        q_mask = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE)
        q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
        total = 0.0
        off = start
        while off < end:
            ln = min(_TILE, end - off)
            t = q_in.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, t, self.x.slice(off, ln), label="pred in")
            m = q_mask.alloc_tensor("int8", ln)
            I.compare_scalar(ctx, m, t, self.op, self.scalar, label="pred cmp")
            total += I.reduce_sum(ctx, m, label="pred count")
            I.data_copy(ctx, self.mask.slice(off, ln), m, label="pred out")
            q_mask.free_tensor(m)
            q_in.free_tensor(t)
            off += ln
        c = q_small.alloc_tensor("int32", 1)
        I.duplicate(ctx, c, total, label="stage count")
        I.data_copy(ctx, self.counts.slice(ctx.block_idx, 1), c, label="store count")
        q_small.free_tensor(c)


class RangeCopyKernel(Kernel):
    """Copy (and optionally map) ``src[offset : offset+length]`` into
    ``dst[:length]``; used by quickselect's segment compaction."""

    mode = "vec"

    def __init__(
        self,
        src: GlobalTensor,
        dst: GlobalTensor,
        offset: int,
        length: int,
        block_dim: int,
        *,
        fn: "Callable[[np.ndarray], np.ndarray] | None" = None,
        label: str = "range copy",
    ):
        super().__init__(block_dim=block_dim)
        if offset < 0 or length <= 0 or offset + length > src.num_elements:
            raise ShapeError(
                f"range [{offset}, {offset + length}) out of bounds for "
                f"source of {src.num_elements} elements"
            )
        if dst.num_elements < length:
            raise ShapeError("destination too small for the copied range")
        self.src = src
        self.dst = dst
        self.offset = offset
        self.length = length
        self.fn = fn
        self.label = label

    def run(self, ctx) -> None:
        # tile sized so two double-buffered queues fit the 192 KB UB even
        # for 4-byte elements
        tile = (40 * 1024) // max(self.src.dtype.itemsize, self.dst.dtype.itemsize)
        n_tiles = -(-self.length // tile)
        per_block = -(-n_tiles // self.block_dim) * tile
        start = ctx.block_idx * per_block
        end = min(start + per_block, self.length)
        if start >= end:
            return
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_in = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=tile * self.src.dtype.itemsize
        )
        q_out = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=tile * self.dst.dtype.itemsize
        )
        off = start
        while off < end:
            ln = min(tile, end - off)
            t = q_in.alloc_tensor(self.src.dtype, ln)
            I.data_copy(ctx, t, self.src.slice(self.offset + off, ln), label="rc in")
            out = q_out.alloc_tensor(self.dst.dtype, ln)
            src_arr, dst_arr = t.array, out.array
            fn, np_dt = self.fn, self.dst.dtype.np_dtype

            def _apply() -> None:
                if fn is None:
                    dst_arr[...] = src_arr.astype(np_dt)
                else:
                    dst_arr[...] = np.asarray(fn(src_arr)).astype(np_dt)

            I.vector_macro(
                ctx, label=self.label, reads=(t,), writes=(out,),
                nbytes=out.nbytes, apply=_apply,
            )
            I.data_copy(ctx, self.dst.slice(off, ln), out, label="rc out")
            q_out.free_tensor(out)
            q_in.free_tensor(t)
            off += ln
