"""Host-side drivers for the scan-based operators (paper Section 5).

:class:`AscendOps` plays the role of the paper's PyTorch operator plugin
layer: it owns a :class:`~repro.core.api.ScanContext`, allocates device
buffers, chains kernel launches, and returns
:class:`~repro.ops.result.OperatorResult` objects whose time is the sum of
the launches — the same accounting the PyTorch profiler would produce for
a chain of custom operators.

Operators: ``split`` / ``compress`` (+ scalar ``masked_select`` baseline),
``radix_sort`` (+ merge-sort ``baseline_sort``), ``topk`` (+ baseline),
``top_p_sample`` (cube and baseline backends) and ``weighted_sample``
(+ ``multinomial_baseline`` with the paper's 2^24 support-size limit).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.config import ASCEND_910B4, DeviceConfig
from ..hw.datatypes import DType, as_dtype
from ..hw.memory import GlobalTensor
from ..core.api import ScanContext
from ..core.matrices import padded_length
from ..core.mcscan import MCScanKernel
from .compress import CompressKernel, MaskedSelectBaselineKernel
from .elementwise import ElementwiseMapKernel, PredicateCountKernel, RangeCopyKernel
from .radix import DecodeFp16Kernel, EncodeFp16Kernel, RadixSingleKernel
from .radix_select import CountMatchKernel
from .result import OperatorResult
from .sort_baseline import BaselineSortKernel
from .split import SplitIndKernel
from .topk_baseline import BaselineTopKKernel
from .sampling import MultinomialTwoPassKernel

__all__ = ["AscendOps", "MULTINOMIAL_MAX_SUPPORT"]

#: torch.multinomial's support-size limit on the baseline (paper Section 5)
MULTINOMIAL_MAX_SUPPORT = 1 << 24

_NEG_INF = np.float16(-np.inf)
_POS_INF = np.float16(np.inf)


def _value_dtype(x: np.ndarray) -> DType:
    kind = np.dtype(x.dtype)
    if kind == np.float16:
        return as_dtype("fp16")
    if kind == np.uint16:
        return as_dtype("uint16")
    if kind == np.int16:
        return as_dtype("int16")
    if kind == np.uint8:
        # the paper's low-precision outlook: 8-bit keys halve the radix
        # sort's iterations (Section 6.3)
        return as_dtype("uint8")
    raise KernelError(
        f"scan-based operators take 8/16-bit elements (paper Section 5), "
        f"got {kind}"
    )


class AscendOps:
    """Scan-based operator suite on a simulated Ascend device."""

    def __init__(
        self,
        scan_context: "ScanContext | None" = None,
        config: DeviceConfig = ASCEND_910B4,
    ):
        self.sc = scan_context if scan_context is not None else ScanContext(config)
        self.device = self.sc.device
        self.config = self.device.config

    # ------------------------------------------------------------------ helpers

    def _vec_block_dim(self, n: int) -> int:
        return max(1, min(self.config.num_vector_cores, -(-n // 16384)))

    def _mix_block_dim(self, n_tiles: int) -> int:
        return max(1, min(self.config.num_ai_cores, n_tiles))

    def _alloc_padded(
        self, name: str, values: np.ndarray, pad_to: int, dtype: DType, pad_value=0
    ) -> GlobalTensor:
        n = values.size
        padded = padded_length(n, pad_to)
        t = self.device.alloc(name, (padded,), dtype)
        buf = np.full(padded, pad_value, dtype=dtype.np_dtype)
        buf[:n] = values
        t.write(buf)
        return t

    def _scan_workspace(self, padded: int, s: int, block_dim: int):
        """(scan, r) buffers for one MCScan-based operator."""
        halves = block_dim * self.config.vector_cores_per_ai_core
        scan = self.device.alloc("ws_scan", (padded,), "int32")
        r = self.device.alloc("ws_r", (halves,), "int32")
        return scan, r

    def _launch_split(
        self,
        traces: list,
        x_gm: GlobalTensor,
        flags_gm: GlobalTensor,
        out_v: GlobalTensor,
        out_i: GlobalTensor,
        in_idx: "GlobalTensor | None",
        s: int,
        block_dim: int,
        scan_gm: GlobalTensor,
        r_gm: GlobalTensor,
        label: str,
    ) -> None:
        consts = self.sc.constants(s, "int8")
        kernel = SplitIndKernel(
            x_gm, flags_gm, scan_gm, r_gm, consts, s, block_dim,
            out_v, out_i, in_indices=in_idx,
        )
        traces.append(self.device.launch(kernel, label=label))

    # ------------------------------------------------------------------ split

    def split(self, x: np.ndarray, flags: np.ndarray, *, s: int = 128) -> OperatorResult:
        """Stable split with original indices (SplitInd, Section 5)."""
        x = np.asarray(x)
        flags = np.asarray(flags)
        if flags.shape != x.shape or x.ndim != 1:
            raise ShapeError("split expects 1-D values and flags of equal length")
        n = x.size
        dt = _value_dtype(x)
        ell = s * s
        mark = self.device.memory.mark()
        try:
            x_gm = self._alloc_padded("split_x", x, ell, dt)
            f_gm = self._alloc_padded(
                "split_f", flags.astype(np.int8), ell, as_dtype("int8")
            )
            padded = x_gm.num_elements
            bd = self._mix_block_dim(padded // ell)
            scan_gm, r_gm = self._scan_workspace(padded, s, bd)
            out_v = self.device.alloc("split_out_v", (padded,), dt)
            out_i = self.device.alloc("split_out_i", (padded,), "int32")
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm, f_gm)
            traces: list = []
            self._launch_split(
                traces, x_gm, f_gm, out_v, out_i, None, s, bd, scan_gm, r_gm,
                label=f"SplitInd(s={s})",
            )
            values = out_v.to_numpy()[:n]
            indices = out_i.to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + 1 + dt.itemsize + 4)
        return OperatorResult(values, traces, n, io, indices=indices)

    # ------------------------------------------------------------------ compress

    def compress(self, x: np.ndarray, mask: np.ndarray, *, s: int = 128) -> OperatorResult:
        """Masked compaction (``torch.masked_select`` equivalent)."""
        x = np.asarray(x)
        mask = np.asarray(mask)
        if mask.shape != x.shape or x.ndim != 1:
            raise ShapeError("compress expects 1-D values and mask of equal length")
        n = x.size
        dt = _value_dtype(x)
        ell = s * s
        n_true = int(np.count_nonzero(mask))
        mark = self.device.memory.mark()
        try:
            x_gm = self._alloc_padded("cmp_x", x, ell, dt)
            m_gm = self._alloc_padded(
                "cmp_m", mask.astype(np.int8), ell, as_dtype("int8")
            )
            padded = x_gm.num_elements
            bd = self._mix_block_dim(padded // ell)
            scan_gm, r_gm = self._scan_workspace(padded, s, bd)
            out_v = self.device.alloc("cmp_out", (padded,), dt)
            consts = self.sc.constants(s, "int8")
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm, m_gm)
            kernel = CompressKernel(
                x_gm, m_gm, scan_gm, r_gm, consts, s, bd, out_v
            )
            trace = self.device.launch(kernel, label=f"Compress(s={s})")
            values = out_v.to_numpy()[:n_true]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + 1) + n_true * dt.itemsize
        return OperatorResult(values, [trace], n, io)

    def masked_select_baseline(self, x: np.ndarray, mask: np.ndarray) -> OperatorResult:
        """The unoptimised scalar-unit ``torch.masked_select`` baseline."""
        x = np.asarray(x)
        mask = np.asarray(mask)
        if mask.shape != x.shape or x.ndim != 1:
            raise ShapeError("masked_select expects 1-D values and mask")
        n = x.size
        dt = _value_dtype(x)
        n_true = int(np.count_nonzero(mask))
        mark = self.device.memory.mark()
        try:
            x_gm = self._alloc_padded("msb_x", x, 1, dt)
            m_gm = self._alloc_padded(
                "msb_m", mask.astype(np.int8), 1, as_dtype("int8")
            )
            out = self.device.alloc("msb_out", (n,), dt)
            kernel = MaskedSelectBaselineKernel(x_gm, m_gm, out)
            trace = self.device.launch(kernel, label="masked_select baseline")
            values = out.to_numpy()[:n_true]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + 1) + n_true * dt.itemsize
        return OperatorResult(values, [trace], n, io)

    # ------------------------------------------------------------------ radix sort

    def radix_sort(
        self, x: np.ndarray, *, s: int = 128, descending: bool = False
    ) -> OperatorResult:
        """Stable LSB radix sort of 16-bit keys returning (values, indices),
        matching the ``torch.sort`` contract (Section 6.3)."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError("radix_sort expects a 1-D array")
        n = x.size
        dt = _value_dtype(x)
        is_float = dt.name == "fp16"
        ell = s * s
        # LSB radix: one split per key bit -- 16 for fp16/u16/i16, 8 for
        # uint8 (the "additional 2x for low-precision sorting" of Section 6.3)
        bits = dt.itemsize * 8
        mark = self.device.memory.mark()
        try:
            traces: list = []
            key_dt = as_dtype("uint16") if dt.itemsize == 2 else as_dtype("uint8")
            signed = not is_float and np.issubdtype(
                dt.np_dtype, np.signedinteger
            )
            if is_float:
                pad = _NEG_INF if descending else _POS_INF
                x_gm = self._alloc_padded("rs_x", x, ell, dt, pad_value=pad)
            else:
                info = np.iinfo(dt.np_dtype)
                pad = (info.min if signed else 0) if descending else info.max
                x_gm = self._alloc_padded("rs_x", x, ell, dt, pad_value=pad)
            padded = x_gm.num_elements
            vbd = self._vec_block_dim(padded)
            bd = self._mix_block_dim(padded // ell)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)

            keys = [
                self.device.alloc("rs_k0", (padded,), key_dt),
                self.device.alloc("rs_k1", (padded,), key_dt),
            ]
            idx = [
                self.device.alloc("rs_i0", (padded,), "int32"),
                self.device.alloc("rs_i1", (padded,), "int32"),
            ]
            flags = self.device.alloc("rs_f", (padded,), "int8")
            scan_gm, r_gm = self._scan_workspace(padded, s, bd)

            # pre-processing: order-preserving key encoding
            work = x_gm
            if is_float and descending:
                neg = self.device.alloc("rs_neg", (padded,), dt)
                traces.append(
                    self.device.launch(
                        ElementwiseMapKernel(
                            x_gm, neg, lambda v: -v, vbd, label="negate"
                        ),
                        label="negate",
                    )
                )
                work = neg
            if is_float:
                traces.append(
                    self.device.launch(
                        EncodeFp16Kernel(work, keys[0], vbd), label="encode fp16"
                    )
                )
            else:
                # order-preserving integer encode: signed keys flip the
                # sign bit (two's-complement -> biased unsigned), then
                # descending inverts the whole key
                key_np = key_dt.np_dtype
                bias = key_np.type((1 << (bits - 1)) if signed else 0)
                enc = (
                    (lambda v: ~(v.astype(key_np) ^ bias))
                    if descending
                    else (lambda v: v.astype(key_np) ^ bias)
                )
                traces.append(
                    self.device.launch(
                        ElementwiseMapKernel(
                            work, keys[0], enc, vbd, label="encode keys"
                        ),
                        label="encode keys",
                    )
                )

            # 16 split iterations, LSB first
            cur = 0
            for b in range(bits):
                traces.append(
                    self.device.launch(
                        RadixSingleKernel(keys[cur], flags, b, vbd),
                        label=f"RadixSingle bit {b}",
                    )
                )
                self._launch_split(
                    traces,
                    keys[cur],
                    flags,
                    keys[1 - cur],
                    idx[1 - cur],
                    idx[cur] if b > 0 else None,
                    s,
                    bd,
                    scan_gm,
                    r_gm,
                    label=f"split bit {b}",
                )
                cur = 1 - cur

            # post-processing: decode keys back to values
            out_v = self.device.alloc("rs_out_v", (padded,), dt)
            if is_float:
                traces.append(
                    self.device.launch(
                        DecodeFp16Kernel(keys[cur], out_v, vbd), label="decode fp16"
                    )
                )
                if descending:
                    traces.append(
                        self.device.launch(
                            ElementwiseMapKernel(
                                out_v, out_v, lambda v: -v, vbd, label="negate out"
                            ),
                            label="negate out",
                        )
                    )
            else:
                key_np = key_dt.np_dtype
                bias = key_np.type((1 << (bits - 1)) if signed else 0)
                fn = (
                    (lambda v: ((~v) ^ bias).astype(dt.np_dtype))
                    if descending
                    else (lambda v: (v ^ bias).astype(dt.np_dtype))
                )
                traces.append(
                    self.device.launch(
                        ElementwiseMapKernel(
                            keys[cur], out_v, fn, vbd, label="decode keys"
                        ),
                        label="decode keys",
                    )
                )
            values = out_v.to_numpy()[:n]
            indices = idx[cur].to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + dt.itemsize + 4)
        return OperatorResult(values, traces, n, io, indices=indices)

    def baseline_sort(
        self, x: np.ndarray, *, descending: bool = False
    ) -> OperatorResult:
        """``torch.sort`` baseline: vector-only two-level merge sort."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError("baseline_sort expects a 1-D array")
        n = x.size
        dt = _value_dtype(x)
        if dt.name != "fp16" and descending:
            raise KernelError("descending baseline sort is implemented for fp16")
        vbd = self._vec_block_dim(n)
        mark = self.device.memory.mark()
        try:
            traces: list = []
            x_gm = self._alloc_padded("bs_x", x, 1, dt)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)
            work = x_gm
            if descending:
                neg = self.device.alloc("bs_neg", (n,), dt)
                traces.append(
                    self.device.launch(
                        ElementwiseMapKernel(
                            x_gm, neg, lambda v: -v, vbd, label="negate"
                        ),
                        label="negate",
                    )
                )
                work = neg
            out_v = self.device.alloc("bs_out_v", (n,), dt)
            out_i = self.device.alloc("bs_out_i", (n,), "int32")
            sc_v = self.device.alloc("bs_sc_v", (n,), dt)
            sc_i = self.device.alloc("bs_sc_i", (n,), "int32")
            bd = min(self.config.num_vector_cores, max(1, -(-n // 8192)))
            kernel = BaselineSortKernel(work, out_v, out_i, sc_v, sc_i, bd)
            traces.append(self.device.launch(kernel, label="torch.sort baseline"))
            if descending:
                traces.append(
                    self.device.launch(
                        ElementwiseMapKernel(
                            out_v, out_v, lambda v: -v, vbd, label="negate out"
                        ),
                        label="negate out",
                    )
                )
            values = out_v.to_numpy()
            indices = out_i.to_numpy()
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize * 2 + 4)
        return OperatorResult(values, traces, n, io, indices=indices)

    # ------------------------------------------------------------------ top-k

    def topk(self, x: np.ndarray, k: int, *, s: int = 128) -> OperatorResult:
        """Top-k selection via partial quickselect on SplitInd (Section 5).

        Reproduces the paper's *negative* result: for small k this does not
        beat the streaming baseline (several full-array split passes versus
        the baseline's single pass).
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError("topk expects a 1-D array")
        if not 1 <= k <= x.size:
            raise KernelError(f"k={k} out of range for n={x.size}")
        dt = _value_dtype(x)
        if dt.name != "fp16":
            raise KernelError("topk is implemented for fp16 values")
        n = x.size
        ell = s * s
        rng = np.random.default_rng(0x5EED)
        mark = self.device.memory.mark()
        try:
            traces: list = []
            cur_v = self._alloc_padded("tk_v", x, ell, dt, pad_value=_NEG_INF)
            padded0 = cur_v.num_elements
            cur_i = self.device.alloc("tk_i", (padded0,), "int32")
            cur_i.write(np.arange(padded0, dtype=np.int32))
            if self.sc.warm_inputs:
                self.device.warm_l2(cur_v)

            collected_v: list[np.ndarray] = []
            collected_i: list[np.ndarray] = []
            seg_len = n
            k_rem = k
            while seg_len > max(2 * ell, k_rem):
                padded = padded_length(seg_len, ell)
                vbd = self._vec_block_dim(padded)
                bd = self._mix_block_dim(padded // ell)
                # pivot: a random value of the segment (host-chosen, as the
                # operator's tiling pass would sample it)
                pivot = float(cur_v.flat[rng.integers(0, seg_len)])
                flags = self.device.alloc("tk_f", (padded,), "int8")
                counts = self.device.alloc("tk_c", (vbd,), "int32")
                traces.append(
                    self.device.launch(
                        PredicateCountKernel(
                            cur_v.prefix(padded), flags, counts, "gt", pivot, vbd
                        ),
                        label="pivot mask",
                    )
                )
                count = int(counts.to_numpy().sum())
                out_v = self.device.alloc("tk_ov", (padded,), dt)
                out_i = self.device.alloc("tk_oi", (padded,), "int32")
                scan_gm, r_gm = self._scan_workspace(padded, s, bd)
                self._launch_split(
                    traces,
                    cur_v.prefix(padded),
                    flags,
                    out_v,
                    out_i,
                    cur_i.prefix(padded),
                    s, bd, scan_gm, r_gm,
                    label="topk split",
                )
                if count >= k_rem:
                    cur_v, cur_i, seg_len = out_v, out_i, count
                else:
                    collected_v.append(out_v.to_numpy()[:count])
                    collected_i.append(out_i.to_numpy()[:count])
                    k_rem -= count
                    # keep the "not greater" side (it starts at offset
                    # count); compact it to the front of fresh buffers
                    rest = seg_len - count
                    new_pad = padded_length(rest, ell)
                    new_v = self.device.alloc("tk_v2", (new_pad,), dt)
                    new_v.flat[rest:] = _NEG_INF  # allocator pad fill
                    new_i = self.device.alloc("tk_i2", (new_pad,), "int32")
                    traces.append(
                        self.device.launch(
                            RangeCopyKernel(out_v, new_v, count, rest, vbd),
                            label="compact vals",
                        )
                    )
                    traces.append(
                        self.device.launch(
                            RangeCopyKernel(out_i, new_i, count, rest, vbd),
                            label="compact idx",
                        )
                    )
                    cur_v, cur_i, seg_len = new_v, new_i, rest

            # final: sort the remaining small segment descending and take
            # the top k_rem
            fin_v, fin_i = self._small_sort_desc(traces, cur_v, cur_i, seg_len)
            collected_v.append(fin_v[:k_rem])
            collected_i.append(fin_i[:k_rem])
            values = np.concatenate(collected_v)
            indices = np.concatenate(collected_i)
            order = np.argsort(-values.astype(np.float32), kind="stable")
            values, indices = values[order], indices[order]
        finally:
            self.device.memory.release(mark)
        io = n * dt.itemsize + k * (dt.itemsize + 4)
        return OperatorResult(values[:k], traces, n, io, indices=indices[:k])

    def _small_sort_desc(self, traces, v_gm, i_gm, seg_len):
        dt = v_gm.dtype
        vbd = self._vec_block_dim(seg_len)
        neg = self.device.alloc("tk_sneg", (seg_len,), dt)
        traces.append(
            self.device.launch(
                RangeCopyKernel(v_gm, neg, 0, seg_len, vbd, fn=lambda v: -v),
                label="negate final",
            )
        )
        out_v = self.device.alloc("tk_fo_v", (seg_len,), dt)
        out_i = self.device.alloc("tk_fo_i", (seg_len,), "int32")
        sc_v = self.device.alloc("tk_fs_v", (seg_len,), dt)
        sc_i = self.device.alloc("tk_fs_i", (seg_len,), "int32")
        bd = min(self.config.num_vector_cores, max(1, -(-seg_len // 8192)))
        traces.append(
            self.device.launch(
                BaselineSortKernel(neg, out_v, out_i, sc_v, sc_i, bd),
                label="final small sort",
            )
        )
        vals = -out_v.to_numpy().astype(np.float32)
        pos = out_i.to_numpy()
        # out_i indexes into the segment; map through the carried indices
        orig = i_gm.to_numpy()[pos]
        return vals.astype(dt.np_dtype), orig

    def topk_radix(self, x: np.ndarray, k: int, *, s: int = 128) -> OperatorResult:
        """Radix top-k selection (the RadiK approach the paper cites for
        large k): find the k-th largest key with 16 counting passes that
        move no values, then gather the winners with one split and sort
        them.  Scales to large k where both the quickselect and the
        streaming baseline degrade."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError("topk_radix expects a 1-D array")
        if not 1 <= k <= x.size:
            raise KernelError(f"k={k} out of range for n={x.size}")
        dt = _value_dtype(x)
        if dt.name != "fp16":
            raise KernelError("topk_radix is implemented for fp16 values")
        n = x.size
        ell = s * s
        mark = self.device.memory.mark()
        try:
            traces: list = []
            # pad with -inf: its encoding (0x03FF) is strictly below every
            # finite key's, so pads can never enter the top-k of real data
            x_gm = self._alloc_padded("tkr_x", x, ell, dt, pad_value=_NEG_INF)
            padded = x_gm.num_elements
            vbd = self._vec_block_dim(padded)
            bd = self._mix_block_dim(padded // ell)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)
            keys = self.device.alloc("tkr_k", (padded,), "uint16")
            traces.append(
                self.device.launch(
                    EncodeFp16Kernel(x_gm, keys, vbd), label="encode"
                )
            )

            # 16 counting passes, MSB first: fix one bit of the k-th
            # largest key per pass
            counts = self.device.alloc("tkr_c", (vbd,), "int32")
            prefix_mask = 0
            prefix_val = 0
            k_rem = k
            for bit in range(15, -1, -1):
                b = 1 << bit
                traces.append(
                    self.device.launch(
                        CountMatchKernel(
                            keys, counts, prefix_mask | b, prefix_val | b, vbd
                        ),
                        label=f"count bit {bit}",
                    )
                )
                c = int(counts.to_numpy()[:vbd].sum())
                if c >= k_rem:
                    prefix_val |= b
                else:
                    k_rem -= c
                prefix_mask |= b
            threshold = prefix_val  # encoding of the k-th largest key

            # gather: all strictly-greater keys, plus the first k_rem ties
            def _masked_split(op: str, scalar: int, label: str):
                mask = self.device.alloc("tkr_m", (padded,), "int8")
                mcounts = self.device.alloc("tkr_mc", (vbd,), "int32")
                traces.append(
                    self.device.launch(
                        PredicateCountKernel(keys, mask, mcounts, op, scalar, vbd),
                        label=f"{label} mask",
                    )
                )
                total = int(mcounts.to_numpy()[:vbd].sum())
                out_v = self.device.alloc("tkr_ov", (padded,), dt)
                out_i = self.device.alloc("tkr_oi", (padded,), "int32")
                scan_gm, r_gm = self._scan_workspace(padded, s, bd)
                self._launch_split(
                    traces, x_gm, mask, out_v, out_i, None, s, bd,
                    scan_gm, r_gm, label=f"{label} split",
                )
                return out_v, out_i, total

            gt_v, gt_i, n_gt = _masked_split("gt", threshold, "greater")
            parts_v = [gt_v.to_numpy()[:n_gt]]
            parts_i = [gt_i.to_numpy()[:n_gt]]
            if k_rem > 0:
                eq_v, eq_i, _ = _masked_split("eq", threshold, "ties")
                parts_v.append(eq_v.to_numpy()[:k_rem])
                parts_i.append(eq_i.to_numpy()[:k_rem])
            sel_v = np.concatenate(parts_v)
            sel_i = np.concatenate(parts_i)
        finally:
            self.device.memory.release(mark)

        # final ordering of the k winners on-device
        sort_res = self.baseline_sort(sel_v, descending=True)
        values = sort_res.values
        indices = sel_i[sort_res.indices].astype(np.int32)
        traces.extend(sort_res.traces)
        io = n * dt.itemsize + k * (dt.itemsize + 4)
        return OperatorResult(values, traces, n, io, indices=indices)

    def topk_baseline(self, x: np.ndarray, k: int) -> OperatorResult:
        """The stock top-k operator: one streaming pass with per-core
        partial top-k state plus a final merge."""
        x = np.asarray(x)
        n = x.size
        dt = _value_dtype(x)
        if not 1 <= k <= n:
            raise KernelError(f"k={k} out of range for n={n}")
        vbd = self._vec_block_dim(n)
        mark = self.device.memory.mark()
        try:
            x_gm = self._alloc_padded("tkb_x", x, 1, dt)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)
            out_v = self.device.alloc("tkb_v", (k,), dt)
            out_i = self.device.alloc("tkb_i", (k,), "int32")
            kernel = BaselineTopKKernel(x_gm, out_v, out_i, k, vbd)
            trace = self.device.launch(kernel, label="topk baseline")
            values = out_v.to_numpy()
            indices = out_i.to_numpy()
        finally:
            self.device.memory.release(mark)
        io = n * dt.itemsize + k * (dt.itemsize + 4)
        return OperatorResult(values, [trace], n, io, indices=indices)

    # ------------------------------------------------------------------ sampling

    def weighted_sample(
        self, w: np.ndarray, *, theta: "float | None" = None,
        rng: "np.random.Generator | None" = None, s: int = 128,
    ) -> OperatorResult:
        """Inverse-transform weighted sampling (Section 5): scan the weights
        with MCScan, then locate the cut position ``min{i : scan[i] >
        theta * sum(w)}`` with a predicate-count pass (the SplitInd
        formulation of the paper reduces to the same count for the monotone
        cumulative array)."""
        w = np.asarray(w)
        if w.ndim != 1:
            raise ShapeError("weighted_sample expects a 1-D weight array")
        dt = _value_dtype(w)
        if dt.name != "fp16":
            raise KernelError("weighted sampling is implemented for fp16 weights")
        if (np.asarray(w, dtype=np.float32) < 0).any():
            raise KernelError("weights must be non-negative")
        n = w.size
        if theta is None:
            rng = rng if rng is not None else np.random.default_rng()
            theta = float(rng.random())
        if not 0.0 <= theta < 1.0:
            raise KernelError(f"theta must be in [0, 1), got {theta}")
        ell = s * s
        mark = self.device.memory.mark()
        try:
            traces: list = []
            x_gm = self._alloc_padded("wsmp_x", w, ell, dt)
            padded = x_gm.num_elements
            bd = self._mix_block_dim(padded // ell)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)
            cum = self.device.alloc("wsmp_cum", (padded,), "fp32")
            halves = bd * self.config.vector_cores_per_ai_core
            r = self.device.alloc("wsmp_r", (halves,), "fp32")
            consts = self.sc.constants(s, "fp16")
            traces.append(
                self.device.launch(
                    MCScanKernel(x_gm, cum, r, consts, s, bd),
                    label="scan weights",
                )
            )
            total = float(cum.flat[n - 1])
            if total <= 0:
                raise KernelError("weights sum to zero")
            cut = theta * total
            vbd = self._vec_block_dim(padded)
            mask = self.device.alloc("wsmp_m", (padded,), "int8")
            counts = self.device.alloc("wsmp_c", (vbd,), "int32")
            traces.append(
                self.device.launch(
                    PredicateCountKernel(cum, mask, counts, "le", cut, vbd),
                    label="locate sample",
                )
            )
            below = int(counts.to_numpy().sum())
            # padded tail of cum is constant == total > cut, never counted
            sample = min(below, n - 1)
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + 4)
        return OperatorResult(
            np.asarray([sample], dtype=np.int64), traces, n, io,
            extras={"theta": theta, "total": total},
        )

    def multinomial_baseline(
        self, w: np.ndarray, *, theta: "float | None" = None,
        rng: "np.random.Generator | None" = None,
    ) -> OperatorResult:
        """``torch.multinomial`` baseline: two-pass vector sampling with the
        stock operator's 2^24 support-size limit (paper Section 5)."""
        w = np.asarray(w)
        if w.ndim != 1:
            raise ShapeError("multinomial expects a 1-D weight array")
        if w.size > MULTINOMIAL_MAX_SUPPORT:
            raise KernelError(
                f"baseline multinomial supports at most 2^24 = "
                f"{MULTINOMIAL_MAX_SUPPORT} elements, got {w.size} "
                f"(the scan-based weighted sampler has no such limit)"
            )
        dt = _value_dtype(w)
        n = w.size
        if theta is None:
            rng = rng if rng is not None else np.random.default_rng()
            theta = float(rng.random())
        vbd = self._vec_block_dim(n)
        mark = self.device.memory.mark()
        try:
            x_gm = self._alloc_padded("mnb_x", w, 1, dt)
            if self.sc.warm_inputs:
                self.device.warm_l2(x_gm)
            counts = self.device.alloc("mnb_c", (vbd,), "int32")
            kernel = MultinomialTwoPassKernel(x_gm, counts, theta, vbd)
            trace = self.device.launch(kernel, label="multinomial baseline")
            sample = min(int(counts.to_numpy().sum()), n - 1)
        finally:
            self.device.memory.release(mark)
        io = n * dt.itemsize
        return OperatorResult(
            np.asarray([sample], dtype=np.int64), [trace], n, io,
            extras={"theta": theta},
        )
