"""Top-p (nucleus) sampling (paper Sections 5, 6.5; Figure 13).

Implements the Llama3 ``sample_top_p`` pipeline: sort the token
probabilities in descending order, compute their cumulative sum, cut the
nucleus where the *exclusive* cumulative mass exceeds ``p``, and draw one
token from the (unnormalised) nucleus by inverse-transform sampling.

Two backends:

* ``"cube"`` — the paper's scan-intensive version: radix sort (16 splits,
  each an MCScan over the radix mask) + one MCScan cumsum + two
  predicate-count passes.  As Section 5 notes, this makes top-p execute
  17 scans per batch.
* ``"baseline"`` — the stock PyTorch path: merge-sort ``torch.sort`` and
  the vector-only ``torch.cumsum`` ("the baseline top-p sampling
  implementation scales poorly, mainly because the baseline torch.cumsum
  operator is not optimized for Ascend").

The two inverse-transform facts used to avoid extra passes: the exclusive
cumulative sum equals ``cumsum[i] - probs[i]``, so the nucleus size is
``1 + #{cumsum <= p}``; and a ``theta`` drawn in ``[0, mass)`` lands inside
the nucleus automatically, so the sampled position is ``#{cumsum < theta}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError, ShapeError
from ..core.mcscan import MCScanKernel
from ..core.vector_baseline import CumSumKernel, CUMSUM_COLS
from ..core.matrices import padded_length
from .driver import AscendOps
from .elementwise import PredicateCountKernel
from .result import OperatorResult

__all__ = ["TopPSampler", "TOPP_BACKENDS"]

TOPP_BACKENDS = ("cube", "baseline")


@dataclass
class _SortedProbs:
    values: np.ndarray  # descending probabilities
    indices: np.ndarray  # original token ids
    traces: list


class TopPSampler:
    """Llama3-style nucleus sampler on the simulated device."""

    def __init__(self, ops: "AscendOps | None" = None, *, s: int = 128):
        self.ops = ops if ops is not None else AscendOps()
        self.s = s
        self.device = self.ops.device

    # -- pipeline stages ----------------------------------------------------------

    def _sort_desc(self, probs: np.ndarray, backend: str) -> _SortedProbs:
        if backend == "cube":
            res = self.ops.radix_sort(probs, s=self.s, descending=True)
        else:
            res = self.ops.baseline_sort(probs, descending=True)
        return _SortedProbs(res.values, res.indices, list(res.traces))

    def _cumsum(self, sorted_probs: np.ndarray, backend: str, traces: list):
        """Device cumulative sum of the sorted probabilities; returns the
        fp32 cumulative array (host copy) while appending the trace."""
        device = self.device
        n = sorted_probs.size
        mark = device.memory.mark()
        try:
            if backend == "cube":
                ell = self.s * self.s
                padded = padded_length(n, ell)
                x_gm = device.alloc("tp_sorted", (padded,), "fp16")
                buf = np.zeros(padded, dtype=np.float16)
                buf[:n] = sorted_probs
                x_gm.write(buf)
                cum = device.alloc("tp_cum", (padded,), "fp32")
                bd = self.ops._mix_block_dim(padded // ell)
                halves = bd * device.config.vector_cores_per_ai_core
                r = device.alloc("tp_r", (halves,), "fp32")
                consts = self.ops.sc.constants(self.s, "fp16")
                if self.ops.sc.warm_inputs:
                    device.warm_l2(x_gm, cum)
                traces.append(
                    device.launch(
                        MCScanKernel(x_gm, cum, r, consts, self.s, bd),
                        label="top-p cumsum (MCScan)",
                    )
                )
                cum_host = cum.to_numpy()[:n]
            else:
                padded = padded_length(n, CUMSUM_COLS)
                x_gm = device.alloc("tp_sorted", (padded,), "fp16")
                buf = np.zeros(padded, dtype=np.float16)
                buf[:n] = sorted_probs
                x_gm.write(buf)
                y_gm = device.alloc("tp_cum16", (padded,), "fp16")
                if self.ops.sc.warm_inputs:
                    device.warm_l2(x_gm, y_gm)
                traces.append(
                    device.launch(
                        CumSumKernel(x_gm, y_gm), label="top-p cumsum (baseline)"
                    )
                )
                cum_host = y_gm.to_numpy()[:n].astype(np.float32)
        finally:
            device.memory.release(mark)
        return cum_host

    def _count(self, array: np.ndarray, op: str, scalar: float, traces: list) -> int:
        """Device predicate-count over an fp32 array."""
        device = self.device
        n = array.size
        vbd = self.ops._vec_block_dim(n)
        mark = device.memory.mark()
        try:
            x_gm = device.alloc("tp_pred_x", (n,), "fp32")
            x_gm.write(array)
            mask = device.alloc("tp_pred_m", (n,), "int8")
            counts = device.alloc("tp_pred_c", (vbd,), "int32")
            if self.ops.sc.warm_inputs:
                device.warm_l2(x_gm)
            traces.append(
                device.launch(
                    PredicateCountKernel(x_gm, mask, counts, op, scalar, vbd),
                    label=f"top-p count {op} {scalar:.4g}",
                )
            )
            total = int(counts.to_numpy().sum())
        finally:
            device.memory.release(mark)
        return total

    # -- public API --------------------------------------------------------------------

    def sample(
        self,
        probs: np.ndarray,
        p: float,
        *,
        backend: str = "cube",
        theta: "float | None" = None,
        rng: "np.random.Generator | None" = None,
    ) -> OperatorResult:
        """Draw one token id from the top-p nucleus of ``probs``.

        ``probs`` must be non-negative fp16 (they need not be normalised;
        the nucleus cut uses the normalised mass).
        """
        probs = np.asarray(probs)
        if probs.ndim != 1:
            raise ShapeError("top-p expects a 1-D probability vector")
        if probs.dtype != np.float16:
            raise KernelError("top-p operates on fp16 probabilities")
        if not 0.0 < p <= 1.0:
            raise KernelError(f"p must be in (0, 1], got {p}")
        if backend not in TOPP_BACKENDS:
            raise KernelError(
                f"unknown backend {backend!r}; pick one of {TOPP_BACKENDS}"
            )
        n = probs.size
        if theta is None:
            rng = rng if rng is not None else np.random.default_rng()
            theta = float(rng.random())

        sorted_probs = self._sort_desc(probs, backend)
        traces = sorted_probs.traces

        cum = self._cumsum(sorted_probs.values, backend, traces)
        total = float(cum[-1])
        if total <= 0:
            raise KernelError("probabilities sum to zero")

        # nucleus size: exclusive mass (cum - prob) <= p * total
        k_nucleus = 1 + self._count(cum, "le", p * total, traces)
        k_nucleus = min(k_nucleus, n)
        mass = float(cum[k_nucleus - 1])

        # inverse-transform draw within the nucleus
        cut = theta * mass
        pos = self._count(cum, "lt", cut, traces)
        pos = min(pos, k_nucleus - 1)
        token = int(sorted_probs.indices[pos])

        io = n * 2  # one logical read of the probability vector
        return OperatorResult(
            np.asarray([token], dtype=np.int64),
            traces,
            n,
            io,
            extras={
                "nucleus_size": k_nucleus,
                "nucleus_mass": mass / total,
                "theta": theta,
                "position": pos,
                "backend": backend,
            },
        )
