"""Radix top-k selection (the RadiK direction the paper cites).

Section 5 discusses RadiK, "a radix-based GPU implementation that scales
well for large values of k", as the state of the art the stock top-k
should evolve toward.  This module implements that approach on the
simulated Ascend: find the k-th largest *key* by descending one bit of the
order-preserving uint16 encoding per pass (16 cheap counting passes that
move no values), then gather the winners with a single split.

Compared to the paper's quickselect-on-SplitInd (which reshuffles values
and indices on every partition), the counting passes read the keys only —
so the value movement is paid once, and the operator scales to large k
where the streaming baseline's per-core candidate state blows up.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["CountMatchKernel"]

_TILE = 16384


class CountMatchKernel(Kernel):
    """Per-block counts of ``(key & mask) == value`` over a uint16 array.

    One radix-select pass: the driver sets ``mask``/``value`` to the fixed
    prefix plus the bit under test.  Cost: three vector instructions per
    tile (and, compare, reduce) — no value movement.
    """

    mode = "vec"

    def __init__(
        self,
        keys: GlobalTensor,
        counts: GlobalTensor,
        mask: int,
        value: int,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        if keys.dtype.name != "uint16":
            raise KernelError(f"keys must be uint16, got {keys.dtype.name}")
        if counts.num_elements < block_dim or counts.dtype.name != "int32":
            raise KernelError("counts must be int32 with one entry per block")
        if not 0 <= mask <= 0xFFFF or not 0 <= value <= 0xFFFF:
            raise KernelError("mask/value must be 16-bit")
        if value & ~mask:
            raise ShapeError(f"value {value:#x} has bits outside mask {mask:#x}")
        self.keys = keys
        self.counts = counts
        self.match_mask = mask
        self.match_value = value

    def run(self, ctx) -> None:
        n = self.keys.num_elements
        n_tiles = -(-n // _TILE)
        per_block = -(-n_tiles // self.block_dim) * _TILE
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        q_m = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * 2)
        q_f = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_TILE)
        q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
        total = 0.0
        off = start
        while off < end:
            ln = min(_TILE, end - off)
            keys = q.alloc_tensor("uint16", ln)
            I.data_copy(ctx, keys, self.keys.slice(off, ln), label="cm load")
            masked = q_m.alloc_tensor("uint16", ln)
            I.bit_and(ctx, masked, keys, self.match_mask, label="cm and")
            flags = q_f.alloc_tensor("int8", ln)
            I.compare_scalar(
                ctx, flags, masked, "eq", self.match_value, label="cm eq"
            )
            total += I.reduce_sum(ctx, flags, label="cm count")
            q_f.free_tensor(flags)
            q_m.free_tensor(masked)
            q.free_tensor(keys)
            off += ln
        c = q_small.alloc_tensor("int32", 1)
        I.duplicate(ctx, c, total, label="cm stage")
        I.data_copy(ctx, self.counts.slice(ctx.block_idx, 1), c, label="cm store")
        q_small.free_tensor(c)
