"""Compress / compact (``torch.masked_select`` equivalent).

"Compress is a particular case of split in which only the first part of the
output elements of the split are returned.  We have implemented a compress
kernel that internally uses the exclusive MCScan algorithm on the mask
array whose data type is 8-bit integers." (paper Section 5)

The baseline is the unoptimised device ``masked_select``: "a code
investigation reveals that the baseline does not use the vector or cube
units" (Section 6.2) — modelled as scalar-unit element-at-a-time processing
on a single core.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind
from ..core.matrices import ScanConstants
from ..core.mcscan import MCScanKernel, mcscan_partition, _split_half

__all__ = ["CompressKernel", "MaskedSelectBaselineKernel", "COMPRESS_TILE"]

#: elements per gather tile of the compress gather phase
COMPRESS_TILE = 8192


class CompressKernel(Kernel):
    """Masked compaction via exclusive int8 MCScan + GatherMask."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        mask: GlobalTensor,
        scan: GlobalTensor,
        r: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
        out_values: GlobalTensor,
    ):
        super().__init__(block_dim=block_dim)
        n = x.num_elements
        if mask.num_elements != n or scan.num_elements != n:
            raise ShapeError("values, mask and scan arrays must share a length")
        if out_values.num_elements < n:
            raise ShapeError("compress output must hold up to n elements")
        if mask.dtype.name != "int8":
            raise KernelError(
                f"compress masks are stored in int8, got {mask.dtype.name}"
            )
        if out_values.dtype.name != x.dtype.name:
            raise KernelError("output dtype must match input")
        self.x = x
        self.mask = mask
        self.out_values = out_values
        self.s = s
        self.count = 0  # number of selected elements, set by the gather phase
        self.mc = MCScanKernel(mask, scan, r, consts, s, block_dim, exclusive=True)

    def phases(self):
        return [self.mc.phase1, self.mc.phase2, self.gather_phase]

    def gather_phase(self, ctx) -> None:
        n = self.x.num_elements
        scan = self.mc.y
        ell = self.s * self.s
        n_tiles = n // ell
        lo, hi = mcscan_partition(n_tiles, self.block_dim)[ctx.block_idx]
        halves = len(ctx.vector_cores)

        for j in range(halves):
            h_lo, h_hi = _split_half(lo, hi, j, halves)
            if h_lo >= h_hi:
                continue
            pipe = ctx.make_pipe(ctx.vec_core(j))
            g = COMPRESS_TILE
            esz = self.x.dtype.itemsize
            q_vals = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=g * esz)
            q_mask = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=g)
            q_out = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=g * esz)
            q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)

            off = h_lo * ell
            end = h_hi * ell
            while off < end:
                ln = min(g, end - off)
                base_t = q_small.alloc_tensor(scan.dtype, 1)
                I.data_copy(ctx, base_t, scan.slice(off, 1), label="tile offset")
                base = int(base_t.array[0])
                q_small.free_tensor(base_t)

                vals = q_vals.alloc_tensor(self.x.dtype, ln)
                I.data_copy(ctx, vals, self.x.slice(off, ln), label="load x")
                m = q_mask.alloc_tensor("int8", ln)
                I.data_copy(ctx, m, self.mask.slice(off, ln), label="load mask")
                out = q_out.alloc_tensor(self.x.dtype, ln)
                cnt = I.gather_mask(ctx, out, vals, m, label="gather")
                if cnt:
                    I.data_copy(
                        ctx,
                        self.out_values.slice(base, cnt),
                        out.view(0, cnt),
                        label="store",
                    )
                self.count = max(self.count, base + cnt)
                q_out.free_tensor(out)
                q_mask.free_tensor(m)
                q_vals.free_tensor(vals)
                off += ln


class MaskedSelectBaselineKernel(Kernel):
    """The unoptimised ``torch.masked_select`` baseline: a single core's
    scalar unit walks the array element by element (it uses neither the
    vector nor the cube units, as the paper's code investigation found)."""

    mode = "vec"

    #: elements per scalar-processing chunk (bounded by UB staging)
    CHUNK = 8192

    def __init__(self, x: GlobalTensor, mask: GlobalTensor, out: GlobalTensor):
        super().__init__(block_dim=1)
        if mask.num_elements != x.num_elements:
            raise ShapeError("mask length must match input")
        if out.num_elements < x.num_elements:
            raise ShapeError("output must hold up to n elements")
        self.x = x
        self.mask = mask
        self.out = out
        self.count = 0

    def run(self, ctx) -> None:
        core = ctx.vec_core(0)
        n = self.x.num_elements
        x_flat = self.x.flat
        m_flat = self.mask.flat
        out_flat = self.out.flat
        write_pos = 0
        off = 0
        while off < n:
            ln = min(self.CHUNK, n - off)
            sel = x_flat[off : off + ln][m_flat[off : off + ln] != 0]
            cnt = int(sel.size)
            if cnt:
                out_flat[write_pos : write_pos + cnt] = sel
            # the scalar unit performs ~3 operations per element (load value,
            # test mask, conditional store); GM traffic is charged per chunk
            I.scalar_process(
                ctx,
                core,
                3 * ln,
                label="masked_select chunk",
                gm_read=self.x.slice(off, ln),
            )
            I.scalar_process(
                ctx,
                core,
                0,
                label="masked_select mask",
                gm_read=self.mask.slice(off, ln),
            )
            if cnt:
                I.scalar_process(
                    ctx,
                    core,
                    0,
                    label="masked_select store",
                    gm_write=self.out.slice(write_pos, cnt),
                )
            write_pos += cnt
            off += ln
        self.count = write_pos
