"""SplitInd — stable parallel split returning values and original indices.

Section 5 of the paper: "SplitInd takes as input an array of 16-bit
elements and a 0/1 mask array (flags are stored in int8).  SplitInd
executes an exclusive scan using MCScan on the mask array.  Afterwards, it
gathers the correct input elements and their indices, using the vector
core's GatherMask instruction, and it stores them in global memory at the
offsets calculated by the scan."

Implementation: a three-phase kernel.  Phases 1-2 are literally MCScan's
phases (int8 specialisation, exclusive) run on the flag array; phase 3 is
the gather.  Stability gives each tile's true elements a *contiguous*
output range ``[scan[tile_start], scan[tile_start] + count)`` (and
similarly for false elements after all trues), so GatherMask compaction
plus one contiguous store per side suffices — no scatter needed.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind
from ..core.matrices import ScanConstants
from ..core.mcscan import MCScanKernel, mcscan_partition, _split_half

__all__ = ["SplitIndKernel", "GATHER_TILE"]

#: elements per gather tile; sized so all eight UB operands of the gather
#: phase (values, flags, inverted flags, indices, and the four gather
#: outputs) fit in the 192 KB UB
GATHER_TILE = 4096


class SplitIndKernel(Kernel):
    """Stable split of (values, indices) by an int8 flag array."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        flags: GlobalTensor,
        scan: GlobalTensor,
        r: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
        out_values: GlobalTensor,
        out_indices: GlobalTensor,
        in_indices: "GlobalTensor | None" = None,
    ):
        super().__init__(block_dim=block_dim)
        n = x.num_elements
        if flags.num_elements != n or scan.num_elements != n:
            raise ShapeError("values, flags and scan arrays must share a length")
        if out_values.num_elements != n or out_indices.num_elements != n:
            raise ShapeError("split outputs must match the input length")
        if flags.dtype.name != "int8":
            raise KernelError(
                f"split flags are stored in int8 (paper Section 5), "
                f"got {flags.dtype.name}"
            )
        if x.dtype.itemsize not in (1, 2):
            raise KernelError(
                f"SplitInd takes 8/16-bit elements (the paper's operator is "
                f"16-bit; 8-bit support implements its low-precision "
                f"outlook), got {x.dtype.name}"
            )
        if out_values.dtype.name != x.dtype.name:
            raise KernelError("output values dtype must match input")
        if out_indices.dtype.name != "int32":
            raise KernelError("output indices must be int32")
        if in_indices is not None and in_indices.dtype.name != "int32":
            raise KernelError("input indices must be int32")
        self.x = x
        self.flags = flags
        self.out_values = out_values
        self.out_indices = out_indices
        self.in_indices = in_indices
        self.s = s
        # phases 1-2: exclusive int8 MCScan over the flags
        self.mc = MCScanKernel(
            flags, scan, r, consts, s, block_dim, exclusive=True
        )

    def phases(self):
        return [self.mc.phase1, self.mc.phase2, self.gather_phase]

    # -- phase 3: gather ---------------------------------------------------------

    def gather_phase(self, ctx) -> None:
        n = self.x.num_elements
        scan = self.mc.y
        r = self.mc.r
        halves = len(ctx.vector_cores)
        total_halves = self.block_dim * halves
        ell = self.s * self.s
        n_tiles = n // ell
        lo, hi = mcscan_partition(n_tiles, self.block_dim)[ctx.block_idx]

        for j in range(halves):
            h_lo, h_hi = _split_half(lo, hi, j, halves)
            if h_lo >= h_hi:
                continue
            vec = ctx.vec_core(j)
            pipe = ctx.make_pipe(vec)
            g = GATHER_TILE
            esz = self.x.dtype.itemsize
            q_vals = pipe.init_buffer(
                buffer=BufferKind.UB, depth=1, slot_bytes=g * esz
            )
            q_flags = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=g)
            q_inv = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=g)
            q_idx = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=g * 4)
            q_gv = pipe.init_buffer(
                buffer=BufferKind.UB, depth=2, slot_bytes=g * esz
            )
            q_gi = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=g * 4)
            q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=256)

            # total number of trues: reduce the block-reduction array r
            # (tiny, already in GM from phase 1)
            r_t = q_small.alloc_tensor(r.dtype, total_halves)
            I.data_copy(ctx, r_t, r.slice(0, total_halves), label="load r")
            n_true = int(round(I.reduce_sum(ctx, r_t, label="sum r")))
            q_small.free_tensor(r_t)

            start_elem = h_lo * ell
            end_elem = h_hi * ell
            off = start_elem
            while off < end_elem:
                ln = min(g, end_elem - off)
                # exclusive scan value at the tile start = trues before tile
                base_t = q_small.alloc_tensor(scan.dtype, 1)
                I.data_copy(ctx, base_t, scan.slice(off, 1), label="tile offset")
                base_true = int(base_t.array[0])
                q_small.free_tensor(base_t)
                base_false = n_true + (off - base_true)

                vals = q_vals.alloc_tensor(self.x.dtype, ln)
                I.data_copy(ctx, vals, self.x.slice(off, ln), label="load x")
                flags = q_flags.alloc_tensor("int8", ln)
                I.data_copy(ctx, flags, self.flags.slice(off, ln), label="load f")
                idx = q_idx.alloc_tensor("int32", ln)
                if self.in_indices is not None:
                    I.data_copy(
                        ctx, idx, self.in_indices.slice(off, ln), label="load idx"
                    )
                else:
                    I.create_vec_index(ctx, idx, off)

                # true side
                gv = q_gv.alloc_tensor(self.x.dtype, ln)
                count = I.gather_mask(ctx, gv, vals, flags, label="gather vals T")
                if count:
                    I.data_copy(
                        ctx,
                        self.out_values.slice(base_true, count),
                        gv.view(0, count),
                        label="store vals T",
                    )
                q_gv.free_tensor(gv)
                gi = q_gi.alloc_tensor("int32", ln)
                I.gather_mask(ctx, gi, idx, flags, label="gather idx T")
                if count:
                    I.data_copy(
                        ctx,
                        self.out_indices.slice(base_true, count),
                        gi.view(0, count),
                        label="store idx T",
                    )
                q_gi.free_tensor(gi)

                # false side (inverted mask)
                inv = q_inv.alloc_tensor("int8", ln)
                I.compare_scalar(ctx, inv, flags, "eq", 0, label="invert flags")
                fcount = ln - count
                gv = q_gv.alloc_tensor(self.x.dtype, ln)
                I.gather_mask(ctx, gv, vals, inv, label="gather vals F")
                if fcount:
                    I.data_copy(
                        ctx,
                        self.out_values.slice(base_false, fcount),
                        gv.view(0, fcount),
                        label="store vals F",
                    )
                q_gv.free_tensor(gv)
                gi = q_gi.alloc_tensor("int32", ln)
                I.gather_mask(ctx, gi, idx, inv, label="gather idx F")
                if fcount:
                    I.data_copy(
                        ctx,
                        self.out_indices.slice(base_false, fcount),
                        gi.view(0, fcount),
                        label="store idx F",
                    )
                q_gi.free_tensor(gi)
                q_inv.free_tensor(inv)
                q_idx.free_tensor(idx)
                q_flags.free_tensor(flags)
                q_vals.free_tensor(vals)
                off += ln
