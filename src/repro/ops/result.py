"""Result container for composite operators.

Operators such as radix sort or top-p sampling launch several kernels in
sequence (as the paper's PyTorch-integrated operators do).  An
:class:`OperatorResult` aggregates the traces; its time is the sum of the
per-launch end-to-end times, matching how the PyTorch profiler would report
a chain of custom operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hw.trace import Trace

__all__ = ["OperatorResult"]


@dataclass
class OperatorResult:
    """Output arrays plus the kernel launches that produced them."""

    values: np.ndarray
    traces: list[Trace]
    #: logical element count of the operator (for GElems/s)
    n_elements: int
    #: logical input + output bytes (for the paper's GB/s metric)
    io_bytes: int
    indices: "np.ndarray | None" = None
    extras: dict = field(default_factory=dict)

    @property
    def time_ns(self) -> float:
        return sum(t.total_ns for t in self.traces)

    @property
    def time_us(self) -> float:
        return self.time_ns / 1e3

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def bandwidth_gbps(self) -> float:
        return self.io_bytes / self.time_ns if self.time_ns else 0.0

    @property
    def gelems_per_s(self) -> float:
        return self.n_elements / self.time_ns if self.time_ns else 0.0

    @property
    def kernel_launches(self) -> int:
        return len(self.traces)

    def gm_bytes(self) -> int:
        """Total GM traffic across all launches."""
        return sum(t.gm_bytes() for t in self.traces)
