"""Weighted sampling kernels (paper Section 5).

The scan-based sampler lives in :meth:`repro.ops.driver.AscendOps.weighted_sample`
(MCScan + predicate count).  This module provides the *baseline*
``torch.multinomial`` stand-in: a two-pass vector-only sampler —

* pass 1: per-core partial sums of the weights (so every core can compute
  its prefix base);
* pass 2: per-core local running sum; each core counts how many of its
  elements have cumulative weight (base + local running sum) at or below
  ``theta * total`` and writes the count.

The sampled index is the total count — exactly inverse-transform sampling,
but without materialising the cumulative array.  The stock operator is
limited to 2^24-element supports (the scan-based sampler is not), which is
the functional improvement the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["MultinomialTwoPassKernel"]

_TILE = 16384


class MultinomialTwoPassKernel(Kernel):
    """Vector-only inverse-transform sampler (``torch.multinomial`` model)."""

    mode = "vec"

    def __init__(
        self,
        w: GlobalTensor,
        counts: GlobalTensor,
        theta: float,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        if counts.num_elements < block_dim or counts.dtype.name != "int32":
            raise KernelError("counts must be int32 with one entry per block")
        if not 0.0 <= theta < 1.0:
            raise KernelError(f"theta must be in [0, 1), got {theta}")
        self.w = w
        self.counts = counts
        self.theta = theta
        self._partials = [0.0] * block_dim

    def phases(self):
        return [self.phase_reduce, self.phase_count]

    def _range(self, ctx) -> tuple[int, int]:
        n = self.w.num_elements
        n_tiles = -(-n // _TILE)
        per_block = -(-n_tiles // self.block_dim) * _TILE
        start = ctx.block_idx * per_block
        return start, min(start + per_block, n)

    def phase_reduce(self, ctx) -> None:
        start, end = self._range(ctx)
        total = 0.0
        if start < end:
            pipe = ctx.make_pipe(ctx.vec_core(0))
            q = pipe.init_buffer(
                buffer=BufferKind.UB, depth=2,
                slot_bytes=_TILE * self.w.dtype.itemsize,
            )
            off = start
            while off < end:
                ln = min(_TILE, end - off)
                t = q.alloc_tensor(self.w.dtype, ln)
                I.data_copy(ctx, t, self.w.slice(off, ln), label="mn reduce in")
                total += I.reduce_sum(ctx, t, label="mn reduce")
                q.free_tensor(t)
                off += ln
        self._partials[ctx.block_idx] = total

    def phase_count(self, ctx) -> None:
        start, end = self._range(ctx)
        grand_total = sum(self._partials)
        if grand_total <= 0:
            raise KernelError("weights sum to zero")
        cut = self.theta * grand_total
        base = sum(self._partials[: ctx.block_idx])
        below = 0
        if start < end:
            pipe = ctx.make_pipe(ctx.vec_core(0))
            q = pipe.init_buffer(
                buffer=BufferKind.UB, depth=2,
                slot_bytes=_TILE * self.w.dtype.itemsize,
            )
            q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
            running = base
            off = start
            while off < end:
                ln = min(_TILE, end - off)
                t = q.alloc_tensor(self.w.dtype, ln)
                I.data_copy(ctx, t, self.w.slice(off, ln), label="mn count in")
                cum = running + np.cumsum(t.array.astype(np.float64))
                below += int(np.count_nonzero(cum <= cut))
                running = float(cum[-1]) if ln else running
                # local running-sum + compare: two vector passes over the tile
                I.vector_macro(
                    ctx,
                    label="mn count",
                    reads=(t,),
                    writes=(t,),
                    nbytes=2 * t.nbytes,
                    n_instructions=2,
                    scalar_elements=1,
                )
                q.free_tensor(t)
                off += ln
            c = q_small.alloc_tensor("int32", 1)
            I.duplicate(ctx, c, below, label="mn stage")
            I.data_copy(
                ctx, self.counts.slice(ctx.block_idx, 1), c, label="mn store"
            )
            q_small.free_tensor(c)
        else:
            # still publish a zero so the host-side sum is well defined
            pipe = ctx.make_pipe(ctx.vec_core(0))
            q_small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
            c = q_small.alloc_tensor("int32", 1)
            I.duplicate(ctx, c, 0, label="mn stage zero")
            I.data_copy(
                ctx, self.counts.slice(ctx.block_idx, 1), c, label="mn store"
            )
            q_small.free_tensor(c)
