"""Baseline top-k operator (the stock device top-k).

The paper reports a *negative* result for its SplitInd-based top-k: "we
could not improve the performance of the baseline top-k for small values of
k (k <= 4096)".  The stock operator is the streaming kind (cf. the RadiK
discussion, Section 5): each vector core keeps a k-element candidate heap
while sweeping its chunk once, then one core merges the per-core candidate
sets.  Its traffic is a single read of the input — hard to beat with an
algorithm that runs several full-array split passes.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["BaselineTopKKernel"]

_TILE = 8192
#: per-element vector cost of the streaming candidate update
_STREAM_CYCLES_PER_ELEMENT = 2.0
#: per-candidate cost of the final merge (tree-merged across cores, so the
#: constant is small per candidate)
_MERGE_CYCLES_PER_CANDIDATE = 2.0


class BaselineTopKKernel(Kernel):
    """Streaming per-core top-k + final merge (values and indices)."""

    mode = "vec"

    def __init__(
        self,
        x: GlobalTensor,
        out_values: GlobalTensor,
        out_indices: GlobalTensor,
        k: int,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        n = x.num_elements
        if not 1 <= k <= n:
            raise KernelError(f"k={k} out of range for n={n}")
        if out_values.num_elements < k or out_indices.num_elements < k:
            raise ShapeError("outputs must hold k elements")
        if out_indices.dtype.name != "int32":
            raise KernelError("indices must be int32")
        self.x = x
        self.out_values = out_values
        self.out_indices = out_indices
        self.k = k
        # per-core candidate staging area in GM
        self._partial: "list[tuple[np.ndarray, np.ndarray]]" = [
            (np.empty(0),) * 2
        ] * block_dim

    def phases(self):
        return [self.phase_stream, self.phase_merge]

    def phase_stream(self, ctx) -> None:
        n = self.x.num_elements
        n_tiles = -(-n // _TILE)
        per_block = -(-n_tiles // self.block_dim) * _TILE
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        vals_acc = np.empty(0, dtype=self.x.dtype.np_dtype)
        idx_acc = np.empty(0, dtype=np.int64)
        if start < end:
            pipe = ctx.make_pipe(ctx.vec_core(0))
            q = pipe.init_buffer(
                buffer=BufferKind.UB, depth=2,
                slot_bytes=_TILE * self.x.dtype.itemsize,
            )
            off = start
            while off < end:
                ln = min(_TILE, end - off)
                t = q.alloc_tensor(self.x.dtype, ln)
                I.data_copy(ctx, t, self.x.slice(off, ln), label="topk in")
                chunk = t.array
                # candidate update (functional): keep the running top-k
                cat_v = np.concatenate([vals_acc, chunk])
                cat_i = np.concatenate(
                    [idx_acc, np.arange(off, off + ln, dtype=np.int64)]
                )
                order = np.argsort(-cat_v.astype(np.float32), kind="stable")
                keep = order[: self.k]
                keep.sort()  # preserve first-occurrence order among ties
                vals_acc, idx_acc = cat_v[keep], cat_i[keep]
                ctx.emitter.emit(
                    engine=ctx.engine(ctx.vec_core(0), "vec"),
                    kind="vec_macro",
                    label="topk stream cost",
                    cycles=_STREAM_CYCLES_PER_ELEMENT * ln,
                    reads=(t,),
                )
                q.free_tensor(t)
                off += ln
        self._partial[ctx.block_idx] = (vals_acc, idx_acc)

    def phase_merge(self, ctx) -> None:
        if ctx.block_idx != 0:
            return
        all_v = np.concatenate([p[0] for p in self._partial if p[0].size])
        all_i = np.concatenate([p[1] for p in self._partial if p[1].size])
        # (value desc, index asc), the torch.topk contract
        fin = np.lexsort((all_i, -all_v.astype(np.float32)))[: self.k]
        top_v, top_i = all_v[fin], all_i[fin]

        pipe = ctx.make_pipe(ctx.vec_core(0))
        chunk = min(self.k, _TILE)
        q = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=chunk * 4
        )
        candidates = sum(p[0].size for p in self._partial)
        ctx.emitter.emit(
            engine=ctx.engine(ctx.vec_core(0), "vec"),
            kind="vec_macro",
            label="topk merge cost",
            cycles=_MERGE_CYCLES_PER_CANDIDATE * max(candidates, 1),
        )
        # stage the k winners out through UB-sized chunks
        off = 0
        while off < self.k:
            ln = min(chunk, self.k - off)
            vt = q.alloc_tensor(self.out_values.dtype, ln)
            arr = vt.array
            v_chunk = top_v[off : off + ln]

            def _fill_v() -> None:
                arr[...] = v_chunk.astype(arr.dtype)

            I.vector_macro(
                ctx, label="topk merge v", reads=(vt,), writes=(vt,),
                nbytes=vt.nbytes, apply=_fill_v,
            )
            I.data_copy(
                ctx, self.out_values.slice(off, ln), vt, label="topk out v"
            )
            q.free_tensor(vt)
            it = q.alloc_tensor("int32", ln)
            it_arr = it.array
            i_chunk = top_i[off : off + ln]

            def _fill_i() -> None:
                it_arr[...] = i_chunk.astype(np.int32)

            I.vector_macro(
                ctx, label="topk merge i", reads=(it,), writes=(it,),
                nbytes=it.nbytes, apply=_fill_i,
            )
            I.data_copy(
                ctx, self.out_indices.slice(off, ln), it, label="topk out i"
            )
            q.free_tensor(it)
            off += ln
