"""Baseline sort (``torch.sort`` stand-in) — vector-only merge sort.

Figure 11 compares the radix sort against the device's stock ``torch.sort``.
The stock operator does not use the cube unit; we model it as the classic
two-level parallel sort used by accelerator sort libraries:

* pass 0 — in-core bitonic sort of 8 K-element segments (vector-friendly);
* passes 1..P — pairwise merges of runs, doubling the run length each pass,
  with the output of each pass partitioned into chunks over all vector
  cores (co-rank partitioned merging).

Merging is a data-dependent, vector-hostile operation: each output element
costs several vector/scalar operations (``MERGE_CYCLES_PER_ELEMENT``).  The
kernel carries an int32 index array so the result matches the
(values, indices) contract of ``torch.sort``.

The per-chunk *timing* attributes each pass's reads/writes to chunk-aligned
ranges rather than exact co-rank spans — every element is still read and
written exactly once per pass, only its issuing core can differ from a real
co-rank partition.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["BaselineSortKernel", "SEGMENT", "MERGE_CYCLES_PER_ELEMENT"]

#: in-core sort segment (elements)
SEGMENT = 8192
#: per-output-element cost of a vector-unit merge step (compare, select,
#: pointer bump on the scalar unit) -- calibrated against Figure 11
MERGE_CYCLES_PER_ELEMENT = 11.0
#: per-element cost of the in-core bitonic sort pass
SORT_CYCLES_PER_ELEMENT = 14.0
#: chunk processed per core per step
_CHUNK = 8192


class BaselineSortKernel(Kernel):
    """Vector-only two-level merge sort of (fp16 values, int32 indices)."""

    mode = "vec"

    def __init__(
        self,
        x: GlobalTensor,
        out_values: GlobalTensor,
        out_indices: GlobalTensor,
        scratch_values: GlobalTensor,
        scratch_indices: GlobalTensor,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        n = x.num_elements
        for t, name in (
            (out_values, "out_values"),
            (scratch_values, "scratch_values"),
        ):
            if t.num_elements != n or t.dtype.name != x.dtype.name:
                raise ShapeError(f"{name} must match input length and dtype")
        for t, name in (
            (out_indices, "out_indices"),
            (scratch_indices, "scratch_indices"),
        ):
            if t.num_elements != n or t.dtype.name != "int32":
                raise ShapeError(f"{name} must be int32 of the input length")
        if x.dtype.itemsize != 2:
            raise KernelError("baseline sort models the 16-bit torch.sort path")
        self.x = x
        self.out_values = out_values
        self.out_indices = out_indices
        self.scratch_values = scratch_values
        self.scratch_indices = scratch_indices
        n_segments = -(-n // SEGMENT)
        self.n_merge_passes = max(0, int(np.ceil(np.log2(max(n_segments, 1)))))

    # -- phase plan -------------------------------------------------------------

    def phases(self):
        # ping-pong: pass 0 writes A; merge pass k reads one side, writes the
        # other; arrange so the final pass lands in out_values/out_indices.
        plan = [self._phase_sort_segments]
        for k in range(1, self.n_merge_passes + 1):
            plan.append(self._make_merge_phase(k))
        return plan

    def _side(self, k: int):
        """Destination buffers of pass ``k``: ping-pong arranged so the
        final pass lands in ``out_*``."""
        if (self.n_merge_passes - k) % 2 == 0:
            return (self.out_values, self.out_indices)
        return (self.scratch_values, self.scratch_indices)

    def _buffers_for_pass(self, k: int):
        """(src_vals, src_idx, dst_vals, dst_idx) for pass ``k`` (pass 0
        reads the input tensor directly, so its sources are None)."""
        dst = self._side(k)
        if k == 0:
            return (None, None) + dst
        return self._side(k - 1) + dst

    # -- pass 0: segment sort ------------------------------------------------------

    def _phase_sort_segments(self, ctx) -> None:
        n = self.x.num_elements
        _, _, dst_v, dst_i = self._buffers_for_pass(0)
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_v = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_CHUNK * 2)
        q_i = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_CHUNK * 4)
        n_segments = -(-n // SEGMENT)
        for seg in range(ctx.block_idx, n_segments, ctx.block_dim):
            off = seg * SEGMENT
            ln = min(SEGMENT, n - off)
            vals = q_v.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, vals, self.x.slice(off, ln), label=f"load seg{seg}")
            idx = q_i.alloc_tensor("int32", ln)
            I.create_vec_index(ctx, idx, off)
            v_arr, i_arr = vals.array, idx.array

            def _sort() -> None:
                order = np.argsort(v_arr, kind="stable")
                v_arr[...] = v_arr[order]
                i_arr[...] = i_arr[order]

            I.vector_macro(
                ctx,
                label=f"bitonic seg{seg}",
                reads=(vals, idx),
                writes=(vals, idx),
                nbytes=0,
                n_instructions=1,
                scalar_elements=0,
                apply=_sort,
            )
            # charge the in-core sort explicitly (log^2-stage bitonic network)
            ctx.emitter.emit(
                engine=ctx.engine(ctx.vec_core(0), "vec"),
                kind="vec_macro",
                label=f"bitonic cost seg{seg}",
                cycles=SORT_CYCLES_PER_ELEMENT * ln,
                reads=(vals, idx),
                writes=(vals, idx),
            )
            I.data_copy(ctx, dst_v.slice(off, ln), vals, label=f"store v seg{seg}")
            I.data_copy(ctx, dst_i.slice(off, ln), idx, label=f"store i seg{seg}")
            q_i.free_tensor(idx)
            q_v.free_tensor(vals)

    # -- merge passes ------------------------------------------------------------------

    def _make_merge_phase(self, k: int):
        def phase(ctx) -> None:
            self._merge_pass(ctx, k)

        phase.__name__ = f"merge_pass_{k}"
        return phase

    def _merge_pass(self, ctx, k: int) -> None:
        n = self.x.num_elements
        src_v, src_i, dst_v, dst_i = self._buffers_for_pass(k)
        run = SEGMENT << (k - 1)
        pipe = ctx.make_pipe(ctx.vec_core(0))
        q_v = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_CHUNK * 2)
        q_i = pipe.init_buffer(buffer=BufferKind.UB, depth=2, slot_bytes=_CHUNK * 4)

        # merge each pair of runs functionally, then emit chunk ops
        sv, si = src_v.flat, src_i.flat
        # chunk work list for this block (round-robin over all chunks)
        chunks = []
        pair_start = 0
        while pair_start < n:
            a_end = min(pair_start + run, n)
            b_end = min(pair_start + 2 * run, n)
            chunks.extend(
                (pair_start, a_end, b_end, c)
                for c in range(pair_start, b_end, _CHUNK)
            )
            pair_start = b_end
        my = chunks[ctx.block_idx :: ctx.block_dim]

        merged_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for pair_start, a_end, b_end, c_off in my:
            if pair_start not in merged_cache:
                a_v, b_v = sv[pair_start:a_end], sv[a_end:b_end]
                a_i, b_i = si[pair_start:a_end], si[a_end:b_end]
                all_v = np.concatenate([a_v, b_v])
                all_i = np.concatenate([a_i, b_i])
                order = np.argsort(all_v, kind="stable")
                merged_cache[pair_start] = (all_v[order], all_i[order])
            m_v, m_i = merged_cache[pair_start]
            ln = min(_CHUNK, b_end - c_off)
            rel = c_off - pair_start

            vals = q_v.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, vals, src_v.slice(c_off, ln), label=f"merge in v{k}")
            idx = q_i.alloc_tensor("int32", ln)
            I.data_copy(ctx, idx, src_i.slice(c_off, ln), label=f"merge in i{k}")
            v_arr, i_arr = vals.array, idx.array
            mv_c = m_v[rel : rel + ln]
            mi_c = m_i[rel : rel + ln]

            def _apply() -> None:
                v_arr[...] = mv_c
                i_arr[...] = mi_c

            I.vector_macro(
                ctx,
                label=f"merge step p{k}",
                reads=(vals, idx),
                writes=(vals, idx),
                nbytes=0,
                n_instructions=1,
                apply=_apply,
            )
            ctx.emitter.emit(
                engine=ctx.engine(ctx.vec_core(0), "vec"),
                kind="vec_macro",
                label=f"merge cost p{k}",
                cycles=MERGE_CYCLES_PER_ELEMENT * ln,
                reads=(vals, idx),
                writes=(vals, idx),
            )
            I.data_copy(ctx, dst_v.slice(c_off, ln), vals, label=f"merge out v{k}")
            I.data_copy(ctx, dst_i.slice(c_off, ln), idx, label=f"merge out i{k}")
            q_i.free_tensor(idx)
            q_v.free_tensor(vals)
