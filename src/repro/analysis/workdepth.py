"""Work/depth analysis of the scan algorithms.

The TCU model (paper Section 2.3) has no notion of parallelism or vector
units, so — following the paper — we analyse work and depth assuming
multiple matrix engines and vector units whose operations count as basic
operations.  These closed forms also serve as invariants for the simulator:
the op counts and GM traffic of a kernel trace must match them exactly
(see tests/test_analysis.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ShapeError

__all__ = [
    "AlgorithmCosts",
    "scanu_costs",
    "scanul1_costs",
    "mcscan_costs",
    "vector_baseline_costs",
]


@dataclass(frozen=True)
class AlgorithmCosts:
    """Operation counts and traffic for one scan algorithm instance.

    ``depth`` counts basic operations (matmul / vector-instruction /
    transfer) on the critical path; ``work`` counts them in total.
    """

    name: str
    tiles: int
    matmuls: int
    cube_mac_work: int
    vector_instructions: int
    gm_traffic_bytes: int
    depth: int

    @property
    def work(self) -> int:
        return self.matmuls + self.vector_instructions


def _tiles(n: int, ell: int) -> int:
    if n <= 0 or n % ell != 0:
        raise ShapeError(f"n={n} must be a positive multiple of l={ell}")
    return n // ell


def scanu_costs(
    n: int, s: int, *, in_bytes: int = 2, out_bytes: int = 4
) -> AlgorithmCosts:
    """ScanU (Algorithm 1): one matmul per tile; ``s`` serial vector Adds
    per tile; traffic = x in (cube) + y out (cube) + y in/out (vector)."""
    ell = s * s
    t = _tiles(n, ell)
    return AlgorithmCosts(
        name="scanu",
        tiles=t,
        matmuls=t,
        cube_mac_work=t * s * s * s,
        vector_instructions=t * s,
        gm_traffic_bytes=n * in_bytes + 3 * n * out_bytes,
        # per tile the vector chain is serial in its s rows, and tiles are
        # serialised by the running partial
        depth=t * (s + 3),  # s Adds + load/matmul/store per tile
    )


def scanul1_costs(
    n: int, s: int, *, in_bytes: int = 2, out_bytes: int = 4
) -> AlgorithmCosts:
    """ScanUL1 (Algorithm 2): three matmuls per tile (Equation 1); one
    vector Adds per tile."""
    ell = s * s
    t = _tiles(n, ell)
    return AlgorithmCosts(
        name="scanul1",
        tiles=t,
        matmuls=3 * t,
        cube_mac_work=t * (2 * s * s * s + s * s * s),
        vector_instructions=t,
        gm_traffic_bytes=n * in_bytes + 3 * n * out_bytes,
        depth=t * 7,  # load, 3 matmuls, 2 staging copies, 1 Adds
    )


def mcscan_costs(
    n: int,
    s: int,
    blocks: int,
    *,
    halves_per_block: int = 2,
    in_bytes: int = 2,
    out_bytes: int = 4,
) -> AlgorithmCosts:
    """MCScan (Algorithm 3): phase I recomputes reductions on the vector
    units in parallel with the cube local scans; phase II scans ``r`` and
    propagates.  Traffic: x read twice (cube + vector recomputation),
    intermediate written once, then read and rewritten in phase II."""
    ell = s * s
    t = _tiles(n, ell)
    lanes = blocks * halves_per_block
    tiles_per_lane = math.ceil(t / lanes)
    return AlgorithmCosts(
        name="mcscan",
        tiles=t,
        matmuls=t,
        cube_mac_work=t * s * s * s,
        # phase I reductions (1/tile) + r writes + phase II chains (s/tile)
        vector_instructions=t + lanes + t * s + lanes,
        gm_traffic_bytes=(
            2 * n * in_bytes  # cube read + vector recomputation read
            + 3 * n * out_bytes  # intermediate write, phase-II read + write
            + lanes * out_bytes  # each lane writes its r entry
            + lanes * lanes * out_bytes  # each lane reads the whole r
        ),
        # the critical path is one lane's tiles in each phase plus the
        # barrier; tiles pipeline within a lane but the chain is serial
        depth=tiles_per_lane * (s + 3) + tiles_per_lane + 1,
    )


def vector_baseline_costs(n: int, *, rows: int = 128, cols: int = 128,
                          instructions_per_row: int = 4,
                          elem_bytes: int = 2) -> AlgorithmCosts:
    """The CumSum-API vector-only baseline: row-serial in-tile scans plus
    the same serial propagation chain, no cube work at all."""
    tile = rows * cols
    if n % cols != 0:
        raise ShapeError(f"n={n} must be a multiple of {cols}")
    t = math.ceil(n / tile)
    return AlgorithmCosts(
        name="vector-cumsum",
        tiles=t,
        matmuls=0,
        cube_mac_work=0,
        vector_instructions=t * rows * (instructions_per_row + 1),
        gm_traffic_bytes=2 * n * elem_bytes,
        depth=t * rows * (instructions_per_row + 1),
    )
