"""Roofline placement of kernel traces.

Scan is memory-bound (paper Section 2.1): its operational intensity is far
below the machine balance point of the Ascend cube units.  These helpers
compute where a trace sits and which resource bounds it — used by the
ablation benchmarks and by tests asserting that the scan kernels are indeed
on the memory-bound side of the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import DeviceConfig
from ..hw.trace import Trace

__all__ = [
    "RooflinePoint",
    "roofline_point",
    "machine_balance_flops_per_byte",
    "memory_floor_ns",
    "link_floor_ns",
    "cube_issue_floor_ns",
]


def _peak_mac_per_ns(config: DeviceConfig) -> float:
    """Aggregate cube MAC throughput (fp16 MACs per nanosecond)."""
    c = config.costs
    f = c.mmad_fractal
    per_cycle = f * f * f * c.mmad_efficiency
    return per_cycle * config.clock_ghz * config.num_cube_cores


def machine_balance_flops_per_byte(config: DeviceConfig) -> float:
    """Operational intensity at which compute and memory roofs meet."""
    return 2.0 * _peak_mac_per_ns(config) / config.hbm_bytes_per_ns


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel's position in the roofline model."""

    flops: float
    gm_bytes: int
    time_ns: float
    operational_intensity: float  # flops per GM byte
    achieved_flops_per_ns: float
    attainable_flops_per_ns: float
    memory_bound: bool

    @property
    def roofline_fraction(self) -> float:
        if self.attainable_flops_per_ns <= 0:
            return 0.0
        return self.achieved_flops_per_ns / self.attainable_flops_per_ns


def memory_floor_ns(config: DeviceConfig, gm_bytes: float) -> float:
    """Lower bound on device time for moving ``gm_bytes`` of GM traffic.

    Uses the *fastest* path any byte can take (the L2 link, which the
    config guarantees is at least as wide as HBM), so the bound is safe
    regardless of residency — the roofline's memory roof inverted into a
    time floor.  The autotuner (:mod:`repro.tune`) prunes candidate plan
    configs whose floor already exceeds the incumbent's measured time.
    """
    return gm_bytes / config.l2_bytes_per_ns


def link_floor_ns(config: DeviceConfig, gm_bytes: float, lanes: int) -> float:
    """Lower bound from the per-MTE GM link width: ``gm_bytes`` spread
    perfectly over ``lanes`` concurrent DMA flows can't beat the aggregate
    link bandwidth.  For a ``block_dim``-core cube kernel, every input byte
    crosses one of ``block_dim`` load links."""
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    return gm_bytes / (lanes * config.mte_link_bytes_per_ns)


def cube_issue_floor_ns(config: DeviceConfig, mmads_per_core: float) -> float:
    """Lower bound from Mmad issue cost: a core's cube engine serialises
    its matmuls, each paying at least ``mmad_issue_cycles``.  With
    ``mmads_per_core`` matmuls on the busiest cube core, no schedule can
    finish sooner.  This is the floor that prices *tiling* into the
    roofline: small tile sizes mean many matmuls per core, so trace-heavy
    candidates are pruned without ever being traced."""
    return config.cycles_to_ns(mmads_per_core * config.costs.mmad_issue_cycles)


def roofline_point(trace: Trace, flops: float) -> RooflinePoint:
    """Place a trace on its device's roofline.

    ``flops`` is the algorithm's useful floating-point work (e.g. n adds
    for a scan) — the caller decides what counts as useful.
    """
    config = trace.config
    gm = trace.gm_bytes()
    t = trace.total_ns
    oi = flops / gm if gm else float("inf")
    mem_roof = oi * config.hbm_bytes_per_ns
    compute_roof = _peak_mac_per_ns(config) * 2.0
    attainable = min(mem_roof, compute_roof)
    return RooflinePoint(
        flops=flops,
        gm_bytes=gm,
        time_ns=t,
        operational_intensity=oi,
        achieved_flops_per_ns=flops / t if t else 0.0,
        attainable_flops_per_ns=attainable,
        memory_bound=mem_roof <= compute_roof,
    )
