"""Roofline placement of kernel traces.

Scan is memory-bound (paper Section 2.1): its operational intensity is far
below the machine balance point of the Ascend cube units.  These helpers
compute where a trace sits and which resource bounds it — used by the
ablation benchmarks and by tests asserting that the scan kernels are indeed
on the memory-bound side of the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import DeviceConfig
from ..hw.trace import Trace

__all__ = ["RooflinePoint", "roofline_point", "machine_balance_flops_per_byte"]


def _peak_mac_per_ns(config: DeviceConfig) -> float:
    """Aggregate cube MAC throughput (fp16 MACs per nanosecond)."""
    c = config.costs
    f = c.mmad_fractal
    per_cycle = f * f * f * c.mmad_efficiency
    return per_cycle * config.clock_ghz * config.num_cube_cores


def machine_balance_flops_per_byte(config: DeviceConfig) -> float:
    """Operational intensity at which compute and memory roofs meet."""
    return 2.0 * _peak_mac_per_ns(config) / config.hbm_bytes_per_ns


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel's position in the roofline model."""

    flops: float
    gm_bytes: int
    time_ns: float
    operational_intensity: float  # flops per GM byte
    achieved_flops_per_ns: float
    attainable_flops_per_ns: float
    memory_bound: bool

    @property
    def roofline_fraction(self) -> float:
        if self.attainable_flops_per_ns <= 0:
            return 0.0
        return self.achieved_flops_per_ns / self.attainable_flops_per_ns


def roofline_point(trace: Trace, flops: float) -> RooflinePoint:
    """Place a trace on its device's roofline.

    ``flops`` is the algorithm's useful floating-point work (e.g. n adds
    for a scan) — the caller decides what counts as useful.
    """
    config = trace.config
    gm = trace.gm_bytes()
    t = trace.total_ns
    oi = flops / gm if gm else float("inf")
    mem_roof = oi * config.hbm_bytes_per_ns
    compute_roof = _peak_mac_per_ns(config) * 2.0
    attainable = min(mem_roof, compute_roof)
    return RooflinePoint(
        flops=flops,
        gm_bytes=gm,
        time_ns=t,
        operational_intensity=oi,
        achieved_flops_per_ns=flops / t if t else 0.0,
        attainable_flops_per_ns=attainable,
        memory_bound=mem_roof <= compute_roof,
    )
