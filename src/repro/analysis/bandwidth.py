"""Bandwidth accounting (the paper's evaluation metrics).

The paper reports all results "in terms of bandwidth (GB/s or GElems/s)"
against the 800 GB/s peak of the 910B4.  The metric counts *logical* input
and output bytes over end-to-end time; internal traffic (intermediate
local-scan arrays, the recomputed reduction reads, the ``r`` array) does
not count toward it — that is precisely why a scan cannot reach 100% of
peak: MCScan moves ~16 bytes of GM traffic per fp16 element but only 6 of
them are logical I/O, bounding it at 6/16 = 37.5% of peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import DeviceConfig
from ..hw.trace import Trace

__all__ = [
    "io_bandwidth_gbps",
    "gelems_per_s",
    "peak_fraction",
    "TrafficBreakdown",
    "traffic_breakdown",
    "scan_peak_fraction_bound",
]


def io_bandwidth_gbps(io_bytes: int, time_ns: float) -> float:
    """Logical-I/O bandwidth in GB/s (bytes per nanosecond)."""
    return io_bytes / time_ns if time_ns > 0 else 0.0


def gelems_per_s(n_elements: int, time_ns: float) -> float:
    return n_elements / time_ns if time_ns > 0 else 0.0


def peak_fraction(bandwidth_gbps: float, config: DeviceConfig) -> float:
    return bandwidth_gbps / config.memory.hbm_bandwidth_gbps


@dataclass(frozen=True)
class TrafficBreakdown:
    """GM traffic of a trace split by direction and service class."""

    read_bytes: int
    write_bytes: int
    l2_hit_bytes: int
    total_bytes: int

    @property
    def hit_ratio(self) -> float:
        return self.l2_hit_bytes / self.total_bytes if self.total_bytes else 0.0


def traffic_breakdown(trace: Trace) -> TrafficBreakdown:
    total = trace.gm_bytes()
    return TrafficBreakdown(
        read_bytes=trace.gm_read_bytes(),
        write_bytes=trace.gm_write_bytes(),
        l2_hit_bytes=trace.l2_hit_bytes(),
        total_bytes=total,
    )


def scan_peak_fraction_bound(
    io_bytes_per_element: float, traffic_bytes_per_element: float
) -> float:
    """Upper bound on the achievable peak fraction of a memory-bound
    operator: logical I/O per element over total GM traffic per element.

    For fp16 MCScan: io = 2 (in) + 4 (fp32 out) = 6; traffic = 16
    (x read twice, intermediate written, read and rewritten) -> 37.5%.
    """
    if traffic_bytes_per_element <= 0:
        raise ZeroDivisionError("traffic must be positive")
    return io_bytes_per_element / traffic_bytes_per_element
