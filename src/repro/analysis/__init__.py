"""Work/depth, bandwidth and roofline analysis utilities."""

from .bandwidth import (
    TrafficBreakdown,
    gelems_per_s,
    io_bandwidth_gbps,
    peak_fraction,
    scan_peak_fraction_bound,
    traffic_breakdown,
)
from .roofline import (
    RooflinePoint,
    cube_issue_floor_ns,
    link_floor_ns,
    machine_balance_flops_per_byte,
    memory_floor_ns,
    roofline_point,
)
from .workdepth import (
    AlgorithmCosts,
    mcscan_costs,
    scanu_costs,
    scanul1_costs,
    vector_baseline_costs,
)

__all__ = [
    "AlgorithmCosts",
    "RooflinePoint",
    "TrafficBreakdown",
    "cube_issue_floor_ns",
    "link_floor_ns",
    "memory_floor_ns",
    "gelems_per_s",
    "io_bandwidth_gbps",
    "machine_balance_flops_per_byte",
    "mcscan_costs",
    "peak_fraction",
    "roofline_point",
    "scan_peak_fraction_bound",
    "scanu_costs",
    "scanul1_costs",
    "traffic_breakdown",
    "vector_baseline_costs",
]
