"""Functional execution of cached scan plans (the serve layer's hot path).

A :class:`~repro.core.api.ScanPlan` separates a scan operator into the
*traced* op DAG (shape-dependent, value-independent — built once) and the
*functional* computation (value-dependent — re-run per request).  This
module provides that functional half: the canonical NumPy computation with
device accumulation semantics, straight from :mod:`repro.core.reference`.

Plan execution therefore returns canonically-accumulated results rather
than a bit-replay of the kernel's tile-order arithmetic.  The two agree
exactly for exactly-representable data and within dtype-dependent rounding
otherwise; :func:`validation_tolerance` encodes the expected bound per
(algorithm, dtype) and plan building cross-checks the traced kernel's
output against the functional path on a deterministic validation input
(:func:`validation_input`).

One combination is exempt: ScanUL1 stages its ``C1 = A @ 1_s`` intermediate
through the narrow input dtype (the L1 staging buffer), so int8 inputs with
large tile-row sums wrap — a documented quantisation limit of that kernel,
not a plan-cache defect.  Validation is skipped there (``None`` tolerance).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..hw.datatypes import DType
from .reference import (
    batched_inclusive_scan,
    exact_fp16_scan_input,
    exclusive_scan,
    inclusive_scan,
)

__all__ = [
    "plan_compute",
    "plan_compute_batched",
    "validation_input",
    "validation_tolerance",
]

#: algorithms whose output dtype is the input dtype (vector baseline) rather
#: than the cube accumulator dtype
_VECTOR_ALGORITHMS = ("vector",)


def plan_compute(
    x_padded: np.ndarray,
    algorithm: str,
    in_dtype: DType,
    *,
    exclusive: bool = False,
) -> np.ndarray:
    """Compute the padded output array of a 1-D scan plan."""
    if exclusive:
        if algorithm != "mcscan":
            raise KernelError("exclusive scan is implemented on MCScan")
        return exclusive_scan(x_padded)
    if algorithm in _VECTOR_ALGORITHMS:
        return inclusive_scan(x_padded, out_dtype=in_dtype.np_dtype)
    return inclusive_scan(x_padded)


def plan_compute_batched(
    x_padded: np.ndarray, algorithm: str, in_dtype: DType
) -> np.ndarray:
    """Compute the padded output of a batched (2-D, row-wise) scan plan."""
    if algorithm in _VECTOR_ALGORITHMS:
        return batched_inclusive_scan(x_padded, out_dtype=in_dtype.np_dtype)
    return batched_inclusive_scan(x_padded)


def validation_input(n: int, dtype: DType, *, seed: int = 0) -> np.ndarray:
    """Deterministic input on which kernel and functional paths must agree.

    fp16 data is drawn so that every partial sum any tiling scheme can form
    is exactly representable (see :func:`exact_fp16_scan_input`); int8 data
    uses small values whose int32-accumulated scans are always exact.
    """
    rng = np.random.default_rng(0x5EEDE + seed)
    if dtype.name == "fp16":
        x, _ = exact_fp16_scan_input(n, rng, prefix_bound=1024)
        return x
    if dtype.name == "int8":
        return rng.integers(-2, 3, n).astype(np.int8)
    raise KernelError(f"no validation input recipe for dtype {dtype.name}")


def validation_tolerance(
    algorithm: str, dtype: DType
) -> "tuple[float, float] | None":
    """(rtol, atol) for build-time validation, or None to skip it.

    On the exact :func:`validation_input` data every supported kernel is
    bit-identical to the canonical computation, so the tolerance is zero —
    except ScanUL1 on int8, whose C1 staging wraps (see module docstring).
    """
    if algorithm == "scanul1" and dtype.name == "int8":
        return None
    return (0.0, 0.0)
