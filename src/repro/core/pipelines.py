"""Reusable kernel building blocks.

The paper's kernels compose a small number of per-tile stages:

* :class:`UCubePipeline` — the ScanU cube stage: one ``A @ U_s`` matmul per
  ``l``-tile producing s-tile-local scans (Algorithm 1 lines 5-8, also the
  cube stage of MCScan phase I and of the batched ScanU kernel);
* :class:`UL1CubePipeline` — the ScanUL1 cube stage: the three-matmul
  evaluation of Equation (1) with L0C accumulation (Algorithm 2 lines 5-13);
* :class:`VecPropagator` — the vector stage: serial partial-sum propagation
  across tiles (Algorithm 1 lines 9-15 / Algorithm 3 phase II), with
  optional exclusive-scan output via an in-UB shift;
* :class:`VecReducer` — the vector stage of MCScan phase I: per-block
  reduction of the raw input (Algorithm 3 lines 11-13).

Keeping them here lets the single-core, batched and multi-core kernels
share one implementation of each stage.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..hw.datatypes import DType, cube_accum_dtype
from ..hw.memory import GlobalSlice
from ..lang import intrinsics as I
from ..lang.context import KernelContext
from ..lang.tensor import BufferKind
from .matrices import ScanConstants

__all__ = ["UCubePipeline", "UL1CubePipeline", "VecPropagator", "VecReducer"]


class UCubePipeline:
    """Cube stage of ScanU: ``C = A @ U_s`` per tile, double-buffered.

    Tiles are ``rows x s`` row-major views of the input (``rows = s`` for
    the square tiles of the 1-D kernels)."""

    def __init__(
        self,
        ctx: KernelContext,
        consts: ScanConstants,
        s: int,
        *,
        tile_rows: "int | None" = None,
    ):
        self.ctx = ctx
        self.s = s
        self.rows = tile_rows if tile_rows is not None else s
        if not 1 <= self.rows <= s:
            raise ShapeError(f"tile rows must be in [1, {s}], got {self.rows}")
        self.tile = self.rows * s
        self.in_dt = consts.dtype
        self.out_dt = cube_accum_dtype(consts.dtype)
        cube = ctx.require_cube()
        pipe = ctx.make_pipe(cube)
        self._l0a = pipe.init_buffer(
            buffer=BufferKind.L0A, depth=2, slot_bytes=self.tile * self.in_dt.itemsize
        )
        self._l0b = pipe.init_buffer(
            buffer=BufferKind.L0B, depth=1, slot_bytes=s * s * self.in_dt.itemsize
        )
        self._l0c = pipe.init_buffer(
            buffer=BufferKind.L0C, depth=2, slot_bytes=self.tile * self.out_dt.itemsize
        )
        # U_s stays resident in L0B for the whole kernel
        self._u = self._l0b.alloc_tensor(self.in_dt, s * s)
        I.data_copy(ctx, self._u, consts.u.whole(), label="load U_s")

    def local_scan_tile(
        self, gm_in: GlobalSlice, gm_out: GlobalSlice, *, label: str = ""
    ) -> None:
        """Emit ``gm_out = s-tile-local scans of gm_in`` via one matmul."""
        if gm_in.length != self.tile or gm_out.length != self.tile:
            raise ShapeError(
                f"cube stage operates on full {self.rows}x{self.s} tiles "
                f"({self.tile} elements), got {gm_in.length} -> {gm_out.length}"
            )
        ctx, s = self.ctx, self.s
        a = self._l0a.alloc_tensor(self.in_dt, self.tile)
        I.data_copy(ctx, a, gm_in, label=f"load x {label}")
        c = self._l0c.alloc_tensor(self.out_dt, self.tile)
        I.mmad(ctx, c, a, self._u, self.rows, s, s, label=f"A@U {label}")
        self._l0a.free_tensor(a)
        I.data_copy(ctx, gm_out, c, label=f"store C {label}")
        self._l0c.free_tensor(c)


class UL1CubePipeline:
    """Cube stage of ScanUL1: Equation (1) per tile.

    L0A holds the resident ``L_s^-`` plus a cycling ``x`` slot; L0B holds
    the resident ``U_s`` plus a cycling ``1_s``/``C1`` slot — for s = 128
    this fills both 64 KB input buffers, so the x slot cannot be
    double-buffered (a real constraint of the hardware that shapes this
    kernel's pipeline).
    """

    def __init__(self, ctx: KernelContext, consts: ScanConstants, s: int):
        self.ctx = ctx
        self.s = s
        self.rows = consts.rows
        self.tile = self.rows * s
        self.in_dt = consts.dtype
        self.out_dt = cube_accum_dtype(consts.dtype)
        square_bytes = s * s * self.in_dt.itemsize
        tile_bytes = self.tile * self.in_dt.itemsize
        cube = ctx.require_cube()
        pipe = ctx.make_pipe(cube)
        self._l1 = pipe.init_buffer(
            buffer=BufferKind.L1, depth=5, slot_bytes=square_bytes
        )
        self._l0a = pipe.init_buffer(
            buffer=BufferKind.L0A, depth=2, slot_bytes=tile_bytes
        )
        self._l0b = pipe.init_buffer(
            buffer=BufferKind.L0B, depth=2, slot_bytes=square_bytes
        )
        self._l0c = pipe.init_buffer(
            buffer=BufferKind.L0C, depth=2, slot_bytes=self.tile * self.out_dt.itemsize
        )

        # Algorithm 2 line 4: constants into L1 once.
        u_l1 = self._l1.alloc_tensor(self.in_dt, s * s)
        I.data_copy(ctx, u_l1, consts.u.whole(), label="load U_s -> L1")
        lm_l1 = self._l1.alloc_tensor(self.in_dt, self.rows * self.rows)
        I.data_copy(ctx, lm_l1, consts.strict_lower.whole(), label="load L^- -> L1")
        self._ones_l1 = self._l1.alloc_tensor(self.in_dt, s * s)
        I.data_copy(ctx, self._ones_l1, consts.ones.whole(), label="load 1_s -> L1")

        # resident L0 operands
        self._u_l0b = self._l0b.alloc_tensor(self.in_dt, s * s)
        I.data_copy(ctx, self._u_l0b, u_l1, label="stage U_s -> L0B")
        self._lm_l0a = self._l0a.alloc_tensor(self.in_dt, self.rows * self.rows)
        I.data_copy(ctx, self._lm_l0a, lm_l1, label="stage L^- -> L0A")

    def scan_tile(
        self, gm_in: GlobalSlice, gm_out: GlobalSlice, *, label: str = ""
    ) -> None:
        """Emit ``gm_out = inclusive scan of gm_in`` (tile-local, Eq. 1)."""
        if gm_in.length != self.tile or gm_out.length != self.tile:
            raise ShapeError(
                f"cube stage operates on full {self.rows}x{self.s} tiles "
                f"({self.tile} elements), got {gm_in.length} -> {gm_out.length}"
            )
        ctx, s, rows, tile = self.ctx, self.s, self.rows, self.tile
        a = self._l0a.alloc_tensor(self.in_dt, tile)
        I.data_copy(ctx, a, gm_in, label=f"load x {label}")
        ones_l0b = self._l0b.alloc_tensor(self.in_dt, s * s)
        I.data_copy(ctx, ones_l0b, self._ones_l1, label=f"stage 1_s {label}")

        c1 = self._l0c.alloc_tensor(self.out_dt, tile)
        I.mmad(ctx, c1, a, ones_l0b, rows, s, s, label=f"A@1 {label}")
        self._l0b.free_tensor(ones_l0b)

        c1_l1 = self._l1.alloc_tensor(self.in_dt, tile)
        I.data_copy(ctx, c1_l1, c1, label=f"C1 -> L1 {label}")
        self._l0c.free_tensor(c1)

        c2 = self._l0c.alloc_tensor(self.out_dt, tile)
        I.mmad(ctx, c2, a, self._u_l0b, rows, s, s, label=f"A@U {label}")
        self._l0a.free_tensor(a)

        c1_l0b = self._l0b.alloc_tensor(self.in_dt, tile)
        I.data_copy(ctx, c1_l0b, c1_l1, label=f"stage C1 {label}")
        self._l1.free_tensor(c1_l1)
        I.mmad(
            ctx, c2, self._lm_l0a, c1_l0b, rows, rows, s,
            accumulate=True, label=f"C2+=L@C1 {label}",
        )
        self._l0b.free_tensor(c1_l0b)

        I.data_copy(ctx, gm_out, c2, label=f"store C2 {label}")
        self._l0c.free_tensor(c2)


class VecPropagator:
    """Vector stage: serial propagation of the running partial sum.

    ``chain_s`` is the stride of the serial Adds chain within a tile: ``s``
    after a ScanU/MCScan cube stage (the tile holds s-tile-local scans) or
    the full tile length after a ScanUL1 cube stage (the tile is already
    scanned; only one scalar is added).
    """

    def __init__(
        self,
        ctx: KernelContext,
        vec_core,
        tile_elements: int,
        dtype: DType,
        *,
        exclusive: bool = False,
        initial_partial: float = 0.0,
        depth: int = 2,
        post_fns: "tuple" = (),
    ):
        self.ctx = ctx
        self.dtype = dtype
        self.tile_elements = tile_elements
        self.exclusive = exclusive
        self.partial = initial_partial
        #: elementwise epilogue applied in UB after propagation (and after
        #: the exclusive shift), before the store — the fusion seam: the
        #: running partial is chained through the *unmapped* scan values,
        #: so folding a map here never perturbs the scan semantics
        self.post_fns = tuple(post_fns)
        pipe = ctx.make_pipe(vec_core)
        self._ub = pipe.init_buffer(
            buffer=BufferKind.UB,
            depth=depth,
            slot_bytes=tile_elements * dtype.itemsize,
        )
        self._reg = ctx.new_register()

    def propagate_tile(
        self, gm_in: GlobalSlice, gm_out: GlobalSlice, chain_s: int, *, label: str = ""
    ) -> None:
        """Load a tile, add the running partial through its s-tiles, store.

        In exclusive mode the finished tile is shifted right by one inside
        UB with the previous partial as carry-in, so the store stays
        tile-aligned (no cross-block overlapping writes)."""
        ctx = self.ctx
        if gm_in.length != gm_out.length:
            raise ShapeError("propagate_tile needs equal in/out lengths")
        if gm_in.length > self.tile_elements:
            raise ShapeError(
                f"tile of {gm_in.length} exceeds UB slot of {self.tile_elements}"
            )
        tile = self._ub.alloc_tensor(self.dtype, gm_in.length)
        I.data_copy(ctx, tile, gm_in, label=f"load y {label}")
        carry_in = self.partial
        self.partial = I.propagate_chain(
            ctx, tile, chain_s, self.partial, self._reg, label=f"propagate {label}"
        )
        if self.exclusive:
            arr = tile.array

            def _shift() -> None:
                arr[1:] = arr[:-1]
                arr[0] = np.asarray(carry_in).astype(arr.dtype)

            I.vector_macro(
                ctx,
                label=f"shift-exclusive {label}",
                reads=(tile,),
                writes=(tile,),
                nbytes=tile.nbytes,
                apply=_shift,
            )
        for fi, fn in enumerate(self.post_fns):
            arr = tile.array

            def _post(fn=fn, arr=arr) -> None:
                arr[...] = np.asarray(fn(arr)).astype(arr.dtype)

            I.vector_macro(
                ctx,
                label=f"post-map[{fi}] {label}",
                reads=(tile,),
                writes=(tile,),
                nbytes=tile.nbytes,
                apply=_post,
            )
        I.data_copy(ctx, gm_out, tile, label=f"store y {label}")
        self._ub.free_tensor(tile)

    def reset(self, partial: float = 0.0) -> None:
        """Restart the serial chain (e.g. at a new row of a batch)."""
        self.partial = partial
        self._reg = self.ctx.new_register()


class VecReducer:
    """Vector stage of MCScan phase I: tile-wise reduction of the input."""

    def __init__(
        self,
        ctx: KernelContext,
        vec_core,
        tile_elements: int,
        dtype: DType,
        *,
        depth: int = 2,
    ):
        self.ctx = ctx
        self.vec_core = vec_core
        self.dtype = dtype
        self.tile_elements = tile_elements
        pipe = ctx.make_pipe(vec_core)
        self._ub = pipe.init_buffer(
            buffer=BufferKind.UB,
            depth=depth,
            slot_bytes=tile_elements * dtype.itemsize,
        )
        # small scratch for writing the reduction result to GM
        self._scratch = pipe.init_buffer(
            buffer=BufferKind.UB, depth=1, slot_bytes=64
        )
        self.total = 0.0

    def reduce_tile(self, gm_in: GlobalSlice, *, label: str = "") -> None:
        if gm_in.length > self.tile_elements:
            raise ShapeError(
                f"tile of {gm_in.length} exceeds UB slot of {self.tile_elements}"
            )
        tile = self._ub.alloc_tensor(self.dtype, gm_in.length)
        I.data_copy(self.ctx, tile, gm_in, label=f"load x {label}")
        self.total += I.reduce_sum(self.ctx, tile, label=f"reduce {label}")
        self._ub.free_tensor(tile)

    def write_total(self, gm_out: GlobalSlice, out_dtype: DType) -> None:
        """Write the accumulated reduction to its slot of the ``r`` array."""
        if gm_out.length != 1:
            raise ShapeError("write_total writes exactly one element")
        t = self._scratch.alloc_tensor(out_dtype, 1)
        I.duplicate(self.ctx, t, self.total, label="stage r_i")
        I.data_copy(self.ctx, gm_out, t, label="store r_i")
        self._scratch.free_tensor(t)
