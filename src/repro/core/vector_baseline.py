"""Vector-only scan baselines.

:class:`CumSumKernel` models the AscendC ``CumSum`` API the paper uses as
its single-core baseline ("a vector-only kernel that uses the CumSum
AscendC API with CumSumInfo parameters set to 128 and 128", Section 4.1):
each 128x128 UB tile is scanned row-serially by the microcoded CumSum
sequence, the row offsets are then propagated by the same serial Adds
chain the cube kernels use, and the running partial crosses tiles.  It
never touches the cube unit.

:class:`BatchedCumSumKernel` is the multi-core ``torch.cumsum`` stand-in
for the batched comparisons (Figures 12 and 13): rows of the batch are
distributed over all vector cores, each scanned with the same vector-only
tile loop.
"""

from __future__ import annotations

from ..errors import ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["CumSumKernel", "BatchedCumSumKernel", "CUMSUM_ROWS", "CUMSUM_COLS"]

#: the paper sets CumSumInfo to (128, 128)
CUMSUM_ROWS = 128
CUMSUM_COLS = 128
_TILE = CUMSUM_ROWS * CUMSUM_COLS


def _scan_row_on_core(ctx, ub_queue, x, y, row_offset, row_len, reg) -> None:
    """Vector-only scan of one contiguous row using (128, 128) UB tiles."""
    partial = 0.0
    off = 0
    while off < row_len:
        ln = min(_TILE, row_len - off)
        if ln % CUMSUM_COLS != 0:
            raise ShapeError(
                f"vector baseline needs lengths padded to {CUMSUM_COLS}, "
                f"got remainder {ln % CUMSUM_COLS}"
            )
        rows = ln // CUMSUM_COLS
        tile = ub_queue.alloc_tensor(x.dtype, ln)
        I.data_copy(ctx, tile, x.slice(row_offset + off, ln), label="load tile")
        ub_queue.enque(tile)
        tile = ub_queue.deque()
        # the CumSum API: row-serial cumulative sums within the tile ...
        I.row_cumsum_serial(ctx, tile, rows, CUMSUM_COLS, label="CumSum rows")
        # ... then serial propagation of row offsets and the running partial
        partial = I.propagate_chain(
            ctx, tile, CUMSUM_COLS, partial, reg, label="propagate rows"
        )
        I.data_copy(ctx, y.slice(row_offset + off, ln), tile, label="store tile")
        ub_queue.free_tensor(tile)
        off += ln


class CumSumKernel(Kernel):
    """Single-vector-core CumSum baseline (Figure 3's ``vec_only``)."""

    mode = "vec"

    def __init__(self, x: GlobalTensor, y: GlobalTensor):
        super().__init__(block_dim=1)
        if x.num_elements % CUMSUM_COLS != 0:
            raise ShapeError(
                f"input length {x.num_elements} must be a multiple of "
                f"{CUMSUM_COLS} (pad with zeros)"
            )
        if y.num_elements != x.num_elements or y.dtype.name != x.dtype.name:
            raise ShapeError("output must match input length and dtype")
        self.x = x
        self.y = y

    def run(self, ctx) -> None:
        pipe = ctx.make_pipe(ctx.vec_core(0))
        ub = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * self.x.dtype.itemsize
        )
        reg = ctx.new_register()
        _scan_row_on_core(ctx, ub, self.x, self.y, 0, self.x.num_elements, reg)


class BatchedCumSumKernel(Kernel):
    """Multi-core vector-only batched cumsum (``torch.cumsum`` stand-in)."""

    mode = "vec"

    def __init__(self, x: GlobalTensor, y: GlobalTensor, block_dim: int):
        super().__init__(block_dim=block_dim)
        if len(x.shape) != 2:
            raise ShapeError(f"batched cumsum expects 2-D input, got {x.shape}")
        if x.shape[1] % CUMSUM_COLS != 0:
            raise ShapeError(
                f"row length {x.shape[1]} must be a multiple of {CUMSUM_COLS}"
            )
        if y.shape != x.shape or y.dtype.name != x.dtype.name:
            raise ShapeError("output must match input shape and dtype")
        self.x = x
        self.y = y

    def run(self, ctx) -> None:
        batch, row_len = self.x.shape
        my_rows = range(ctx.block_idx, batch, ctx.block_dim)
        if not my_rows:
            return
        pipe = ctx.make_pipe(ctx.vec_core(0))
        ub = pipe.init_buffer(
            buffer=BufferKind.UB, depth=2, slot_bytes=_TILE * self.x.dtype.itemsize
        )
        for r in my_rows:
            reg = ctx.new_register()
            _scan_row_on_core(ctx, ub, self.x, self.y, r * row_len, row_len, reg)
