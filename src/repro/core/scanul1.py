"""ScanUL1 — Algorithm 2 of the paper (Ascend adaptation of Dakkak et al.).

Per ``l = s^2`` tile, the cube core evaluates Equation (1),

    scan(z) = A @ U_s + L_s^- @ (A @ 1_s),

as the sequence ``C1 = A @ 1``; ``C2 = A @ U``; ``C2 += L^- @ C1`` — the
first two share the left operand ``A`` in L0A, and the third accumulates
into C2 in the L0C accumulation buffer (the two data-movement properties
the paper highlights).  The vector core then adds a single scalar per
tile, so its per-tile cost is one Adds instruction instead of ScanU's
``s`` serial ones — the source of the roughly 2x speedup over ScanU.

See :class:`repro.core.pipelines.UL1CubePipeline` for the L0A/L0B
residency constraints that shape the pipeline.
"""

from __future__ import annotations

from ..hw.memory import GlobalTensor
from ..lang.kernel import Kernel
from .matrices import ScanConstants
from .pipelines import UL1CubePipeline, VecPropagator
from .scanu import validate_scan_args

__all__ = ["ScanUL1Kernel"]


class ScanUL1Kernel(Kernel):
    """ScanUL1 (Algorithm 2)."""

    mode = "mix"

    def __init__(
        self, x: GlobalTensor, y: GlobalTensor, consts: ScanConstants, s: int
    ):
        super().__init__(block_dim=1)
        validate_scan_args(x, y, consts, s, "ScanUL1")
        self.x = x
        self.y = y
        self.consts = consts
        self.s = s

    def run(self, ctx) -> None:
        s = self.s
        ell = s * s
        n_tiles = self.x.num_elements // ell

        cube = UL1CubePipeline(ctx, self.consts, s)
        vec = VecPropagator(ctx, ctx.vec_core(0), ell, cube.out_dt)

        for t in range(n_tiles):
            gm_in = self.x.slice(t * ell, ell)
            gm_out = self.y.slice(t * ell, ell)
            cube.scan_tile(gm_in, gm_out, label=f"[{t}]")
            # the tile is already fully scanned: one Adds propagates the
            # partial (chain stride = whole tile)
            vec.propagate_tile(gm_out, gm_out, ell, label=f"[{t}]")
