"""Alternative multi-core scan strategies (paper Section 2.1).

The paper positions MCScan against the classic accelerator scan
strategies — Scan-Scan-Add (SSA), Reduce-Scan-Scan (RSS), and the
single-pass StreamScan / decoupled-lookback family — and argues that its
*partial recomputation* of block reductions on the vector units (overlapped
with the cube local scans, one barrier) is the right fit for the 910B
split architecture.  This module implements the three competitors so the
claim can be tested head-to-head (see ``benchmarks/bench_strategies.py``):

* :class:`SSAScanKernel` — Scan-Scan-Add: per-block full local scans +
  block totals, a small scan of the totals, then a broadcast add.  Two
  barriers; the broadcast-add phase is one vector instruction per tile.

* :class:`RSSScanKernel` — Reduce-Scan-Scan: a dedicated reduction phase
  (cube cores idle!), the small scan, then the full per-block scan with
  the scanned bases.  Two barriers; the same GM traffic as MCScan but no
  phase-I overlap — isolating exactly what MCScan's recomputation buys.

* :class:`LookbackScanKernel` — decoupled lookback: a *single* phase with
  no global barrier.  Each block publishes its aggregate early (computed
  by its vector cores from the raw input, in parallel with the cube local
  scans); later blocks read predecessors' aggregates directly from GM.
  On GPUs this strategy also cuts traffic to 2N because one pass keeps
  the scan in registers; on the 910B *split* architecture the cube
  output must round-trip through GM anyway, so only the barrier saving
  survives — an architectural observation that supports the paper's
  choice of the SSA-like structure.

All three reuse MCScan's partitioning and the shared pipeline stages, and
all are validated against the same oracle as MCScan.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.datatypes import cube_accum_dtype
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind
from .matrices import ScanConstants, validate_tile_size
from .mcscan import _split_half, mcscan_partition
from .pipelines import UCubePipeline, VecPropagator, VecReducer

__all__ = ["SSAScanKernel", "RSSScanKernel", "LookbackScanKernel"]


class _StrategyBase(Kernel):
    """Shared validation / partitioning for the strategy kernels."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        r: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        validate_tile_size(s)
        ell = s * s
        if x.num_elements % ell != 0:
            raise ShapeError(
                f"{type(self).__name__} input length {x.num_elements} must "
                f"be a multiple of l = s^2 = {ell}"
            )
        if y.num_elements != x.num_elements:
            raise ShapeError("output length must match input length")
        if not x.dtype.cube_input:
            raise KernelError(f"input dtype {x.dtype.name} is not cube-capable")
        acc = cube_accum_dtype(x.dtype)
        if y.dtype.name != acc.name or r.dtype.name != acc.name:
            raise KernelError(
                f"output and r dtypes must be the accumulator {acc.name}"
            )
        if consts.s != s or consts.dtype.name != x.dtype.name:
            raise KernelError("constants do not match (s, dtype)")
        self.x = x
        self.y = y
        self.r = r
        self.consts = consts
        self.s = s

    def _check_r(self, lanes: int) -> None:
        if self.r.num_elements < lanes:
            raise ShapeError(
                f"r needs {lanes} entries, got {self.r.num_elements}"
            )

    def _lanes(self, ctx):
        """(half ranges, half id) iterator for this block."""
        ell = self.s * self.s
        n_tiles = self.x.num_elements // ell
        lo, hi = mcscan_partition(n_tiles, self.block_dim)[ctx.block_idx]
        halves = len(ctx.vector_cores)
        for j in range(halves):
            h_lo, h_hi = _split_half(lo, hi, j, halves)
            yield j, ctx.block_idx * halves + j, h_lo, h_hi

    def _total_lanes(self, ctx) -> int:
        return self.block_dim * len(ctx.vector_cores)


class SSAScanKernel(_StrategyBase):
    """Scan-Scan-Add (Section 2.1): local full scans, scan of totals,
    broadcast add.  Three phases, two barriers."""

    def phases(self):
        return [self.phase_local_scan, self.phase_scan_totals, self.phase_add]

    # -- phase 1: full local scans per lane + lane totals -------------------

    def phase_local_scan(self, ctx) -> None:
        self._check_r(self._total_lanes(ctx))
        s = self.s
        ell = s * s
        cube = UCubePipeline(ctx, self.consts, s)
        # the cube stage covers the whole block; each vector core then
        # chains its half into a *full* local scan and remembers the total
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            prop = VecPropagator(ctx, ctx.vec_core(j), ell, cube.out_dt)
            for t in range(h_lo, h_hi):
                gm_in = self.x.slice(t * ell, ell)
                gm_out = self.y.slice(t * ell, ell)
                cube.local_scan_tile(gm_in, gm_out, label=f"[{t}]")
                prop.propagate_tile(gm_out, gm_out, s, label=f"[{t}]")
            # lane total = running partial after the local chain
            pipe = ctx.make_pipe(ctx.vec_core(j))
            small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
            tot = small.alloc_tensor(self.y.dtype, 1)
            I.duplicate(ctx, tot, prop.partial, label="lane total")
            I.data_copy(ctx, self.r.slice(lane, 1), tot, label="store total")
            small.free_tensor(tot)

    # -- phase 2: scan of the lane totals on one vector core ----------------

    def phase_scan_totals(self, ctx) -> None:
        if ctx.block_idx != 0:
            return
        lanes = self._total_lanes(ctx)
        pipe = ctx.make_pipe(ctx.vec_core(0))
        buf = pipe.init_buffer(
            buffer=BufferKind.UB, depth=1,
            slot_bytes=max(lanes * self.r.dtype.itemsize, 64),
        )
        t = buf.alloc_tensor(self.r.dtype, lanes)
        I.data_copy(ctx, t, self.r.slice(0, lanes), label="load totals")
        reg = ctx.new_register()
        # exclusive scan of the totals: shift-in a zero and chain
        I.propagate_chain(ctx, t, 1, 0.0, reg, label="scan totals")
        arr = t.array

        def _to_exclusive() -> None:
            arr[1:] = arr[:-1]
            arr[0] = 0

        I.vector_macro(
            ctx, label="shift totals", reads=(t,), writes=(t,),
            nbytes=t.nbytes, apply=_to_exclusive,
        )
        I.data_copy(ctx, self.r.slice(0, lanes), t, label="store scanned")
        buf.free_tensor(t)

    # -- phase 3: broadcast add -----------------------------------------------

    def phase_add(self, ctx) -> None:
        ell = self.s * self.s
        lanes = self._total_lanes(ctx)
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            if h_lo >= h_hi or lane == 0:
                # lane 0 adds zero; skip its traffic entirely
                continue
            pipe = ctx.make_pipe(ctx.vec_core(j))
            small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
            base_t = small.alloc_tensor(self.r.dtype, 1)
            I.data_copy(ctx, base_t, self.r.slice(lane, 1), label="load base")
            base = float(base_t.array[0])
            small.free_tensor(base_t)
            tiles = pipe.init_buffer(
                buffer=BufferKind.UB, depth=2,
                slot_bytes=ell * self.y.dtype.itemsize,
            )
            for t in range(h_lo, h_hi):
                gm = self.y.slice(t * ell, ell)
                tile = tiles.alloc_tensor(self.y.dtype, ell)
                I.data_copy(ctx, tile, gm, label=f"add in [{t}]")
                I.adds(ctx, tile, tile, base, label=f"broadcast add [{t}]")
                I.data_copy(ctx, gm, tile, label=f"add out [{t}]")
                tiles.free_tensor(tile)


class RSSScanKernel(_StrategyBase):
    """Reduce-Scan-Scan (Section 2.1): a *separate* reduction phase in
    which the cube cores sit idle, then the small scan, then the full
    per-block scan seeded with the scanned bases.  The GM traffic is
    identical to MCScan's; the difference is purely the lost phase-I
    overlap — which is exactly the recomputation advantage the paper
    claims for MCScan."""

    def phases(self):
        return [self.phase_reduce, self.phase_scan_totals, self.phase_scan]

    def phase_reduce(self, ctx) -> None:
        self._check_r(self._total_lanes(ctx))
        ell = self.s * self.s
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            reducer = VecReducer(ctx, ctx.vec_core(j), ell, self.x.dtype)
            for t in range(h_lo, h_hi):
                reducer.reduce_tile(self.x.slice(t * ell, ell), label=f"[{t}]")
            reducer.write_total(self.r.slice(lane, 1), self.y.dtype)

    # the totals scan is identical to SSA's
    phase_scan_totals = SSAScanKernel.phase_scan_totals

    def phase_scan(self, ctx) -> None:
        s = self.s
        ell = s * s
        cube = UCubePipeline(ctx, self.consts, s)
        lanes = self._total_lanes(ctx)
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            if h_lo >= h_hi:
                continue
            pipe = ctx.make_pipe(ctx.vec_core(j))
            small = pipe.init_buffer(buffer=BufferKind.UB, depth=1, slot_bytes=64)
            base = 0.0
            if lane > 0:
                base_t = small.alloc_tensor(self.r.dtype, 1)
                I.data_copy(ctx, base_t, self.r.slice(lane, 1), label="load base")
                base = float(base_t.array[0])
                small.free_tensor(base_t)
            prop = VecPropagator(
                ctx, ctx.vec_core(j), ell, self.y.dtype, initial_partial=base
            )
            for t in range(h_lo, h_hi):
                gm_in = self.x.slice(t * ell, ell)
                gm_out = self.y.slice(t * ell, ell)
                cube.local_scan_tile(gm_in, gm_out, label=f"[{t}]")
                prop.propagate_tile(gm_out, gm_out, s, label=f"[{t}]")


class LookbackScanKernel(_StrategyBase):
    """Decoupled lookback (Section 2.1): single phase, no SyncAll.

    Lane ``i`` publishes its aggregate as soon as its vector core has
    recomputed it from the raw input; its propagation then *looks back* at
    aggregates ``0..i-1`` (a GM read ordered behind their publishes by the
    data dependency alone — no device-wide barrier).  The decoupling means
    a late lane never waits for its predecessors' *propagation*, only for
    their (early, cheap) aggregate publishes.
    """

    def phases(self):
        return [self.phase_single]

    def phase_single(self, ctx) -> None:
        self._check_r(self._total_lanes(ctx))
        s = self.s
        ell = s * s
        lanes = self._total_lanes(ctx)
        cube = UCubePipeline(ctx, self.consts, s)

        # publish aggregates first (vector units, overlapped with the cube)
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            reducer = VecReducer(ctx, ctx.vec_core(j), ell, self.x.dtype)
            for t in range(h_lo, h_hi):
                reducer.reduce_tile(self.x.slice(t * ell, ell), label=f"agg [{t}]")
            reducer.write_total(self.r.slice(lane, 1), self.y.dtype)

        # cube local scans of the block's tiles
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            for t in range(h_lo, h_hi):
                cube.local_scan_tile(
                    self.x.slice(t * ell, ell),
                    self.y.slice(t * ell, ell),
                    label=f"[{t}]",
                )

        # look back: read predecessors' aggregates, then propagate.  The GM
        # read of r[0:lane] depends only on those lanes' publish ops.
        for j, lane, h_lo, h_hi in self._lanes(ctx):
            if h_lo >= h_hi:
                continue
            base = 0.0
            if lane > 0:
                pipe = ctx.make_pipe(ctx.vec_core(j))
                small = pipe.init_buffer(
                    buffer=BufferKind.UB, depth=1,
                    slot_bytes=max(lane * self.r.dtype.itemsize, 64),
                )
                pred = small.alloc_tensor(self.r.dtype, lane)
                I.data_copy(ctx, pred, self.r.slice(0, lane), label="lookback")
                base = I.reduce_sum(ctx, pred, label="sum lookback")
                small.free_tensor(pred)
            prop = VecPropagator(
                ctx, ctx.vec_core(j), ell, self.y.dtype, initial_partial=base
            )
            for t in range(h_lo, h_hi):
                gm = self.y.slice(t * ell, ell)
                prop.propagate_tile(gm, gm, s, label=f"[{t}]")
