"""Copy kernel (``torch.clone`` stand-in).

Figure 8 of the paper compares MCScan's bandwidth against a pure memory
copy: "we compare it to a copy kernel that performs a memory copy; we used
torch.clone()".  This kernel streams the input through the UBs of all
participating vector cores — the best case for the memory system, and the
yardstick for "approaching the theoretical limit".
"""

from __future__ import annotations

from ..errors import ShapeError
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind

__all__ = ["CopyKernel"]


class CopyKernel(Kernel):
    """Multi-core tiled GM-to-GM copy through UB."""

    mode = "vec"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        block_dim: int,
        tile_elements: int = 16384,
    ):
        super().__init__(block_dim=block_dim)
        if y.num_elements != x.num_elements or y.dtype.name != x.dtype.name:
            raise ShapeError("copy output must match input length and dtype")
        self.x = x
        self.y = y
        self.tile_elements = tile_elements

    def run(self, ctx) -> None:
        n = self.x.num_elements
        # tile-aligned partitions: unaligned block boundaries would falsely
        # order adjacent cores' DMA descriptors on the same cache sector
        n_tiles = -(-n // self.tile_elements)
        tiles_per_block = -(-n_tiles // self.block_dim)
        per_block = tiles_per_block * self.tile_elements
        start = ctx.block_idx * per_block
        end = min(start + per_block, n)
        if start >= end:
            return
        pipe = ctx.make_pipe(ctx.vec_core(0))
        ub = pipe.init_buffer(
            buffer=BufferKind.UB,
            depth=2,
            slot_bytes=self.tile_elements * self.x.dtype.itemsize,
        )
        off = start
        while off < end:
            ln = min(self.tile_elements, end - off)
            tile = ub.alloc_tensor(self.x.dtype, ln)
            I.data_copy(ctx, tile, self.x.slice(off, ln), label="copy in")
            ub.enque(tile)
            tile = ub.deque()
            I.data_copy(ctx, self.y.slice(off, ln), tile, label="copy out")
            ub.free_tensor(tile)
            off += ln
