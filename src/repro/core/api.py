"""Public scan API.

:class:`ScanContext` mirrors the paper's PyTorch-operator integration: it
owns a simulated device, statically pre-allocates the constant matrices
(``U_s`` etc.) per (s, rows, dtype), pads inputs to tile multiples, and
exposes the scan variants as plain array-in / array-out calls.  Every call
returns a :class:`ScanResult` with the numerical result *and* the execution
trace, from which the paper's metrics (time, GB/s, GElems/s) derive.

HBM is managed with stack discipline (mark/release around each call), so a
long benchmark sweep reuses device memory without reallocating constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.config import ASCEND_910B4, DeviceConfig
from ..hw.datatypes import DType, as_dtype, cube_accum_dtype
from ..hw.device import AscendDevice
from ..hw.trace import Trace
from .batched import BatchedScanUKernel, BatchedScanUL1Kernel
from .copykernel import CopyKernel
from .matrices import ScanConstants, batched_tile_rows, padded_length, upload_constants
from .mcscan import MCScanKernel
from .scanu import ScanUKernel
from .strategies import LookbackScanKernel, RSSScanKernel, SSAScanKernel
from .scanul1 import ScanUL1Kernel
from .vector_baseline import BatchedCumSumKernel, CumSumKernel, CUMSUM_COLS

__all__ = [
    "ScanContext",
    "ScanResult",
    "SCAN_ALGORITHMS",
    "BATCHED_ALGORITHMS",
    "SCAN_STRATEGIES",
]

SCAN_ALGORITHMS = ("scanu", "scanul1", "mcscan", "vector")
BATCHED_ALGORITHMS = ("scanu", "scanul1", "vector")
#: multi-core strategy variants (paper Section 2.1) for the strategy ablation
SCAN_STRATEGIES = ("mcscan", "ssa", "rss", "lookback")


@dataclass
class ScanResult:
    """Numerical output plus execution trace of one operator call."""

    values: np.ndarray
    trace: Trace
    #: logical (unpadded) element count of the operator
    n_elements: int
    #: bytes of logical input read + logical output written (paper metric)
    io_bytes: int

    @property
    def time_ns(self) -> float:
        return self.trace.total_ns

    @property
    def time_us(self) -> float:
        return self.trace.total_ns / 1e3

    @property
    def bandwidth_gbps(self) -> float:
        """Achieved bandwidth by the paper's definition: logical input +
        output bytes over end-to-end time (GB/s = bytes/ns)."""
        return self.io_bytes / self.trace.total_ns

    @property
    def gelems_per_s(self) -> float:
        return self.n_elements / self.trace.total_ns  # elements/ns == GElems/s


class ScanContext:
    """Device + constants holder exposing the paper's scan operators."""

    def __init__(
        self,
        config: DeviceConfig = ASCEND_910B4,
        *,
        device: "AscendDevice | None" = None,
        warm_inputs: bool = True,
    ):
        self.device = device if device is not None else AscendDevice(config)
        self.config = self.device.config
        #: model steady-state profiling (inputs L2-resident when they fit),
        #: as the paper's repeated-measurement methodology produces
        self.warm_inputs = warm_inputs
        self._consts: dict[tuple[int, int, str], ScanConstants] = {}

    # -- constants cache ------------------------------------------------------

    def constants(
        self, s: int, dtype: "DType | str", *, rows: "int | None" = None
    ) -> ScanConstants:
        dt = as_dtype(dtype)
        key = (s, rows if rows is not None else s, dt.name)
        if key not in self._consts:
            self._consts[key] = upload_constants(self.device, s, dt, rows=rows)
        return self._consts[key]

    # -- helpers ------------------------------------------------------------------

    def _upload_padded(
        self, name: str, x: np.ndarray, pad_to: int, dtype: DType
    ) -> tuple:
        n = x.size
        padded = padded_length(n, pad_to)
        t = self.device.alloc(name, (padded,), dtype)
        if padded == n:
            t.write(x)
        else:
            buf = np.zeros(padded, dtype=dtype.np_dtype)
            buf[:n] = x
            t.write(buf)
        return t, padded

    def _input_dtype(self, x: np.ndarray) -> DType:
        kind = np.dtype(x.dtype)
        if kind == np.float16:
            return as_dtype("fp16")
        if kind == np.int8:
            return as_dtype("int8")
        raise KernelError(
            f"cube scans accept fp16 or int8 inputs (paper Section 3.1), "
            f"got {kind}"
        )

    # -- 1-D scans -----------------------------------------------------------------

    def scan(
        self,
        x: np.ndarray,
        *,
        algorithm: str = "mcscan",
        s: int = 128,
        exclusive: bool = False,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Prefix sum of a 1-D array on the simulated device.

        Cube algorithms return the accumulator dtype (fp32 / int32); the
        vector baseline returns the input dtype.
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"scan expects a 1-D array, got shape {x.shape}")
        if algorithm not in SCAN_ALGORITHMS:
            raise KernelError(
                f"unknown algorithm {algorithm!r}; pick one of {SCAN_ALGORITHMS}"
            )
        if exclusive and algorithm != "mcscan":
            raise KernelError(
                "exclusive scan is implemented on MCScan (as in the paper)"
            )
        n = x.size

        if algorithm == "vector":
            dt = self._input_dtype(x)
            mark = self.device.memory.mark()
            try:
                x_gm, padded = self._upload_padded("scan_x", x, CUMSUM_COLS, dt)
                y_gm = self.device.alloc("scan_y", (padded,), dt)
                if self.warm_inputs:
                    self.device.warm_l2(x_gm, y_gm)
                trace = self.device.launch(CumSumKernel(x_gm, y_gm), label="CumSum")
                values = y_gm.to_numpy()[:n]
            finally:
                self.device.memory.release(mark)
            io = n * dt.itemsize * 2
            return ScanResult(values, trace, n, io)

        dt = self._input_dtype(x)
        out_dt = cube_accum_dtype(dt)
        consts = self.constants(s, dt)
        ell = s * s
        mark = self.device.memory.mark()
        try:
            x_gm, padded = self._upload_padded("scan_x", x, ell, dt)
            y_gm = self.device.alloc("scan_y", (padded,), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            if algorithm == "scanu":
                kernel = ScanUKernel(x_gm, y_gm, consts, s)
            elif algorithm == "scanul1":
                kernel = ScanUL1Kernel(x_gm, y_gm, consts, s)
            else:  # mcscan
                n_tiles = padded // ell
                if block_dim is None:
                    block_dim = max(1, min(self.config.num_ai_cores, n_tiles))
                halves = block_dim * self.config.vector_cores_per_ai_core
                r_gm = self.device.alloc("scan_r", (halves,), out_dt)
                kernel = MCScanKernel(
                    x_gm, y_gm, r_gm, consts, s, block_dim, exclusive=exclusive
                )
            trace = self.device.launch(kernel, label=f"{algorithm}(s={s})")
            values = y_gm.to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, n, io)

    def scan_strategy(
        self,
        x: np.ndarray,
        *,
        strategy: str = "mcscan",
        s: int = 128,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Inclusive scan using one of the multi-core *strategies* of the
        paper's Section 2.1 (``mcscan``, ``ssa``, ``rss``, ``lookback``).

        MCScan is the paper's contribution; the others are the classic
        accelerator strategies it is positioned against, implemented on
        the same substrate for a head-to-head comparison.
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"scan expects a 1-D array, got shape {x.shape}")
        if strategy not in SCAN_STRATEGIES:
            raise KernelError(
                f"unknown strategy {strategy!r}; pick one of {SCAN_STRATEGIES}"
            )
        if strategy == "mcscan":
            return self.scan(x, algorithm="mcscan", s=s, block_dim=block_dim)
        kernel_cls = {
            "ssa": SSAScanKernel,
            "rss": RSSScanKernel,
            "lookback": LookbackScanKernel,
        }[strategy]
        n = x.size
        dt = self._input_dtype(x)
        out_dt = cube_accum_dtype(dt)
        consts = self.constants(s, dt)
        ell = s * s
        mark = self.device.memory.mark()
        try:
            x_gm, padded = self._upload_padded("scan_x", x, ell, dt)
            y_gm = self.device.alloc("scan_y", (padded,), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            n_tiles = padded // ell
            if block_dim is None:
                block_dim = max(1, min(self.config.num_ai_cores, n_tiles))
            lanes = block_dim * self.config.vector_cores_per_ai_core
            r_gm = self.device.alloc("scan_r", (lanes,), out_dt)
            kernel = kernel_cls(x_gm, y_gm, r_gm, consts, s, block_dim)
            trace = self.device.launch(kernel, label=f"{strategy}(s={s})")
            values = y_gm.to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, n, io)

    # -- batched scans ----------------------------------------------------------------

    def batched_scan(
        self,
        x: np.ndarray,
        *,
        algorithm: str = "scanu",
        s: int = 128,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Row-wise prefix sums of a 2-D batch (Section 4.2)."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ShapeError(f"batched_scan expects a 2-D array, got {x.shape}")
        if algorithm not in BATCHED_ALGORITHMS:
            raise KernelError(
                f"unknown batched algorithm {algorithm!r}; "
                f"pick one of {BATCHED_ALGORITHMS}"
            )
        batch, row_len = x.shape
        dt = self._input_dtype(x)

        if algorithm == "vector":
            padded = padded_length(row_len, CUMSUM_COLS)
            mark = self.device.memory.mark()
            try:
                x_gm = self.device.alloc("bscan_x", (batch, padded), dt)
                buf = np.zeros((batch, padded), dtype=dt.np_dtype)
                buf[:, :row_len] = x
                x_gm.write(buf)
                y_gm = self.device.alloc("bscan_y", (batch, padded), dt)
                if self.warm_inputs:
                    self.device.warm_l2(x_gm, y_gm)
                bd = min(self.config.num_vector_cores, batch)
                trace = self.device.launch(
                    BatchedCumSumKernel(x_gm, y_gm, bd), label="batched CumSum"
                )
                values = y_gm.to_numpy()[:, :row_len]
            finally:
                self.device.memory.release(mark)
            io = batch * row_len * dt.itemsize * 2
            return ScanResult(values, trace, batch * row_len, io)

        out_dt = cube_accum_dtype(dt)
        rows = batched_tile_rows(row_len, s)
        consts = self.constants(s, dt, rows=rows)
        tile = consts.tile_elements
        padded = padded_length(row_len, tile)
        mark = self.device.memory.mark()
        try:
            x_gm = self.device.alloc("bscan_x", (batch, padded), dt)
            buf = np.zeros((batch, padded), dtype=dt.np_dtype)
            buf[:, :row_len] = x
            x_gm.write(buf)
            y_gm = self.device.alloc("bscan_y", (batch, padded), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            if algorithm == "scanu":
                lanes = self.config.vector_cores_per_ai_core
                if block_dim is None:
                    block_dim = max(
                        1, min(self.config.num_ai_cores, -(-batch // lanes))
                    )
                kernel = BatchedScanUKernel(x_gm, y_gm, consts, s, block_dim)
            else:
                if block_dim is None:
                    block_dim = max(1, min(self.config.num_ai_cores, batch))
                kernel = BatchedScanUL1Kernel(x_gm, y_gm, consts, s, block_dim)
            trace = self.device.launch(
                kernel, label=f"batched {algorithm}(s={s}, rows={rows})"
            )
            values = y_gm.to_numpy()[:, :row_len]
        finally:
            self.device.memory.release(mark)
        io = batch * row_len * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, batch * row_len, io)

    # -- copy (torch.clone stand-in, Figure 8) --------------------------------------------

    def copy(self, x: np.ndarray, *, tile_elements: int = 16384) -> ScanResult:
        x = np.asarray(x).reshape(-1)
        dt = self._input_dtype(x)
        n = x.size
        mark = self.device.memory.mark()
        try:
            x_gm, _ = self._upload_padded("copy_x", x, 1, dt)
            y_gm = self.device.alloc("copy_y", (n,), dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            bd = min(self.config.num_vector_cores, max(1, n // tile_elements))
            trace = self.device.launch(
                CopyKernel(x_gm, y_gm, bd, tile_elements), label="copy"
            )
            values = y_gm.to_numpy()
        finally:
            self.device.memory.release(mark)
        return ScanResult(values, trace, n, 2 * n * dt.itemsize)
