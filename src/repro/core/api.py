"""Public scan API.

:class:`ScanContext` mirrors the paper's PyTorch-operator integration: it
owns a simulated device, statically pre-allocates the constant matrices
(``U_s`` etc.) per (s, rows, dtype), pads inputs to tile multiples, and
exposes the scan variants as plain array-in / array-out calls.  Every call
returns a :class:`ScanResult` with the numerical result *and* the execution
trace, from which the paper's metrics (time, GB/s, GElems/s) derive.

Two execution disciplines are offered:

* **one-shot** (:meth:`ScanContext.scan` and friends) — upload, trace the
  kernel, schedule, read back; HBM is managed with stack discipline
  (mark/release around each call), so a long benchmark sweep reuses device
  memory without reallocating constants;
* **planned** (:meth:`ScanContext.build_plan` / :meth:`ScanPlan.execute`)
  — the expensive Python-level kernel trace (op-DAG emission plus hazard
  analysis) runs once per shape; each subsequent execution re-runs only the
  functional NumPy computation, and the timeline itself is memoized on the
  traced program (the op DAG's costs are fixed at trace time, so replays
  are deterministic — see :mod:`repro.hw.compiled`).  This is the
  substrate of the request-serving layer in :mod:`repro.serve`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, KernelError, ShapeError
from ..hw.config import ASCEND_910B4, DeviceConfig
from ..hw.datatypes import DType, as_dtype, cube_accum_dtype
from ..hw.device import AscendDevice, TracedKernel
from ..hw.memory import GlobalTensor
from ..hw.trace import Trace
from .batched import batched_kernel_cls, default_batched_block_dim
from .copykernel import CopyKernel
from .matrices import ScanConstants, batched_tile_rows, padded_length, upload_constants
from .mcscan import MCScanKernel
from .replay import (
    plan_compute,
    plan_compute_batched,
    validation_input,
    validation_tolerance,
)
from .scanu import ScanUKernel
from .strategies import LookbackScanKernel, RSSScanKernel, SSAScanKernel
from .scanul1 import ScanUL1Kernel
from .vector_baseline import BatchedCumSumKernel, CumSumKernel, CUMSUM_COLS

__all__ = [
    "ScanContext",
    "ScanResult",
    "ScanPlan",
    "SCAN_ALGORITHMS",
    "BATCHED_ALGORITHMS",
    "SCAN_STRATEGIES",
    "PLAN_1D_ALGORITHMS",
    "FOLDABLE_SCAN_ALGORITHMS",
]

SCAN_ALGORITHMS = ("scanu", "scanul1", "mcscan", "vector")
BATCHED_ALGORITHMS = ("scanu", "scanul1", "vector")
#: multi-core strategy variants (paper Section 2.1) for the strategy ablation
SCAN_STRATEGIES = ("mcscan", "ssa", "rss", "lookback")
#: everything a 1-D plan can be built for: the paper's algorithms plus the
#: competitor strategies (all compute the same inclusive scan, so they share
#: the functional replay path) — the autotuner searches this whole set
PLAN_1D_ALGORITHMS = SCAN_ALGORITHMS + ("ssa", "rss", "lookback")

#: multi-core 1-D kernels that take a block_dim and an ``r`` array
_MULTI_CORE_1D = ("mcscan", "ssa", "rss", "lookback")

#: 1-D scan kernels whose vector propagation stage can fold a fused
#: elementwise epilogue in UB (graph-level fusion); the competitor
#: strategies and the L1-resident variant keep their published structure,
#: so fused epilogues fall back to a separate trailing map kernel there
FOLDABLE_SCAN_ALGORITHMS = ("scanu", "mcscan")


@dataclass
class ScanResult:
    """Numerical output plus execution trace of one operator call."""

    values: np.ndarray
    trace: Trace
    #: logical (unpadded) element count of the operator
    n_elements: int
    #: bytes of logical input read + logical output written (paper metric)
    io_bytes: int

    @property
    def time_ns(self) -> float:
        return self.trace.total_ns

    @property
    def time_us(self) -> float:
        return self.trace.total_ns / 1e3

    @property
    def bandwidth_gbps(self) -> float:
        """Achieved bandwidth by the paper's definition: logical input +
        output bytes over end-to-end time (GB/s = bytes/ns)."""
        return self.io_bytes / self.trace.total_ns

    @property
    def gelems_per_s(self) -> float:
        return self.n_elements / self.trace.total_ns  # elements/ns == GElems/s


@dataclass
class ScanPlan:
    """A traced, reusable scan operator for one (algorithm, shape, dtype).

    Device tensors, constant uploads and the emitted op DAG persist across
    executions; :meth:`execute` re-runs only the canonical functional
    computation (:mod:`repro.core.replay`) and the scheduler.  Plans own
    their GM tensors; :meth:`release` frees them back to the device
    allocator (used by the serve layer's bounded plan cache), after which
    the plan can no longer execute.
    """

    ctx: "ScanContext"
    algorithm: str
    s: int
    in_dtype: DType
    out_dtype: DType
    #: padded 1-D length, or padded row length for batched plans
    padded: int
    #: padding granularity requests must round up to (tile / CUMSUM_COLS)
    pad_unit: int
    #: batch row capacity for batched plans, None for 1-D plans
    batch: "int | None"
    block_dim: "int | None"
    exclusive: bool
    x_gm: GlobalTensor
    y_gm: GlobalTensor
    traced: TracedKernel
    #: host seconds spent building (trace + validation) — the cold cost
    build_host_s: float
    #: True if build-time validation ran and agreed; None if skipped
    validated: "bool | None"
    #: max |kernel - functional| observed at build time (float64 scale)
    build_max_err: float
    executions: int = field(default=0)
    #: GM tensors this plan owns (inputs, outputs, scratch — not the shared
    #: constant matrices); freed back to the device by :meth:`release`
    gm_tensors: "tuple[GlobalTensor, ...]" = field(default=())
    #: True if the plan's config came from a tuned-plan store entry
    tuned: bool = field(default=False)
    released: bool = field(default=False)

    @property
    def is_batched(self) -> bool:
        return self.batch is not None

    @property
    def gm_bytes(self) -> int:
        """Device-memory footprint of the tensors this plan owns."""
        tensors = self.gm_tensors if self.gm_tensors else (self.x_gm, self.y_gm)
        return sum(t.nbytes for t in tensors)

    def release(self) -> int:
        """Free the plan's GM tensors; returns the bytes returned to the
        allocator's hole list.  The plan becomes permanently
        non-executable — the serve layer's plan cache calls this when it
        evicts a plan to stay inside its GM budget."""
        if self.released:
            return 0
        freed = 0
        for t in self.gm_tensors if self.gm_tensors else (self.x_gm, self.y_gm):
            freed += self.ctx.device.memory.free(t)
        self.released = True
        return freed

    def time_ns(self, *, engine: str = "cached") -> float:
        """Simulated end-to-end nanoseconds of one launch of this plan
        (device timeline + launch overhead), without executing numerics.

        This is the serve/shard layers' cost probe: the device-pool router
        and the sharded-scan wall-clock model need launch times *before*
        deciding where (or whether) to run, and the timeline is memoized on
        the traced program so the probe is O(1) after the first call."""
        if self.released:
            raise KernelError(
                f"plan for {self.algorithm} (padded={self.padded}) has been "
                f"released; its device tensors are gone — build a new plan"
            )
        return self.ctx.device.time_traced(self.traced, engine=engine)

    @property
    def timeline_hits(self) -> int:
        """Executions served from the memoized timeline (no scheduling)."""
        return self.traced.timeline_hits

    @property
    def timeline_misses(self) -> int:
        """Executions that had to compute the timeline."""
        return self.traced.timeline_misses

    @property
    def key(self) -> tuple:
        """Canonical cache key (see ``repro.serve.plan.PlanCache``)."""
        return (
            self.algorithm,
            self.padded,
            self.in_dtype.name,
            self.batch,
            self.s,
            self.exclusive,
            self.block_dim,
        )

    # -- execution ----------------------------------------------------------

    def _check_dtype(self, x: np.ndarray) -> None:
        if np.dtype(x.dtype) != self.in_dtype.np_dtype:
            raise KernelError(
                f"plan is for {self.in_dtype.name} inputs, got {x.dtype}"
            )

    def execute(
        self,
        x: np.ndarray,
        *,
        sync_gm: bool = False,
        engine: str = "cached",
        audit_timing: "bool | None" = None,
    ) -> ScanResult:
        """Run the plan on new input values (the cache-hit path).

        ``x`` must pad to this plan's padded shape.  With ``sync_gm`` the
        device GM mirrors are also updated (slower; useful when chaining
        device-level inspection onto a plan execution).

        ``engine`` and ``audit_timing`` are forwarded to
        :meth:`~repro.hw.device.AscendDevice.replay`: the default serves
        the memoized timeline (ns-identical to rescheduling, since the op
        DAG's costs are fixed at trace time); ``engine="des"`` forces the
        reference scheduler and ``audit_timing=True`` cross-checks the
        served timeline against it.
        """
        if self.released:
            raise KernelError(
                f"plan for {self.algorithm} (padded={self.padded}) has been "
                f"released; its device tensors are gone — build a new plan"
            )
        x = np.asarray(x)
        if self.is_batched:
            return self._execute_batched(
                x, sync_gm=sync_gm, engine=engine, audit_timing=audit_timing
            )
        if x.ndim != 1:
            raise ShapeError(f"1-D plan expects a 1-D array, got shape {x.shape}")
        self._check_dtype(x)
        n = x.size
        if n <= 0 or n > self.padded or padded_length(n, self.pad_unit) != self.padded:
            raise ShapeError(
                f"plan is for padded length {self.padded} "
                f"(unit {self.pad_unit}); input of {n} does not pad to it"
            )
        if n == self.padded:
            xp = x
        else:
            xp = np.zeros(self.padded, dtype=self.in_dtype.np_dtype)
            xp[:n] = x
        values = plan_compute(
            xp, self.algorithm, self.in_dtype, exclusive=self.exclusive
        )
        if sync_gm:
            self.x_gm.write(xp)
            self.y_gm.write(values)
        trace = self.ctx.device.replay(
            self.traced, engine=engine, audit_timing=audit_timing
        )
        self.executions += 1
        io = n * self._io_bytes_per_element()
        return ScanResult(values[:n], trace, n, io)

    def _execute_batched(
        self,
        x: np.ndarray,
        *,
        sync_gm: bool,
        engine: str = "cached",
        audit_timing: "bool | None" = None,
    ) -> ScanResult:
        if x.ndim != 2:
            raise ShapeError(f"batched plan expects a 2-D array, got {x.shape}")
        self._check_dtype(x)
        rows, row_len = x.shape
        if rows <= 0 or rows > self.batch:
            raise ShapeError(
                f"plan holds {self.batch} rows, got a batch of {rows}"
            )
        # trailing zeros never leak into a row's first row_len prefix sums,
        # so any row length up to the plan's capacity is servable
        if row_len <= 0 or row_len > self.padded:
            raise ShapeError(
                f"plan holds rows of up to {self.padded} elements, "
                f"got rows of {row_len}"
            )
        if rows == self.batch and row_len == self.padded:
            xp = x
        else:
            xp = np.zeros((self.batch, self.padded), dtype=self.in_dtype.np_dtype)
            xp[:rows, :row_len] = x
        values = plan_compute_batched(xp, self.algorithm, self.in_dtype)
        if sync_gm:
            self.x_gm.write(xp)
            self.y_gm.write(values)
        trace = self.ctx.device.replay(
            self.traced, engine=engine, audit_timing=audit_timing
        )
        self.executions += 1
        n = rows * row_len
        io = n * self._io_bytes_per_element()
        return ScanResult(values[:rows, :row_len], trace, n, io)

    def replay_timing(
        self,
        *,
        engine: str = "cached",
        audit_timing: "bool | None" = None,
    ):
        """Replay this plan's simulated timeline *without* the numerics.

        The serve layer's vectorized path separates a launch into its two
        independent halves: the schedule-facing replay (fault injection,
        memoized timeline, per-device launch accounting — this method) and
        the pure functional numerics, which can then run stacked across a
        whole launch group (:mod:`repro.serve.numerics`) or on a host
        executor thread.  Counts as one execution, exactly like
        :meth:`execute`, and returns the :class:`~repro.hw.trace.Trace`.
        """
        if self.released:
            raise KernelError(
                f"plan for {self.algorithm} (padded={self.padded}) has been "
                f"released; its device tensors are gone — build a new plan"
            )
        trace = self.ctx.device.replay(
            self.traced, engine=engine, audit_timing=audit_timing
        )
        self.executions += 1
        return trace

    def _io_bytes_per_element(self) -> int:
        return self.in_dtype.itemsize + self.out_dtype.itemsize


class ScanContext:
    """Device + constants holder exposing the paper's scan operators."""

    def __init__(
        self,
        config: DeviceConfig = ASCEND_910B4,
        *,
        device: "AscendDevice | None" = None,
        warm_inputs: bool = True,
    ):
        self.device = device if device is not None else AscendDevice(config)
        self.config = self.device.config
        #: model steady-state profiling (inputs L2-resident when they fit),
        #: as the paper's repeated-measurement methodology produces
        self.warm_inputs = warm_inputs
        self._consts: dict[tuple[int, int, str], ScanConstants] = {}
        #: optional tuned-plan store consulted by ``build_plan(tuned=True)``;
        #: anything with ``lookup_1d`` / ``lookup_batched`` works (the real
        #: one is :class:`repro.tune.TuneStore` — duck-typed to keep core
        #: free of a tune dependency)
        self.tune_store = None

    # -- constants cache ------------------------------------------------------

    def constants(
        self, s: int, dtype: "DType | str", *, rows: "int | None" = None
    ) -> ScanConstants:
        dt = as_dtype(dtype)
        key = (s, rows if rows is not None else s, dt.name)
        if key not in self._consts:
            self._consts[key] = upload_constants(self.device, s, dt, rows=rows)
        return self._consts[key]

    # -- helpers ------------------------------------------------------------------

    def _upload_padded(
        self, name: str, x: np.ndarray, pad_to: int, dtype: DType
    ) -> tuple:
        n = x.size
        padded = padded_length(n, pad_to)
        t = self.device.alloc(name, (padded,), dtype)
        if padded == n:
            t.write(x)
        else:
            buf = np.zeros(padded, dtype=dtype.np_dtype)
            buf[:n] = x
            t.write(buf)
        return t, padded

    def _input_dtype(self, x: np.ndarray) -> DType:
        kind = np.dtype(x.dtype)
        if kind == np.float16:
            return as_dtype("fp16")
        if kind == np.int8:
            return as_dtype("int8")
        raise KernelError(
            f"cube scans accept fp16 or int8 inputs (paper Section 3.1), "
            f"got {kind}"
        )

    def _as_plan_dtype(self, dtype) -> DType:
        """Accept a device dtype, its name, or a NumPy dtype for plans."""
        if isinstance(dtype, DType):
            dt = dtype
        elif isinstance(dtype, str) and dtype in ("fp16", "int8"):
            dt = as_dtype(dtype)
        else:
            return self._input_dtype(np.empty(0, dtype=dtype))
        if dt.name not in ("fp16", "int8"):
            raise KernelError(
                f"scan plans accept fp16 or int8 inputs, got {dt.name}"
            )
        return dt

    def _mcscan_block_dim(self, n_tiles: int, block_dim: "int | None") -> int:
        limit = max(1, min(self.config.num_ai_cores, n_tiles))
        if block_dim is None:
            return limit
        if not isinstance(block_dim, int) or isinstance(block_dim, bool):
            raise ConfigError(f"block_dim must be an int, got {block_dim!r}")
        if block_dim < 1 or block_dim > limit:
            raise ConfigError(
                f"block_dim={block_dim} out of range [1, {limit}] "
                f"({self.config.num_ai_cores} AI cores, {n_tiles} tiles): "
                f"cores beyond the tile count would idle while still "
                f"paying synchronisation"
            )
        return block_dim

    def _cube_1d_kernel(
        self,
        algorithm: str,
        x_gm: GlobalTensor,
        y_gm: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: "int | None",
        exclusive: bool,
        post_fns: "tuple" = (),
    ):
        """Build a 1-D cube-scan kernel (allocates the ``r`` array for the
        multi-core variants from the device's current allocation scope).

        ``algorithm`` covers the single-core variants, MCScan, and the
        competitor strategies (``ssa``/``rss``/``lookback``) — the latter
        three share MCScan's signature and block_dim validation.

        ``post_fns`` folds an elementwise epilogue into the kernel's vector
        stage (graph-level fusion); only ScanU and MCScan expose that seam,
        so callers must pre-check :data:`FOLDABLE_SCAN_ALGORITHMS`."""
        if post_fns and algorithm not in FOLDABLE_SCAN_ALGORITHMS:
            raise KernelError(
                f"{algorithm} has no vector-stage epilogue seam; fold "
                f"post-maps only into {FOLDABLE_SCAN_ALGORITHMS}"
            )
        if algorithm == "scanu":
            return ScanUKernel(x_gm, y_gm, consts, s, post_fns=post_fns)
        if algorithm == "scanul1":
            return ScanUL1Kernel(x_gm, y_gm, consts, s)
        n_tiles = x_gm.num_elements // (s * s)
        bd = self._mcscan_block_dim(n_tiles, block_dim)
        halves = bd * self.config.vector_cores_per_ai_core
        r_gm = self.device.alloc("scan_r", (halves,), y_gm.dtype)
        if algorithm == "mcscan":
            return MCScanKernel(
                x_gm, y_gm, r_gm, consts, s, bd,
                exclusive=exclusive, post_fns=post_fns,
            )
        kernel_cls = {
            "ssa": SSAScanKernel,
            "rss": RSSScanKernel,
            "lookback": LookbackScanKernel,
        }[algorithm]
        return kernel_cls(x_gm, y_gm, r_gm, consts, s, bd)

    # -- 1-D scans -----------------------------------------------------------------

    def scan(
        self,
        x: np.ndarray,
        *,
        algorithm: str = "mcscan",
        s: int = 128,
        exclusive: bool = False,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Prefix sum of a 1-D array on the simulated device.

        Cube algorithms return the accumulator dtype (fp32 / int32); the
        vector baseline returns the input dtype.
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"scan expects a 1-D array, got shape {x.shape}")
        if algorithm not in SCAN_ALGORITHMS:
            raise KernelError(
                f"unknown algorithm {algorithm!r}; pick one of {SCAN_ALGORITHMS}"
            )
        if exclusive and algorithm != "mcscan":
            raise KernelError(
                "exclusive scan is implemented on MCScan (as in the paper)"
            )
        n = x.size

        if algorithm == "vector":
            dt = self._input_dtype(x)
            mark = self.device.memory.mark()
            try:
                x_gm, padded = self._upload_padded("scan_x", x, CUMSUM_COLS, dt)
                y_gm = self.device.alloc("scan_y", (padded,), dt)
                if self.warm_inputs:
                    self.device.warm_l2(x_gm, y_gm)
                trace = self.device.launch(CumSumKernel(x_gm, y_gm), label="CumSum")
                values = y_gm.to_numpy()[:n]
            finally:
                self.device.memory.release(mark)
            io = n * dt.itemsize * 2
            return ScanResult(values, trace, n, io)

        dt = self._input_dtype(x)
        out_dt = cube_accum_dtype(dt)
        consts = self.constants(s, dt)
        ell = s * s
        mark = self.device.memory.mark()
        try:
            x_gm, padded = self._upload_padded("scan_x", x, ell, dt)
            y_gm = self.device.alloc("scan_y", (padded,), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            kernel = self._cube_1d_kernel(
                algorithm, x_gm, y_gm, consts, s, block_dim, exclusive
            )
            trace = self.device.launch(kernel, label=f"{algorithm}(s={s})")
            values = y_gm.to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, n, io)

    def scan_strategy(
        self,
        x: np.ndarray,
        *,
        strategy: str = "mcscan",
        s: int = 128,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Inclusive scan using one of the multi-core *strategies* of the
        paper's Section 2.1 (``mcscan``, ``ssa``, ``rss``, ``lookback``).

        MCScan is the paper's contribution; the others are the classic
        accelerator strategies it is positioned against, implemented on
        the same substrate for a head-to-head comparison.
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"scan expects a 1-D array, got shape {x.shape}")
        if strategy not in SCAN_STRATEGIES:
            raise KernelError(
                f"unknown strategy {strategy!r}; pick one of {SCAN_STRATEGIES}"
            )
        if strategy == "mcscan":
            return self.scan(x, algorithm="mcscan", s=s, block_dim=block_dim)
        n = x.size
        dt = self._input_dtype(x)
        out_dt = cube_accum_dtype(dt)
        consts = self.constants(s, dt)
        ell = s * s
        mark = self.device.memory.mark()
        try:
            x_gm, padded = self._upload_padded("scan_x", x, ell, dt)
            y_gm = self.device.alloc("scan_y", (padded,), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            kernel = self._cube_1d_kernel(
                strategy, x_gm, y_gm, consts, s, block_dim, False
            )
            trace = self.device.launch(kernel, label=f"{strategy}(s={s})")
            values = y_gm.to_numpy()[:n]
        finally:
            self.device.memory.release(mark)
        io = n * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, n, io)

    # -- batched scans ----------------------------------------------------------------

    def batched_scan(
        self,
        x: np.ndarray,
        *,
        algorithm: str = "scanu",
        s: int = 128,
        block_dim: "int | None" = None,
    ) -> ScanResult:
        """Row-wise prefix sums of a 2-D batch (Section 4.2)."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ShapeError(f"batched_scan expects a 2-D array, got {x.shape}")
        if algorithm not in BATCHED_ALGORITHMS:
            raise KernelError(
                f"unknown batched algorithm {algorithm!r}; "
                f"pick one of {BATCHED_ALGORITHMS}"
            )
        batch, row_len = x.shape
        dt = self._input_dtype(x)

        if algorithm == "vector":
            padded = padded_length(row_len, CUMSUM_COLS)
            mark = self.device.memory.mark()
            try:
                x_gm = self.device.alloc("bscan_x", (batch, padded), dt)
                buf = np.zeros((batch, padded), dtype=dt.np_dtype)
                buf[:, :row_len] = x
                x_gm.write(buf)
                y_gm = self.device.alloc("bscan_y", (batch, padded), dt)
                if self.warm_inputs:
                    self.device.warm_l2(x_gm, y_gm)
                bd = min(self.config.num_vector_cores, batch)
                trace = self.device.launch(
                    BatchedCumSumKernel(x_gm, y_gm, bd), label="batched CumSum"
                )
                values = y_gm.to_numpy()[:, :row_len]
            finally:
                self.device.memory.release(mark)
            io = batch * row_len * dt.itemsize * 2
            return ScanResult(values, trace, batch * row_len, io)

        out_dt = cube_accum_dtype(dt)
        rows = batched_tile_rows(row_len, s)
        consts = self.constants(s, dt, rows=rows)
        tile = consts.tile_elements
        padded = padded_length(row_len, tile)
        mark = self.device.memory.mark()
        try:
            x_gm = self.device.alloc("bscan_x", (batch, padded), dt)
            buf = np.zeros((batch, padded), dtype=dt.np_dtype)
            buf[:, :row_len] = x
            x_gm.write(buf)
            y_gm = self.device.alloc("bscan_y", (batch, padded), out_dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            if block_dim is None:
                block_dim = default_batched_block_dim(self.config, algorithm, batch)
            kernel = batched_kernel_cls(algorithm)(
                x_gm, y_gm, consts, s, block_dim
            )
            trace = self.device.launch(
                kernel, label=f"batched {algorithm}(s={s}, rows={rows})"
            )
            values = y_gm.to_numpy()[:, :row_len]
        finally:
            self.device.memory.release(mark)
        io = batch * row_len * (dt.itemsize + out_dt.itemsize)
        return ScanResult(values, trace, batch * row_len, io)

    # -- plan building (serve-layer substrate) ------------------------------------------

    def _finish_plan(
        self,
        plan: ScanPlan,
        sample: np.ndarray,
        expected: "np.ndarray | None",
        t0: float,
    ) -> ScanPlan:
        """Validate the freshly traced plan and stamp its build stats."""
        if expected is not None:
            got = plan.y_gm.to_numpy()
            err = float(
                np.max(
                    np.abs(
                        got.astype(np.float64) - expected.astype(np.float64)
                    )
                )
            ) if got.size else 0.0
            plan.validated = bool(np.array_equal(got, expected.astype(got.dtype)))
            plan.build_max_err = err
            if not plan.validated:
                raise KernelError(
                    f"plan validation failed for {plan.algorithm} "
                    f"({plan.in_dtype.name}, padded={plan.padded}): traced "
                    f"kernel and functional path diverge by {err:g} on the "
                    f"exact validation input"
                )
        plan.build_host_s = time.perf_counter() - t0
        return plan

    def build_plan(
        self,
        *,
        algorithm: str = "scanul1",
        n: int,
        dtype="fp16",
        s: int = 128,
        block_dim: "int | None" = None,
        exclusive: bool = False,
        validate: bool = True,
        tuned: bool = False,
    ) -> ScanPlan:
        """Trace a reusable 1-D scan plan for inputs padding to
        ``padded_length(n, unit)`` elements of ``dtype``.

        The build uploads a deterministic exact validation input, traces the
        kernel once (full Python-level emission), and cross-checks the
        kernel's functional output against the canonical computation the
        plan will use on execution (see :mod:`repro.core.replay`).

        With ``tuned=True`` the context's :attr:`tune_store` (if set) is
        consulted for this workload; a hit overrides ``algorithm``, ``s``
        and ``block_dim`` with the tuned configuration and marks the plan
        :attr:`~ScanPlan.tuned`.  On a miss the explicit arguments stand.
        """
        t0 = time.perf_counter()
        was_tuned = False
        if tuned and self.tune_store is not None:
            entry = self.tune_store.lookup_1d(
                n=n, dtype=self._as_plan_dtype(dtype).name, exclusive=exclusive
            )
            if entry is not None:
                algorithm = entry.algorithm
                s = entry.s
                block_dim = entry.block_dim
                was_tuned = True
        if algorithm not in PLAN_1D_ALGORITHMS:
            raise KernelError(
                f"unknown algorithm {algorithm!r}; "
                f"pick one of {PLAN_1D_ALGORITHMS}"
            )
        if exclusive and algorithm != "mcscan":
            raise KernelError(
                "exclusive scan is implemented on MCScan (as in the paper)"
            )
        dt = self._as_plan_dtype(dtype)

        if algorithm == "vector":
            out_dt = dt
            consts = None
            pad_unit = CUMSUM_COLS
        else:
            out_dt = cube_accum_dtype(dt)
            consts = self.constants(s, dt)  # shared, cached: not plan-owned
            pad_unit = s * s
        padded = padded_length(n, pad_unit)
        owned_from = len(self.device.memory.tensors)
        x_gm = self.device.alloc("plan_x", (padded,), dt)
        y_gm = self.device.alloc("plan_y", (padded,), out_dt)
        if algorithm == "vector":
            kernel = CumSumKernel(x_gm, y_gm)
            resolved_bd = None
        else:
            kernel = self._cube_1d_kernel(
                algorithm, x_gm, y_gm, consts, s, block_dim, exclusive
            )
            resolved_bd = getattr(kernel, "block_dim", None)
        gm_tensors = self.device.memory.tensors[owned_from:]

        sample = validation_input(padded, dt, seed=padded)
        x_gm.write(sample)
        if self.warm_inputs:
            self.device.warm_l2(x_gm, y_gm)
        traced = self.device.trace_kernel(
            kernel, label=f"plan {algorithm}(s={s}, n={padded})"
        )
        tol = validation_tolerance(algorithm, dt) if validate else None
        expected = (
            plan_compute(sample, algorithm, dt, exclusive=exclusive)
            if tol is not None
            else None
        )
        plan = ScanPlan(
            ctx=self,
            algorithm=algorithm,
            s=s,
            in_dtype=dt,
            out_dtype=out_dt,
            padded=padded,
            pad_unit=pad_unit,
            batch=None,
            block_dim=resolved_bd,
            exclusive=exclusive,
            x_gm=x_gm,
            y_gm=y_gm,
            traced=traced,
            build_host_s=0.0,
            validated=None,
            build_max_err=0.0,
            gm_tensors=gm_tensors,
            tuned=was_tuned,
        )
        return self._finish_plan(plan, sample, expected, t0)

    def build_batched_plan(
        self,
        *,
        algorithm: str = "scanu",
        batch: int,
        row_len: int,
        dtype="fp16",
        s: int = 128,
        block_dim: "int | None" = None,
        validate: bool = True,
        tuned: bool = False,
    ) -> ScanPlan:
        """Trace a reusable batched (row-wise) scan plan holding ``batch``
        rows that pad to ``padded_length(row_len, tile)`` elements each.

        Executions may submit fewer rows (or shorter rows); the remainder
        is zero-padded, exactly as the request batcher in
        :mod:`repro.serve` does when it rounds batches up to bucket sizes.

        With ``tuned=True`` the context's :attr:`tune_store` is consulted
        (batched-layout entries only) as in :meth:`build_plan`.
        """
        t0 = time.perf_counter()
        was_tuned = False
        if tuned and self.tune_store is not None:
            entry = self.tune_store.lookup_batched(
                batch=batch,
                row_len=row_len,
                dtype=self._as_plan_dtype(dtype).name,
            )
            if entry is not None and getattr(entry, "layout", "batched") == "batched":
                algorithm = entry.algorithm
                s = entry.s
                block_dim = entry.block_dim
                was_tuned = True
        if algorithm not in BATCHED_ALGORITHMS:
            raise KernelError(
                f"unknown batched algorithm {algorithm!r}; "
                f"pick one of {BATCHED_ALGORITHMS}"
            )
        if batch < 1:
            raise ShapeError(f"batch must be >= 1, got {batch}")
        dt = self._as_plan_dtype(dtype)

        if algorithm == "vector":
            out_dt = dt
            consts = None
            pad_unit = CUMSUM_COLS
        else:
            out_dt = cube_accum_dtype(dt)
            rows = batched_tile_rows(row_len, s)
            consts = self.constants(s, dt, rows=rows)
            pad_unit = consts.tile_elements
        padded = padded_length(row_len, pad_unit)
        owned_from = len(self.device.memory.tensors)
        x_gm = self.device.alloc("plan_bx", (batch, padded), dt)
        y_gm = self.device.alloc("plan_by", (batch, padded), out_dt)
        if algorithm == "vector":
            bd = min(self.config.num_vector_cores, batch)
            kernel = BatchedCumSumKernel(x_gm, y_gm, bd)
        else:
            bd = (
                default_batched_block_dim(self.config, algorithm, batch)
                if block_dim is None
                else block_dim
            )
            kernel = batched_kernel_cls(algorithm)(x_gm, y_gm, consts, s, bd)
        gm_tensors = self.device.memory.tensors[owned_from:]

        sample = validation_input(batch * padded, dt, seed=batch * padded).reshape(
            batch, padded
        )
        x_gm.write(sample)
        if self.warm_inputs:
            self.device.warm_l2(x_gm, y_gm)
        traced = self.device.trace_kernel(
            kernel, label=f"plan batched {algorithm}(s={s}, {batch}x{padded})"
        )
        tol = validation_tolerance(algorithm, dt) if validate else None
        expected = (
            plan_compute_batched(sample, algorithm, dt) if tol is not None else None
        )
        plan = ScanPlan(
            ctx=self,
            algorithm=algorithm,
            s=s,
            in_dtype=dt,
            out_dtype=out_dt,
            padded=padded,
            pad_unit=pad_unit,
            batch=batch,
            block_dim=bd,
            exclusive=False,
            x_gm=x_gm,
            y_gm=y_gm,
            traced=traced,
            build_host_s=0.0,
            validated=None,
            build_max_err=0.0,
            gm_tensors=gm_tensors,
            tuned=was_tuned,
        )
        return self._finish_plan(plan, sample, expected, t0)

    # -- copy (torch.clone stand-in, Figure 8) --------------------------------------------

    def copy(self, x: np.ndarray, *, tile_elements: int = 16384) -> ScanResult:
        x = np.asarray(x).reshape(-1)
        dt = self._input_dtype(x)
        n = x.size
        mark = self.device.memory.mark()
        try:
            x_gm, _ = self._upload_padded("copy_x", x, 1, dt)
            y_gm = self.device.alloc("copy_y", (n,), dt)
            if self.warm_inputs:
                self.device.warm_l2(x_gm, y_gm)
            bd = min(self.config.num_vector_cores, max(1, n // tile_elements))
            trace = self.device.launch(
                CopyKernel(x_gm, y_gm, bd, tile_elements), label="copy"
            )
            values = y_gm.to_numpy()
        finally:
            self.device.memory.release(mark)
        return ScanResult(values, trace, n, 2 * n * dt.itemsize)
