"""Batched (multiple-array) scans — Section 4.2 of the paper.

Two scheduling strategies over a 2-D batch ``(batch, row_len)``:

* :class:`BatchedScanUKernel` — based on ScanU (Figure 4): each AI core
  processes *two* arrays at a time; its cube core computes the s-tile-local
  scans of both (interleaved), and the two vector cores of the AI core
  finish one array each by propagating partial sums.  This matches the
  910B's 2:1 vector-to-cube ratio.

* :class:`BatchedScanUL1Kernel` — based on ScanUL1: each AI core computes
  the scan of a separate array with the three-matmul tile pipeline; the
  vector-side single-Adds propagation alternates between the AI core's two
  vector cores across rows.

Both use the same shape-derived tiling (``rows x s`` tiles with
``rows = batched_tile_rows(row_len, s)``), as the paper requires for a
fair comparison.  The paper's finding (Figure 5): ScanU wins for large
batches of short arrays, ScanUL1 for small batches of long arrays.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.config import DeviceConfig
from ..hw.datatypes import cube_accum_dtype
from ..hw.memory import GlobalTensor
from ..lang.kernel import Kernel
from .matrices import ScanConstants
from .pipelines import UCubePipeline, UL1CubePipeline, VecPropagator

__all__ = [
    "BatchedScanUKernel",
    "BatchedScanUL1Kernel",
    "batched_kernel_cls",
    "default_batched_block_dim",
]


def _validate_batched(x, y, consts: ScanConstants, s: int, name: str) -> int:
    if len(x.shape) != 2:
        raise ShapeError(f"{name} expects a 2-D batch, got shape {x.shape}")
    if y.shape != x.shape:
        raise ShapeError(f"output shape {y.shape} != input shape {x.shape}")
    if not x.dtype.cube_input:
        raise KernelError(f"{name} input dtype {x.dtype.name} is not cube-capable")
    acc = cube_accum_dtype(x.dtype)
    if y.dtype.name != acc.name:
        raise KernelError(
            f"{name} output dtype must be the accumulator {acc.name}, "
            f"got {y.dtype.name}"
        )
    if consts.dtype.name != x.dtype.name or consts.s != s:
        raise KernelError(
            f"constants are for (s={consts.s}, {consts.dtype.name}), "
            f"kernel needs (s={s}, {x.dtype.name})"
        )
    tile = consts.tile_elements
    if x.shape[1] % tile != 0:
        raise ShapeError(
            f"{name} row length {x.shape[1]} must be a multiple of the "
            f"{consts.rows}x{s} tile ({tile} elements); pad with zeros"
        )
    return x.shape[1] // tile


def batched_kernel_cls(algorithm: str) -> "type[Kernel]":
    """The batched cube-kernel class for ``algorithm`` (scanu / scanul1)."""
    try:
        return {
            "scanu": BatchedScanUKernel,
            "scanul1": BatchedScanUL1Kernel,
        }[algorithm]
    except KeyError:
        raise KernelError(
            f"no batched cube kernel for algorithm {algorithm!r}"
        ) from None


def default_batched_block_dim(
    config: DeviceConfig, algorithm: str, batch: int
) -> int:
    """Block count matching each batched schedule: ScanU packs one *pair*
    of arrays per AI core (its cube stage interleaves two rows for the two
    vector cores), ScanUL1 one array per AI core."""
    if algorithm == "scanu":
        lanes = config.vector_cores_per_ai_core
        return max(1, min(config.num_ai_cores, -(-batch // lanes)))
    return max(1, min(config.num_ai_cores, batch))


class BatchedScanUKernel(Kernel):
    """Batched scan scheduling ScanU over pairs of arrays (Figure 4)."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        self.tiles_per_row = _validate_batched(x, y, consts, s, "BatchedScanU")
        self.x = x
        self.y = y
        self.consts = consts
        self.s = s

    def run(self, ctx) -> None:
        batch, row_len = self.x.shape
        s = self.s
        tile = self.consts.tile_elements
        lanes = len(ctx.vector_cores)  # 2 on the 910B
        n_groups = -(-batch // lanes)
        my_groups = range(ctx.block_idx, n_groups, ctx.block_dim)
        if not my_groups:
            return

        cube = UCubePipeline(ctx, self.consts, s, tile_rows=self.consts.rows)
        props = [
            VecPropagator(ctx, ctx.vec_core(j), tile, cube.out_dt)
            for j in range(lanes)
        ]

        for g in my_groups:
            rows = [r for r in range(g * lanes, min((g + 1) * lanes, batch))]
            for j, _ in enumerate(rows):
                props[j].reset()
            for t in range(self.tiles_per_row):
                # cube: local scans of this tile for each array of the group
                for j, r in enumerate(rows):
                    off = r * row_len + t * tile
                    cube.local_scan_tile(
                        self.x.slice(off, tile),
                        self.y.slice(off, tile),
                        label=f"r{r}t{t}",
                    )
                # vector cores: one array each
                for j, r in enumerate(rows):
                    off = r * row_len + t * tile
                    gm = self.y.slice(off, tile)
                    props[j].propagate_tile(gm, gm, s, label=f"r{r}t{t}")


class BatchedScanUL1Kernel(Kernel):
    """Batched scan running ScanUL1 with one array per AI core."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
    ):
        super().__init__(block_dim=block_dim)
        self.tiles_per_row = _validate_batched(x, y, consts, s, "BatchedScanUL1")
        self.x = x
        self.y = y
        self.consts = consts
        self.s = s

    def run(self, ctx) -> None:
        batch, row_len = self.x.shape
        tile = self.consts.tile_elements
        my_rows = list(range(ctx.block_idx, batch, ctx.block_dim))
        if not my_rows:
            return

        cube = UL1CubePipeline(ctx, self.consts, self.s)
        lanes = len(ctx.vector_cores)
        props = [
            VecPropagator(ctx, ctx.vec_core(j), tile, cube.out_dt)
            for j in range(lanes)
        ]

        for idx, r in enumerate(my_rows):
            prop = props[idx % lanes]
            prop.reset()
            for t in range(self.tiles_per_row):
                off = r * row_len + t * tile
                cube.scan_tile(
                    self.x.slice(off, tile),
                    self.y.slice(off, tile),
                    label=f"r{r}t{t}",
                )
                gm = self.y.slice(off, tile)
                # tile is fully scanned: single-Adds propagation
                prop.propagate_tile(gm, gm, tile, label=f"r{r}t{t}")
