"""ScanU — Algorithm 1 of the paper (single cube + single vector core).

Per ``l = s^2`` tile of the input, the cube unit computes ``C = A @ U_s``
(``s`` consecutive local scans of ``s``-tiles, one matrix multiplication)
and writes ``C`` to global memory; a vector core then reads the tile,
propagates the running partial sum through its ``s``-tiles in order, and
writes the final prefix sums back.  The whole loop is software-pipelined by
double-buffered queues, exactly as in Figure 2 of the paper.

The output dtype is the cube accumulator dtype (fp32 for fp16 inputs,
int32 for int8): the L0C accumulator is written out unquantised, so no
precision is lost between the two stages.
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.datatypes import cube_accum_dtype
from ..hw.memory import GlobalTensor
from ..lang.kernel import Kernel
from .matrices import ScanConstants, validate_tile_size
from .pipelines import UCubePipeline, VecPropagator

__all__ = ["ScanUKernel", "validate_scan_args"]


def validate_scan_args(
    x: GlobalTensor, y: GlobalTensor, consts: ScanConstants, s: int, name: str
) -> None:
    """Shared argument validation for the single-core cube scan kernels."""
    validate_tile_size(s)
    ell = s * s
    if x.num_elements % ell != 0:
        raise ShapeError(
            f"{name} input length {x.num_elements} must be a multiple of "
            f"l = s^2 = {ell} (pad with zeros, Section 4)"
        )
    if y.num_elements != x.num_elements:
        raise ShapeError("output length must match input length")
    if not x.dtype.cube_input:
        raise KernelError(f"{name} input dtype {x.dtype.name} is not cube-capable")
    acc = cube_accum_dtype(x.dtype)
    if y.dtype.name != acc.name:
        raise KernelError(
            f"{name} output dtype must be the accumulator {acc.name}, "
            f"got {y.dtype.name}"
        )
    if consts.s != s or consts.dtype.name != x.dtype.name:
        raise KernelError(
            f"constants are for (s={consts.s}, {consts.dtype.name}), "
            f"kernel needs (s={s}, {x.dtype.name})"
        )


class ScanUKernel(Kernel):
    """Scan Cube-Vector (Algorithm 1)."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        consts: ScanConstants,
        s: int,
        *,
        post_fns: "tuple" = (),
    ):
        super().__init__(block_dim=1)
        validate_scan_args(x, y, consts, s, "ScanU")
        self.x = x
        self.y = y
        self.consts = consts
        self.s = s
        #: fused elementwise epilogue, applied by the vector stage while
        #: each finished tile is still in UB (graph-level fusion)
        self.post_fns = tuple(post_fns)

    def run(self, ctx) -> None:
        s = self.s
        ell = s * s
        n_tiles = self.x.num_elements // ell

        cube = UCubePipeline(ctx, self.consts, s)
        vec = VecPropagator(
            ctx, ctx.vec_core(0), ell, cube.out_dt, post_fns=self.post_fns
        )

        for t in range(n_tiles):
            gm_in = self.x.slice(t * ell, ell)
            gm_out = self.y.slice(t * ell, ell)
            cube.local_scan_tile(gm_in, gm_out, label=f"[{t}]")
            vec.propagate_tile(gm_out, gm_out, s, label=f"[{t}]")
