"""MCScan — the multi-core scan (Algorithm 3).

The input is partitioned into per-block ranges of ``l = s^2`` tiles; the
two phases are separated by a device-wide ``SyncAll``:

* **Phase I** — on every block *in parallel*: the cube core computes the
  s-tile-local scans of all its tiles (``A @ U_s``) and writes them to
  global memory, while the block's vector cores *recompute* the reduction
  of the same input range and write it into the block-reduction array
  ``r``.  This partial recomputation on both unit types is the paper's key
  novelty: neither unit waits for the other inside phase I.

* **Phase II** — every vector core reads ``r``, locally scans its prefix
  (``partial = sum of the first h entries``), then streams its tiles once
  more, propagating the running partial through the s-tile-local scans.

The 910B's 2:1 vector-to-cube ratio is exploited exactly as the paper
describes ("our implementation takes advantage of the 2-to-1 ratio"):
each block's range is split into two contiguous halves, one per vector
core, so ``r`` has ``2 * block_dim`` entries.

Exclusive scans shift the finished tile right by one inside UB with the
previous partial as carry-in (writes stay tile-aligned; the overall first
output is zero and the last inclusive value is discarded, as in the
paper's description).  The int8 specialisation takes int8 input with
int32 accumulation/output — "crucial since the split and compress
operators take as input boolean mask arrays stored in int8 format".
"""

from __future__ import annotations

from ..errors import KernelError, ShapeError
from ..hw.datatypes import cube_accum_dtype
from ..hw.memory import GlobalTensor
from ..lang import intrinsics as I
from ..lang.kernel import Kernel
from ..lang.tensor import BufferKind
from .matrices import ScanConstants, validate_tile_size
from .pipelines import UCubePipeline, VecPropagator, VecReducer

__all__ = ["MCScanKernel", "mcscan_partition"]


def mcscan_partition(n_tiles: int, block_dim: int) -> list[tuple[int, int]]:
    """Contiguous tile ranges per block, balanced to within one tile."""
    base, extra = divmod(n_tiles, block_dim)
    ranges = []
    start = 0
    for b in range(block_dim):
        count = base + (1 if b < extra else 0)
        ranges.append((start, start + count))
        start += count
    return ranges


def _split_half(lo: int, hi: int, j: int, halves: int) -> tuple[int, int]:
    """Contiguous half ``j`` of the tile range ``[lo, hi)``."""
    count = hi - lo
    base, extra = divmod(count, halves)
    start = lo + j * base + min(j, extra)
    return (start, start + base + (1 if j < extra else 0))


class MCScanKernel(Kernel):
    """Multi-core scan (Algorithm 3), inclusive or exclusive, fp16 or int8."""

    mode = "mix"

    def __init__(
        self,
        x: GlobalTensor,
        y: GlobalTensor,
        r: GlobalTensor,
        consts: ScanConstants,
        s: int,
        block_dim: int,
        *,
        exclusive: bool = False,
        post_fns: "tuple" = (),
    ):
        super().__init__(block_dim=block_dim)
        validate_tile_size(s)
        ell = s * s
        if x.num_elements % ell != 0:
            raise ShapeError(
                f"MCScan input length {x.num_elements} must be a multiple of "
                f"l = s^2 = {ell} (pad with zeros)"
            )
        if y.num_elements != x.num_elements:
            raise ShapeError("output length must match input length")
        if not x.dtype.cube_input:
            raise KernelError(f"MCScan input dtype {x.dtype.name} not cube-capable")
        acc = cube_accum_dtype(x.dtype)
        if y.dtype.name != acc.name or r.dtype.name != acc.name:
            raise KernelError(
                f"MCScan output and r dtypes must be the accumulator "
                f"{acc.name}, got y={y.dtype.name}, r={r.dtype.name}"
            )
        if consts.s != s or consts.dtype.name != x.dtype.name:
            raise KernelError(
                f"constants are for (s={consts.s}, {consts.dtype.name}), "
                f"kernel needs (s={s}, {x.dtype.name})"
            )
        self.x = x
        self.y = y
        self.r = r
        self.consts = consts
        self.s = s
        self.exclusive = exclusive
        #: fused elementwise epilogue, applied by phase II's propagators
        #: while each finished tile is still in UB (graph-level fusion);
        #: phase I's block reductions read the raw *input*, so the fold
        #: cannot perturb the carry chain
        self.post_fns = tuple(post_fns)
        self._halves_per_block: int | None = None  # set at launch

    def phases(self):
        return [self.phase1, self.phase2]

    def _num_halves(self, ctx) -> int:
        return len(ctx.vector_cores)

    def _check_r(self, ctx) -> None:
        halves = self.block_dim * self._num_halves(ctx)
        if self.r.num_elements < halves:
            raise ShapeError(
                f"r array needs {halves} entries "
                f"({self.block_dim} blocks x {self._num_halves(ctx)} vector "
                f"cores), got {self.r.num_elements}"
            )

    # -- Phase I: cube local scans + vector block reductions -------------------

    def phase1(self, ctx) -> None:
        self._check_r(ctx)
        s = self.s
        ell = s * s
        n_tiles = self.x.num_elements // ell
        lo, hi = mcscan_partition(n_tiles, self.block_dim)[ctx.block_idx]

        # cube unit: s-tile-local scans of every tile in the block
        cube = UCubePipeline(ctx, self.consts, s)
        for t in range(lo, hi):
            cube.local_scan_tile(
                self.x.slice(t * ell, ell),
                self.y.slice(t * ell, ell),
                label=f"[{t}]",
            )

        # vector units: recompute the block reduction, one contiguous half
        # of the block's range per vector core
        halves = self._num_halves(ctx)
        for j in range(halves):
            h_lo, h_hi = _split_half(lo, hi, j, halves)
            reducer = VecReducer(ctx, ctx.vec_core(j), ell, self.x.dtype)
            for t in range(h_lo, h_hi):
                reducer.reduce_tile(self.x.slice(t * ell, ell), label=f"[{t}]")
            half_id = ctx.block_idx * halves + j
            reducer.write_total(self.r.slice(half_id, 1), self.y.dtype)

    # -- Phase II: scan of r + propagation ------------------------------------------

    def phase2(self, ctx) -> None:
        s = self.s
        ell = s * s
        n_tiles = self.x.num_elements // ell
        lo, hi = mcscan_partition(n_tiles, self.block_dim)[ctx.block_idx]
        halves = self._num_halves(ctx)
        total_halves = self.block_dim * halves

        for j in range(halves):
            h_lo, h_hi = _split_half(lo, hi, j, halves)
            if h_lo >= h_hi:
                continue
            half_id = ctx.block_idx * halves + j
            vec_core = ctx.vec_core(j)

            # load r into UB and locally scan the prefix (Algorithm 3
            # lines 17-18); every vector core recomputes this "small" scan
            pipe = ctx.make_pipe(vec_core)
            r_buf = pipe.init_buffer(
                buffer=BufferKind.UB,
                depth=1,
                slot_bytes=max(total_halves * self.r.dtype.itemsize, 64),
            )
            r_tile = r_buf.alloc_tensor(self.r.dtype, total_halves)
            I.data_copy(ctx, r_tile, self.r.slice(0, total_halves), label="load r")
            if half_id > 0:
                base = I.reduce_sum(
                    ctx, r_tile.view(0, half_id), label="scan r prefix"
                )
            else:
                base = 0.0
            r_buf.free_tensor(r_tile)

            prop = VecPropagator(
                ctx,
                vec_core,
                ell,
                self.y.dtype,
                exclusive=self.exclusive,
                initial_partial=base,
                post_fns=self.post_fns,
            )
            for t in range(h_lo, h_hi):
                gm = self.y.slice(t * ell, ell)
                prop.propagate_tile(gm, gm, s, label=f"[{t}]")
