"""NumPy reference implementations (correctness oracles).

Every device kernel in :mod:`repro.core` and :mod:`repro.ops` is checked
against these plain NumPy functions.  Accumulation is done in the cube
unit's accumulator dtype (fp32 for fp16 inputs, int32 for int8), matching
the device semantics, so comparisons can be exact for suitably conditioned
data.

:func:`exact_fp16_scan_input` generates adversarially *exact* fp16 test
data: it draws the desired prefix-sum sequence first (small integers) and
differences it, so every partial sum any tiling scheme can form is exactly
representable in fp16 — scan results are then bit-exact regardless of
association order.
"""

from __future__ import annotations

import numpy as np

from ..errors import DTypeError

__all__ = [
    "accum_np_dtype",
    "inclusive_scan",
    "exclusive_scan",
    "batched_inclusive_scan",
    "stable_split",
    "compress",
    "exact_fp16_scan_input",
    "exact_int8_mask",
]


def accum_np_dtype(np_dtype) -> np.dtype:
    """Accumulator dtype the device uses for the given input dtype."""
    dt = np.dtype(np_dtype)
    if dt == np.float16:
        return np.dtype(np.float32)
    if dt == np.float32:
        return np.dtype(np.float32)
    if dt.kind == "i":
        return np.dtype(np.int32) if dt.itemsize <= 4 else dt
    if dt.kind == "u":
        return np.dtype(np.uint32) if dt.itemsize <= 4 else dt
    raise DTypeError(f"no accumulator rule for dtype {dt}")


def inclusive_scan(x: np.ndarray, out_dtype=None) -> np.ndarray:
    """Inclusive prefix sum with device accumulation semantics."""
    x = np.asarray(x)
    acc = accum_np_dtype(x.dtype)
    result = np.cumsum(x, dtype=acc)
    return result.astype(out_dtype) if out_dtype is not None else result


def exclusive_scan(x: np.ndarray, out_dtype=None) -> np.ndarray:
    """Exclusive prefix sum: output shifted by one, first element zero
    (the paper implements this by shifting the inclusive scan's output)."""
    x = np.asarray(x)
    acc = accum_np_dtype(x.dtype)
    inc = np.cumsum(x, dtype=acc)
    out = np.empty_like(inc)
    out[0] = 0
    out[1:] = inc[:-1]
    return out.astype(out_dtype) if out_dtype is not None else out


def batched_inclusive_scan(x: np.ndarray, out_dtype=None) -> np.ndarray:
    """Row-wise inclusive scans of a 2-D batch."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise DTypeError(f"batched scan expects a 2-D array, got ndim={x.ndim}")
    acc = accum_np_dtype(x.dtype)
    result = np.cumsum(x, axis=1, dtype=acc)
    return result.astype(out_dtype) if out_dtype is not None else result


def stable_split(
    x: np.ndarray, flags: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reference split: true-flagged elements first, then false-flagged,
    both in original order.  Returns (values, original_indices)."""
    x = np.asarray(x)
    f = np.asarray(flags).astype(bool)
    idx = np.arange(x.size)
    order = np.concatenate([idx[f], idx[~f]])
    return x[order], order


def compress(x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Reference compress (``torch.masked_select``): masked elements in
    original order."""
    x = np.asarray(x)
    return x[np.asarray(mask).astype(bool)]


def exact_fp16_scan_input(
    n: int, rng: np.random.Generator, *, prefix_bound: int = 2048
) -> tuple[np.ndarray, np.ndarray]:
    """fp16 input whose scan is exact under *any* summation order.

    Draws integer prefix targets ``p`` in ``[0, prefix_bound)`` and returns
    ``x = diff(p)`` (as fp16) together with the exact expected inclusive
    scan ``p``.  Any contiguous-range partial sum equals ``p[j] - p[i]``,
    which is an integer of magnitude < 2 * prefix_bound and hence exact in
    fp16 (|int| <= 2048) and in the fp32 accumulator.
    """
    if not 1 <= prefix_bound <= 1024 + 1024:
        raise DTypeError("prefix_bound must be in [1, 2048] for fp16 exactness")
    p = rng.integers(0, prefix_bound, size=n).astype(np.int32)
    x = np.empty(n, dtype=np.int32)
    x[0] = p[0]
    x[1:] = p[1:] - p[:-1]
    return x.astype(np.float16), p.astype(np.float32)


def exact_int8_mask(n: int, rng: np.random.Generator, *, p: float = 0.5) -> np.ndarray:
    """Random 0/1 mask stored as int8 (the split/compress input format)."""
    return (rng.random(n) < p).astype(np.int8)
