"""Core scan algorithms (paper Section 4)."""

from .api import BATCHED_ALGORITHMS, SCAN_ALGORITHMS, ScanContext, ScanResult
from .batched import BatchedScanUKernel, BatchedScanUL1Kernel
from .copykernel import CopyKernel
from .matrices import (
    ScanConstants,
    batched_tile_rows,
    padded_length,
    tile_count,
    upload_constants,
)
from .mcscan import MCScanKernel, mcscan_partition
from .pipelines import UCubePipeline, UL1CubePipeline, VecPropagator, VecReducer
from .scanu import ScanUKernel
from .scanul1 import ScanUL1Kernel
from .vector_baseline import BatchedCumSumKernel, CumSumKernel

__all__ = [
    "BATCHED_ALGORITHMS",
    "BatchedCumSumKernel",
    "BatchedScanUKernel",
    "BatchedScanUL1Kernel",
    "CopyKernel",
    "CumSumKernel",
    "MCScanKernel",
    "SCAN_ALGORITHMS",
    "ScanConstants",
    "ScanContext",
    "ScanResult",
    "ScanUKernel",
    "ScanUL1Kernel",
    "UCubePipeline",
    "UL1CubePipeline",
    "VecPropagator",
    "VecReducer",
    "batched_tile_rows",
    "mcscan_partition",
    "padded_length",
    "tile_count",
    "upload_constants",
]
