"""Constant matrices and tiling utilities (paper Section 4 notation).

``U_s`` is the upper-triangular all-ones matrix (ones on the diagonal),
``L_s`` the lower-triangular all-ones, ``L_s^-`` the *strictly* lower
triangular all-ones, and ``1_s`` the all-ones matrix.  The fundamental
identity the kernels build on:

* ``A @ U_s`` computes per-row inclusive scans of the row-major tile view
  ``A`` of a vector (ScanU);
* ``scan(z) = A @ U_s + L_s^- @ A @ 1_s`` computes the full inclusive scan
  of an ``s^2``-tile (Equation 1, used by ScanUL1).

The paper's PyTorch operator "statically pre-allocates an upper triangular
all-ones matrix U_s" in global memory; :func:`upload_constants` plays that
role for a simulated device.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..errors import KernelError, ShapeError
from ..hw.datatypes import DType, as_dtype
from ..hw.device import AscendDevice
from ..hw.memory import GlobalTensor

__all__ = [
    "upper_ones",
    "lower_ones",
    "strict_lower_ones",
    "all_ones",
    "ScanConstants",
    "host_constant_matrices",
    "upload_constants",
    "batched_tile_rows",
    "tile_count",
    "padded_length",
    "validate_tile_size",
]

#: tile sizes the cube unit handles efficiently (multiples of the fractal)
SUPPORTED_TILE_SIZES = (16, 32, 64, 128)


def upper_ones(s: int, np_dtype=np.float16) -> np.ndarray:
    """``U_s``: upper-triangular all-ones including the main diagonal."""
    return np.triu(np.ones((s, s))).astype(np_dtype)


def lower_ones(s: int, np_dtype=np.float16) -> np.ndarray:
    """``L_s``: lower-triangular all-ones including the main diagonal."""
    return np.tril(np.ones((s, s))).astype(np_dtype)


def strict_lower_ones(s: int, np_dtype=np.float16) -> np.ndarray:
    """``L_s^-``: strictly lower-triangular all-ones (zero diagonal)."""
    return np.tril(np.ones((s, s)), k=-1).astype(np_dtype)


def all_ones(s: int, np_dtype=np.float16) -> np.ndarray:
    """``1_s``: the all-ones matrix."""
    return np.ones((s, s), dtype=np_dtype)


def validate_tile_size(s: int) -> None:
    if s not in SUPPORTED_TILE_SIZES:
        raise KernelError(
            f"tile size s={s} not supported; choose one of {SUPPORTED_TILE_SIZES}"
        )


def padded_length(n: int, tile: int) -> int:
    """Smallest multiple of ``tile`` that is >= n (zero padding, Section 4)."""
    if n <= 0:
        raise ShapeError(f"input length must be positive, got {n}")
    return -(-n // tile) * tile


def tile_count(n: int, tile: int) -> int:
    return padded_length(n, tile) // tile


@dataclass(frozen=True)
class ScanConstants:
    """GM-resident constant matrices for one (s, rows, dtype) combination.

    ``rows`` is the tile row count ``m``: tiles are ``m x s`` row-major
    views (square, ``m = s``, for the 1-D kernels; possibly flatter for
    batched scans over short arrays, where both batched algorithms use the
    same shape-derived tiling for a fair comparison — paper Section 4.2).
    ``U_s`` and ``1_s`` are always ``s x s``; ``L^-`` is ``rows x rows``.
    """

    s: int
    rows: int
    dtype: DType
    u: GlobalTensor  # U_s, s x s
    strict_lower: GlobalTensor  # L_rows^-, rows x rows
    ones: GlobalTensor  # 1_s, s x s

    @property
    def tile_elements(self) -> int:
        return self.rows * self.s


class CacheInfo(NamedTuple):
    """``functools.lru_cache``-compatible counters for the constant store."""

    hits: int
    misses: int
    maxsize: "int | None"
    currsize: int


class _HostConstantStore:
    """Explicit shared read-only store of host constant matrices.

    This used to be a bare ``functools.lru_cache``, which has two problems
    once warm-up runs concurrently: its hit/miss counters race under
    threads, and — more importantly — nothing re-checks that the cached
    arrays are *still* frozen when handed out, so one caller flipping
    ``writeable`` back on would silently corrupt the constants every other
    device uploads from then on.  The explicit store takes a lock around
    materialisation (one NumPy build per ``(s, rows, dtype)`` even when
    several warm-up threads race to it) and re-asserts read-onlyness on
    **every** access, so a corrupted entry fails loudly at the next use
    instead of poisoning later kernels.

    Process-pool warm-up workers (fork) inherit a populated store; that is
    safe precisely because entries are immutable — workers can only read.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cache: "dict[tuple[int, int, str], tuple[np.ndarray, ...]]" = {}
        self._hits = 0
        self._misses = 0

    def __call__(
        self, s: int, rows: int, dtype_name: str
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        key = (s, rows, dtype_name)
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                self._misses += 1
                np_dt = as_dtype(dtype_name).np_dtype
                u = upper_ones(s, np_dt).reshape(-1)
                sl = strict_lower_ones(rows, np_dt).reshape(-1)
                ones = all_ones(s, np_dt).reshape(-1)
                for arr in (u, sl, ones):
                    arr.setflags(write=False)
                entry = self._cache[key] = (u, sl, ones)
            else:
                self._hits += 1
        for arr in entry:
            if arr.flags.writeable:
                raise KernelError(
                    f"shared constant matrices for (s={s}, rows={rows}, "
                    f"{dtype_name}) became writable — the store's entries "
                    "must stay frozen"
                )
        return entry

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, None, len(self._cache))

    def cache_clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0


#: host-side ``(U_s, L_rows^-, 1_s)`` as flat read-only arrays, one NumPy
#: materialisation per ``(s, rows, dtype)`` for the whole process — every
#: device in a :class:`repro.shard.DevicePool` uploads its own GM copies
#: from these shared frozen arrays (:meth:`GlobalTensor.write` copies)
host_constant_matrices = _HostConstantStore()


def upload_constants(
    device: AscendDevice,
    s: int,
    dtype: "DType | str" = "fp16",
    *,
    rows: "int | None" = None,
) -> ScanConstants:
    """Allocate and upload ``U_s``, ``L_rows^-`` and ``1_s`` to global memory."""
    validate_tile_size(s)
    if rows is None:
        rows = s
    if not 1 <= rows <= s:
        raise ShapeError(f"tile rows must be in [1, s={s}], got {rows}")
    dt = as_dtype(dtype)
    if not dt.cube_input:
        raise KernelError(f"scan constants must be a cube input dtype, not {dt.name}")
    host_u, host_sl, host_ones = host_constant_matrices(s, rows, dt.name)
    u = device.alloc(f"const_U{s}_{dt.name}", (s * s,), dt)
    u.write(host_u)
    sl = device.alloc(f"const_Lm{rows}_{dt.name}", (rows * rows,), dt)
    sl.write(host_sl)
    ones = device.alloc(f"const_1{s}_{dt.name}", (s * s,), dt)
    ones.write(host_ones)
    return ScanConstants(s=s, rows=rows, dtype=dt, u=u, strict_lower=sl, ones=ones)


def batched_tile_rows(row_len: int, s: int) -> int:
    """Shape-derived tile row count for batched scans: the largest
    power-of-two number of rows ``m <= s`` such that an ``m x s`` tile does
    not exceed the (padded) array length."""
    if row_len <= 0:
        raise ShapeError(f"row length must be positive, got {row_len}")
    rows_available = max(1, padded_length(row_len, s) // s)
    m = 1
    while m * 2 <= min(s, rows_available):
        m *= 2
    return m
