"""repro — Parallel Scan on (simulated) Ascend AI Accelerators.

Reproduction of Wróblewski, Gottardo, Zouzias, *Parallel Scan on Ascend AI
Accelerators* (IPPS 2025).  The package contains:

* :mod:`repro.hw` — a functional + timing simulator of the Ascend 910B
  DaVinci architecture (cube/vector cores, local buffers, HBM + L2);
* :mod:`repro.lang` — an AscendC-style kernel programming model;
* :mod:`repro.core` — the paper's scan algorithms (ScanU, ScanUL1, batched
  scans, the multi-core MCScan) and the vector-only baseline;
* :mod:`repro.ops` — scan-based operators: split, compress, radix sort,
  top-k, top-p (nucleus) sampling, weighted sampling;
* :mod:`repro.analysis` — work/depth and bandwidth analysis utilities;
* :mod:`repro.runner` — the experiment harness regenerating every figure
  of the paper's evaluation.
"""

__version__ = "1.0.0"

from .hw import ASCEND_910B4, AscendDevice, DeviceConfig, toy_config

__all__ = [
    "ASCEND_910B4",
    "AscendDevice",
    "DeviceConfig",
    "toy_config",
    "__version__",
]
