"""Seeded schedule fuzzing for the serve/shard/fault stack.

Each fuzz *seed* runs one :class:`WorkloadSpec` — a request mix over a
device pool with a fault profile — under a
:class:`~repro.verify.controller.ScheduleController` that decides every
schedule-equivalent choice (batcher drain order, pool group pick order,
routing tie-breaks, transient-fault timing, DES engine polling order).
After the run the :class:`~repro.verify.invariants.ServeInvariantChecker`
asserts oracle bit-identity, exactly-once ticket resolution, monotone
simulated time and GM accounting; any violation makes the seed a
failure.

A failing seed carries its full decision trace, so it can be

* **replayed** exactly (``run_seed(spec, seed, trace=...)``), and
* **shrunk** (:func:`shrink_trace`) to a minimal trace: first the
  shortest failing prefix (replay falls back to canonical pick 0 past
  the trace end), then pointwise zeroing of the surviving non-canonical
  picks.  What remains is the smallest set of schedule divergences that
  still breaks the invariant.

The committed seed corpus (``corpus.json`` next to this module) pins
previously-failing seeds; :func:`replay_corpus` re-runs them so every CI
run re-checks each schedule that ever caught a bug.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigError, DeviceFault
from ..hw.config import toy_config
from ..hw.faults import FaultPlan
from ..shard.pool import DevicePool
from ..shard.service import PoolScanService
from .controller import Decision, ScheduleController, trace_to_json
from .invariants import (
    InvariantViolation,
    ServeInvariantChecker,
    check_schedule_invariance,
)

__all__ = [
    "FUZZ_SEED0",
    "WORKLOAD_MATRIX",
    "CorpusEntry",
    "FuzzFailure",
    "FuzzReport",
    "SeedResult",
    "WorkloadSpec",
    "load_corpus",
    "replay_corpus",
    "run_fuzz",
    "run_seed",
    "shrink_trace",
]

#: root of every derived fuzz seed — shared with the chaos test suite
#: (tests/serve/test_chaos.py) so the fuzzer and the example-based tests
#: draw fault schedules from one seed family
FUZZ_SEED0 = 0xA5CE


@dataclass(frozen=True)
class WorkloadSpec:
    """One cell of the fuzz workload matrix: a request mix, a pool size
    and a fault profile.  ``s=16`` rides the toy device config, keeping a
    single seed in the ~100 ms range."""

    name: str
    dtype: str = "fp16"
    #: request lengths drawn per submission (adversarial around the
    #: s*s=256 padding unit: sub-unit, exact, unit+1, multi-unit)
    sizes: "tuple[int, ...]" = (5, 200, 256, 257)
    num_devices: int = 1
    requests: int = 8
    #: flush rounds the requests are spread across
    flushes: int = 2
    s: int = 16
    #: members with transient launch faults (rate below)
    transient: "tuple[int, ...]" = ()
    transient_rate: float = 0.0
    #: members running degraded (slowdowns below)
    slow: "tuple[int, ...]" = ()
    mte_slowdown: float = 1.0
    vec_slowdown: float = 1.0
    #: permanent losses as (member, die_at_launch) pairs; specs must keep
    #: at least one member alive so the final drain can complete
    deaths: "tuple[tuple[int, int], ...]" = ()
    gm_budget: "int | None" = None
    #: mix in exclusive mcscan requests (1-D fallback path)
    exclusive_mix: bool = False
    #: host-executor workers for the pool's numerics (0 = inline).  Results
    #: must be schedule- and thread-timing independent, so a parallel cell
    #: fuzzes exactly the same invariants as a serial one — any divergence
    #: the executor introduces is a failing seed.
    parallel: int = 0
    #: mix in operator-graph requests (llm_sample top-k -> top-p) with the
    #: raw scans, fuzzing the graph serving path's batching/failover
    graph_mix: bool = False
    #: fuse-heavy graph mix: llm_sample with an elementwise prep chain plus
    #: a pre->scan->post pipeline, served with ``fusion=aggressive`` — one
    #: captured program per fused region under faults
    graph_fused: bool = False
    #: open-loop traffic process ("poisson" | "bursty" | "diurnal"); when
    #: set, the seed serves a generated arrival stream through the
    #: :class:`~repro.shard.TrafficScheduler` (continuous batching,
    #: deadline admission, EDF + cost-model routing) instead of the
    #: closed-loop submit/flush rounds
    traffic: str = ""
    #: offered load for traffic seeds (requests per simulated second)
    traffic_rate: float = 400_000.0
    #: per-arrival completion SLO for traffic seeds.  Generous by default
    #: so admission rarely sheds; tighten it to fuzz the deadline-staging
    #: and shed paths (shed arrivals never reach a device, so they carry
    #: no oracle expectation either way)
    slo_ns: float = 50_000_000.0

    def __post_init__(self):
        dead = {m for m, _ in self.deaths}
        if len(dead) >= self.num_devices:
            raise ConfigError(
                f"workload {self.name!r} kills every member; the final "
                f"drain could never complete"
            )

    @property
    def np_dtype(self):
        return np.float16 if self.dtype == "fp16" else np.int8

    def describe(self) -> str:
        parts = [f"D={self.num_devices}", self.dtype]
        if self.transient:
            parts.append(
                f"transient {self.transient_rate:.0%} on {self.transient}"
            )
        if self.slow:
            parts.append(f"slow {self.slow}")
        if self.deaths:
            parts.append(f"deaths {self.deaths}")
        if self.gm_budget:
            parts.append(f"gm_budget {self.gm_budget}")
        if self.exclusive_mix:
            parts.append("exclusive mix")
        if self.parallel:
            parts.append(f"parallel {self.parallel}")
        if self.graph_fused:
            parts.append("fused graphs")
        elif self.graph_mix:
            parts.append("graph mix")
        if self.traffic:
            parts.append(
                f"{self.traffic} traffic @{self.traffic_rate:,.0f} rps"
            )
        return f"{self.name}: {', '.join(parts)}"


#: the fuzz workload matrix: dtype x size x pool width x fault mix.
#: Deaths only appear at D >= 2 (survivors must be able to serve
#: everything); D covers 1..4 as in the sharded-scan experiments.
WORKLOAD_MATRIX: "tuple[WorkloadSpec, ...]" = (
    WorkloadSpec(name="clean-fp16-d1"),
    WorkloadSpec(
        name="clean-int8-d3",
        dtype="int8",
        sizes=(7, 256, 300, 513),
        num_devices=3,
        requests=9,
        flushes=3,
    ),
    WorkloadSpec(
        name="transient-fp16-d1",
        requests=6,
        transient=(0,),
        transient_rate=0.30,
    ),
    WorkloadSpec(
        name="transient-int8-d2",
        dtype="int8",
        sizes=(5, 200, 256, 513),
        num_devices=2,
        transient=(0, 1),
        transient_rate=0.25,
    ),
    WorkloadSpec(
        name="slow-fp16-d2",
        num_devices=2,
        transient=(0,),
        transient_rate=0.10,
        slow=(0,),
        mte_slowdown=1.5,
        vec_slowdown=1.25,
    ),
    WorkloadSpec(
        name="death-fp16-d2",
        num_devices=2,
        transient=(1,),
        transient_rate=0.15,
        deaths=((0, 3),),
    ),
    WorkloadSpec(
        name="death-int8-d3",
        dtype="int8",
        sizes=(7, 255, 256, 1000),
        num_devices=3,
        requests=9,
        flushes=3,
        deaths=((0, 2), (1, 5)),
    ),
    WorkloadSpec(
        name="mixed-fp16-d4",
        num_devices=4,
        requests=12,
        flushes=3,
        transient=(0, 2),
        transient_rate=0.20,
        slow=(1,),
        mte_slowdown=1.4,
        deaths=((3, 4),),
    ),
    WorkloadSpec(
        name="budget-int8-d2",
        dtype="int8",
        sizes=(5, 200, 256, 257, 1000),
        num_devices=2,
        requests=10,
        transient=(0,),
        transient_rate=0.20,
        gm_budget=40_000,
    ),
    WorkloadSpec(
        name="exclusive-fp16-d2",
        num_devices=2,
        requests=6,
        transient=(0,),
        transient_rate=0.20,
        exclusive_mix=True,
    ),
    WorkloadSpec(
        name="parallel-mixed-d3",
        num_devices=3,
        requests=10,
        flushes=3,
        transient=(0, 1),
        transient_rate=0.20,
        deaths=((2, 4),),
        parallel=2,
    ),
    WorkloadSpec(
        name="graph-llm-d1",
        requests=6,
        transient=(0,),
        transient_rate=0.20,
        graph_mix=True,
    ),
    WorkloadSpec(
        name="graph-llm-d3",
        num_devices=3,
        requests=9,
        flushes=3,
        transient=(0, 2),
        transient_rate=0.20,
        graph_mix=True,
    ),
    WorkloadSpec(
        name="graph-fused-mix",
        num_devices=2,
        requests=8,
        flushes=2,
        transient=(0, 1),
        transient_rate=0.20,
        parallel=2,
        graph_fused=True,
    ),
    WorkloadSpec(
        name="traffic-poisson-d2",
        num_devices=2,
        requests=24,
        traffic="poisson",
        traffic_rate=400_000.0,
        transient=(0,),
        transient_rate=0.20,
    ),
    WorkloadSpec(
        name="traffic-deadline-chaos",
        num_devices=3,
        requests=48,
        traffic="bursty",
        traffic_rate=1_500_000.0,
        # tight SLO: buckets stage on deadline pressure and the failover
        # cost of the mid-stream death shows up as real deadline misses
        slo_ns=15_000.0,
        transient=(0, 1),
        transient_rate=0.35,
        deaths=((2, 1),),
    ),
)

_SPEC_BY_NAME = {spec.name: spec for spec in WORKLOAD_MATRIX}


@dataclass
class SeedResult:
    """Outcome of one fuzz seed."""

    spec: str
    seed: int
    violations: "list[InvariantViolation]"
    #: full decision trace of the run (replayable)
    trace: "list[Decision]"
    served: int
    #: flush-level DeviceFaults absorbed (failover / retry exhaustion)
    flush_faults: int

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FuzzFailure:
    """A failing seed with its full and shrunk decision traces."""

    spec: str
    seed: int
    violations: "list[InvariantViolation]"
    trace: "list[Decision]"
    shrunk: "list[Decision] | None" = None

    def describe(self) -> str:
        lines = [f"seed {self.seed} on {self.spec}:"]
        lines += [f"  {v.describe()}" for v in self.violations]
        if self.shrunk is not None:
            hot = [d for d in self.shrunk if d.pick]
            lines.append(
                f"  shrunk to {len(self.shrunk)} decision(s) "
                f"({len(hot)} non-canonical): "
                + ("; ".join(d.describe() for d in hot[:10]) or "(canonical)")
            )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate result of a fuzz run (or a corpus replay)."""

    seeds_run: int
    failures: "list[FuzzFailure]" = field(default_factory=list)
    served: int = 0
    decisions: int = 0
    flush_faults: int = 0
    per_spec: "dict[str, int]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"fuzz: {self.seeds_run} seed(s), {self.served} requests "
            f"served, {self.decisions} schedule decisions, "
            f"{self.flush_faults} flush-level faults absorbed",
            "workloads: "
            + ", ".join(f"{k} x{v}" for k, v in sorted(self.per_spec.items())),
        ]
        if self.failures:
            lines.append(f"{len(self.failures)} FAILING seed(s):")
            lines += [f.describe() for f in self.failures]
        else:
            lines.append("all invariants held on every seed")
        return "\n".join(lines)


# -- one seed ---------------------------------------------------------------


def _fault_plans(spec: WorkloadSpec, seed: int, controller) -> dict:
    members = set(spec.transient) | set(spec.slow) | {
        m for m, _ in spec.deaths
    }
    deaths = dict(spec.deaths)
    return {
        m: FaultPlan(
            seed=(FUZZ_SEED0 << 8) ^ (seed * 31 + m),
            transient_rate=(
                spec.transient_rate if m in spec.transient else 0.0
            ),
            mte_slowdown=spec.mte_slowdown if m in spec.slow else 1.0,
            vec_slowdown=spec.vec_slowdown if m in spec.slow else 1.0,
            die_at_launch=deaths.get(m),
            controller=controller,
        )
        for m in members
    }


def _attach_controller(svc: PoolScanService, controller) -> None:
    svc.controller = controller
    svc.batcher.controller = controller
    for worker in svc.workers:
        worker.batcher.controller = controller


def _warm(spec: WorkloadSpec, svc: PoolScanService) -> None:
    """Touch every shared shape class on every member, on a canonical
    schedule with no faults attached.

    Warming bypasses pool routing on purpose: shared constants are
    uploaded per member on first touch and are *not* plan-owned, so a
    member that first meets a shape class mid-run would allocate GM the
    invariant checker's baseline never saw.  (Plans themselves may still
    be built mid-run — they are cache-tracked, so the GM accounting
    identity covers them.)  Warming also keeps the per-seed decision
    trace down to decisions that can matter."""
    dt = spec.np_dtype
    for worker in svc.workers:
        for size in spec.sizes:
            warm = (np.arange(size) % 5 - 2).astype(dt)
            for _ in range(2):  # min_group=2: warm the batched path too
                worker.submit(warm, algorithm="scanu", s=spec.s)
            worker.flush()
            worker.submit(warm, algorithm="scanu", s=spec.s)
            worker.flush()  # and the 1-D fallback plan for the same class
            if spec.exclusive_mix:
                worker.submit(warm, algorithm="mcscan", s=spec.s, exclusive=True)
                worker.flush()


def _run_traffic_seed(
    spec: WorkloadSpec,
    seed: int,
    svc: PoolScanService,
    controller,
    checker: ServeInvariantChecker,
    config,
) -> SeedResult:
    """Serve one open-loop traffic seed through the
    :class:`~repro.shard.TrafficScheduler` and check the same invariants
    as a closed-loop seed.

    Every *admitted* arrival registers an oracle expectation at admit
    time; shed arrivals never reach a device, so they carry none.  The
    scheduler drains fully inside :func:`~repro.shard.run_traffic`
    (failover reroutes around deaths, admission sheds around a dead
    pool), so there is no end-of-seed repair phase — a ticket the run
    could neither serve nor account for surfaces as an unresolved
    expectation or a retained-queue violation in ``checker.finish``."""
    from ..serve.traffic import TrafficSpec
    from ..shard.scheduler import run_traffic

    tspec = TrafficSpec(
        name=spec.name,
        process=spec.traffic,
        rate_rps=spec.traffic_rate,
        requests=spec.requests,
        sizes=spec.sizes,
        slo_ns=spec.slo_ns,
        dtype=spec.dtype,
    )
    report = run_traffic(
        svc,
        tspec,
        seed,
        controller=controller,
        s=spec.s,
        on_admit=checker.expect,
    )
    checker.observe(report.tickets)
    violations = checker.finish()
    if not report.accounted():
        violations.append(
            InvariantViolation(
                invariant="exactly_once",
                detail=(
                    f"traffic accounting broke: offered {report.offered} "
                    f"!= served {report.served} + shed {report.shed} "
                    f"+ failed {report.failed}"
                ),
            )
        )
    if report.failed:
        violations.append(
            InvariantViolation(
                invariant="queue_drained",
                detail=(
                    f"{report.failed} admitted request(s) failed under a "
                    f"fault profile that keeps a member alive"
                ),
            )
        )

    for worker in svc.workers:
        plan = next(iter(worker.cache._plans.values()), None)
        if plan is not None:
            bad = check_schedule_invariance(plan.traced, config, controller)
            if bad is not None:
                violations.append(bad)
            break

    svc.shutdown()
    return SeedResult(
        spec=spec.name,
        seed=seed,
        violations=violations,
        trace=list(controller.trace),
        served=report.served,
        flush_faults=sum(svc.failovers),
    )


def run_seed(
    spec: WorkloadSpec,
    seed: int,
    *,
    trace: "list[Decision] | None" = None,
    parallel: "int | None" = None,
) -> SeedResult:
    """Run one fuzz seed (or replay its recorded ``trace``) and check
    every invariant.  Input data depends only on ``(FUZZ_SEED0, seed)``,
    never on schedule decisions, so a replayed trace sees identical
    requests.

    ``parallel`` overrides the spec's host-executor worker count (None =
    use the spec's).  Parallelism must be invisible — the same seed must
    produce the same oracle bits, tickets and simulated timeline at any
    worker count — so a parallel run is checked against exactly the same
    invariants.
    """
    config = toy_config()
    controller = ScheduleController(seed, trace=trace)
    pool = DevicePool(spec.num_devices, config)
    workers = parallel if parallel is not None else spec.parallel
    svc = PoolScanService(
        pool=pool,
        config=config,
        max_batch=8,
        gm_budget=spec.gm_budget,
        parallel=workers or None,
        graph_fusion="aggressive" if spec.graph_fused else "conservative",
    )
    _warm(spec, svc)
    _attach_controller(svc, controller)
    for member, plan in _fault_plans(spec, seed, controller).items():
        pool.inject_faults(member, plan)
    checker = ServeInvariantChecker(svc)

    if spec.traffic:
        return _run_traffic_seed(spec, seed, svc, controller, checker, config)

    rng = np.random.default_rng((FUZZ_SEED0, seed))
    dt = spec.np_dtype
    graphs: dict = {}
    if spec.graph_mix or spec.graph_fused:
        from ..graph import llm_sample

        # two vocab shape classes, exercising lowered-program reuse; the
        # fused mix prepends an elementwise chain so the fusion pass has a
        # region to collapse inside the sampling graph
        prep = ("abs", "double") if spec.graph_fused else ()
        for vocab in (96, 160):
            graphs[vocab] = llm_sample(
                vocab, k=8, p=0.75, s=spec.s, prep=prep
            )
    if spec.graph_fused:
        from ..graph import scan_pipeline

        # the canonical fused region: pre-map -> scan -> post-map, one
        # captured program under fusion=aggressive
        graphs["pipeline"] = scan_pipeline(
            200, dtype=spec.dtype, pre=("abs",), post=("double",), s=spec.s
        )
    outstanding: dict = {}
    served = 0
    flush_faults = 0

    def flush_once() -> None:
        nonlocal served, flush_faults
        try:
            completed = list(svc.flush())
        except DeviceFault:
            # the aborted flush parked unserved work back in the pool
            # queue; tickets it *did* complete were never returned, so
            # sweep them out of `outstanding` for exactly-once accounting
            flush_faults += 1
            completed = [t for t in outstanding.values() if t.done]
        for ticket in completed:
            outstanding.pop(ticket.req_id, None)
        served += len(completed)
        checker.observe(completed)

    per_round = math.ceil(spec.requests / spec.flushes)
    submitted = 0
    for _ in range(spec.flushes):
        for _ in range(min(per_round, spec.requests - submitted)):
            n = int(rng.choice(spec.sizes))
            x = rng.integers(-2, 3, n).astype(dt)
            exclusive = spec.exclusive_mix and bool(rng.integers(0, 2))
            graph_pick = (spec.graph_mix or spec.graph_fused) and bool(
                rng.integers(0, 2)
            )
            if graph_pick and spec.graph_fused and bool(rng.integers(0, 2)):
                from ..graph import oracle_outputs

                graph = graphs["pipeline"]
                inputs = {"x": rng.integers(-2, 3, 200).astype(dt)}
                ticket = svc.submit_graph(graph, inputs)
                checker.expect_graph(
                    ticket, oracle_outputs(graph, inputs, None)
                )
            elif graph_pick:
                from ..graph import oracle_outputs

                vocab = int(rng.choice((96, 160)))
                probs = (rng.permutation(vocab) + 1).astype(np.float16)
                theta = float(rng.integers(1, 8)) / 8.0
                graph = graphs[vocab]
                params = {"sample": {"theta": theta}}
                ticket = svc.submit_graph(
                    graph, {"probs": probs}, params=params
                )
                checker.expect_graph(
                    ticket, oracle_outputs(graph, {"probs": probs}, params)
                )
            elif exclusive:
                ticket = svc.submit(
                    x, algorithm="mcscan", s=spec.s, exclusive=True
                )
                checker.expect(ticket, x)
            else:
                ticket = svc.submit(x, algorithm="scanu", s=spec.s)
                checker.expect(ticket, x)
            outstanding[ticket.req_id] = ticket
            submitted += 1
        flush_once()

    # end-of-seed repair: lift the fault plans and drain whatever the
    # faulty phase could not serve, so the terminal exactly-once and
    # queue-drained checks are decisive
    for device in pool.devices:
        device.fault_plan = None
    for _ in range(4):
        if not svc.pending:
            break
        flush_once()

    violations = checker.finish()

    # scheduler seam: one traced program per seed, timeline must not
    # depend on the controller's engine polling order
    for worker in svc.workers:
        plan = next(iter(worker.cache._plans.values()), None)
        if plan is not None:
            bad = check_schedule_invariance(plan.traced, config, controller)
            if bad is not None:
                violations.append(bad)
            break

    svc.shutdown()
    return SeedResult(
        spec=spec.name,
        seed=seed,
        violations=violations,
        trace=list(controller.trace),
        served=served,
        flush_faults=flush_faults,
    )


# -- shrinking --------------------------------------------------------------


def shrink_trace(
    spec: WorkloadSpec, seed: int, trace: "list[Decision]"
) -> "list[Decision]":
    """Minimise a failing seed's decision trace.

    Two passes, both exploiting the pick-0-is-canonical convention:
    binary-search the shortest failing prefix (replay pads with pick 0
    past the end), then zero each surviving non-canonical pick that the
    failure does not need.  Returns the recorded trace unchanged if the
    failure does not reproduce under replay (a data bug, not a schedule
    bug — the canonical schedule fails too)."""

    def fails(candidate: "list[Decision]") -> bool:
        try:
            return not run_seed(spec, seed, trace=candidate).ok
        except Exception:
            return True  # a crashing schedule still reproduces the failure

    trace = list(trace)
    if not fails(trace):
        return trace
    lo, hi = 0, len(trace)  # invariant: trace[:hi] fails
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(trace[:mid]):
            hi = mid
        else:
            lo = mid + 1
    best = trace[:hi]
    for i, decision in enumerate(best):
        if decision.pick == 0:
            continue
        candidate = list(best)
        candidate[i] = Decision(decision.point, decision.n, 0)
        if fails(candidate):
            best = candidate
    while best and best[-1].pick == 0:
        best.pop()
    return best


# -- the fuzz loop ----------------------------------------------------------


def run_fuzz(
    specs: "list[WorkloadSpec] | None" = None,
    *,
    seeds: int = 1000,
    shrink: bool = True,
    max_failures: int = 5,
    progress=None,
    parallel: "int | None" = None,
) -> FuzzReport:
    """Run ``seeds`` fuzz seeds round-robin over the workload matrix.

    Stops early after ``max_failures`` failing seeds (each failure costs
    a shrink, which replays the seed O(log + nonzero) times).
    ``progress`` is an optional ``f(done, total, failures)`` callback.
    ``parallel`` forces a host-executor worker count on every seed
    (None = each spec's own setting).
    """
    matrix = list(specs) if specs else list(WORKLOAD_MATRIX)
    report = FuzzReport(seeds_run=0)
    for i in range(seeds):
        spec = matrix[i % len(matrix)]
        try:
            result = run_seed(spec, i, parallel=parallel)
        except Exception as exc:  # a crashing schedule is a failing seed
            result = SeedResult(
                spec=spec.name,
                seed=i,
                violations=[
                    InvariantViolation(
                        "crash", f"{type(exc).__name__}: {exc}"
                    )
                ],
                trace=[],
                served=0,
                flush_faults=0,
            )
        report.seeds_run += 1
        report.served += result.served
        report.decisions += len(result.trace)
        report.flush_faults += result.flush_faults
        report.per_spec[spec.name] = report.per_spec.get(spec.name, 0) + 1
        if not result.ok:
            shrunk = (
                shrink_trace(spec, i, result.trace) if shrink else None
            )
            report.failures.append(
                FuzzFailure(
                    spec=spec.name,
                    seed=i,
                    violations=result.violations,
                    trace=result.trace,
                    shrunk=shrunk,
                )
            )
            if len(report.failures) >= max_failures:
                break
        if progress is not None:
            progress(i + 1, seeds, len(report.failures))
    return report


# -- seed corpus ------------------------------------------------------------


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned seed: a schedule that previously caught a bug."""

    spec: str
    seed: int
    note: str = ""


def _default_corpus_path() -> Path:
    return Path(__file__).with_name("corpus.json")


def load_corpus(path=None) -> "list[CorpusEntry]":
    """Load the committed seed corpus (``corpus.json`` by default)."""
    path = Path(path) if path is not None else _default_corpus_path()
    data = json.loads(path.read_text())
    entries = [
        CorpusEntry(
            spec=str(e["spec"]),
            seed=int(e["seed"]),
            note=str(e.get("note", "")),
        )
        for e in data["entries"]
    ]
    for entry in entries:
        if entry.spec not in _SPEC_BY_NAME:
            raise ConfigError(
                f"corpus entry references unknown workload {entry.spec!r}; "
                f"known: {sorted(_SPEC_BY_NAME)}"
            )
    return entries


def replay_corpus(path=None) -> FuzzReport:
    """Re-run every corpus seed; all must pass on the current tree."""
    report = FuzzReport(seeds_run=0)
    for entry in load_corpus(path):
        result = run_seed(_SPEC_BY_NAME[entry.spec], entry.seed)
        report.seeds_run += 1
        report.served += result.served
        report.decisions += len(result.trace)
        report.flush_faults += result.flush_faults
        report.per_spec[entry.spec] = report.per_spec.get(entry.spec, 0) + 1
        if not result.ok:
            report.failures.append(
                FuzzFailure(
                    spec=entry.spec,
                    seed=entry.seed,
                    violations=result.violations,
                    trace=result.trace,
                    shrunk=shrink_trace(
                        _SPEC_BY_NAME[entry.spec], entry.seed, result.trace
                    ),
                )
            )
    return report


def failure_to_json(failure: FuzzFailure) -> dict:
    """JSON form of a failure (for saving repro bundles from the CLI)."""
    return {
        "spec": failure.spec,
        "seed": failure.seed,
        "violations": [v.describe() for v in failure.violations],
        "trace": trace_to_json(failure.trace),
        "shrunk": (
            trace_to_json(failure.shrunk)
            if failure.shrunk is not None
            else None
        ),
    }
