"""Independent synchronization-coverage verification.

The :class:`~repro.hw.device.Emitter` derives dependency edges from hazard
records as it emits ops.  This module re-checks the result from first
principles, in the spirit of hardware-agnostic sync checkers: given the
per-op data-access log recorded under ``AscendDevice(audit_hazards=True)``,
every pair of ops that touches overlapping data with at least one write
must be ordered by happens-before — the transitive closure of

* explicit dependency edges (``program.deps_of(op_id)``, the program-side
  effective deps which include barrier fences), and
* per-engine program order (hardware instruction queues are in-order, so
  consecutive ops on one engine are implicitly ordered).

Any conflicting pair not so ordered is a race the scheduler could legally
reorder, i.e. a missing queue edge or ``SyncAll``.  The checker is
deliberately independent of the emitter's hazard bookkeeping: it only
consumes the access log and the final op DAG, so a bug in hazard
derivation shows up as a reported violation rather than being trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KernelError
from ..hw.device import HazardAccess, TracedKernel
from ..hw.scheduler import Program

__all__ = [
    "SyncViolation",
    "SyncCoverageReport",
    "ancestor_bitsets",
    "check_sync_coverage",
]


@dataclass(frozen=True)
class SyncViolation:
    """A conflicting access pair with no happens-before ordering."""

    earlier: int  # op id
    later: int  # op id
    space: str  # "gm" or "local"
    key: int

    def describe(self, program: Program) -> str:
        a, b = program.ops[self.earlier], program.ops[self.later]
        return (
            f"ops {self.earlier} ({a.label!r} on engine {a.engine}) and "
            f"{self.later} ({b.label!r} on engine {b.engine}) conflict on "
            f"{self.space} location {self.key:#x} without ordering"
        )


@dataclass
class SyncCoverageReport:
    """Result of one coverage check."""

    ops: int
    accesses: int
    #: conflicting (overlap + at least one write) pairs that were verified
    checked_pairs: int
    violations: "list[SyncViolation]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def ancestor_bitsets(program: Program) -> "list[int]":
    """Happens-before closure as one int bitset per op (bit d of entry i
    set iff op d must finish before op i starts).

    Ops are emitted with ``deps < op_id`` and engine queues follow emission
    order, so op-id order is already topological.
    """
    n = len(program.ops)
    anc = [0] * n
    engine_prev = [-1] * program.num_engines
    for op in program.ops:
        mask = 0
        prev = engine_prev[op.engine]
        deps = program.deps_of(op.op_id)
        preds = deps if prev < 0 else (*deps, prev)
        for d in preds:
            mask |= anc[d] | (1 << d)
        anc[op.op_id] = mask
        engine_prev[op.engine] = op.op_id
    return anc


def check_sync_coverage(traced: TracedKernel) -> SyncCoverageReport:
    """Verify every cross-op data conflict in ``traced`` is ordered.

    Requires the kernel to have been traced on a device constructed with
    ``audit_hazards=True`` (otherwise there is no access log to check).
    """
    if traced.audit is None:
        raise KernelError(
            "kernel was traced without an access log; construct the device "
            "with AscendDevice(audit_hazards=True)"
        )
    return check_accesses(traced.program, traced.audit)


def check_accesses(
    program: Program, audit: "list[HazardAccess]"
) -> SyncCoverageReport:
    """Core checker over an explicit (program, access log) pair."""
    anc = ancestor_bitsets(program)

    by_location: dict[tuple[str, int], list[HazardAccess]] = {}
    for access in audit:
        by_location.setdefault((access.space, access.key), []).append(access)

    checked = 0
    violations: list[SyncViolation] = []
    seen: set[tuple[int, int]] = set()
    for (space, key), accesses in by_location.items():
        accesses.sort(key=lambda a: a.op_id)
        for j, later in enumerate(accesses):
            later_bit = 1 << later.op_id
            for earlier in accesses[:j]:
                if earlier.op_id == later.op_id:
                    continue  # one op may read and write the same location
                if not (earlier.is_write or later.is_write):
                    continue
                if earlier.start >= later.end or later.start >= earlier.end:
                    continue
                checked += 1
                # ordered either way: emission order is not execution order,
                # so an explicit later->earlier edge also serialises the pair
                if anc[later.op_id] & (1 << earlier.op_id):
                    continue
                if anc[earlier.op_id] & later_bit:
                    continue
                pair = (earlier.op_id, later.op_id)
                if pair not in seen:
                    seen.add(pair)
                    violations.append(
                        SyncViolation(earlier.op_id, later.op_id, space, key)
                    )

    return SyncCoverageReport(
        ops=len(program.ops),
        accesses=len(audit),
        checked_pairs=checked,
        violations=violations,
    )
