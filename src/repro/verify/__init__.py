"""Adversarial verification of the concurrent serving stack.

Two complementary checkers live here:

* **Sync coverage** (:mod:`repro.verify.sync`, promoted from the old
  ``repro.hw.verify``) — per-program data-race verification: every
  conflicting access pair in a traced kernel must be ordered by
  happens-before.  This is the *intra-launch* guarantee.

* **Schedule fuzzing** (:mod:`repro.verify.controller`,
  :mod:`repro.verify.invariants`, :mod:`repro.verify.fuzz`) — the
  *inter-launch* guarantee.  PRs 4-5 added real concurrency surfaces
  (shard carry chains, pool routing, retry re-queues, drain-and-reroute
  failover) whose correctness must hold on **every** interleaving, not
  just the hand-picked schedules unit tests replay.  Following the
  AccelSync idea of randomized exploration of accelerator pipeline
  interleavings (PAPERS.md), a seeded :class:`ScheduleController` is
  injected at each concurrency decision point — engine pick order in the
  DES scheduler, launch-group pick order in ``PoolScanService.flush``,
  fault timing in ``FaultPlan``, batcher drain order — and every decision
  is recorded, so any run is a pure function of its seed and can be
  replayed or shrunk to a minimal decision trace.

``python -m repro fuzz`` drives thousands of seeds over a workload matrix
(dtype x size x D x fault mix) and asserts the linearizability invariants
per seed: bit-identical results against the NumPy oracle, every ticket
resolved exactly once, monotone simulated time, and no plan GM leaked
past :class:`~repro.serve.plan.PlanCache` eviction.
"""

from .controller import Decision, ScheduleController
from .fuzz import (
    FUZZ_SEED0,
    WORKLOAD_MATRIX,
    CorpusEntry,
    FuzzFailure,
    FuzzReport,
    SeedResult,
    WorkloadSpec,
    failure_to_json,
    load_corpus,
    replay_corpus,
    run_fuzz,
    run_seed,
    shrink_trace,
)
from .invariants import (
    InvariantViolation,
    ServeInvariantChecker,
    check_schedule_invariance,
)
from .sync import (
    SyncCoverageReport,
    SyncViolation,
    ancestor_bitsets,
    check_accesses,
    check_sync_coverage,
)

__all__ = [
    "CorpusEntry",
    "Decision",
    "FUZZ_SEED0",
    "FuzzFailure",
    "failure_to_json",
    "FuzzReport",
    "InvariantViolation",
    "ScheduleController",
    "SeedResult",
    "ServeInvariantChecker",
    "SyncCoverageReport",
    "SyncViolation",
    "WORKLOAD_MATRIX",
    "WorkloadSpec",
    "ancestor_bitsets",
    "check_accesses",
    "check_schedule_invariance",
    "check_sync_coverage",
    "load_corpus",
    "replay_corpus",
    "run_fuzz",
    "run_seed",
    "shrink_trace",
]
