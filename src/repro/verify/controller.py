"""Seeded schedule decisions with a recorded, replayable trace.

Every concurrency surface in the serving stack funnels its "which of
these equivalent things happens first?" choices through one
:class:`ScheduleController`:

* the DES scheduler's engine pick order (:func:`repro.hw.scheduler.simulate`),
* launch-group pick order and routing tie-breaks in
  :meth:`repro.shard.service.PoolScanService.flush`,
* transient-fault timing in :class:`repro.hw.faults.FaultPlan`,
* pending-queue drain order in
  :class:`repro.serve.batcher.RequestBatcher` (``drain`` and the
  failover ``take_pending``).

Each call records a :class:`Decision` ``(point, n, pick)``.  A run under
a controller is therefore a pure function of the seed, and the recorded
trace can

* **replay** — a controller constructed with ``trace=...`` re-issues the
  recorded picks verbatim (clamped to the live alternative count, so a
  slightly divergent re-run cannot crash), then falls back to pick 0;
* **shrink** — pick 0 is by convention the *canonical* choice at every
  decision point (issue order, first group, no fault), so zeroing or
  truncating trace entries moves a failing schedule monotonically toward
  the deterministic baseline.  :func:`repro.verify.fuzz.shrink_trace`
  exploits exactly this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "Decision",
    "ScheduleController",
    "trace_from_json",
    "trace_to_json",
]


@dataclass(frozen=True)
class Decision:
    """One recorded schedule choice: ``pick`` out of ``n`` alternatives."""

    point: str
    n: int
    pick: int

    def describe(self) -> str:
        return f"{self.point}: {self.pick}/{self.n}"


class ScheduleController:
    """Seeded source of schedule decisions, recording everything it picks.

    ``choose``/``chance``/``permute`` never record trivial decisions
    (``n <= 1``, probability 0) — traces stay minimal and shrinking never
    wastes steps on choices that cannot matter.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        trace: "list[Decision] | tuple[Decision, ...] | None" = None,
    ):
        self.seed = seed
        self._rng = random.Random(seed)
        #: decisions to replay before falling back to canonical pick 0
        self._replay: "tuple[Decision, ...] | None" = (
            tuple(trace) if trace is not None else None
        )
        self._pos = 0
        #: every decision made by this controller, in order
        self.trace: list[Decision] = []

    # -- decision primitives -------------------------------------------------

    def choose(self, point: str, n: int) -> int:
        """Pick an index in ``[0, n)``; 0 is the canonical choice."""
        if n <= 1:
            return 0
        if self._replay is not None:
            if self._pos < len(self._replay):
                pick = min(self._replay[self._pos].pick, n - 1)
                self._pos += 1
            else:
                pick = 0
        else:
            pick = self._rng.randrange(n)
        self.trace.append(Decision(point, n, pick))
        return pick

    def chance(self, point: str, probability: float) -> bool:
        """A biased coin (True with ``probability``); False is canonical.

        Recorded as a binary decision so a replayed/shrunk trace controls
        fault *timing* exactly, independent of any probability drift."""
        if probability <= 0.0:
            return False
        if self._replay is not None:
            if self._pos < len(self._replay):
                pick = 1 if self._replay[self._pos].pick else 0
                self._pos += 1
            else:
                pick = 0
        else:
            pick = 1 if self._rng.random() < probability else 0
        self.trace.append(Decision(point, 2, pick))
        return bool(pick)

    def permute(self, point: str, items: list) -> list:
        """A controlled permutation of ``items`` (Fisher-Yates, one
        recorded decision per swap).  The all-zero trace is the identity,
        so shrinking recovers submission order."""
        out = list(items)
        for i in range(len(out) - 1):
            j = i + self.choose(f"{point}[{i}]", len(out) - i)
            out[i], out[j] = out[j], out[i]
        return out

    # -- introspection -------------------------------------------------------

    @property
    def decisions(self) -> int:
        return len(self.trace)

    @property
    def nonzero_decisions(self) -> int:
        """Decisions that diverge from the canonical schedule."""
        return sum(1 for d in self.trace if d.pick)

    def describe_trace(self, limit: int = 20) -> str:
        """Human-readable non-canonical decisions (the interesting ones)."""
        hot = [d for d in self.trace if d.pick]
        lines = [d.describe() for d in hot[:limit]]
        if len(hot) > limit:
            lines.append(f"... {len(hot) - limit} more")
        return "; ".join(lines) if lines else "(canonical schedule)"


def trace_to_json(trace: "list[Decision]") -> list:
    """Decision trace as JSON-serialisable triples."""
    return [[d.point, d.n, d.pick] for d in trace]


def trace_from_json(data: list) -> "list[Decision]":
    return [Decision(str(p), int(n), int(k)) for p, n, k in data]
