"""Linearizability-style invariants for the serve/shard/fault stack.

The schedule fuzzer (:mod:`repro.verify.fuzz`) runs the serving layers
under a :class:`~repro.verify.controller.ScheduleController` and asserts,
for every seed, the properties the stack promises regardless of
schedule:

* **oracle bit-identity** — every completed ticket's values equal the
  NumPy reference scan of its submitted input, bit for bit.  Plans are
  deterministic and device-independent, so no interleaving (batching
  split, retry, failover onto another member) may change a result.
* **exactly-once resolution** — every submitted request completes on
  exactly one ticket: none lost across failover drains, none served
  twice by a reroute racing a partially-flushed member.
* **monotone simulated time** — per-member simulated device time and
  pool busy time only move forward; retries and backoff charge time,
  never refund it.
* **GM accounting** — after the run, each member's allocated device
  memory equals its pre-run baseline plus exactly the bytes its plan
  cache still pins (``cache.gm_bytes``).  A plan leaked past
  :class:`~repro.serve.plan.PlanCache` eviction shows up as a positive
  residue; a double release as a negative one.

The checker is passive: it observes submissions and flush results and
inspects public state, never steering execution, so the schedule under
test is exactly the controller's.

:func:`check_schedule_invariance` covers the device scheduler seam: the
DES is insensitive to engine polling order by construction, so replaying
one traced program with and without a controller must produce
bit-identical timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reference import exclusive_scan, inclusive_scan

__all__ = [
    "InvariantViolation",
    "ServeInvariantChecker",
    "check_schedule_invariance",
]


@dataclass(frozen=True)
class _GraphExpected:
    """Oracle for one graph request: a tuple of output arrays (scan
    tickets expect one array; graph tickets expect ``graph.outputs``)."""

    outputs: "tuple[np.ndarray, ...]"


def _plan_pinned_bytes(worker) -> int:
    """Allocator-side footprint of the plans the worker's cache pins.

    ``cache.gm_bytes`` counts raw tensor bytes, but the allocator rounds
    every allocation up to :attr:`GlobalMemory.ALIGN
    <repro.hw.memory.GlobalMemory.ALIGN>` — the accounting identity must
    compare like with like or alignment padding reads as a leak."""
    align = worker.ctx.device.memory.ALIGN
    return sum(
        -(-max(t.nbytes, 1) // align) * align
        for plan in worker.cache._plans.values()
        for t in plan.gm_tensors
    )


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough detail to debug the seed."""

    #: which invariant broke (``oracle``, ``exactly_once``,
    #: ``monotone_time``, ``gm_accounting``, ``queue_drained``,
    #: ``schedule_invariance``)
    invariant: str
    detail: str

    def describe(self) -> str:
        return f"[{self.invariant}] {self.detail}"


class ServeInvariantChecker:
    """Observes one service (a :class:`~repro.serve.service.ScanService`
    or :class:`~repro.shard.service.PoolScanService`) through a fuzz run.

    Usage::

        checker = ServeInvariantChecker(svc)       # captures GM baseline
        ticket = svc.submit(x); checker.expect(ticket, x)
        ...
        checker.observe(svc.flush())
        ...
        violations = checker.finish()              # terminal checks

    Construct it **after** warming shared state (constants for every
    (s, dtype) the run will touch): shared constant uploads are not
    plan-owned, and first-touch allocations after the baseline snapshot
    would read as leaks.
    """

    def __init__(self, svc):
        self.svc = svc
        self.workers = list(getattr(svc, "workers", None) or [svc])
        self.violations: list[InvariantViolation] = []
        self._expected: dict[int, np.ndarray] = {}
        self._served: dict[int, int] = {}
        #: non-plan GM per member: everything allocated outside the plan
        #: cache (constants, warm buffers).  Must be invariant over the run.
        self._gm_baseline = [
            w.ctx.device.memory.used_bytes - _plan_pinned_bytes(w)
            for w in self.workers
        ]
        self._last_device_ns = [w.stats.device_ns for w in self.workers]
        self._last_busy = list(getattr(svc, "busy_ns", []))

    # -- observation hooks --------------------------------------------------

    def expect(self, ticket, x: np.ndarray) -> None:
        """Register a submitted request and its oracle result."""
        if ticket.req_id in self._expected:
            self._fail(
                "exactly_once",
                f"req {ticket.req_id} submitted twice (ticket id reuse)",
            )
            return
        oracle = exclusive_scan if ticket.exclusive else inclusive_scan
        self._expected[ticket.req_id] = oracle(np.asarray(x))

    def expect_graph(self, ticket, outputs) -> None:
        """Register a submitted graph request and its oracle outputs (a
        tuple of arrays, e.g. from :func:`repro.graph.oracle_outputs`)."""
        if ticket.req_id in self._expected:
            self._fail(
                "exactly_once",
                f"req {ticket.req_id} submitted twice (ticket id reuse)",
            )
            return
        self._expected[ticket.req_id] = _GraphExpected(tuple(outputs))

    def observe(self, completed) -> None:
        """Check one flush's completed tickets and the time axis."""
        for ticket in completed:
            count = self._served.get(ticket.req_id, 0) + 1
            self._served[ticket.req_id] = count
            if count > 1:
                self._fail(
                    "exactly_once",
                    f"req {ticket.req_id} resolved {count} times",
                )
                continue
            expected = self._expected.get(ticket.req_id)
            if expected is None:
                self._fail(
                    "exactly_once",
                    f"req {ticket.req_id} completed but was never submitted",
                )
                continue
            if not ticket.done:
                self._fail(
                    "oracle",
                    f"req {ticket.req_id} returned by flush but not done",
                )
            if isinstance(expected, _GraphExpected):
                got = ticket.values
                ok = (
                    got is not None
                    and len(got) == len(expected.outputs)
                    and all(
                        np.array_equal(g, e)
                        for g, e in zip(got, expected.outputs)
                    )
                )
                if not ok:
                    self._fail(
                        "oracle",
                        f"graph req {ticket.req_id} "
                        f"({getattr(ticket, 'graph', '?')}) diverges from "
                        f"its graph oracle",
                    )
            elif ticket.values is None or not np.array_equal(
                ticket.values, expected
            ):
                got = (
                    "None"
                    if ticket.values is None
                    else f"shape {ticket.values.shape}"
                )
                self._fail(
                    "oracle",
                    f"req {ticket.req_id} (n={ticket.n}, "
                    f"{ticket.algorithm}/{ticket.dtype}) diverges from the "
                    f"reference scan (got {got})",
                )
            if ticket.device_ns < 0:
                self._fail(
                    "monotone_time",
                    f"req {ticket.req_id} served in negative simulated "
                    f"time ({ticket.device_ns} ns)",
                )
        self._check_time_axis()

    def _check_time_axis(self) -> None:
        for i, worker in enumerate(self.workers):
            now = worker.stats.device_ns
            if now < self._last_device_ns[i] - 1e-6:
                self._fail(
                    "monotone_time",
                    f"member {i} simulated time went backwards: "
                    f"{now} < {self._last_device_ns[i]}",
                )
            self._last_device_ns[i] = now
        busy = getattr(self.svc, "busy_ns", None)
        if busy is not None:
            for i, b in enumerate(busy):
                if b < self._last_busy[i] - 1e-6:
                    self._fail(
                        "monotone_time",
                        f"member {i} pool busy time went backwards: "
                        f"{b} < {self._last_busy[i]}",
                    )
            self._last_busy = list(busy)

    # -- terminal checks ----------------------------------------------------

    def finish(self) -> "list[InvariantViolation]":
        """Run end-of-seed checks; returns all violations recorded."""
        self._check_time_axis()
        missing = sorted(
            rid for rid in self._expected if rid not in self._served
        )
        if missing:
            self._fail(
                "exactly_once",
                f"{len(missing)} request(s) lost (never resolved): "
                f"{missing[:8]}",
            )
        if self.svc.pending:
            self._fail(
                "queue_drained",
                f"{self.svc.pending} request(s) still queued after the "
                f"final flush",
            )
        leftovers = len(getattr(self.svc, "_tickets", {}))
        for worker in self.workers:
            if worker is not self.svc:
                if worker.pending:
                    self._fail(
                        "queue_drained",
                        f"member batcher still holds {worker.pending} "
                        f"request(s)",
                    )
                leftovers += len(worker._tickets)
        if leftovers:
            self._fail(
                "exactly_once",
                f"{leftovers} ticket(s) still tracked after the final "
                f"flush (lost work)",
            )
        for i, worker in enumerate(self.workers):
            used = worker.ctx.device.memory.used_bytes
            pinned = _plan_pinned_bytes(worker)
            residue = used - pinned - self._gm_baseline[i]
            if residue:
                kind = "leaked past eviction" if residue > 0 else "released twice"
                self._fail(
                    "gm_accounting",
                    f"member {i} GM off by {residue:+d} bytes ({kind}): "
                    f"{used} used, {pinned} pinned by the plan cache, "
                    f"baseline {self._gm_baseline[i]}",
                )
            budget = worker.cache.gm_budget
            # a single oversized plan may legitimately pin more than the
            # budget (eviction never empties the cache); two or more may not
            if (
                budget is not None
                and worker.cache.gm_bytes > budget
                and len(worker.cache) > 1
            ):
                self._fail(
                    "gm_accounting",
                    f"member {i} plan cache pins {worker.cache.gm_bytes} "
                    f"bytes across {len(worker.cache)} plans, over its "
                    f"{budget}-byte budget",
                )
        return self.violations

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations.append(InvariantViolation(invariant, detail))


def check_schedule_invariance(
    traced, config, controller
) -> "InvariantViolation | None":
    """Assert the DES timeline is independent of engine polling order.

    Replays ``traced.program`` once canonically and once under
    ``controller`` (which salts the engine iteration order, see
    :func:`repro.hw.scheduler.simulate`); any per-op start/finish or
    makespan difference is a hidden order dependence in the scheduler.
    """
    from ..hw.scheduler import simulate

    baseline = simulate(traced.program, config)
    salted = simulate(traced.program, config, controller=controller)
    if (
        baseline.start_ns != salted.start_ns
        or baseline.finish_ns != salted.finish_ns
        or baseline.total_ns != salted.total_ns
    ):
        diffs = [
            i
            for i in range(len(baseline.start_ns))
            if baseline.start_ns[i] != salted.start_ns[i]
            or baseline.finish_ns[i] != salted.finish_ns[i]
        ]
        return InvariantViolation(
            "schedule_invariance",
            f"timeline depends on engine polling order: {len(diffs)} op(s) "
            f"moved (first: {diffs[:5]}), makespan {baseline.total_ns} vs "
            f"{salted.total_ns}",
        )
    return None
