"""AscendC-style pipes and queues.

``TPipe`` owns the local buffer budget of one core; ``TQue`` manages a fixed
number of equally-sized slots inside one buffer.  As in AscendC, setting the
queue depth to two is all it takes to double-buffer a pipeline stage
(paper Section 3.2): each slot carries its own hazard record, so ops on the
tensor allocated from slot 0 overlap with ops on slot 1, while reuse of a
slot serialises against the previous occupant automatically.
"""

from __future__ import annotations

from collections import deque as _deque
from dataclasses import dataclass, field

from ..errors import BufferOverflowError, QueueError, ShapeError
from ..hw.config import BufferConfig
from ..hw.datatypes import DType, as_dtype
from .tensor import BufferKind, Hazard, LocalTensor

__all__ = ["TPipe", "TQue"]


@dataclass
class _Slot:
    capacity_bytes: int
    hazard: Hazard = field(default_factory=Hazard)
    in_use: bool = False


class TQue:
    """A FIFO of local-tensor slots in one physical buffer."""

    def __init__(
        self,
        *,
        buffer: str,
        depth: int,
        slot_bytes: int,
        core_kind: str,
        core_index: int,
    ):
        if depth < 1:
            raise QueueError("queue depth must be >= 1")
        if slot_bytes <= 0:
            raise QueueError("slot size must be positive")
        self.buffer = buffer
        self.core_kind = core_kind
        self.core_index = core_index
        self._slots = [_Slot(slot_bytes) for _ in range(depth)]
        self._next_slot = 0
        self._fifo: _deque[LocalTensor] = _deque()
        self._slot_of: dict[int, _Slot] = {}

    @property
    def depth(self) -> int:
        return len(self._slots)

    def alloc_tensor(self, dtype: "DType | str", length: int) -> LocalTensor:
        """Allocate a tensor in the next free slot (AllocTensor).

        Raises:
            QueueError: if all slots are in use (the kernel forgot to free).
            BufferOverflowError: if the tensor exceeds the slot capacity.
        """
        dt = as_dtype(dtype)
        nbytes = length * dt.itemsize
        slot = None
        for i in range(self.depth):
            candidate = self._slots[(self._next_slot + i) % self.depth]
            if not candidate.in_use:
                slot = candidate
                self._next_slot = (self._next_slot + i + 1) % self.depth
                break
        if slot is None:
            raise QueueError(
                f"all {self.depth} slots of {self.buffer} queue are in use; "
                f"free a tensor before allocating (or increase the depth)"
            )
        if nbytes > slot.capacity_bytes:
            raise BufferOverflowError(
                f"tensor of {nbytes} bytes exceeds {self.buffer} slot "
                f"capacity {slot.capacity_bytes}"
            )
        slot.in_use = True
        tensor = LocalTensor(
            buffer=self.buffer,
            dtype=dt,
            length=length,
            core_kind=self.core_kind,
            core_index=self.core_index,
            hazard=slot.hazard,
        )
        self._slot_of[id(tensor)] = slot
        return tensor

    def enque(self, tensor: LocalTensor) -> None:
        """Publish a tensor to the consumer side (EnQue)."""
        if id(tensor) not in self._slot_of:
            raise QueueError("enque of a tensor not allocated from this queue")
        self._fifo.append(tensor)

    def deque(self) -> LocalTensor:
        """Take the oldest published tensor (DeQue)."""
        if not self._fifo:
            raise QueueError("deque on an empty queue (enque must come first)")
        return self._fifo.popleft()

    def free_tensor(self, tensor: LocalTensor) -> None:
        """Return the tensor's slot to the allocator (FreeTensor)."""
        slot = self._slot_of.pop(id(tensor), None)
        if slot is None:
            raise QueueError("free of a tensor not allocated from this queue")
        slot.in_use = False


class TPipe:
    """Buffer-budget owner for one core (AscendC TPipe).

    One TPipe assumes the full buffer capacity of its core; create one pipe
    per kernel phase per core (buffers are reused across phases, as on
    hardware).
    """

    def __init__(self, *, core_kind: str, core_index: int, buffers: BufferConfig):
        self.core_kind = core_kind
        self.core_index = core_index
        self._capacity = {
            BufferKind.UB: buffers.ub_bytes,
            BufferKind.L1: buffers.l1_bytes,
            BufferKind.L0A: buffers.l0a_bytes,
            BufferKind.L0B: buffers.l0b_bytes,
            BufferKind.L0C: buffers.l0c_bytes,
        }
        self._reserved = {k: 0 for k in self._capacity}

    def reserved_bytes(self, buffer: str) -> int:
        return self._reserved[buffer]

    def init_buffer(self, *, buffer: str, depth: int, slot_bytes: int) -> TQue:
        """Reserve ``depth`` slots of ``slot_bytes`` in ``buffer`` (InitBuffer)."""
        if buffer not in BufferKind.ALL:
            raise ShapeError(f"unknown buffer kind {buffer!r}")
        if self.core_kind == "aiv" and buffer not in BufferKind.VECTOR_SIDE:
            raise BufferOverflowError(
                f"vector cores have no {buffer} buffer (UB only)"
            )
        if self.core_kind == "aic" and buffer not in BufferKind.CUBE_SIDE:
            raise BufferOverflowError(
                f"cube cores have no {buffer} buffer (L1/L0A/L0B/L0C only)"
            )
        need = depth * slot_bytes
        if self._reserved[buffer] + need > self._capacity[buffer]:
            raise BufferOverflowError(
                f"{buffer} over capacity on {self.core_kind}{self.core_index}: "
                f"{self._reserved[buffer]} + {need} > {self._capacity[buffer]} bytes"
            )
        self._reserved[buffer] += need
        return TQue(
            buffer=buffer,
            depth=depth,
            slot_bytes=slot_bytes,
            core_kind=self.core_kind,
            core_index=self.core_index,
        )
