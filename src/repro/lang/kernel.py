"""Kernel base class and launch helpers.

A kernel is a Python object describing an AscendC operator: a ``mode``
("mix" blocks own one cube core + the AI core's vector cores; "vec" blocks
own a single vector core), a ``block_dim``, and one or more *phases*.
Phases are separated by device-wide ``SyncAll`` barriers, exactly like the
two phases of the multi-core scan (Algorithm 3).  Within a phase, the
kernel body runs once per block.
"""

from __future__ import annotations

from typing import Callable

from ..errors import KernelError
from .context import KernelContext

__all__ = ["Kernel"]


class Kernel:
    """Base class for simulated AscendC operators."""

    #: "mix" (cube + vector cores per block) or "vec" (one vector core)
    mode: str = "mix"

    def __init__(self, block_dim: int):
        if block_dim < 1:
            raise KernelError(f"block_dim must be >= 1, got {block_dim}")
        self.block_dim = block_dim

    def phases(self) -> "list[Callable[[KernelContext], None]]":
        """Phase list; override for multi-phase kernels (SyncAll between)."""
        return [self.run]

    def run(self, ctx: KernelContext) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement run() or override phases()"
        )
