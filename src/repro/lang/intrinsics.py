"""AscendC-style intrinsics.

Each function both (a) performs the computation on the NumPy backing state
and (b) emits a timed op with automatically derived dependencies.  The set
mirrors the operations the paper lists in Section 3.2 (DataCopy, Mmad, Adds,
GatherMask, ...) plus the vector/scalar instructions its kernels need
(ReduceSum, ShiftRight, Not, compare, cast, ...).

Two *macro* intrinsics model instruction sequences whose per-instruction
emission would be pure overhead because the hardware provably serialises
them anyway:

* :func:`propagate_chain` — the per-``s``-tile ``Adds`` + scalar-read loop
  of Algorithms 1 and 3 (each iteration depends on the previous ``partial``);
* :func:`row_cumsum_serial` — the row-serial inner loop of the CumSum-API
  vector baseline.

Their costs are the exact sum of the per-instruction costs they stand for.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import DTypeError, KernelError, ShapeError
from ..hw.datatypes import cube_accum_dtype
from ..hw.device import CoreHandle
from ..hw.isa import EngineKind
from ..hw.memory import GlobalSlice
from .context import KernelContext
from .tensor import BufferKind, Hazard, LocalTensor

__all__ = [
    "data_copy",
    "mmad",
    "adds",
    "muls",
    "add",
    "sub",
    "mul",
    "duplicate",
    "cast",
    "reduce_sum",
    "reduce_max",
    "gather_mask",
    "shift_right",
    "shift_left",
    "bit_and",
    "bit_not",
    "compare_scalar",
    "create_vec_index",
    "propagate_chain",
    "row_cumsum_serial",
    "vector_macro",
    "scalar_process",
]


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _core_of(t: LocalTensor) -> CoreHandle:
    return CoreHandle(t.core_kind, t.core_index)


def _require_ub(*tensors: LocalTensor) -> None:
    for t in tensors:
        if t.buffer != BufferKind.UB:
            raise KernelError(
                f"vector intrinsics operate on UB tensors, got {t.buffer}"
            )
        if t.core_kind != "aiv":
            raise KernelError("vector intrinsics run on vector cores only")


def _require_same_core(*tensors: LocalTensor) -> None:
    cores = {(t.core_kind, t.core_index) for t in tensors}
    if len(cores) != 1:
        raise KernelError(
            f"operands live on different cores {sorted(cores)}; on the 910B "
            f"split architecture cores exchange data only through GM"
        )


def _require_same_length(*tensors: LocalTensor) -> None:
    lengths = {t.length for t in tensors}
    if len(lengths) != 1:
        raise ShapeError(f"operand lengths differ: {sorted(lengths)}")


def _acc_dtype(np_dtype: np.dtype) -> np.dtype:
    """Working dtype for functional vector arithmetic (fp16 pipes compute
    through fp32-capable ALUs; integers widen to avoid spurious overflow in
    intermediates -- final results are cast back to the tensor dtype)."""
    if np_dtype == np.float16:
        return np.dtype(np.float32)
    if np_dtype.kind in "iu" and np_dtype.itemsize < 4:
        return np.dtype(np.int32) if np_dtype.kind == "i" else np.dtype(np.uint32)
    return np_dtype


# --------------------------------------------------------------------------
# DataCopy
# --------------------------------------------------------------------------


def data_copy(ctx: KernelContext, dst, src, *, label: str = "DataCopy") -> int:
    """MTE copy: GM<->local or local<->local (paper Section 3.2).

    Dtype conversion is only performed on copies *out of L0C* (the FIXPIPE
    path quantises the fp32/int32 accumulator on its way out), matching the
    hardware's capabilities.
    """
    if isinstance(src, GlobalSlice) and isinstance(dst, LocalTensor):
        if src.length != dst.length:
            raise ShapeError(
                f"copy length mismatch: GM {src.length} -> local {dst.length}"
            )
        if src.dtype.name != dst.dtype.name:
            raise DTypeError(
                f"GM->local copy cannot convert {src.dtype.name} to {dst.dtype.name}"
            )
        engine = ctx.engine(_core_of(dst), EngineKind.MTE_IN)
        dst.array[...] = src.array
        return ctx.emitter.emit(
            engine=engine,
            kind="mte_in",
            label=label,
            writes=(dst,),
            gm_read=src,
        )

    if isinstance(src, LocalTensor) and isinstance(dst, GlobalSlice):
        if src.length != dst.length:
            raise ShapeError(
                f"copy length mismatch: local {src.length} -> GM {dst.length}"
            )
        if src.dtype.name != dst.dtype.name and src.buffer != BufferKind.L0C:
            raise DTypeError(
                f"local->GM copy converts only from L0C (FIXPIPE), not from "
                f"{src.buffer} ({src.dtype.name} -> {dst.dtype.name})"
            )
        engine = ctx.engine(_core_of(src), EngineKind.MTE_OUT)
        dst.array[...] = src.array.astype(dst.dtype.np_dtype, copy=False)
        return ctx.emitter.emit(
            engine=engine,
            kind="mte_out",
            label=label,
            reads=(src,),
            gm_write=dst,
        )

    if isinstance(src, LocalTensor) and isinstance(dst, LocalTensor):
        _require_same_core(src, dst)
        if src.length != dst.length:
            raise ShapeError(
                f"copy length mismatch: {src.length} -> {dst.length}"
            )
        if src.dtype.name != dst.dtype.name and src.buffer != BufferKind.L0C:
            raise DTypeError(
                f"local copy converts only from L0C, not from {src.buffer}"
            )
        dst.array[...] = src.array.astype(dst.dtype.np_dtype, copy=False)
        if src.core_kind == "aic":
            engine = ctx.engine(_core_of(src), EngineKind.MTE_LOCAL)
            cycles = ctx.costs.local_copy_cycles(dst.nbytes)
            kind = "mte_local"
        else:
            engine = ctx.engine(_core_of(src), EngineKind.VEC)
            cycles = ctx.costs.vector_cycles(dst.nbytes)
            kind = "vec"
        return ctx.emitter.emit(
            engine=engine,
            kind=kind,
            label=label,
            cycles=cycles,
            reads=(src,),
            writes=(dst,),
        )

    raise KernelError(
        f"unsupported DataCopy operands: {type(src).__name__} -> {type(dst).__name__}"
    )


# --------------------------------------------------------------------------
# Mmad
# --------------------------------------------------------------------------


def mmad(
    ctx: KernelContext,
    c: LocalTensor,
    a: LocalTensor,
    b: LocalTensor,
    m: int,
    k: int,
    n: int,
    *,
    accumulate: bool = False,
    label: str = "Mmad",
) -> int:
    """Cube-unit matrix multiply ``C (+)= A @ B`` with L0C accumulation."""
    _require_same_core(a, b, c)
    if a.core_kind != "aic":
        raise KernelError("mmad runs on cube cores only")
    if a.buffer != BufferKind.L0A or b.buffer != BufferKind.L0B:
        raise KernelError(
            f"mmad inputs must be in L0A/L0B, got {a.buffer}/{b.buffer}"
        )
    if c.buffer != BufferKind.L0C:
        raise KernelError(f"mmad output must be in L0C, got {c.buffer}")
    if a.dtype.name != b.dtype.name:
        raise DTypeError(f"mmad inputs differ: {a.dtype.name} vs {b.dtype.name}")
    acc = cube_accum_dtype(a.dtype)
    if c.dtype.name != acc.name:
        raise DTypeError(
            f"mmad accumulator for {a.dtype.name} is {acc.name}, got {c.dtype.name}"
        )
    if a.length < m * k or b.length < k * n or c.length < m * n:
        raise ShapeError(
            f"mmad operands too small for {m}x{k} @ {k}x{n}: "
            f"|A|={a.length}, |B|={b.length}, |C|={c.length}"
        )

    a_mat = a.array[: m * k].reshape(m, k).astype(acc.np_dtype)
    b_mat = b.array[: k * n].reshape(k, n).astype(acc.np_dtype)
    c_mat = c.array[: m * n].reshape(m, n)
    prod = a_mat @ b_mat
    if accumulate:
        c_mat += prod.astype(c_mat.dtype)
    else:
        c_mat[...] = prod.astype(c_mat.dtype)

    reads = (a, b) + ((c,) if accumulate else ())
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(a), EngineKind.CUBE),
        kind="mmad",
        label=label,
        cycles=ctx.costs.mmad_cycles(m, k, n, a.dtype),
        reads=reads,
        writes=(c,),
    )


# --------------------------------------------------------------------------
# elementwise vector ops
# --------------------------------------------------------------------------


def _vector_unary(ctx, dst, src, fn, label) -> int:
    _require_ub(dst, src)
    _require_same_core(dst, src)
    _require_same_length(dst, src)
    work = _acc_dtype(src.dtype.np_dtype)
    dst.array[...] = fn(src.array.astype(work, copy=False)).astype(
        dst.dtype.np_dtype
    )
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(src.nbytes),
        reads=(src,),
        writes=(dst,),
    )


def _vector_binary(ctx, dst, a, b, fn, label) -> int:
    _require_ub(dst, a, b)
    _require_same_core(dst, a, b)
    _require_same_length(dst, a, b)
    work = _acc_dtype(a.dtype.np_dtype)
    dst.array[...] = fn(
        a.array.astype(work, copy=False), b.array.astype(work, copy=False)
    ).astype(dst.dtype.np_dtype)
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(a.nbytes),
        reads=(a, b),
        writes=(dst,),
    )


def adds(ctx, dst, src, scalar, *, label: str = "Adds") -> int:
    """``dst = src + scalar`` (paper Section 3.2)."""
    return _vector_unary(ctx, dst, src, lambda x: x + scalar, label)


def muls(ctx, dst, src, scalar, *, label: str = "Muls") -> int:
    return _vector_unary(ctx, dst, src, lambda x: x * scalar, label)


def add(ctx, dst, a, b, *, label: str = "Add") -> int:
    return _vector_binary(ctx, dst, a, b, lambda x, y: x + y, label)


def sub(ctx, dst, a, b, *, label: str = "Sub") -> int:
    return _vector_binary(ctx, dst, a, b, lambda x, y: x - y, label)


def mul(ctx, dst, a, b, *, label: str = "Mul") -> int:
    return _vector_binary(ctx, dst, a, b, lambda x, y: x * y, label)


def duplicate(ctx, dst, value, *, label: str = "Duplicate") -> int:
    """Fill ``dst`` with a scalar."""
    _require_ub(dst)
    dst.array[...] = np.asarray(value).astype(dst.dtype.np_dtype)
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(dst.nbytes),
        writes=(dst,),
    )


def cast(ctx, dst, src, *, label: str = "Cast") -> int:
    """Dtype conversion on the vector unit."""
    _require_ub(dst, src)
    _require_same_core(dst, src)
    _require_same_length(dst, src)
    dst.array[...] = src.array.astype(dst.dtype.np_dtype)
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(max(src.nbytes, dst.nbytes)),
        reads=(src,),
        writes=(dst,),
    )


def shift_right(ctx, dst, src, bits: int, *, label: str = "ShiftRight") -> int:
    if src.dtype.np_dtype.kind not in "iu":
        raise DTypeError(f"shift_right requires integers, got {src.dtype.name}")
    return _vector_unary(ctx, dst, src, lambda x: x >> bits, label)


def shift_left(ctx, dst, src, bits: int, *, label: str = "ShiftLeft") -> int:
    if src.dtype.np_dtype.kind not in "iu":
        raise DTypeError(f"shift_left requires integers, got {src.dtype.name}")
    return _vector_unary(ctx, dst, src, lambda x: x << bits, label)


def bit_and(ctx, dst, src, mask_value: int, *, label: str = "And") -> int:
    if src.dtype.np_dtype.kind not in "iu":
        raise DTypeError(f"bit_and requires integers, got {src.dtype.name}")
    return _vector_unary(ctx, dst, src, lambda x: x & mask_value, label)


def bit_not(ctx, dst, src, *, label: str = "Not") -> int:
    if src.dtype.np_dtype.kind not in "iu":
        raise DTypeError(f"bit_not requires integers, got {src.dtype.name}")
    return _vector_unary(ctx, dst, src, lambda x: ~x, label)


def compare_scalar(ctx, dst, src, op: str, scalar, *, label: str = "Compare") -> int:
    """0/1 mask: ``dst = src <op> scalar`` with dst in int8."""
    if dst.dtype.name != "int8":
        raise DTypeError(f"compare mask must be int8, got {dst.dtype.name}")
    ops: dict[str, Callable] = {
        "lt": np.less,
        "le": np.less_equal,
        "gt": np.greater,
        "ge": np.greater_equal,
        "eq": np.equal,
    }
    if op not in ops:
        raise KernelError(f"unknown compare op {op!r}")
    _require_ub(dst, src)
    _require_same_core(dst, src)
    _require_same_length(dst, src)
    work = _acc_dtype(src.dtype.np_dtype)
    dst.array[...] = ops[op](src.array.astype(work), scalar).astype(np.int8)
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(src.nbytes),
        reads=(src,),
        writes=(dst,),
    )


def create_vec_index(ctx, dst, start: int, *, label: str = "CreateVecIndex") -> int:
    """Fill ``dst`` with consecutive integers ``start, start+1, ...``
    (AscendC CreateVecIndex); used to materialise original indices for
    SplitInd."""
    if dst.dtype.np_dtype.kind not in "iu":
        raise DTypeError(f"create_vec_index requires integers, got {dst.dtype.name}")
    _require_ub(dst)
    dst.array[...] = np.arange(
        start, start + dst.length, dtype=dst.dtype.np_dtype
    )
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(dst.nbytes),
        writes=(dst,),
    )


# --------------------------------------------------------------------------
# reductions and gathers
# --------------------------------------------------------------------------


def reduce_sum(ctx, src: LocalTensor, *, label: str = "ReduceSum") -> float:
    """Whole-tensor sum; the scalar unit reads the result (one extra op's
    worth of cycles is folded in)."""
    _require_ub(src)
    work = _acc_dtype(src.dtype.np_dtype)
    value = src.array.astype(work, copy=False).sum()
    ctx.emitter.emit(
        engine=ctx.engine(_core_of(src), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(src.nbytes) + ctx.costs.scalar_cycles(1),
        reads=(src,),
    )
    return float(value)


def reduce_max(ctx, src: LocalTensor, *, label: str = "ReduceMax") -> float:
    _require_ub(src)
    work = _acc_dtype(src.dtype.np_dtype)
    value = src.array.astype(work, copy=False).max()
    ctx.emitter.emit(
        engine=ctx.engine(_core_of(src), EngineKind.VEC),
        kind="vec",
        label=label,
        cycles=ctx.costs.vector_cycles(src.nbytes) + ctx.costs.scalar_cycles(1),
        reads=(src,),
    )
    return float(value)


def gather_mask(ctx, dst, src, mask, *, label: str = "GatherMask") -> int:
    """Compact ``src`` elements where ``mask != 0`` into the front of ``dst``
    (paper Section 3.2); returns the number of gathered elements."""
    _require_ub(dst, src, mask)
    _require_same_core(dst, src, mask)
    if src.length != mask.length:
        raise ShapeError(
            f"gather_mask: src length {src.length} != mask length {mask.length}"
        )
    selected = src.array[mask.array != 0]
    count = int(selected.size)
    if count > dst.length:
        raise ShapeError(
            f"gather_mask output needs {count} elements, dst has {dst.length}"
        )
    dst.array[:count] = selected.astype(dst.dtype.np_dtype, copy=False)
    ctx.emitter.emit(
        engine=ctx.engine(_core_of(dst), EngineKind.VEC),
        kind="vec",
        label=label,
        # gather is a two-pass vector operation (mask scan + data move)
        cycles=ctx.costs.vector_cycles(src.nbytes + mask.nbytes, n_instructions=2),
        reads=(src, mask),
        writes=(dst,),
    )
    return count


# --------------------------------------------------------------------------
# macro intrinsics
# --------------------------------------------------------------------------


def propagate_chain(
    ctx,
    tile: LocalTensor,
    s: int,
    partial: float,
    register: Hazard,
    *,
    label: str = "PropagateChain",
) -> float:
    """The serial partial-sum propagation of Algorithms 1 and 3.

    For each ``s``-tile ``y_s`` of ``tile`` (in order):
    ``y_s += partial; partial = last(y_s)``.  Emitted as one macro op whose
    cost is exactly ``rows`` Adds instructions plus ``rows`` scalar reads —
    the iterations are serialised by the ``partial`` dependency, so no
    pipelining is lost by fusing them.

    Returns the final ``partial``.
    """
    _require_ub(tile)
    if s <= 0 or tile.length % s != 0:
        raise ShapeError(f"tile length {tile.length} is not a multiple of s={s}")
    rows = tile.length // s
    mat = tile.array.reshape(rows, s)
    work = _acc_dtype(tile.dtype.np_dtype)
    row_last = mat[:, -1].astype(work)
    offsets = np.empty(rows, dtype=work)
    offsets[0] = work.type(partial)
    if rows > 1:
        np.cumsum(row_last[:-1], dtype=work, out=offsets[1:])
        offsets[1:] += work.type(partial)
    mat[...] = (mat.astype(work) + offsets[:, None]).astype(tile.dtype.np_dtype)
    new_partial = float(offsets[-1] + row_last[-1])

    ctx.emitter.emit(
        engine=ctx.engine(_core_of(tile), EngineKind.VEC),
        kind="vec_chain",
        label=label,
        cycles=ctx.costs.vector_cycles(tile.nbytes, n_instructions=rows)
        + ctx.costs.scalar_cycles(rows),
        reads=(tile, register),
        writes=(tile, register),
    )
    return new_partial


def row_cumsum_serial(
    ctx,
    tile: LocalTensor,
    rows: int,
    cols: int,
    *,
    instructions_per_row: int = 4,
    label: str = "CumSumRows",
) -> int:
    """Row-serial in-tile cumulative sums — the CumSum-API building block of
    the vector-only baseline.

    Models the AscendC ``CumSum`` API processing a ``rows x cols`` UB tile
    one row at a time, ``instructions_per_row`` vector instructions per row
    (a microcoded shifted-add sequence).  Rows are serialised by the API's
    internal accumulator, hence a single macro op.
    """
    _require_ub(tile)
    if rows * cols != tile.length:
        raise ShapeError(
            f"tile length {tile.length} != rows*cols = {rows * cols}"
        )
    if instructions_per_row < 1:
        raise KernelError("instructions_per_row must be >= 1")
    mat = tile.array.reshape(rows, cols)
    work = _acc_dtype(tile.dtype.np_dtype)
    mat[...] = np.cumsum(mat.astype(work), axis=1).astype(tile.dtype.np_dtype)

    n_instr = rows * instructions_per_row
    return ctx.emitter.emit(
        engine=ctx.engine(_core_of(tile), EngineKind.VEC),
        kind="vec_chain",
        label=label,
        cycles=ctx.costs.vector_cycles(
            tile.nbytes * instructions_per_row, n_instructions=n_instr
        ),
        reads=(tile,),
        writes=(tile,),
    )


def vector_macro(
    ctx,
    *,
    label: str,
    reads: tuple = (),
    writes: tuple = (),
    nbytes: int,
    n_instructions: int = 1,
    scalar_elements: int = 0,
    apply: "Callable[[], None] | None" = None,
) -> int:
    """Escape hatch for specialised vector instruction sequences.

    ``apply`` performs the functional update (inside the intrinsic so that
    every state change stays timed); the cost is ``n_instructions`` vector
    instructions over ``nbytes`` plus ``scalar_elements`` scalar-unit reads.
    """
    tensors = tuple(t for t in reads + writes if isinstance(t, LocalTensor))
    if tensors:
        _require_ub(*tensors)
        _require_same_core(*tensors)
        core = _core_of(tensors[0])
    else:
        raise KernelError("vector_macro needs at least one UB tensor operand")
    if apply is not None:
        apply()
    return ctx.emitter.emit(
        engine=ctx.engine(core, EngineKind.VEC),
        kind="vec_macro",
        label=label,
        cycles=ctx.costs.vector_cycles(nbytes, n_instructions=n_instructions)
        + ctx.costs.scalar_cycles(scalar_elements),
        reads=reads,
        writes=writes,
    )


def scalar_process(
    ctx,
    core: CoreHandle,
    n_elements: int,
    *,
    label: str,
    reads: tuple = (),
    writes: tuple = (),
    gm_read: "GlobalSlice | None" = None,
    gm_write: "GlobalSlice | None" = None,
    apply: "Callable[[], None] | None" = None,
) -> int:
    """Element-by-element scalar-unit processing.

    Used by the un-optimised baselines the paper compares against (its code
    investigation found ``masked_select`` "does not use the vector or cube
    units", Section 6.2).
    """
    if apply is not None:
        apply()
    return ctx.emitter.emit(
        engine=ctx.engine(core, EngineKind.SCALAR),
        kind="scalar",
        label=label,
        cycles=ctx.costs.scalar_cycles(n_elements),
        reads=reads,
        writes=writes,
        gm_read=gm_read,
        gm_write=gm_write,
    )
