"""AscendC-style programming model: tensors, queues, context, intrinsics."""

from . import intrinsics
from .context import KernelContext
from .kernel import Kernel
from .queues import TPipe, TQue
from .tensor import BufferKind, Hazard, LocalTensor

__all__ = [
    "BufferKind",
    "Hazard",
    "Kernel",
    "KernelContext",
    "LocalTensor",
    "TPipe",
    "TQue",
    "intrinsics",
]
