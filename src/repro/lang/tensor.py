"""Local tensors and hazard tracking.

:class:`LocalTensor` mirrors AscendC's ``LocalTensor``: a typed view of a
core-local buffer (UB, L1, L0A, L0B, L0C).  Each carries a :class:`Hazard`
record so the op emitter can derive cross-engine dependency edges
(RAW/WAR/WAW) automatically — the AscendC queue API resolves the same
dependencies on hardware.

Sub-views created with :meth:`LocalTensor.view` share their parent's hazard
record: the tiles of one UB allocation are serialised against each other,
which matches the conservatively-correct behaviour of a single queue slot.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..hw.datatypes import DType

__all__ = ["Hazard", "LocalTensor", "BufferKind"]


class BufferKind:
    """Physical buffer names (paper Section 3.1)."""

    UB = "ub"
    L1 = "l1"
    L0A = "l0a"
    L0B = "l0b"
    L0C = "l0c"

    ALL = (UB, L1, L0A, L0B, L0C)
    #: buffers that live on the cube core
    CUBE_SIDE = (L1, L0A, L0B, L0C)
    #: buffers that live on the vector core
    VECTOR_SIDE = (UB,)


class Hazard:
    """Last-writer / readers-since bookkeeping for one storage location."""

    __slots__ = ("last_writer", "readers", "serial")

    #: class-wide allocation counter; gives every hazard a stable identity
    #: (``id()`` values are recycled by the allocator, which would alias
    #: distinct locations in the sync-coverage audit log)
    _next_serial = 0

    def __init__(self) -> None:
        self.last_writer: int = -1
        self.readers: list[int] = []
        self.serial = Hazard._next_serial
        Hazard._next_serial += 1

    def deps_for_read(self) -> tuple[int, ...]:
        return (self.last_writer,) if self.last_writer >= 0 else ()

    def deps_for_write(self) -> tuple[int, ...]:
        deps = list(self.readers)
        if self.last_writer >= 0:
            deps.append(self.last_writer)
        return tuple(deps)

    def note_read(self, op_id: int) -> None:
        self.readers.append(op_id)

    def note_write(self, op_id: int) -> None:
        self.last_writer = op_id
        self.readers.clear()

    def seed(self, op_id: int) -> None:
        """Make all future accesses depend on ``op_id`` (used when a queue
        slot is recycled: the new tensor must wait for the old one's ops)."""
        self.last_writer = op_id
        self.readers.clear()


class LocalTensor:
    """A typed tile resident in a core-local buffer."""

    def __init__(
        self,
        *,
        buffer: str,
        dtype: DType,
        length: int,
        core_kind: str,
        core_index: int,
        hazard: "Hazard | None" = None,
        array: "np.ndarray | None" = None,
    ):
        if buffer not in BufferKind.ALL:
            raise ShapeError(f"unknown buffer kind {buffer!r}")
        if length <= 0:
            raise ShapeError(f"local tensor length must be positive, got {length}")
        self.buffer = buffer
        self.dtype = dtype
        self.length = int(length)
        self.core_kind = core_kind
        self.core_index = core_index
        self.hazard = hazard if hazard is not None else Hazard()
        self.array = (
            array if array is not None else np.zeros(self.length, dtype=dtype.np_dtype)
        )
        if self.array.shape != (self.length,):
            raise ShapeError(
                f"backing array shape {self.array.shape} != ({self.length},)"
            )

    @property
    def nbytes(self) -> int:
        return self.length * self.dtype.itemsize

    def view(self, offset: int, length: int) -> "LocalTensor":
        """A sub-range sharing this tensor's storage and hazard record."""
        if offset < 0 or length <= 0 or offset + length > self.length:
            raise ShapeError(
                f"view [{offset}, {offset + length}) out of bounds for "
                f"local tensor of length {self.length}"
            )
        return LocalTensor(
            buffer=self.buffer,
            dtype=self.dtype,
            length=length,
            core_kind=self.core_kind,
            core_index=self.core_index,
            hazard=self.hazard,
            array=self.array[offset : offset + length],
        )

    def as_matrix(self, rows: int, cols: int) -> np.ndarray:
        """Row-major matrix view (the paper's ``A_s`` view of a tile)."""
        if rows * cols != self.length:
            raise ShapeError(
                f"cannot view length-{self.length} tensor as {rows}x{cols}"
            )
        return self.array.reshape(rows, cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalTensor({self.buffer}@{self.core_kind}{self.core_index}, "
            f"{self.dtype.name}, len={self.length})"
        )
