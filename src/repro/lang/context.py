"""Kernel execution context.

A :class:`KernelContext` is handed to each kernel phase, once per block.
It identifies the block's cores (one cube core and two vector cores in
"mix" mode on the 910B split architecture; one vector core in "vec" mode),
provides TPipe construction against the device's buffer budgets, and routes
intrinsic calls to the op emitter.
"""

from __future__ import annotations

from ..errors import KernelError
from ..hw.device import AscendDevice, CoreHandle, Emitter
from .queues import TPipe
from .tensor import Hazard

__all__ = ["KernelContext"]


class KernelContext:
    """Per-block, per-phase view of the device."""

    def __init__(
        self,
        *,
        device: AscendDevice,
        emitter: Emitter,
        block_idx: int,
        block_dim: int,
        mode: str,
    ):
        self.device = device
        self.emitter = emitter
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.mode = mode
        self.config = device.config
        self.costs = device.costs

        if mode == "mix":
            self.cube_core: "CoreHandle | None" = CoreHandle("aic", block_idx)
            ratio = device.config.vector_cores_per_ai_core
            self.vector_cores = tuple(
                CoreHandle("aiv", block_idx * ratio + j) for j in range(ratio)
            )
        elif mode == "vec":
            self.cube_core = None
            self.vector_cores = (CoreHandle("aiv", block_idx),)
        else:  # pragma: no cover - guarded by device.launch
            raise KernelError(f"unknown mode {mode!r}")

    # -- core / engine access ----------------------------------------------------

    def vec_core(self, i: int = 0) -> CoreHandle:
        """The block's ``i``-th vector core."""
        try:
            return self.vector_cores[i]
        except IndexError:
            raise KernelError(
                f"block has {len(self.vector_cores)} vector cores, asked for #{i}"
            ) from None

    def require_cube(self) -> CoreHandle:
        if self.cube_core is None:
            raise KernelError("this kernel mode has no cube core")
        return self.cube_core

    def engine(self, core: CoreHandle, engine_kind: str) -> int:
        return self.device.engine_id(core, engine_kind)

    # -- resources ------------------------------------------------------------------

    def make_pipe(self, core: CoreHandle) -> TPipe:
        """A TPipe owning ``core``'s local buffers for this phase."""
        return TPipe(
            core_kind=core.kind,
            core_index=core.index,
            buffers=self.config.buffers,
        )

    def new_register(self) -> Hazard:
        """A hazard record for a scalar carried across loop iterations
        (e.g. the running ``partial`` of Algorithms 1-3)."""
        return Hazard()
